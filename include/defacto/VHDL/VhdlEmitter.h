//===- VhdlEmitter.h - Behavioral VHDL code generation ---------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SUIF2VHDL stand-in: renders a (typically transformed) kernel as a
/// behavioral VHDL design suitable for a behavioral synthesis tool. The
/// generated entity exposes a clock/reset/start/done handshake; each
/// physical external memory becomes a RAM array in the architecture with
/// a comment tying it back to the board memory it models. Loops remain
/// loops (behavioral style — the synthesis tool schedules them), scalars
/// become process variables, and register rotations become parallel
/// variable shifts.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_VHDL_VHDLEMITTER_H
#define DEFACTO_VHDL_VHDLEMITTER_H

#include "defacto/IR/Kernel.h"

#include <string>

namespace defacto {

/// Emission options.
struct VhdlOptions {
  /// Entity name; defaults to the kernel name lowercased with a
  /// "defacto_" prefix.
  std::string EntityName;
  /// Annotate each statement group with the originating construct.
  bool EmitComments = true;
};

/// Renders \p K as one self-contained VHDL design file.
std::string emitVhdl(const Kernel &K, const VhdlOptions &Opts = {});

/// Quick structural well-formedness check used by tests and examples:
/// balanced entity/architecture/process/loop constructs and declared
/// identifiers. Returns an empty string when OK, else a description of
/// the first problem.
std::string checkVhdlStructure(const std::string &Vhdl);

/// Emits a self-checking VHDL testbench for \p K: it instantiates the
/// design entity, drives clock/reset/start, pre-loads every input memory
/// with the contents of \p Inputs (a simulator memory image), and after
/// `done` asserts every output element against the golden values in
/// \p Expected (the image after running the functional simulator). This
/// is the verification hand-off a DEFACTO user runs in an HDL simulator
/// before committing to synthesis.
///
/// Renamed bank arrays are loaded through their origin's data using the
/// recorded bank offset/stride, so the testbench works for transformed
/// designs too.
std::string emitVhdlTestbench(const Kernel &K,
                              const class MemoryImage &Inputs,
                              const class MemoryImage &Expected,
                              const VhdlOptions &Opts = {});

} // namespace defacto

#endif // DEFACTO_VHDL_VHDLEMITTER_H
