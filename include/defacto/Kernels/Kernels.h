//===- Kernels.h - The paper's five multimedia kernels ---------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five multimedia kernels of the paper's evaluation (§6.1), written
/// as standard C programs with no pragmas or annotations, exactly as the
/// DEFACTO flow ingests them:
///  - FIR: integer multiply-accumulate of 32 consecutive elements over a
///    64-element output.
///  - MM: dense integer matrix multiply, 32x16 by 16x4.
///  - PAT: character pattern matching, pattern 16 over a string of 64.
///  - JAC: 4-point Jacobi stencil averaging.
///  - SOBEL: 3x3 window edge-detection operator.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_KERNELS_KERNELS_H
#define DEFACTO_KERNELS_KERNELS_H

#include "defacto/IR/Kernel.h"

#include <string>
#include <vector>

namespace defacto {

/// One benchmark kernel: name, C source, and a one-line description.
struct KernelSpec {
  std::string Name;
  std::string Source;
  std::string Description;
};

/// The five kernels in the paper's order: FIR, MM, PAT, JAC, SOBEL.
const std::vector<KernelSpec> &paperKernels();

/// Additional kernels from the paper's motivating application class
/// (§2.4 names image correlation and erosion/dilation alongside the
/// evaluated five): CORR (2-D template correlation, a 4-deep nest),
/// DILATE and ERODE (3x3 morphological max/min).
const std::vector<KernelSpec> &extendedKernels();

/// Spec by name, searching the paper set then the extended set; null
/// when unknown.
const KernelSpec *findKernelSpec(const std::string &Name);

/// Parses and verifies the named kernel. Fatal on unknown names or parse
/// errors (the sources are compiled-in and must always parse).
Kernel buildKernel(const std::string &Name);

} // namespace defacto

#endif // DEFACTO_KERNELS_KERNELS_H
