//===- Lexer.h - Tokenizer for the C-subset front end ----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the paper's input language: a C subset of loop nests over
/// scalar and array variables (§2.4). Handles `//` and `/* */` comments and
/// tracks line/column positions for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_FRONTEND_LEXER_H
#define DEFACTO_FRONTEND_LEXER_H

#include "defacto/Support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace defacto {

/// Token kinds produced by the lexer.
enum class TokenKind {
  Eof,
  Error,
  Identifier,
  IntLiteral,
  // Keywords.
  KwFor,
  KwIf,
  KwElse,
  KwChar,
  KwShort,
  KwInt,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Question,
  Colon,
  Assign,
  PlusAssign,
  PlusPlus,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Bang,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  Ne,
};

/// Human-readable token-kind name for diagnostics ("'+='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Identifier text / literal value are populated when
/// applicable.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLocation Loc;
  std::string Text;    // identifier spelling or offending text for Error
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes a whole buffer up front. Lexical errors become Error tokens
/// and are also reported to the DiagnosticEngine.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Tokenizes the entire buffer; the last token is always Eof.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLocation here() const { return {Line, Column}; }
  void skipWhitespaceAndComments();

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace defacto

#endif // DEFACTO_FRONTEND_LEXER_H
