//===- Parser.h - C-subset parser producing Kernel IR ----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the paper's input domain (§2.4): loop nest
/// computations on scalar and multi-dimensional array variables, no
/// pointers, affine subscript expressions with fixed stride, constant loop
/// bounds, structured control flow. The parser enforces these restrictions
/// and reports violations through the DiagnosticEngine.
///
/// Grammar sketch:
///   program   := decl* stmt*
///   decl      := type ident ('[' intlit ']')* ';'
///   stmt      := for | if | assign | ';'
///   for       := 'for' '(' ident '=' const ';' ident '<' const ';'
///                 incr ')' body
///   incr      := ident '++' | ident '+=' intlit
///   assign    := lvalue ('=' | '+=') expr ';'
///   expr      := C expression grammar incl. '?:', comparisons, bit ops,
///                and the builtins abs(x), min(x,y), max(x,y)
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_FRONTEND_PARSER_H
#define DEFACTO_FRONTEND_PARSER_H

#include "defacto/Frontend/Lexer.h"
#include "defacto/IR/Kernel.h"

#include <optional>

namespace defacto {

/// Parses \p Source into a Kernel named \p KernelName. Returns
/// std::nullopt on any error; inspect \p Diags for the reasons. The
/// parser recovers at statement boundaries (';' and '}'), so a single
/// parse reports every independent mistake, capped at 20 errors.
std::optional<Kernel> parseKernel(const std::string &Source,
                                  const std::string &KernelName,
                                  DiagnosticEngine &Diags);

} // namespace defacto

#endif // DEFACTO_FRONTEND_PARSER_H
