//===- Json.h - Minimal JSON syntax validation -----------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON toolkit, just enough for the repo's own needs:
///
///  - isValidJson: syntax checking (RFC 8259 grammar) the tests use to
///    assert the trace/stats exporters and BENCH_dse.json emit
///    well-formed documents;
///  - parseJson/JsonValue: a small document tree for readers of our own
///    machine-generated output — the evaluation journal loads its JSONL
///    records through it on resume;
///  - jsonQuote: string escaping for the writers.
///
/// Numbers are kept as raw text (the journal round-trips doubles through
/// hexfloat strings, so nothing here ever converts through decimal).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_JSON_H
#define DEFACTO_SUPPORT_JSON_H

#include "defacto/Support/Error.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace defacto {

/// True when \p Text is exactly one well-formed JSON value (trailing
/// whitespace permitted). On failure \p Error, when non-null, receives a
/// byte offset and reason.
bool isValidJson(const std::string &Text, std::string *Error = nullptr);

/// One parsed JSON value. Small and concrete: members/elements own their
/// children directly, object member order is preserved, and numbers stay
/// raw text until a caller asks for a conversion.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind ValueKind = Kind::Null;
  bool Boolean = false;
  /// The unescaped string value, or the raw number token.
  std::string Text;
  std::vector<JsonValue> Elements;                       // arrays
  std::vector<std::pair<std::string, JsonValue>> Members; // objects

  bool isObject() const { return ValueKind == Kind::Object; }
  bool isArray() const { return ValueKind == Kind::Array; }
  bool isString() const { return ValueKind == Kind::String; }
  bool isNumber() const { return ValueKind == Kind::Number; }

  /// First member named \p Key; null for non-objects and missing keys.
  const JsonValue *find(const std::string &Key) const;

  /// Member \p Key as a string; \p Default when absent or not a string.
  std::string str(const std::string &Key,
                  const std::string &Default = "") const;

  /// Number/string content parsed by strtod (accepts hexfloat and inf,
  /// the journal's exact double encoding); \p Default when absent.
  double num(const std::string &Key, double Default = 0) const;

  /// Member \p Key parsed as an unsigned 64-bit integer (number or
  /// string content); \p Default when absent or unparsable.
  uint64_t uint(const std::string &Key, uint64_t Default = 0) const;

  /// Member \p Key as a bool; \p Default when absent or not a bool.
  bool boolean(const std::string &Key, bool Default = false) const;
};

/// Parses exactly one JSON value (trailing whitespace permitted).
Expected<JsonValue> parseJson(const std::string &Text);

/// \p S as a quoted JSON string literal (quotes included), escaping
/// control characters, quotes, and backslashes.
std::string jsonQuote(const std::string &S);

} // namespace defacto

#endif // DEFACTO_SUPPORT_JSON_H
