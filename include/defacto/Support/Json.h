//===- Json.h - Minimal JSON syntax validation -----------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON syntax checker, just enough for the tests and
/// tooling to assert that the trace/stats exporters and BENCH_dse.json
/// emit well-formed documents. It validates structure only (RFC 8259
/// grammar); it does not build a document tree.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_JSON_H
#define DEFACTO_SUPPORT_JSON_H

#include <string>

namespace defacto {

/// True when \p Text is exactly one well-formed JSON value (trailing
/// whitespace permitted). On failure \p Error, when non-null, receives a
/// byte offset and reason.
bool isValidJson(const std::string &Text, std::string *Error = nullptr);

} // namespace defacto

#endif // DEFACTO_SUPPORT_JSON_H
