//===- Histogram.h - Lock-free latency/value histograms --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Log-bucketed histograms for the exploration engine's live telemetry:
/// per-evaluation latency, per-pipeline-stage latency, cache wait time,
/// and estimate balance/cost distributions. Counters (Stats.h) answer
/// "how many"; histograms answer "how long, and how bad is the tail" —
/// the p99 evaluation stall a mean hides.
///
/// Like every observability primitive here, recording is gated on the
/// StatRegistry enable bit and is **zero-cost while off**: a disabled
/// record site is one relaxed atomic load and a predictable branch — no
/// clock reads, no stores. Enabled, a record is a handful of relaxed
/// atomic adds into HdrHistogram-style log-linear buckets (8 sub-buckets
/// per power of two, ~12.5% worst-case value error), so many threads
/// record into one histogram without any lock.
///
/// Idiom:
///
///   static Histogram &EvalLatency =
///       HistogramRegistry::global().histogram("eval.latency_us");
///   ...
///   EvalLatency.record(Micros);            // no-op unless recording is on
///
/// or, for scopes:
///
///   DEFACTO_SCOPED_HISTOGRAM_US("cache.wait_us");
///
/// Snapshots are mergeable (bucket-wise addition), and quantiles are
/// deterministic functions of the bucket counts: two runs recording the
/// same multiset of values report identical percentiles regardless of
/// thread interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_HISTOGRAM_H
#define DEFACTO_SUPPORT_HISTOGRAM_H

#include "defacto/Support/Stats.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace defacto {

/// One histogram's state at snapshot time. Mergeable: merge() adds
/// bucket counts, so per-shard or per-run histograms combine into one
/// distribution with the same quantile math.
struct HistogramSnapshot {
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
  std::vector<uint64_t> Buckets; // Histogram::NumBuckets entries

  /// The \p Q quantile (0 < Q <= 1) of the recorded distribution: the
  /// inclusive upper bound of the bucket holding the ceil(Q*Count)-th
  /// smallest value, clamped to the exact recorded maximum. 0 for an
  /// empty histogram. Deterministic given the bucket counts.
  uint64_t quantile(double Q) const;

  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  /// Adds \p Other's buckets, count, and sum into this snapshot (same
  /// bucket layout by construction).
  void merge(const HistogramSnapshot &Other);
};

/// Lock-free log-linear histogram of non-negative 64-bit values.
class Histogram {
public:
  /// Sub-bucket resolution: 2^SubBits linear sub-buckets per power of
  /// two. Values below 2^(SubBits+1) are recorded exactly.
  static constexpr unsigned SubBits = 3;
  /// Tight bucket count: exact buckets [0, 2^(SubBits+1)) plus one run
  /// of 2^SubBits sub-buckets per remaining octave.
  static constexpr unsigned NumBuckets =
      ((63 - SubBits) << SubBits) + (2u << SubBits);

  explicit Histogram(std::string Name) : Name(std::move(Name)) {}

  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Records one value: a relaxed load and a branch while recording is
  /// disabled; four relaxed atomic RMWs while enabled. Thread-safe.
  void record(uint64_t V) {
    if (!statsEnabled())
      return;
    Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Prev = MaxValue.load(std::memory_order_relaxed);
    while (Prev < V && !MaxValue.compare_exchange_weak(
                           Prev, V, std::memory_order_relaxed))
      ;
  }

  const std::string &name() const { return Name; }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  /// Consistent-enough snapshot of the relaxed counters (exact once
  /// recording threads are quiesced; a live snapshot may be mid-record
  /// by a handful of events, which the sampler tolerates).
  HistogramSnapshot snapshot() const;

  /// Zeroes every bucket (tests and repeated bench runs).
  void reset();

  //===--------------------------------------------------------------===//
  // Bucket layout contract (public so tests and readers can reason
  // about quantile determinism).
  //===--------------------------------------------------------------===//

  /// The bucket index \p V lands in. Monotonic in V and contiguous:
  /// bucketIndex(bucketBound(I)) == I and
  /// bucketIndex(bucketBound(I) + 1) == I + 1 for every non-final I.
  static unsigned bucketIndex(uint64_t V);

  /// Inclusive upper bound of bucket \p I — the largest value mapping
  /// to it.
  static uint64_t bucketBound(unsigned I);

private:
  std::string Name;
  std::atomic<uint64_t> Count{0}, Sum{0}, MaxValue{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// Process-wide registry of named histograms, mirroring TimerGroup: a
/// histogram is created on first use and its reference stays valid for
/// the registry's lifetime.
class HistogramRegistry {
public:
  static HistogramRegistry &global();

  /// The histogram named \p Name, created on first use. Cache the
  /// reference (function-local static) on hot paths.
  Histogram &histogram(const std::string &Name);

  /// Every histogram with at least one recorded value, sorted by name.
  std::vector<HistogramSnapshot> snapshot() const;

  /// Zeroes every histogram (tests and repeated bench runs).
  void reset();

  /// {"name": {"count": N, "sum": S, "max": M, "mean": ..., "p50": ...,
  /// "p90": ..., "p99": ...}, ...}.
  std::string toJson() const;

private:
  HistogramRegistry() = default;
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// RAII scope recording its wall duration, in microseconds, into a
/// histogram. Disabled recording skips the clock reads entirely.
class ScopedHistogramTimer {
public:
  explicit ScopedHistogramTimer(Histogram &H);
  ~ScopedHistogramTimer();

  ScopedHistogramTimer(const ScopedHistogramTimer &) = delete;
  ScopedHistogramTimer &operator=(const ScopedHistogramTimer &) = delete;

private:
  Histogram *H = nullptr; // null while recording is disabled
  uint64_t StartNs = 0;
};

} // namespace defacto

#define DEFACTO_HISTOGRAM_CONCAT2(A, B) A##B
#define DEFACTO_HISTOGRAM_CONCAT(A, B) DEFACTO_HISTOGRAM_CONCAT2(A, B)

/// Records the enclosing scope's wall time (µs) into the global
/// histogram \p NameStr. The histogram is resolved once.
#define DEFACTO_SCOPED_HISTOGRAM_US(NameStr)                                 \
  static ::defacto::Histogram &DEFACTO_HISTOGRAM_CONCAT(                     \
      DefactoHistogram_, __LINE__) =                                         \
      ::defacto::HistogramRegistry::global().histogram(NameStr);             \
  ::defacto::ScopedHistogramTimer DEFACTO_HISTOGRAM_CONCAT(                  \
      DefactoScopedHistogram_, __LINE__)(                                    \
      DEFACTO_HISTOGRAM_CONCAT(DefactoHistogram_, __LINE__))

#endif // DEFACTO_SUPPORT_HISTOGRAM_H
