//===- Table.h - ASCII table and CSV rendering -----------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned ASCII table builder used by the benchmark
/// harnesses to print paper-style result tables, with CSV export for
/// downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_TABLE_H
#define DEFACTO_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace defacto {

/// Column-aligned text table. Add a header then rows of equal width;
/// render as aligned ASCII or CSV.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; must have exactly as many cells as the header.
  void addRow(std::vector<std::string> Row);

  unsigned numRows() const { return Rows.size(); }
  unsigned numColumns() const { return Header.size(); }

  /// Renders with columns padded to the widest cell, a separator rule
  /// under the header, and \p Indent leading spaces per line.
  std::string toString(unsigned Indent = 0) const;

  /// Renders as RFC-4180-style CSV (cells containing commas or quotes are
  /// quoted).
  std::string toCsv() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Precision digits after the decimal point.
std::string formatDouble(double Value, unsigned Precision = 2);

/// Formats an integer with thousands separators ("12,288").
std::string formatWithCommas(int64_t Value);

} // namespace defacto

#endif // DEFACTO_SUPPORT_TABLE_H
