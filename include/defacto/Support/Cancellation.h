//===- Cancellation.h - Cooperative cancellation tokens --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for long-running work driven by unreliable
/// backends. A CancellationToken is a cheap handle to shared state that
/// can be cancelled explicitly (requestCancel) or implicitly by a
/// deadline on an injected clock — the hang watchdog arms one per
/// estimator invocation, so a backend that stalls is cancelled at its
/// next poll point instead of stranding a ThreadPool worker forever.
///
/// Deep inner loops (the scheduler's node walk, the estimator's segment
/// walk, a FaultInjector hang) must not thread a token through every
/// signature, so a CancellationScope installs the token thread-locally
/// for its dynamic extent; currentCancelled() is the poll the loops use.
/// With no scope installed the poll is a null check, and an installed
/// but untouched token costs one relaxed load — cancellation is free
/// until someone asks for it.
///
/// All state is per-token and the flag is atomic, so one token may be
/// observed from many threads; a scope, like any RAII guard, stays on
/// the thread that opened it.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_CANCELLATION_H
#define DEFACTO_SUPPORT_CANCELLATION_H

#include "defacto/Support/Error.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>

namespace defacto {

/// Shared-state cancellation handle. Copies observe (and cancel) the
/// same underlying request. A default-constructed token is inert: it
/// can never become cancelled.
class CancellationToken {
public:
  CancellationToken() = default;

  /// A token that can be cancelled explicitly via requestCancel().
  static CancellationToken create();

  /// A token that additionally self-cancels once \p Clock() reaches
  /// \p DeadlineSeconds. The watchdog in EvaluationService uses the
  /// exploration's injected clock, so tests drive it virtually.
  static CancellationToken withDeadline(double DeadlineSeconds,
                                        std::function<double()> Clock,
                                        std::string Reason = "");

  /// Requests cancellation; every copy of the token observes it.
  void requestCancel(std::string Reason = "cancelled");

  /// True once cancelled (explicitly or past the deadline). The deadline
  /// latches: after the first expired poll the token stays cancelled
  /// even if the clock were to move backwards.
  bool cancelled() const;

  /// Status::ok() while live; ErrorCode::Cancelled with the reason once
  /// cancelled. Poll sites that can propagate a Status use this.
  Status check() const;

  /// True for a token that could ever cancel (not default-constructed).
  bool valid() const { return S != nullptr; }

private:
  struct State;
  std::shared_ptr<State> S;
};

/// Installs \p Token as the calling thread's current cancellation token
/// for this scope's lifetime; nests (the previous token is restored).
class CancellationScope {
public:
  explicit CancellationScope(CancellationToken Token);
  ~CancellationScope();

  CancellationScope(const CancellationScope &) = delete;
  CancellationScope &operator=(const CancellationScope &) = delete;

private:
  CancellationToken Previous;
};

/// The calling thread's current token (inert when no scope is active).
const CancellationToken &currentCancellation();

/// Poll of the thread's current token: the one call inner loops make.
bool currentCancelled();

/// currentCancellation().check() — for poll sites returning Status.
Status currentCancelStatus();

} // namespace defacto

#endif // DEFACTO_SUPPORT_CANCELLATION_H
