//===- OpenMetrics.h - Prometheus text exposition --------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal OpenMetrics / Prometheus text-exposition writer and
/// validator for the live telemetry layer (MetricsSampler.h). The
/// writer builds one exposition document — `# TYPE`/`# HELP` metadata,
/// sample lines, a terminating `# EOF` — and the validator checks a
/// document an external scraper would accept: metric-name and label
/// syntax, values that parse as floats, `# TYPE` metadata preceding the
/// family's samples, and the mandatory `# EOF` terminator. CI gates the
/// `explore_batch --metrics-prom=` output on it
/// (`tools/openmetrics_check.cpp`), and `metrics_test` runs it over the
/// sampler's own output.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_OPENMETRICS_H
#define DEFACTO_SUPPORT_OPENMETRICS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace defacto {

/// \p Name with every character outside [a-zA-Z0-9_:] replaced by '_'
/// and a leading '_' prepended when the first character is a digit —
/// a legal OpenMetrics metric name ("cache.watchdog-cancels" ->
/// "cache_watchdog_cancels").
std::string openMetricsName(const std::string &Name);

/// \p S escaped for use inside a label value: backslash, double quote,
/// and newline are escaped per the exposition format.
std::string openMetricsLabelEscape(const std::string &S);

/// Incremental builder for one exposition document.
class OpenMetricsWriter {
public:
  /// Emits `# HELP` (when \p Help is non-empty) and `# TYPE` metadata
  /// for \p Family. \p Type is "counter", "gauge", or "summary".
  void family(const std::string &Family, const std::string &Type,
              const std::string &Help = "");

  /// Emits one sample line `name{labels} value`. \p Labels may be
  /// empty. Non-finite values are rendered as "+Inf"/"-Inf"/"NaN" per
  /// the exposition format.
  void
  sample(const std::string &Name, double Value,
         const std::vector<std::pair<std::string, std::string>> &Labels = {});

  /// The document so far plus the mandatory `# EOF` terminator.
  std::string finish() const;

private:
  std::string Out;
};

/// True when \p Text is a well-formed exposition document: every line is
/// `# HELP|TYPE|UNIT` metadata, a sample `name{labels} value [ts]`, or
/// the final `# EOF`; names are legal; sample values parse as floats;
/// a family's `# TYPE` precedes its samples; the document ends with
/// `# EOF`. On failure \p Error, when non-null, receives a line number
/// and reason.
bool validateOpenMetrics(const std::string &Text, std::string *Error = nullptr);

} // namespace defacto

#endif // DEFACTO_SUPPORT_OPENMETRICS_H
