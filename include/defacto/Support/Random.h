//===- Random.h - Deterministic PRNG for tests and workloads ---*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small SplitMix64-based pseudo-random generator. Used to build
/// deterministic synthetic inputs (image data, strings, matrices) for the
/// simulator-based correctness tests and the benchmark workload generators.
/// std::mt19937 is avoided so that sequences are identical across standard
/// library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_RANDOM_H
#define DEFACTO_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace defacto {

/// SplitMix64 generator: tiny state, excellent distribution, fully
/// deterministic for a given seed.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \pre Bound > 0.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive. \pre Lo <= Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_RANDOM_H
