//===- MathExtras.h - Integer math helpers ---------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer math helpers used throughout the compiler: gcd/lcm on
/// signed 64-bit values, divisor enumeration, and rounding division.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_MATHEXTRAS_H
#define DEFACTO_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace defacto {

/// Greatest common divisor of the absolute values; gcd(0, 0) == 0.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple of the absolute values; lcm(x, 0) == 0.
int64_t lcm64(int64_t A, int64_t B);

/// Returns all positive divisors of \p N in increasing order.
/// \pre N >= 1.
std::vector<int64_t> divisorsOf(int64_t N);

/// Integer division rounding toward +infinity. \pre B > 0.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv requires a positive divisor");
  int64_t Q = A / B;
  return Q + ((A % B != 0 && A > 0) ? 1 : 0);
}

/// Floor division. \pre B > 0.
inline int64_t floorDiv(int64_t A, int64_t B) {
  assert(B > 0 && "floorDiv requires a positive divisor");
  int64_t Q = A / B;
  return Q - ((A % B != 0 && A < 0) ? 1 : 0);
}

/// True if \p N is an integral power of two. \pre N may be any value;
/// nonpositive values return false.
inline bool isPowerOf2(int64_t N) { return N > 0 && (N & (N - 1)) == 0; }

} // namespace defacto

#endif // DEFACTO_SUPPORT_MATHEXTRAS_H
