//===- Diagnostics.h - Source locations and user diagnostics ---*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable error reporting for user input (front-end source programs).
/// Diagnostics are collected in a DiagnosticEngine; clients inspect them
/// after a phase completes. Internal invariant violations use
/// ErrorHandling.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_DIAGNOSTICS_H
#define DEFACTO_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace defacto {

/// A 1-based line/column position in a source buffer. Line 0 means
/// "no location" (e.g. a semantic error with no single anchor point).
struct SourceLocation {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string toString() const;
};

/// Severity of a reported diagnostic.
enum class DiagSeverity { Error, Warning, Note };

/// One reported problem: severity, optional location, and message text.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "line:col: error: message" (location omitted if invalid).
  std::string toString() const;
};

/// Accumulates diagnostics produced by a front-end phase.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string toString() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_DIAGNOSTICS_H
