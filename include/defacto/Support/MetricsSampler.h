//===- MetricsSampler.h - Periodic telemetry snapshots ---------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-telemetry sampler: periodically snapshots every observability
/// surface — StatRegistry counters, TimerGroup phase totals,
/// HistogramRegistry distributions, plus caller-registered gauges (queue
/// depth, in-flight evaluations, frontier size, breaker states, job
/// progress) — and appends each snapshot as one JSONL line, flushed with
/// the journal's write-then-rename idiom so a tailing reader
/// (tools/defacto_monitor.cpp) never sees a torn file. The latest
/// snapshot is additionally exported as an OpenMetrics/Prometheus text
/// exposition document (OpenMetrics.h) for scrapers.
///
/// Derived rates ride along: sliding-window evaluations/sec (delta of
/// the eval.latency_us histogram count), window cache hit rate (delta of
/// the cache.* counters), and an ETA from the jobs_done/jobs_total
/// gauges.
///
/// Two driving modes:
///  - start()/stop(): a background thread paces itself on real wall time
///    (condition-variable wait, so stop() is immediate) and exits early
///    when the configured CancellationToken fires; stop() always takes
///    one final sample so end-of-run totals exactly match the registry.
///  - sampleOnce(): synchronous, for tests with a fake injected Clock
///    and for drivers that want an explicit final snapshot.
///
/// Timestamps come from the injected Clock only — the sampler never
/// stamps real time when a fake clock is configured, so test output is
/// deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_METRICSSAMPLER_H
#define DEFACTO_SUPPORT_METRICSSAMPLER_H

#include "defacto/Support/Cancellation.h"
#include "defacto/Support/Error.h"

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace defacto {

struct MetricsSamplerOptions {
  /// Seconds between background samples (start()/stop() mode).
  double IntervalSeconds = 1.0;
  /// JSONL time-series path; empty disables the file (samples are still
  /// returned from sampleOnce()).
  std::string JsonlPath;
  /// OpenMetrics exposition path, rewritten with the latest snapshot on
  /// every sample; empty disables it.
  std::string PromPath;
  /// Timestamp source, in seconds (monotonic). Defaults to the real
  /// steady clock; tests inject a fake.
  std::function<double()> Clock;
  /// Optional cancellation: the background thread exits within one
  /// interval of the token firing.
  CancellationToken Cancel;
};

/// One taken sample: the identifying fields plus the exact serialized
/// forms written to disk, so tests validate what readers will parse.
struct MetricsSample {
  uint64_t Seq = 0;
  double Time = 0;
  bool Final = false;
  /// Window evaluations/sec from the eval.latency_us histogram; 0 when
  /// no evaluation completed this window.
  double EvalsPerSec = 0;
  /// Window estimate-cache hit rate in [0,1]; -1 when no lookup
  /// happened this window.
  double CacheHitRate = -1;
  /// Seconds to completion projected from the jobs_done/jobs_total
  /// gauges; -1 when unknown (no such gauges, or no progress yet).
  double EtaSeconds = -1;
  /// The JSONL line appended for this sample (no trailing newline).
  std::string JsonLine;
  /// The OpenMetrics document written for this sample.
  std::string Prom;
};

/// Periodic snapshotter of counters + timers + histograms + gauges.
/// Thread-safe: sampleOnce() serializes against the background thread.
class MetricsSampler {
public:
  explicit MetricsSampler(MetricsSamplerOptions Opts);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler &) = delete;
  MetricsSampler &operator=(const MetricsSampler &) = delete;

  /// Registers (or replaces) a named gauge, polled at every sample.
  /// Register before start(); the callback must be thread-safe.
  void setGauge(const std::string &Name, std::function<double()> Fn);

  /// Takes one sample now: snapshots every surface, appends the JSONL
  /// line, rewrites the exposition file, and returns the sample.
  MetricsSample sampleOnce(bool Final = false);

  /// Starts the background sampling thread. No-op if already running.
  void start();

  /// Stops the background thread (immediately — the pacing wait is
  /// interruptible) and takes one final sample. No-op when not running;
  /// safe to call without start() to just emit the final sample.
  void stop();

  /// Number of samples taken so far.
  uint64_t samples() const;

  /// Sticky status of file I/O: ok() until the first failed write or
  /// rename, then that failure. Sampling continues in-memory after an
  /// I/O error; drivers surface this once at the end.
  Status ioStatus() const;

private:
  void threadMain();
  MetricsSample sampleLocked(bool Final);
  void flushLocked();

  MetricsSamplerOptions Opts;

  mutable std::mutex M;
  std::condition_variable CV;
  std::thread Worker;
  bool Running = false;
  bool StopRequested = false;

  std::map<std::string, std::function<double()>> Gauges;
  std::vector<std::string> Lines; // full JSONL contents, rewritten atomically
  std::string LatestProm;
  Status IoStatus = Status::ok();

  uint64_t Seq = 0;
  double StartTime = 0;
  bool HavePrev = false;
  double PrevTime = 0;
  uint64_t PrevEvalCount = 0;
  uint64_t PrevCacheLookups = 0;
  uint64_t PrevCacheServed = 0;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_METRICSSAMPLER_H
