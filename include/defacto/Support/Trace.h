//===- Trace.h - Structured exploration event stream -----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured trace of one (or many concurrent) design-space
/// explorations. The exploration engine records one event per decision —
/// every evaluated unroll vector with its balance, estimate, cache
/// outcome, and what the search did next — plus spans for speculative
/// worker evaluations and engine phases. The recorder exports:
///
///  - Chrome trace_event JSON (toChromeTrace): loads directly in
///    chrome://tracing and Perfetto, one row per worker thread;
///  - JSON lines (toJsonLines): one event object per line for ad-hoc
///    jq/grep analysis;
///  - a deterministic digest (decisionDigest): the "dse.decision" events'
///    deterministic payloads, ordinal-sorted. For a deterministic
///    estimation backend the digest is bit-identical across worker-thread
///    counts — the parallel engine's evaluation set equals the
///    sequential one's — which the tests and CI assert.
///
/// Determinism: each decision event carries an evaluation ordinal
/// assigned by the (sequential, deterministic) guided walk, and export
/// sorts on (track, category, ordinal). Wall-clock timestamps and thread
/// ids naturally differ between runs; they live outside the
/// deterministic payload, as does the cache outcome (a design the
/// sequential walk computes is a speculation hit in a parallel run).
///
/// Recording is off by default and guarded by the recorder's enable bit:
/// a disabled event site costs one relaxed load and a branch.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_TRACE_H
#define DEFACTO_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace defacto {

/// One recorded event.
struct TraceEvent {
  enum class Kind { Instant, Complete };

  /// Logical track: the exploration's label (batch job name, kernel
  /// name). Groups events of one run when many runs share a recorder.
  std::string Track;
  /// Event family: "dse.decision", "dse.failure", "speculate", "phase".
  std::string Category;
  /// Event name; decision events use the unroll vector's string form.
  std::string Name;
  Kind EventKind = Kind::Instant;
  /// Per-track sequence number assigned by the emitter (the walk's
  /// evaluation ordinal for decision events); ties the deterministic
  /// export order down.
  uint64_t Ordinal = 0;
  /// Stamped by the recorder at record() time, relative to the
  /// recorder's construction. A Complete event's start is Timestamp -
  /// Duration.
  double TimestampUs = 0;
  double DurationUs = 0;
  /// Small dense id the recorder assigns per recording thread.
  uint32_t ThreadId = 0;
  /// Deterministic payload: identical across thread counts for a
  /// deterministic backend. Part of decisionDigest().
  std::vector<std::pair<std::string, std::string>> Args;
  /// Run-variant payload (cache outcome, retry counts under faults);
  /// exported but excluded from the deterministic digest.
  std::vector<std::pair<std::string, std::string>> Runtime;
};

/// Thread-safe accumulating event recorder.
class TraceRecorder {
public:
  TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// The process-wide recorder instrumented code falls back to when no
  /// recorder is injected. Disabled by default.
  static TraceRecorder &global();

  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Microseconds since recorder construction.
  double nowUs() const;

  /// Records \p E (stamping timestamp if unset, and the thread id).
  /// No-op while disabled.
  void record(TraceEvent E);

  size_t eventCount() const;
  void clear();

  /// Every event, sorted deterministically by (track, category, ordinal,
  /// name); ties broken by timestamp.
  std::vector<TraceEvent> sortedEvents() const;

  /// Chrome trace_event format: {"traceEvents": [...]}. Loads in
  /// chrome://tracing and https://ui.perfetto.dev.
  std::string toChromeTrace() const;

  /// One JSON object per line, in sortedEvents() order.
  std::string toJsonLines() const;

  /// The deterministic payloads of every "dse.decision" event:
  /// "track|ordinal|name|key=value,..." lines in sorted order. Equal
  /// digests mean equal evaluation sets.
  std::vector<std::string> decisionDigest() const;

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex M;
  std::vector<TraceEvent> Events;
  std::map<std::thread::id, uint32_t> ThreadIds;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span recording one Complete event (e.g. a speculative estimation
/// or an engine phase) with its wall duration. Does nothing while the
/// recorder is disabled at construction.
class TraceSpan {
public:
  TraceSpan(TraceRecorder &R, std::string Track, std::string Category,
            std::string Name);
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Adds a run-variant key/value to the span's event.
  void note(std::string Key, std::string Value);

private:
  TraceRecorder *R = nullptr; // null while disabled
  TraceEvent E;
  double StartUs = 0;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_TRACE_H
