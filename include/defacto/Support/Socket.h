//===- Socket.h - Unix-domain socket and line framing ----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer under the DSE daemon (Serve/Server.h): blocking
/// Unix-domain stream sockets with newline-delimited framing, wrapped in
/// the repo's Status/Expected error model so callers never touch errno.
///
///  - UnixListener binds a filesystem socket path, accepts connections,
///    and supports a polled accept with timeout so an accept loop can
///    notice a stop flag without busy-waiting;
///  - UnixConnection carries one byte stream with sendLine()/recvLine()
///    framing: one request or reply per '\n'-terminated line, exactly
///    the journal's and metrics sampler's JSONL convention, so every
///    wire message is also a valid JSONL record.
///
/// Both types own their file descriptor (move-only, closed on
/// destruction). All operations are blocking; the daemon gets its
/// concurrency from one thread per connection, not from readiness
/// multiplexing — connection counts are bounded by the admission queue
/// long before select() scalability matters on a single machine.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_SOCKET_H
#define DEFACTO_SUPPORT_SOCKET_H

#include "defacto/Support/Error.h"

#include <optional>
#include <string>

namespace defacto {

/// One connected Unix-domain stream socket with line framing.
class UnixConnection {
public:
  UnixConnection() = default;
  ~UnixConnection();

  UnixConnection(UnixConnection &&Other) noexcept;
  UnixConnection &operator=(UnixConnection &&Other) noexcept;
  UnixConnection(const UnixConnection &) = delete;
  UnixConnection &operator=(const UnixConnection &) = delete;

  /// Connects to the listener at \p Path.
  static Expected<UnixConnection> connectTo(const std::string &Path);

  /// Adopts an already-connected descriptor (accept side).
  static UnixConnection fromFd(int Fd);

  /// Writes \p Line plus a terminating '\n' (the line itself must not
  /// contain one — jsonQuote escapes embedded newlines, so any JSON
  /// document serialized on one line is safe). Retries short writes.
  Status sendLine(const std::string &Line);

  /// Reads up to the next '\n' (stripped). std::nullopt on clean EOF
  /// with no buffered partial line; an error Status on transport
  /// failure or when \p MaxBytes is exceeded (a runaway peer must not
  /// balloon daemon memory).
  Expected<std::optional<std::string>> recvLine(size_t MaxBytes = 1 << 20);

  bool valid() const { return Fd >= 0; }

  /// The raw descriptor — the daemon's stop path shutdown(2)s every
  /// live connection so threads blocked in recvLine() wake with EOF.
  int fd() const { return Fd; }

  void close();

private:
  explicit UnixConnection(int Fd) : Fd(Fd) {}

  int Fd = -1;
  std::string Buffer; // bytes received past the last returned line
};

/// A bound-and-listening Unix-domain socket.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(UnixListener &&Other) noexcept;
  UnixListener &operator=(UnixListener &&Other) noexcept;
  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens on \p Path. An existing socket file at the path
  /// is unlinked first (a previous daemon's leftover); a live listener
  /// would have held the bind, so clobbering is safe for the daemon's
  /// single-owner deployment model. Path length is validated against
  /// sockaddr_un.
  static Expected<UnixListener> listenOn(const std::string &Path,
                                         int Backlog = 64);

  /// Blocks up to \p TimeoutMs for one connection. std::nullopt on
  /// timeout — the accept loop polls its stop flag between waits.
  Expected<std::optional<UnixConnection>> acceptFor(int TimeoutMs);

  const std::string &path() const { return Path; }
  bool valid() const { return Fd >= 0; }

  /// Closes the descriptor and unlinks the socket path.
  void close();

private:
  UnixListener(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}

  int Fd = -1;
  std::string Path;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_SOCKET_H
