//===- Timer.h - Phase timing (wall + CPU) ---------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulating phase timers for the exploration stack: every transform
/// pass, estimator call, scheduler run, and cache-shard wait charges its
/// wall and thread-CPU time to a named PhaseTimer in the process-wide
/// TimerGroup. Like Stats.h (whose registry enable bit gates both
/// surfaces), timing is off by default and costs a relaxed load and a
/// branch per scope while disabled — no clock reads.
///
/// Idiom:
///
///   void schedule(...) {
///     DEFACTO_SCOPED_TIMER("scheduler.schedule");
///     ...
///   }
///
/// The macro resolves the timer name once (function-local static), so an
/// enabled scope costs two clock reads and three relaxed atomic adds.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_TIMER_H
#define DEFACTO_SUPPORT_TIMER_H

#include "defacto/Support/Stats.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace defacto {

/// One named phase accumulator. References returned by TimerGroup are
/// stable for the group's lifetime.
class PhaseTimer {
public:
  explicit PhaseTimer(std::string Name) : Name(std::move(Name)) {}

  void record(uint64_t WallNs, uint64_t CpuNs) {
    WallNanos.fetch_add(WallNs, std::memory_order_relaxed);
    CpuNanos.fetch_add(CpuNs, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
  }

  const std::string &name() const { return Name; }
  double wallMs() const {
    return static_cast<double>(WallNanos.load(std::memory_order_relaxed)) /
           1e6;
  }
  double cpuMs() const {
    return static_cast<double>(CpuNanos.load(std::memory_order_relaxed)) / 1e6;
  }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

private:
  friend class TimerGroup;
  std::string Name;
  std::atomic<uint64_t> WallNanos{0}, CpuNanos{0}, Count{0};
};

/// Process-wide registry of phase timers.
class TimerGroup {
public:
  static TimerGroup &global();

  /// The timer named \p Name, created on first use. The reference stays
  /// valid for the group's lifetime.
  PhaseTimer &timer(const std::string &Name);

  struct Snapshot {
    std::string Name;
    double WallMs = 0;
    double CpuMs = 0;
    uint64_t Count = 0;
  };

  /// Every timer, sorted by name. Zero-count timers are skipped.
  std::vector<Snapshot> snapshot() const;

  /// Zeroes every timer (tests and repeated bench runs).
  void reset();

  /// "name: wall ms (cpu ms, N scopes)" lines.
  std::string toText() const;

  /// {"name": {"wall_ms": W, "cpu_ms": C, "count": N}, ...}.
  std::string toJson() const;

private:
  TimerGroup() = default;
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<PhaseTimer>> Timers;
};

/// RAII scope charging its duration to a PhaseTimer. Disabled recording
/// (statsEnabled() false at construction) skips the clock reads entirely.
class ScopedTimer {
public:
  explicit ScopedTimer(PhaseTimer &T);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  PhaseTimer *T = nullptr; // null while recording is disabled
  uint64_t WallStartNs = 0;
  uint64_t CpuStartNs = 0;
};

} // namespace defacto

#define DEFACTO_TIMER_CONCAT2(A, B) A##B
#define DEFACTO_TIMER_CONCAT(A, B) DEFACTO_TIMER_CONCAT2(A, B)

/// Charges the enclosing scope to the global phase timer \p NameStr.
#define DEFACTO_SCOPED_TIMER(NameStr)                                        \
  static ::defacto::PhaseTimer &DEFACTO_TIMER_CONCAT(DefactoPhaseTimer_,     \
                                                     __LINE__) =             \
      ::defacto::TimerGroup::global().timer(NameStr);                        \
  ::defacto::ScopedTimer DEFACTO_TIMER_CONCAT(DefactoScopedTimer_, __LINE__)(\
      DEFACTO_TIMER_CONCAT(DefactoPhaseTimer_, __LINE__))

#endif // DEFACTO_SUPPORT_TIMER_H
