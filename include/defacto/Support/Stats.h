//===- Stats.h - Cheap named counters and gauges ---------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-Statistic-style counters for the exploration engine: a Statistic
/// is a named, statically registered, thread-safe counter whose hot-path
/// cost is one relaxed atomic increment — and nothing at all while the
/// registry is disabled (the default), so instrumented code pays only a
/// relaxed load and a predictable branch per event site.
///
/// Every Statistic registers itself with the process-wide StatRegistry,
/// which can snapshot, print (text or JSON), and reset the whole set.
/// The intended idiom mirrors LLVM:
///
///   DEFACTO_STATISTIC(NumCacheHits, "cache", "hits",
///                     "completed estimate-cache entries served");
///   ...
///   ++NumCacheHits;          // no-op unless StatRegistry is enabled
///
/// The registry's enable bit also gates the phase timers (Timer.h): one
/// switch turns the whole counter/timer surface on for a run.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_STATS_H
#define DEFACTO_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace defacto {

namespace detail {
/// The registry enable bit, read on every counter/timer hot path. Only
/// StatRegistry::setEnabled writes it.
extern std::atomic<bool> StatsEnabledFlag;
} // namespace detail

/// True when counters and phase timers are recording.
inline bool statsEnabled() {
  return detail::StatsEnabledFlag.load(std::memory_order_relaxed);
}

/// One named counter/gauge. Construction registers it for the lifetime
/// of the process; declare Statistics at namespace scope in a .cpp (the
/// DEFACTO_STATISTIC macro) so each has exactly one instance.
class Statistic {
public:
  Statistic(const char *Group, const char *Name, const char *Description);

  Statistic(const Statistic &) = delete;
  Statistic &operator=(const Statistic &) = delete;

  /// Counter increment: a single relaxed atomic add when recording is
  /// enabled, a relaxed load and branch otherwise.
  void add(uint64_t N) {
    if (statsEnabled())
      Value.fetch_add(N, std::memory_order_relaxed);
  }
  Statistic &operator++() {
    add(1);
    return *this;
  }
  void operator++(int) { add(1); }

  /// Gauge assignment (last write wins). Like add(), gated on the
  /// registry enable bit.
  void set(uint64_t V) {
    if (statsEnabled())
      Value.store(V, std::memory_order_relaxed);
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *description() const { return Description; }

private:
  friend class StatRegistry;
  const char *Group;
  const char *Name;
  const char *Description;
  std::atomic<uint64_t> Value{0};
};

/// One counter's value at snapshot time.
struct StatSnapshot {
  std::string Group;
  std::string Name;
  std::string Description;
  uint64_t Value = 0;
};

/// Process-wide set of every Statistic, plus the enable bit shared with
/// the phase timers.
class StatRegistry {
public:
  static StatRegistry &instance();

  /// Turns counter and timer recording on or off. Counters keep their
  /// values across a disable; reset() zeroes them.
  void setEnabled(bool On) {
    detail::StatsEnabledFlag.store(On, std::memory_order_relaxed);
  }
  bool enabled() const { return statsEnabled(); }

  /// Called by the Statistic constructor; not for general use.
  void registerStat(Statistic *S);

  /// All counters, sorted by (group, name). Each value is one relaxed
  /// read; the set of registered counters is stable after static init.
  std::vector<StatSnapshot> snapshot() const;

  /// Zeroes every registered counter (tests and repeated bench runs).
  void reset();

  /// "group.name = value  (description)" lines, zero-valued counters
  /// included, sorted.
  std::string toText() const;

  /// {"group.name": value, ...} — one flat JSON object.
  std::string toJson() const;

private:
  StatRegistry() = default;
  mutable std::mutex M;
  std::vector<Statistic *> Stats;
};

} // namespace defacto

/// Declares-and-defines one registered Statistic. Use at namespace scope
/// in a .cpp file.
#define DEFACTO_STATISTIC(Var, Group, Name, Desc)                            \
  static ::defacto::Statistic Var(Group, Name, Desc)

#endif // DEFACTO_SUPPORT_STATS_H
