//===- Error.h - Recoverable Status and Expected<T> ------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable error channel for everything downstream of the front
/// end. The library is built without exceptions; phases that can fail on
/// hostile input or a flaky backend (interpretation, transformation,
/// estimation, exploration) return Status or Expected<T> instead of
/// aborting. ErrorHandling.h remains reserved for true internal invariant
/// violations; user-visible failure must flow through these types.
///
/// Modeled on LLVM's Error/Expected, simplified: a Status carries an
/// ErrorCode plus a human-readable message, and an Expected<T> is either
/// a value or a non-ok Status. Statuses are cheap to copy and need not be
/// "checked" before destruction.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_ERROR_H
#define DEFACTO_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace defacto {

/// Machine-readable classification of a recoverable failure.
enum class ErrorCode {
  Ok = 0,
  /// Input outside the supported domain (bad kernel text, a non-candidate
  /// unroll vector, an API precondition the caller can check).
  InvalidInput,
  /// A simulated memory access fell outside its array.
  OutOfBounds,
  /// The interpreter exceeded its statement budget.
  StepLimitExceeded,
  /// A phase produced or received IR that fails verification.
  MalformedIR,
  /// The synthesis estimator (or an injected fault) failed.
  EstimationFailed,
  /// A wall-clock deadline expired.
  DeadlineExceeded,
  /// An evaluation budget ran dry.
  BudgetExhausted,
  /// A cooperative cancellation request (the hang watchdog) interrupted
  /// the work before it finished.
  Cancelled,
  /// A backend circuit breaker is open: the call failed fast without
  /// reaching the backend at all.
  BackendUnavailable,
  /// A should-not-happen condition reported instead of aborting.
  Internal,
};

/// Stable lower-case identifier for \p Code ("out_of_bounds", ...), for
/// machine-readable logs.
const char *errorCodeName(ErrorCode Code);

/// Inverse of errorCodeName, for machine-readable logs read back in (the
/// evaluation journal). Unknown names map to ErrorCode::Internal so a
/// record written by a newer build still loads.
ErrorCode errorCodeFromName(const std::string &Name);

/// Success, or an ErrorCode plus message. Default-constructed Status is
/// success.
class Status {
public:
  Status() = default;

  static Status ok() { return Status(); }

  static Status error(ErrorCode Code, std::string Message) {
    assert(Code != ErrorCode::Ok && "error status needs a non-ok code");
    Status S;
    S.Code = Code;
    S.Message = std::move(Message);
    return S;
  }

  bool isOk() const { return Code == ErrorCode::Ok; }
  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Renders as "code_name: message" ("ok" for success).
  std::string toString() const;

  bool operator==(const Status &O) const {
    return Code == O.Code && Message == O.Message;
  }
  bool operator!=(const Status &O) const { return !(*this == O); }

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
};

/// A value of type T or a non-ok Status. Accessors assert on misuse:
/// callers must test before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}

  Expected(Status Err) : Storage(std::in_place_index<1>, std::move(Err)) {
    assert(!std::get<1>(Storage).isOk() &&
           "Expected constructed from a success Status");
  }

  bool hasValue() const { return Storage.index() == 0; }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue() && "dereferencing an errored Expected");
    return std::get<0>(Storage);
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing an errored Expected");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  T &value() { return **this; }
  const T &value() const { return **this; }

  /// Moves the value out (for move-only payloads such as Kernel).
  T takeValue() {
    assert(hasValue() && "taking the value of an errored Expected");
    return std::move(std::get<0>(Storage));
  }

  /// The error; Status::ok() when a value is present, so it can be
  /// propagated unconditionally.
  Status status() const {
    return hasValue() ? Status::ok() : std::get<1>(Storage);
  }

  /// Value equality: both hold equal values or equal statuses.
  friend bool operator==(const Expected &A, const Expected &B) {
    if (A.hasValue() != B.hasValue())
      return false;
    if (A.hasValue())
      return *A == *B;
    return A.status() == B.status();
  }
  friend bool operator!=(const Expected &A, const Expected &B) {
    return !(A == B);
  }

private:
  std::variant<T, Status> Storage;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_ERROR_H
