//===- ErrorHandling.h - Fatal error and unreachable support ---*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting used for programmatic errors. The library is built
/// without exceptions; invariant violations abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_ERRORHANDLING_H
#define DEFACTO_SUPPORT_ERRORHANDLING_H

namespace defacto {

/// Prints \p Reason to stderr and aborts. Used for unrecoverable internal
/// errors; user-input errors go through the Diagnostics machinery instead.
[[noreturn]] void reportFatalError(const char *Reason);

/// Marks a point in code that must never be reached if program invariants
/// hold. Prints the message, file, and line, then aborts.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace defacto

/// Marks unreachable control flow; always aborts with location information.
#define defacto_unreachable(msg)                                               \
  ::defacto::unreachableInternal(msg, __FILE__, __LINE__)

#endif // DEFACTO_SUPPORT_ERRORHANDLING_H
