//===- CommandLine.h - Shared driver flag parsing --------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One flag parser for every driver binary (examples/, bench/), replacing
/// the per-binary argv loops that grew in lockstep. ArgList consumes
/// recognized flags and keeps the rest, so a driver can layer its own
/// flags over the shared observability set:
///
///   cl::ArgList Args(Argc, Argv);
///   cl::ObservabilityConfig Obs = cl::consumeObservabilityFlags(Args);
///   bool Csv = Args.consumeFlag("--csv");
///   std::string Strategy = Args.consumeValue("--strategy")
///                              .value_or("guided");
///   if (!Args.empty()) { /* print usage; Args.rest() names the extras */ }
///   ...
///   cl::finishObservability(Obs);
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_COMMANDLINE_H
#define DEFACTO_SUPPORT_COMMANDLINE_H

#include <optional>
#include <string>
#include <vector>

namespace defacto {
namespace cl {

/// A consumable view of argv (argv[0] is skipped). Consume methods remove
/// the matched arguments; rest() is what no parser claimed.
class ArgList {
public:
  ArgList(int Argc, char **Argv);

  /// Consumes a boolean flag ("--stats"). True when present.
  bool consumeFlag(const std::string &Name);

  /// Consumes a valued flag, accepting both "--name=value" and
  /// "--name value". std::nullopt when absent.
  std::optional<std::string> consumeValue(const std::string &Name);

  /// consumeValue parsed as a non-negative integer; std::nullopt when the
  /// flag is absent or its value does not parse.
  std::optional<unsigned> consumeUnsigned(const std::string &Name);

  /// consumeValue split on commas, empty pieces dropped. Empty when the
  /// flag is absent.
  std::vector<std::string> consumeList(const std::string &Name);

  /// Arguments no consume call claimed, in their original order.
  const std::vector<std::string> &rest() const { return Args; }
  bool empty() const { return Args.empty(); }

  /// Rewrites (\p Argc, \p Argv) to hold only the unconsumed arguments —
  /// for callers that hand argv on to another parser. \p Argv must be the
  /// array this ArgList was built from (the kept pointers are reused).
  void compactInto(int &Argc, char **Argv) const;

private:
  std::vector<std::string> Args;
  std::vector<char *> Raw; // original pointers, parallel to Args
};

/// The observability flag set every driver shares:
///   --trace-out=PATH   write a Chrome trace_event file (chrome://tracing
///                      / Perfetto) of the run's decision/phase events
///   --stats            print the counter registry and phase timings at
///                      exit
///   --stats-out=PATH   write counters + timers + histograms as one JSON
///                      document at exit (machine-readable --stats)
struct ObservabilityConfig {
  std::string TraceOutPath; // empty: tracing stays off
  bool Stats = false;
  std::string StatsOutPath; // empty: no stats file

  bool any() const {
    return Stats || !TraceOutPath.empty() || !StatsOutPath.empty();
  }
};

/// Consumes --trace-out=/--stats/--stats-out from \p Args and enables the
/// global TraceRecorder / StatRegistry accordingly.
ObservabilityConfig consumeObservabilityFlags(ArgList &Args);

/// Finishes an observed run: writes the Chrome trace when a path was
/// given, prints counters plus phase timings when --stats was, and writes
/// the stats JSON file when --stats-out was. Returns false when any
/// output file could not be written.
bool finishObservability(const ObservabilityConfig &Config);

/// Writes {"counters": ..., "timers": ..., "histograms": ...} — the
/// StatRegistry, TimerGroup, and HistogramRegistry JSON exports — to
/// \p Path (write-then-rename), validating the document with
/// Support/Json first. Returns false on validation or I/O failure.
bool writeStatsFile(const std::string &Path);

} // namespace cl
} // namespace defacto

#endif // DEFACTO_SUPPORT_COMMANDLINE_H
