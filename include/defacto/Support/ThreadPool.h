//===- ThreadPool.h - Fixed-size worker pool -------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the exploration engine. Tasks are queued
/// FIFO and handed to the first free worker; submit() returns a future
/// the caller can block on, so the explorer's speculative frontier
/// evaluation can overlap estimation of many candidate designs while the
/// guided walk consumes results in its own deterministic order.
///
/// The pool is deliberately small and boring: one shared queue, a
/// condition variable, and clean shutdown (the destructor drains the
/// queue and joins every worker). Waiting on a future inside a worker is
/// safe only when the awaited task is already running on another worker
/// or queued ahead; the exploration engine never queues dependent tasks.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_THREADPOOL_H
#define DEFACTO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace defacto {

/// Fixed worker count, FIFO task queue, future-based results.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Runs every queued task, then joins all workers.
  ~ThreadPool();

  unsigned size() const { return Workers.size(); }

  /// Enqueues \p Task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> Task);

  /// Enqueues a value-returning task.
  template <typename Fn> auto async(Fn F) -> std::future<decltype(F())> {
    using R = decltype(F());
    auto P = std::make_shared<std::promise<R>>();
    std::future<R> Fut = P->get_future();
    submit([P, F = std::move(F)]() mutable {
      if constexpr (std::is_void_v<R>) {
        F();
        P->set_value();
      } else {
        P->set_value(F());
      }
    });
    return Fut;
  }

  /// Blocks until the queue is empty and every worker is idle.
  void wait();

  /// Tasks executed since construction.
  uint64_t tasksRun() const;

  /// Tasks queued or currently executing — the live backlog a metrics
  /// gauge watches. Point-in-time under the pool lock.
  uint64_t queueDepth() const;

private:
  void workerLoop();

  mutable std::mutex M;
  std::condition_variable WorkReady;
  std::condition_variable AllIdle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  unsigned Active = 0;
  uint64_t Executed = 0;
  bool Stopping = false;
};

} // namespace defacto

#endif // DEFACTO_SUPPORT_THREADPOOL_H
