//===- Arena.h - Bump-pointer arena for IR nodes ---------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer allocation arena for short-lived IR clones. The
/// evaluation hot path clones one kernel per candidate design, runs the
/// transform pipeline and estimator over it, and throws the whole tree
/// away; with the arena that lifetime is one pointer bump per node and a
/// single reset per candidate instead of a heap round-trip per node.
///
/// Integration is via the thread-local active arena: `IRArenaScope`
/// installs an arena for the current thread, and `Expr`/`Stmt` class
/// `operator new` routes node allocations into it while the scope is
/// open (everything else — declarations, strings, vectors — stays on the
/// heap). `operator delete` consults the thread's *registered* arenas so
/// destruction of arena-backed nodes is a no-op; the memory is reclaimed
/// wholesale by `IRArena::reset()`.
///
/// Passing nullptr to `IRArenaScope` suspends arena allocation, which is
/// how long-lived kernels (e.g. memoized transform stages shared across
/// threads) are built on the heap from inside an arena-backed region.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_ARENA_H
#define DEFACTO_SUPPORT_ARENA_H

#include <cstddef>
#include <memory>
#include <vector>

namespace defacto {

/// A growable bump-pointer arena. Blocks are retained across reset() so a
/// steady-state evaluation loop stops growing after the largest candidate
/// has been seen once. Not thread-safe; intended use is one arena per
/// worker thread.
class IRArena {
public:
  IRArena();
  ~IRArena();

  IRArena(const IRArena &) = delete;
  IRArena &operator=(const IRArena &) = delete;

  /// Returns Size bytes aligned for any IR node type. Never returns
  /// nullptr (allocation failure throws std::bad_alloc).
  void *allocate(std::size_t Size);

  /// Rewinds the arena to empty, keeping every block for reuse. All
  /// memory previously returned by allocate() is invalidated.
  void reset();

  /// True when P points into one of this arena's blocks.
  bool owns(const void *P) const;

  /// Bytes handed out since the last reset().
  std::size_t bytesAllocated() const { return LiveBytes; }

  /// Number of blocks currently held (allocated capacity, kept across
  /// resets).
  std::size_t numBlocks() const { return Blocks.size(); }

private:
  struct Block {
    std::unique_ptr<char[]> Memory;
    std::size_t Size = 0;
  };

  /// Starts (or advances to) a block with at least Size free bytes.
  void *allocateSlow(std::size_t Size);

  std::vector<Block> Blocks;
  std::size_t CurBlock = 0;  ///< Index of the block being bumped.
  std::size_t CurOffset = 0; ///< Bump offset within Blocks[CurBlock].
  std::size_t LiveBytes = 0;
};

/// RAII installer for the calling thread's active arena. While an
/// IRArenaScope holds a non-null arena, Expr/Stmt node allocations on
/// this thread come from that arena; a nullptr scope suspends arena
/// allocation (nested inside an active scope, this is how heap-lifetime
/// IR is built from arena-backed code). Scopes nest and restore the
/// previous arena on destruction.
///
/// A non-null arena is additionally *registered* for the thread for the
/// remainder of the thread's lifetime, so node deletion can recognize
/// arena memory and skip the heap free even after the scope closes.
class IRArenaScope {
public:
  explicit IRArenaScope(IRArena *Arena);
  ~IRArenaScope();

  IRArenaScope(const IRArenaScope &) = delete;
  IRArenaScope &operator=(const IRArenaScope &) = delete;

private:
  IRArena *Previous;
};

/// The arena IR node allocations on this thread currently target, or
/// nullptr when nodes go to the heap.
IRArena *activeIRArena();

namespace detail {

/// Allocation hook for Expr/Stmt operator new: active arena if one is
/// installed, global heap otherwise.
void *irNodeAllocate(std::size_t Size);

/// Deallocation hook for Expr/Stmt operator delete: a no-op for memory
/// owned by any arena registered on this thread, a heap free otherwise.
void irNodeDeallocate(void *P) noexcept;

} // namespace detail

} // namespace defacto

#endif // DEFACTO_SUPPORT_ARENA_H
