//===- Casting.h - LLVM-style isa/cast/dyn_cast templates ------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal kind-based RTTI, in the style of llvm/Support/Casting.h. A class
/// opts in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SUPPORT_CASTING_H
#define DEFACTO_SUPPORT_CASTING_H

#include <cassert>

namespace defacto {

/// Returns true if \p Val is an instance of To. \pre Val != nullptr.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace defacto

#endif // DEFACTO_SUPPORT_CASTING_H
