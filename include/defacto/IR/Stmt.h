//===- Stmt.h - Statement tree nodes ---------------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes: assignments (scalar or array destination), counted
/// `for` loops with constant bounds, `if`, and the register-rotation
/// pseudo-op produced by scalar replacement (Figure 1(c) of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_STMT_H
#define DEFACTO_IR_STMT_H

#include "defacto/IR/Expr.h"

#include <memory>
#include <vector>

namespace defacto {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Base of the statement hierarchy.
class Stmt {
public:
  enum class Kind { Assign, For, If, Rotate };

  virtual ~Stmt();

  Kind kind() const { return TheKind; }

  /// Deep copy; declaration pointers are shared (see Expr::clone).
  StmtPtr clone() const;

  /// Arena-aware node storage, mirroring Expr (see Support/Arena.h).
  void *operator new(std::size_t Size);
  void operator delete(void *P) noexcept;
  void operator delete(void *P, std::size_t) noexcept;

protected:
  explicit Stmt(Kind K) : TheKind(K) {}

private:
  const Kind TheKind;
};

/// Deep-copies a statement list.
StmtList cloneStmtList(const StmtList &Stmts);

/// An assignment. The destination must be a ScalarRefExpr or an
/// ArrayAccessExpr; this is enforced by the verifier.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Dest, ExprPtr Value)
      : Stmt(Kind::Assign), Dest(std::move(Dest)), Value(std::move(Value)) {}

  const Expr *dest() const { return Dest.get(); }
  Expr *dest() { return Dest.get(); }
  const Expr *value() const { return Value.get(); }
  Expr *value() { return Value.get(); }
  void setDest(ExprPtr E) { Dest = std::move(E); }
  void setValue(ExprPtr E) { Value = std::move(E); }
  /// Mutable owning slots, for rewriting traversals.
  ExprPtr &destRef() { return Dest; }
  ExprPtr &valueRef() { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprPtr Dest, Value;
};

/// A counted loop `for (i = Lower; i < Upper; i += Step)`. The index
/// variable is identified by a kernel-unique loop id; affine expressions
/// refer to it by that id.
class ForStmt : public Stmt {
public:
  ForStmt(int LoopId, std::string IndexName, int64_t Lower, int64_t Upper,
          int64_t Step)
      : Stmt(Kind::For), LoopId(LoopId), IndexName(std::move(IndexName)),
        Lower(Lower), Upper(Upper), Step(Step) {}

  int loopId() const { return LoopId; }
  /// Reassigns the loop id; used when cloned code (e.g. a peeled
  /// iteration) must not share ids with the original loops.
  void setLoopId(int Id) { LoopId = Id; }
  const std::string &indexName() const { return IndexName; }
  void setIndexName(std::string N) { IndexName = std::move(N); }

  int64_t lower() const { return Lower; }
  int64_t upper() const { return Upper; }
  int64_t step() const { return Step; }
  void setBounds(int64_t L, int64_t U, int64_t S) {
    Lower = L;
    Upper = U;
    Step = S;
  }

  /// Number of iterations executed (0 if the range is empty).
  int64_t tripCount() const;

  StmtList &body() { return Body; }
  const StmtList &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  int LoopId;
  std::string IndexName;
  int64_t Lower, Upper, Step;
  StmtList Body;
};

/// A two-armed conditional.
class IfStmt : public Stmt {
public:
  explicit IfStmt(ExprPtr Cond) : Stmt(Kind::If), Cond(std::move(Cond)) {}

  const Expr *cond() const { return Cond.get(); }
  Expr *cond() { return Cond.get(); }
  void setCond(ExprPtr E) { Cond = std::move(E); }
  /// Mutable owning slot, for rewriting traversals.
  ExprPtr &condRef() { return Cond; }

  StmtList &thenBody() { return Then; }
  const StmtList &thenBody() const { return Then; }
  StmtList &elseBody() { return Else; }
  const StmtList &elseBody() const { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtList Then, Else;
};

/// Rotates a register chain left by one position:
///   (r0, r1, ..., rN-1) <- (r1, ..., rN-1, r0).
/// Produced by scalar replacement when reuse is carried by an outer loop;
/// hardware implements it as a parallel register shift in a single cycle.
class RotateStmt : public Stmt {
public:
  explicit RotateStmt(std::vector<const ScalarDecl *> Chain)
      : Stmt(Kind::Rotate), Chain(std::move(Chain)) {}

  const std::vector<const ScalarDecl *> &chain() const { return Chain; }
  std::vector<const ScalarDecl *> &chain() { return Chain; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Rotate; }

private:
  std::vector<const ScalarDecl *> Chain;
};

} // namespace defacto

#endif // DEFACTO_IR_STMT_H
