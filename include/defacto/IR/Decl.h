//===- Decl.h - Array and scalar variable declarations ---------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations for the two kinds of variables the input domain allows:
/// multi-dimensional arrays with constant dimensions (resident in external
/// memory) and scalars (mapped to on-chip registers). Data-layout results
/// (virtual/physical memory bank assignment) are recorded on ArrayDecl.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_DECL_H
#define DEFACTO_IR_DECL_H

#include "defacto/IR/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace defacto {

/// A multi-dimensional array variable with constant dimensions. Arrays live
/// in the FPGA board's external memories; which memory is decided by the
/// data layout pass and recorded here.
class ArrayDecl {
public:
  ArrayDecl(std::string Name, ScalarType ElemTy, std::vector<int64_t> Dims)
      : Name(std::move(Name)), ElemTy(ElemTy), Dims(std::move(Dims)) {
    assert(!this->Dims.empty() && "array needs at least one dimension");
  }

  const std::string &name() const { return Name; }
  ScalarType elementType() const { return ElemTy; }
  unsigned numDims() const { return Dims.size(); }
  int64_t dim(unsigned I) const {
    assert(I < Dims.size() && "dimension index out of range");
    return Dims[I];
  }
  const std::vector<int64_t> &dims() const { return Dims; }

  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }

  /// Virtual memory id assigned by array renaming, or -1 before layout.
  int virtualMemId() const { return VirtualMemId; }
  void setVirtualMemId(int Id) { VirtualMemId = Id; }

  /// Physical memory id assigned by memory mapping, or -1 before layout.
  int physicalMemId() const { return PhysicalMemId; }
  void setPhysicalMemId(int Id) { PhysicalMemId = Id; }

  /// For arrays produced by array renaming: the original array and the
  /// bank stride, so the simulator can map renamed elements back onto the
  /// original data (element k of this array is element k*BankStride +
  /// BankOffset of the origin, in the distributed dimension).
  const ArrayDecl *renamedFrom() const { return RenamedFrom; }
  int64_t bankOffset() const { return BankOffset; }
  int64_t bankStride() const { return BankStride; }
  /// Which dimension of the origin array was distributed across banks.
  unsigned bankDim() const { return BankDim; }
  void setRenaming(const ArrayDecl *Origin, unsigned Dim, int64_t Offset,
                   int64_t Stride) {
    RenamedFrom = Origin;
    BankDim = Dim;
    BankOffset = Offset;
    BankStride = Stride;
  }

private:
  std::string Name;
  ScalarType ElemTy;
  std::vector<int64_t> Dims;
  int VirtualMemId = -1;
  int PhysicalMemId = -1;
  const ArrayDecl *RenamedFrom = nullptr;
  unsigned BankDim = 0;
  int64_t BankOffset = 0;
  int64_t BankStride = 1;
};

/// A scalar variable. Scalars introduced by scalar replacement are marked
/// as compiler temporaries (they become on-chip registers and never touch
/// external memory).
class ScalarDecl {
public:
  ScalarDecl(std::string Name, ScalarType Ty, bool IsCompilerTemp = false)
      : Name(std::move(Name)), Ty(Ty), CompilerTemp(IsCompilerTemp) {}

  const std::string &name() const { return Name; }
  ScalarType type() const { return Ty; }

  /// True for register temporaries created by scalar replacement or
  /// other transformations (as opposed to source-level scalars).
  bool isCompilerTemp() const { return CompilerTemp; }

private:
  std::string Name;
  ScalarType Ty;
  bool CompilerTemp;
};

} // namespace defacto

#endif // DEFACTO_IR_DECL_H
