//===- IRVerifier.h - Structural invariant checking ------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural invariants every pass must preserve: unique loop
/// ids, positive steps and nonempty ranges, affine subscripts referencing
/// only enclosing loops, declaration pointers owned by the kernel, lvalue
/// assignment destinations, and subscript counts matching array ranks.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_IRVERIFIER_H
#define DEFACTO_IR_IRVERIFIER_H

#include "defacto/IR/Kernel.h"

#include <string>
#include <vector>

namespace defacto {

/// Verifies \p K; returns a list of human-readable violations (empty when
/// the kernel is well formed).
std::vector<std::string> verifyKernel(const Kernel &K);

/// Convenience wrapper: true when verifyKernel reports nothing.
bool isKernelValid(const Kernel &K);

} // namespace defacto

#endif // DEFACTO_IR_IRVERIFIER_H
