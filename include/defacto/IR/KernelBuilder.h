//===- KernelBuilder.h - Fluent programmatic kernel construction *- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for constructing kernels programmatically — the
/// alternative to the C front end for tools that generate loop nests
/// (code generators, benchmark synthesizers, the test fuzzer). The
/// builder tracks the open loop stack, checks the same structural rules
/// the parser enforces (affine subscripts arrive as AffineExpr by
/// construction; ranks are asserted), and finishes with a verified
/// Kernel.
///
/// \code
///   KernelBuilder B("fir");
///   auto S = B.array("S", ScalarType::Int32, {96});
///   auto C = B.array("C", ScalarType::Int32, {32});
///   auto D = B.array("D", ScalarType::Int32, {64});
///   auto J = B.beginLoop("j", 0, 64);
///   auto I = B.beginLoop("i", 0, 32);
///   B.assign(B.access(D, {B.idx(J)}),
///            B.add(B.access(D, {B.idx(J)}),
///                  B.mul(B.access(S, {B.idx(I).add(B.idx(J))}),
///                        B.access(C, {B.idx(I)}))));
///   B.endLoop();
///   B.endLoop();
///   Kernel K = *std::move(B).finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_KERNELBUILDER_H
#define DEFACTO_IR_KERNELBUILDER_H

#include "defacto/IR/Kernel.h"

#include <string>
#include <vector>

namespace defacto {

/// Fluent kernel construction. All pointers returned by the builder are
/// owned by the kernel under construction.
class KernelBuilder {
public:
  /// Handle to an open loop; convertible to an affine index expression.
  struct LoopHandle {
    int LoopId = -1;
  };

  explicit KernelBuilder(std::string Name) : K(std::move(Name)) {}

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  ArrayDecl *array(const std::string &Name, ScalarType ElemTy,
                   std::vector<int64_t> Dims) {
    return K.makeArray(Name, ElemTy, std::move(Dims));
  }

  ScalarDecl *scalar(const std::string &Name, ScalarType Ty) {
    return K.makeScalar(Name, Ty);
  }

  //===------------------------------------------------------------------===//
  // Structure
  //===------------------------------------------------------------------===//

  /// Opens `for (name = Lower; name < Upper; name += Step)`.
  LoopHandle beginLoop(const std::string &IndexName, int64_t Lower,
                       int64_t Upper, int64_t Step = 1);

  /// Closes the innermost open loop.
  void endLoop();

  /// Opens `if (Cond != 0)`; statements go to the then-branch.
  void beginIf(ExprPtr Cond);
  /// Switches the open if to its else-branch.
  void beginElse();
  /// Closes the innermost open if.
  void endIf();

  /// Appends an assignment. \p Dest must be a scalar or array access.
  void assign(ExprPtr Dest, ExprPtr Value);

  /// Appends a register-rotation statement.
  void rotate(std::vector<const ScalarDecl *> Chain);

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// The affine index of an open (or previously opened) loop.
  AffineExpr idx(LoopHandle Loop) const {
    return AffineExpr::term(Loop.LoopId, 1);
  }

  ExprPtr lit(int64_t Value) const {
    return std::make_unique<IntLitExpr>(Value);
  }
  ExprPtr read(const ScalarDecl *S) const {
    return std::make_unique<ScalarRefExpr>(S);
  }
  /// The loop index as a general expression (for guards like j == 0).
  ExprPtr indexExpr(LoopHandle Loop) const {
    return std::make_unique<LoopIndexExpr>(Loop.LoopId);
  }
  ExprPtr access(const ArrayDecl *A, std::vector<AffineExpr> Subs) const;

  ExprPtr add(ExprPtr L, ExprPtr R) const {
    return binary(BinaryOp::Add, std::move(L), std::move(R));
  }
  ExprPtr sub(ExprPtr L, ExprPtr R) const {
    return binary(BinaryOp::Sub, std::move(L), std::move(R));
  }
  ExprPtr mul(ExprPtr L, ExprPtr R) const {
    return binary(BinaryOp::Mul, std::move(L), std::move(R));
  }
  ExprPtr binary(BinaryOp Op, ExprPtr L, ExprPtr R) const {
    return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
  }
  ExprPtr unary(UnaryOp Op, ExprPtr E) const {
    return std::make_unique<UnaryExpr>(Op, std::move(E));
  }
  ExprPtr select(ExprPtr Cond, ExprPtr TrueV, ExprPtr FalseV) const {
    return std::make_unique<SelectExpr>(std::move(Cond), std::move(TrueV),
                                        std::move(FalseV));
  }

  //===------------------------------------------------------------------===//
  // Completion
  //===------------------------------------------------------------------===//

  /// Finishes construction. Fails with ErrorCode::MalformedIR when loops
  /// or ifs remain open or the kernel fails verification; the error
  /// message lists the verifier's findings.
  Expected<Kernel> finish() &&;

private:
  StmtList &currentBody();

  Kernel K;
  struct Frame {
    Stmt *Owner = nullptr; // ForStmt or IfStmt
    bool InElse = false;
  };
  std::vector<Frame> Stack;
};

} // namespace defacto

#endif // DEFACTO_IR_KERNELBUILDER_H
