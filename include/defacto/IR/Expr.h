//===- Expr.h - Expression tree nodes --------------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes for loop-nest bodies: integer literals, scalar
/// references, affine array accesses, unary and binary operators, and a
/// select (ternary) node used for conditional values such as SOBEL's
/// clamping. Nodes use kind-based RTTI (Casting.h) and own their children.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_EXPR_H
#define DEFACTO_IR_EXPR_H

#include "defacto/IR/AffineExpr.h"
#include "defacto/IR/Decl.h"
#include "defacto/Support/Casting.h"

#include <memory>
#include <vector>

namespace defacto {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base of the expression hierarchy.
class Expr {
public:
  enum class Kind {
    IntLit,
    LoopIndex,
    ScalarRef,
    ArrayAccess,
    Unary,
    Binary,
    Select,
  };

  virtual ~Expr();

  Kind kind() const { return TheKind; }

  /// Deep copy. Decl pointers are shared (declarations are owned by the
  /// Kernel); use Kernel::clone for a whole-program copy that remaps them.
  ExprPtr clone() const;

  /// Node storage comes from the calling thread's active IRArena when one
  /// is installed (see Support/Arena.h); deletion of arena-backed nodes is
  /// a no-op, reclaimed wholesale by IRArena::reset().
  void *operator new(std::size_t Size);
  void operator delete(void *P) noexcept;
  void operator delete(void *P, std::size_t) noexcept;

protected:
  explicit Expr(Kind K) : TheKind(K) {}

private:
  const Kind TheKind;
};

/// A signed integer literal.
class IntLitExpr : public Expr {
public:
  explicit IntLitExpr(int64_t Value) : Expr(Kind::IntLit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A use of a loop index variable in a general (non-subscript) expression,
/// e.g. the `j == 0` guard of a conditional register load. Inside array
/// subscripts loop indices appear as AffineExpr terms instead.
class LoopIndexExpr : public Expr {
public:
  explicit LoopIndexExpr(int LoopId) : Expr(Kind::LoopIndex), LoopId(LoopId) {}

  int loopId() const { return LoopId; }

  static bool classof(const Expr *E) { return E->kind() == Kind::LoopIndex; }

private:
  int LoopId;
};

/// A read of a scalar variable.
class ScalarRefExpr : public Expr {
public:
  explicit ScalarRefExpr(const ScalarDecl *Decl)
      : Expr(Kind::ScalarRef), Decl(Decl) {}

  const ScalarDecl *decl() const { return Decl; }
  void setDecl(const ScalarDecl *D) { Decl = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ScalarRef; }

private:
  const ScalarDecl *Decl;
};

/// An affine access to an array: A[f1(i..)][f2(i..)]... with one affine
/// subscript per dimension.
class ArrayAccessExpr : public Expr {
public:
  ArrayAccessExpr(const ArrayDecl *Array, std::vector<AffineExpr> Subscripts)
      : Expr(Kind::ArrayAccess), Array(Array),
        Subscripts(std::move(Subscripts)) {}

  const ArrayDecl *array() const { return Array; }
  void setArray(const ArrayDecl *A) { Array = A; }

  unsigned numSubscripts() const { return Subscripts.size(); }
  const AffineExpr &subscript(unsigned I) const { return Subscripts[I]; }
  const std::vector<AffineExpr> &subscripts() const { return Subscripts; }
  void setSubscript(unsigned I, AffineExpr E) {
    Subscripts[I] = std::move(E);
  }
  void setSubscripts(std::vector<AffineExpr> S) {
    Subscripts = std::move(S);
  }

  /// Physical memory port under a steady-state (iteration-rotating)
  /// cyclic layout, assigned by the data layout pass when array renaming
  /// is not applicable; -1 when the access uses its array's memory id.
  /// Purely a scheduling annotation: functional semantics are unchanged.
  int steadyStatePort() const { return SteadyPort; }
  void setSteadyStatePort(int Port) { SteadyPort = Port; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::ArrayAccess;
  }

private:
  const ArrayDecl *Array;
  std::vector<AffineExpr> Subscripts;
  int SteadyPort = -1;
};

/// Unary operator codes.
enum class UnaryOp { Neg, Abs, Not };

/// Application of a unary operator.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand)
      : Expr(Kind::Unary), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  const Expr *operand() const { return Operand.get(); }
  Expr *operand() { return Operand.get(); }
  ExprPtr takeOperand() { return std::move(Operand); }
  void setOperand(ExprPtr E) { Operand = std::move(E); }
  /// Mutable owning slot, for rewriting traversals.
  ExprPtr &operandRef() { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// Binary operator codes. Comparisons produce 0/1.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Min,
  Max,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
};

/// True for the six comparison opcodes.
bool isComparisonOp(BinaryOp Op);

/// C spelling of \p Op ("+", "=="...; Min/Max render as "min"/"max").
const char *binaryOpSpelling(BinaryOp Op);

/// Application of a binary operator.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Binary), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return Lhs.get(); }
  Expr *lhs() { return Lhs.get(); }
  const Expr *rhs() const { return Rhs.get(); }
  Expr *rhs() { return Rhs.get(); }
  void setLhs(ExprPtr E) { Lhs = std::move(E); }
  void setRhs(ExprPtr E) { Rhs = std::move(E); }
  /// Mutable owning slots, for rewriting traversals.
  ExprPtr &lhsRef() { return Lhs; }
  ExprPtr &rhsRef() { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr Lhs, Rhs;
};

/// Conditional value: Cond != 0 ? TrueValue : FalseValue. Behavioral
/// synthesis maps this to a multiplexer.
class SelectExpr : public Expr {
public:
  SelectExpr(ExprPtr Cond, ExprPtr TrueValue, ExprPtr FalseValue)
      : Expr(Kind::Select), Cond(std::move(Cond)),
        TrueValue(std::move(TrueValue)), FalseValue(std::move(FalseValue)) {}

  const Expr *cond() const { return Cond.get(); }
  Expr *cond() { return Cond.get(); }
  const Expr *trueValue() const { return TrueValue.get(); }
  Expr *trueValue() { return TrueValue.get(); }
  const Expr *falseValue() const { return FalseValue.get(); }
  Expr *falseValue() { return FalseValue.get(); }
  /// Mutable owning slots, for rewriting traversals.
  ExprPtr &condRef() { return Cond; }
  ExprPtr &trueValueRef() { return TrueValue; }
  ExprPtr &falseValueRef() { return FalseValue; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Select; }

private:
  ExprPtr Cond, TrueValue, FalseValue;
};

} // namespace defacto

#endif // DEFACTO_IR_EXPR_H
