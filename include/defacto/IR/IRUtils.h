//===- IRUtils.h - Walkers and rewrite helpers -----------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traversal and rewriting utilities shared by analyses and
/// transformations: expression/statement walkers, array-access collection
/// with read/write classification, loop discovery, and loop-index
/// substitution inside subtrees.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_IRUTILS_H
#define DEFACTO_IR_IRUTILS_H

#include "defacto/IR/Kernel.h"

#include <functional>
#include <optional>

namespace defacto {

/// Visits \p E and all transitive sub-expressions, pre-order.
void walkExpr(Expr *E, const std::function<void(Expr *)> &Fn);
void walkExpr(const Expr *E, const std::function<void(const Expr *)> &Fn);

/// Visits every statement in \p Stmts and nested bodies, pre-order.
void walkStmts(StmtList &Stmts, const std::function<void(Stmt *)> &Fn);
void walkStmts(const StmtList &Stmts,
               const std::function<void(const Stmt *)> &Fn);

/// Visits every expression appearing in \p Stmts (assignment destinations
/// and values, loop-free: For bodies are descended into).
void walkExprsInStmts(StmtList &Stmts,
                      const std::function<void(Expr *)> &Fn);

/// One array access together with its access direction.
struct AccessInfo {
  ArrayAccessExpr *Access = nullptr;
  bool IsWrite = false;
};

/// Collects every array access in \p Stmts in deterministic program order.
/// Assignment destinations are classified as writes; everything else reads.
std::vector<AccessInfo> collectArrayAccesses(StmtList &Stmts);
std::vector<AccessInfo> collectArrayAccesses(Kernel &K);

/// Collects the loops of a perfect nest rooted at \p Root: follows bodies
/// while they consist of a single ForStmt. Always returns at least {Root}.
std::vector<ForStmt *> perfectNest(ForStmt *Root);

/// Collects all ForStmts in \p Stmts (pre-order, includes nested loops).
std::vector<ForStmt *> collectLoops(StmtList &Stmts);
std::vector<const ForStmt *> collectLoops(const StmtList &Stmts);

/// Post-order rewriting traversal over an owning expression slot. \p Fn may
/// replace the node by assigning a new expression into the slot; children
/// are visited before their parent, and a replacement node's subtree is not
/// re-visited.
void rewriteExpr(ExprPtr &Slot, const std::function<void(ExprPtr &)> &Fn);

/// Applies rewriteExpr to every owning expression slot under \p Stmts
/// (assignment destinations and values, if conditions), descending into
/// loop and if bodies.
void rewriteExprsInStmts(StmtList &Stmts,
                         const std::function<void(ExprPtr &)> &Fn);

/// Materializes an affine expression as an expression tree over
/// LoopIndexExpr, IntLitExpr, Mul and Add nodes.
ExprPtr affineToExpr(const AffineExpr &E);

/// Substitutes loop \p LoopId with \p Replacement inside every affine
/// subscript, and rewrites LoopIndexExpr uses into the materialized
/// replacement tree.
void substituteLoopInStmts(StmtList &Stmts, int LoopId,
                           const AffineExpr &Replacement);
void substituteLoopInExpr(ExprPtr &Slot, int LoopId,
                          const AffineExpr &Replacement);

/// True if any affine subscript under \p Stmts references \p LoopId.
bool stmtsUseLoop(const StmtList &Stmts, int LoopId);

/// Structural equality of expressions (same shape, same decls, same
/// subscripts and literals).
bool exprEquals(const Expr *A, const Expr *B);

/// Folds an expression tree built from IntLit, LoopIndex, Add, Sub, Mul
/// (with one constant side) and Neg into an affine function of loop
/// indices. Returns std::nullopt when the tree is not affine.
std::optional<AffineExpr> exprToAffine(const Expr *E);

/// Stable structural fingerprint of a kernel: an FNV-1a hash over the
/// kernel's name, declarations, and printed body. Kernels with different
/// fingerprints are definitely different computations; the estimate cache
/// keys on this (plus the design parameters) to share results across
/// explorer instances, and the pipeline uses it to assert (in debug
/// builds) that workers never mutate a shared base kernel.
uint64_t kernelFingerprint(const Kernel &K);

/// Counts statements of each kind under \p Stmts; handy for tests.
struct StmtCounts {
  unsigned Assign = 0;
  unsigned For = 0;
  unsigned If = 0;
  unsigned Rotate = 0;
};
StmtCounts countStmts(const StmtList &Stmts);

} // namespace defacto

#endif // DEFACTO_IR_IRUTILS_H
