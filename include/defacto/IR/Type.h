//===- Type.h - Scalar element types ---------------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Element types for the multimedia domain the paper targets: signed 8-,
/// 16-, and 32-bit integers (§2.4). Bit widths feed the balance metric
/// (fetch/consumption rates are measured in bits per cycle).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_TYPE_H
#define DEFACTO_IR_TYPE_H

#include <cstdint>
#include <string>

namespace defacto {

/// Signed integer element types supported for array and scalar variables.
enum class ScalarType { Int8, Int16, Int32 };

/// Width of \p Ty in bits.
unsigned bitWidth(ScalarType Ty);

/// C-style spelling ("char", "short", "int") used by the printer and
/// VHDL emitter naming.
std::string typeName(ScalarType Ty);

/// Wraps \p Value to the signed range of \p Ty (two's complement).
int64_t truncateToType(int64_t Value, ScalarType Ty);

} // namespace defacto

#endif // DEFACTO_IR_TYPE_H
