//===- Kernel.h - A loop-nest computation ----------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Kernel is one loop-nest computation to be mapped to hardware: the set
/// of array and scalar declarations plus a top-level statement list
/// (typically a single perfectly nested loop before transformation). The
/// Kernel owns all declarations and statements.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_KERNEL_H
#define DEFACTO_IR_KERNEL_H

#include "defacto/IR/Stmt.h"
#include "defacto/Support/Error.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace defacto {

class IRArena;

/// One loop-nest computation plus its variable declarations.
class Kernel {
public:
  explicit Kernel(std::string Name) : Name(std::move(Name)) {}

  Kernel(const Kernel &) = delete;
  Kernel &operator=(const Kernel &) = delete;
  Kernel(Kernel &&) = default;
  Kernel &operator=(Kernel &&) = default;

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Creates and owns a new array declaration. Names must be unique
  /// across arrays and scalars; fatal on violation (use tryMakeArray for
  /// the recoverable channel).
  ArrayDecl *makeArray(std::string ArrName, ScalarType ElemTy,
                       std::vector<int64_t> Dims);

  /// Creates and owns a new scalar declaration.
  ScalarDecl *makeScalar(std::string VarName, ScalarType Ty,
                         bool IsCompilerTemp = false);

  /// Recoverable variants: fail with ErrorCode::InvalidInput on a
  /// duplicate name or a non-positive array dimension instead of
  /// aborting. For callers handling untrusted declarations.
  Expected<ArrayDecl *> tryMakeArray(std::string ArrName, ScalarType ElemTy,
                                     std::vector<int64_t> Dims);
  Expected<ScalarDecl *> tryMakeScalar(std::string VarName, ScalarType Ty,
                                       bool IsCompilerTemp = false);

  /// Creates a scalar with a unique name derived from \p Prefix.
  ScalarDecl *makeTempScalar(const std::string &Prefix, ScalarType Ty);

  /// Looks up a declaration by name; null if absent.
  ArrayDecl *findArray(const std::string &ArrName) const;
  ScalarDecl *findScalar(const std::string &VarName) const;

  const std::vector<std::unique_ptr<ArrayDecl>> &arrays() const {
    return Arrays;
  }
  const std::vector<std::unique_ptr<ScalarDecl>> &scalars() const {
    return Scalars;
  }

  StmtList &body() { return Body; }
  const StmtList &body() const { return Body; }

  /// Allocates a kernel-unique loop id for a new ForStmt.
  int allocateLoopId() { return NextLoopId++; }
  int nextLoopId() const { return NextLoopId; }
  /// Ensures future ids are > \p Id (used when importing loops).
  void reserveLoopIdsThrough(int Id);

  /// Deep copy: clones declarations and statements, remapping all
  /// declaration pointers into the new kernel.
  Kernel clone() const;

  /// Deep copy whose Expr/Stmt nodes are carved from \p Arena (one bump
  /// per node instead of a heap allocation; see Support/Arena.h). The
  /// caller must not let the clone outlive the arena's next reset().
  /// Declarations stay heap-allocated, so decl pointers remain valid for
  /// the Kernel's own lifetime as usual.
  Kernel cloneInto(IRArena &Arena) const;

  /// Outermost ForStmt of the kernel body if the body is a single loop,
  /// else null.
  ForStmt *topLoop() const;

private:
  std::string Name;
  std::vector<std::unique_ptr<ArrayDecl>> Arrays;
  std::vector<std::unique_ptr<ScalarDecl>> Scalars;
  /// Name -> declaration indexes kept in lockstep with Arrays/Scalars so
  /// findArray/findScalar (and the name-uniqueness probes in tryMake*)
  /// are O(1); scalar replacement mints hundreds of temps per candidate
  /// and the linear scans were quadratic in practice. Decl pointers are
  /// stable (unique_ptr), so moves of the Kernel keep the index valid.
  std::unordered_map<std::string, ArrayDecl *> ArrayIndex;
  std::unordered_map<std::string, ScalarDecl *> ScalarIndex;
  StmtList Body;
  int NextLoopId = 0;
  unsigned NextTempId = 0;
};

} // namespace defacto

#endif // DEFACTO_IR_KERNEL_H
