//===- AffineExpr.h - Affine functions of loop indices ---------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An affine expression `sum(Coeff_i * Loop_i) + Constant` over loop index
/// variables, identified by loop id. These are the only subscript forms the
/// paper's input domain admits (§2.4), and they are the currency of the
/// dependence and reuse analyses.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_AFFINEEXPR_H
#define DEFACTO_IR_AFFINEEXPR_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace defacto {

/// Immutable-by-convention affine function of loop index variables.
/// Terms are kept sorted by loop id with no zero coefficients, so
/// structural equality is value equality.
class AffineExpr {
public:
  /// The zero expression.
  AffineExpr() = default;

  /// The constant expression \p C.
  explicit AffineExpr(int64_t C) : Constant(C) {}

  /// Builds Coeff * loop(LoopId) + C.
  static AffineExpr term(int LoopId, int64_t Coeff, int64_t C = 0);

  int64_t constant() const { return Constant; }

  /// Coefficient of \p LoopId (0 if absent).
  int64_t coeff(int LoopId) const;

  /// Loop ids with nonzero coefficients, ascending.
  std::vector<int> loopIds() const;

  bool isConstant() const { return Terms.empty(); }
  bool usesLoop(int LoopId) const { return coeff(LoopId) != 0; }

  /// Number of loops with nonzero coefficient.
  unsigned numTerms() const { return Terms.size(); }

  /// The canonical (loop id, coefficient) term list: sorted by loop id,
  /// no zero coefficients. Exposed for allocation-free hashing/equality
  /// in hot paths (loopIds()/coeff() allocate or scan).
  const std::vector<std::pair<int, int64_t>> &terms() const { return Terms; }

  AffineExpr add(const AffineExpr &Other) const;
  AffineExpr sub(const AffineExpr &Other) const;
  AffineExpr scale(int64_t Factor) const;
  AffineExpr addConstant(int64_t C) const;

  /// Replaces every occurrence of loop \p LoopId with \p Replacement.
  /// Used by unrolling (i -> i + k) and normalization (i -> s*i + l).
  AffineExpr substitute(int LoopId, const AffineExpr &Replacement) const;

  /// Evaluates with \p ValueOf providing each referenced loop's value.
  int64_t evaluate(
      const std::function<int64_t(int LoopId)> &ValueOf) const;

  bool operator==(const AffineExpr &Other) const {
    return Constant == Other.Constant && Terms == Other.Terms;
  }
  bool operator!=(const AffineExpr &Other) const { return !(*this == Other); }

  /// Renders like "2*i3 + j1 + 5" given a name for each loop id.
  std::string
  toString(const std::function<std::string(int LoopId)> &NameOf) const;

  /// Renders with loop ids as "L<id>".
  std::string toString() const;

private:
  void setCoeff(int LoopId, int64_t Coeff);

  std::vector<std::pair<int, int64_t>> Terms; // sorted by loop id, no zeros
  int64_t Constant = 0;
};

} // namespace defacto

#endif // DEFACTO_IR_AFFINEEXPR_H
