//===- IRPrinter.h - C-like rendering of kernels ---------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders kernels, statements, and expressions as C-like text for
/// debugging, tests, and documentation. Loop indices print with their
/// source names.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_IR_IRPRINTER_H
#define DEFACTO_IR_IRPRINTER_H

#include "defacto/IR/Kernel.h"

#include <string>

namespace defacto {

/// Renders the whole kernel: declarations then body.
std::string printKernel(const Kernel &K);

/// Renders a statement list at the given indent depth. \p NameOf maps
/// loop ids to index names; pass the result of makeLoopNamer.
std::string printStmts(const StmtList &Stmts,
                       const std::function<std::string(int)> &NameOf,
                       unsigned Indent = 0);

/// Renders one expression.
std::string printExpr(const Expr *E,
                      const std::function<std::string(int)> &NameOf);

/// Builds a loop-id -> index-name mapping from the loops in \p K; unknown
/// ids render as "L<id>".
std::function<std::string(int)> makeLoopNamer(const Kernel &K);

} // namespace defacto

#endif // DEFACTO_IR_IRPRINTER_H
