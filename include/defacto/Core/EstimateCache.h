//===- EstimateCache.h - Shared memoized synthesis estimates ---*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, shardable cache of SynthesisEstimate results keyed by
/// (kernel fingerprint, unroll vector, target platform, transformation
/// options). Estimation is the DSE hot path — the paper's whole point is
/// spending as few synthesis estimates as possible — so the exploration
/// engine treats it as a memoized service: every explorer run, the
/// exhaustive/random baselines, and the multi-kernel BatchExplorer all
/// draw from one cache, and a design estimated once is never estimated
/// again, across runs, platforms-permitting, and threads.
///
/// Negative entries record designs whose estimation permanently failed
/// (every retry exhausted), unifying the explorer's former per-run
/// negative cache: a design known to crash the backend is not retried by
/// the next exploration either.
///
/// Concurrency: lookupOrBegin() either returns a completed Result or
/// hands the caller a Ticket obligating it to compute and fulfill() (or
/// abandon()) the entry. Concurrent requests for an in-flight key block
/// on a shared future, so a design is computed exactly once no matter how
/// many workers race for it.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_ESTIMATECACHE_H
#define DEFACTO_CORE_ESTIMATECACHE_H

#include "defacto/HLS/Estimator.h"
#include "defacto/Transforms/Pipeline.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace defacto {

/// Cache key for one candidate design. Built once per explorer (prefix)
/// and extended per unroll vector; see designCacheKey().
std::string platformCacheKey(const TargetPlatform &Platform);
std::string transformCacheKey(const TransformOptions &Opts);
std::string designCacheKey(uint64_t KernelFingerprint,
                           const TargetPlatform &Platform,
                           const TransformOptions &BaseTransforms,
                           const UnrollVector &U,
                           std::optional<unsigned> RegisterCap = {});

/// Shared memoization of synthesis estimates.
class EstimateCache {
public:
  /// One completed estimation: the estimate or the permanent failure,
  /// plus the estimator attempts it cost (so a consumer replaying a
  /// cached walk can charge its evaluation budget identically).
  struct Result {
    Expected<SynthesisEstimate> Estimate;
    unsigned Attempts = 1;

    bool ok() const { return Estimate.hasValue(); }
  };

  /// Obligation to fulfill one in-flight entry; obtained from
  /// lookupOrBegin(), consumed by fulfill()/abandon().
  struct Ticket {
    unsigned Shard = 0;
    std::string Key;
    std::shared_ptr<std::promise<Result>> Promise;
  };

  /// How one lookupOrBegin() call was served; reported through the
  /// optional out-parameter and counted in Stats.
  enum class Outcome {
    Hit,         ///< Completed entry found.
    NegativeHit, ///< Completed entry found, holding a permanent failure.
    Miss,        ///< No entry: the caller received a Ticket.
    Wait,        ///< Entry in flight elsewhere: the caller blocked for it.
  };

  /// One consistent snapshot of the cache's counters. stats() gathers it
  /// under every shard lock at once, so the invariant Lookups == Hits +
  /// Misses + Waits holds exactly in any snapshot — counters cannot tear
  /// against concurrent updates. The same totals are mirrored into the
  /// StatRegistry (group "cache"; relaxed counters, recording-gated) for
  /// process-wide dumps.
  struct Stats {
    uint64_t Lookups = 0;
    /// Completed entry found (NegativeHits counts the error subset).
    uint64_t Hits = 0;
    uint64_t NegativeHits = 0;
    /// No entry: the caller received a Ticket.
    uint64_t Misses = 0;
    /// Entry in flight on another thread: the caller blocked for it.
    uint64_t Waits = 0;
    uint64_t Inserts = 0;

    double hitRate() const {
      uint64_t Total = Hits + Waits + Misses;
      return Total == 0 ? 0.0
                        : static_cast<double>(Hits + Waits) /
                              static_cast<double>(Total);
    }
  };

  explicit EstimateCache(unsigned NumShards = 16);

  EstimateCache(const EstimateCache &) = delete;
  EstimateCache &operator=(const EstimateCache &) = delete;

  /// A completed Result (blocking on an in-flight computation if one is
  /// running), or a Ticket making this caller the computer for \p Key.
  /// \p Served, when non-null, receives how the call was resolved (the
  /// exploration trace records it per decision).
  std::variant<Result, Ticket> lookupOrBegin(const std::string &Key,
                                             Outcome *Served = nullptr);

  /// Completes \p T: caches \p R and wakes every waiter.
  void fulfill(Ticket T, Result R);

  /// Gives up on \p T without caching: waiters receive \p Transient (a
  /// global condition such as a deadline, never the design's fault) and
  /// the key is forgotten so a later lookup recomputes it.
  void abandon(Ticket T, Status Transient);

  /// Pre-warms the cache with a completed \p R for \p Key — the
  /// evaluation-journal replay path. First write wins; an existing
  /// completed or in-flight entry is left alone. Returns true when the
  /// entry was inserted. Does not fire the observer (replayed results
  /// are already durable).
  bool seed(const std::string &Key, Result R);

  /// Completion hook: called once per fulfill(), outside any shard lock,
  /// with the key and the completed result. BatchExplorer points it at
  /// the evaluation journal so every finished estimation is durable the
  /// moment it lands in the cache. One observer at a time; pass an empty
  /// function to detach. The callback must be thread-safe.
  using Observer = std::function<void(const std::string &Key,
                                      const Result &R)>;
  void setObserver(Observer O);

  /// Convenience wrapper: memoized \p Compute.
  Result getOrCompute(const std::string &Key,
                      const std::function<Result()> &Compute);

  /// Non-blocking probe for a completed entry; does not touch stats.
  std::optional<Result> peek(const std::string &Key) const;

  /// Completed entries currently cached.
  size_t size() const;

  Stats stats() const;

private:
  struct Entry {
    std::shared_future<Result> Future;
    bool Completed = false; // set by fulfill(); guarded by the shard lock
  };
  /// Counters live per shard, guarded by the shard lock, and a lookup's
  /// Lookups increment lands in the same critical section as its outcome
  /// counter — that is what makes the all-shards snapshot in stats()
  /// exactly consistent instead of a torn sum of racing atomics.
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, Entry> Map;
    Stats Counters;
  };

  Shard &shardFor(const std::string &Key, unsigned &Index) const;

  std::vector<std::unique_ptr<Shard>> Shards;
  /// Swapped atomically under ObserverM; fulfill() loads a shared_ptr
  /// copy so a concurrent setObserver cannot free it mid-call.
  mutable std::mutex ObserverM;
  std::shared_ptr<const Observer> CompletionObserver;
};

} // namespace defacto

#endif // DEFACTO_CORE_ESTIMATECACHE_H
