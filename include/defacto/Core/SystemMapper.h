//===- SystemMapper.h - Multiple loop nests on one device ------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps several loop-nest kernels onto one FPGA. This realizes the
/// motivation behind the paper's third optimization criterion (§3):
/// among comparable designs choose the smallest, "in that it frees up
/// space for other uses of the FPGA logic, such as to map other loop
/// nests". Each kernel is explored independently; when the selected
/// designs together exceed the device, the largest consumers are
/// re-explored under tightened per-kernel capacity budgets until the
/// ensemble fits (every kernel can always fall back to its baseline
/// design).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_SYSTEMMAPPER_H
#define DEFACTO_CORE_SYSTEMMAPPER_H

#include "defacto/Core/Explorer.h"

#include <string>
#include <vector>

namespace defacto {

/// One kernel's share of the mapped system.
struct MappedKernel {
  std::string Name;
  ExplorationResult Result;
  /// The capacity budget the final exploration ran under.
  double BudgetSlices = 0;
};

/// The whole-device mapping.
struct SystemMapping {
  std::vector<MappedKernel> Kernels;
  double TotalSlices = 0;
  /// Sum of every kernel's estimated cycles (the nests run back to
  /// back on one device).
  uint64_t TotalCycles = 0;
  bool Fits = false;
  /// Re-exploration rounds the budget negotiation took.
  unsigned Rounds = 0;
};

/// Maps \p Kernels (non-owning) onto the device in \p Opts.Platform.
SystemMapping mapKernelsToDevice(const std::vector<const Kernel *> &Kernels,
                                 const ExplorerOptions &Opts);

} // namespace defacto

#endif // DEFACTO_CORE_SYSTEMMAPPER_H
