//===- SearchStrategy.h - Pluggable search policies ------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy half of the exploration engine: a SearchStrategy decides
/// *which* designs to look at; the EvaluationService underneath it
/// (EvaluationService.h) decides *how* each look is performed (cache,
/// retries, budget, speculation, trace). Five strategies ship built in
/// and are selectable by name through the StrategyRegistry:
///
///   guided      the paper's Figure-2 balance-guided walk (the default)
///   exhaustive  every divisor vector, fastest fitting design wins
///   random      deterministic random sampling at a fixed budget
///   hillclimb   steepest-descent neighborhood search on the divisor
///               lattice, with Psat-quantum bisection jumps
///   portfolio   several strategies under split budgets; the per-kernel
///               winner is selected (no single DSE algorithm dominates
///               across kernels, so run a portfolio and keep the best)
///
/// Registering a custom strategy:
///
///   class Annealer : public SearchStrategy { ... };
///   StrategyRegistry::instance().add("anneal", "simulated annealing",
///       [] { return std::make_unique<Annealer>(); });
///
/// after which `exploreWithStrategy(K, Opts, "anneal")`, batch jobs, and
/// the `--strategy=anneal` driver flag all reach it.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_SEARCHSTRATEGY_H
#define DEFACTO_CORE_SEARCHSTRATEGY_H

#include "defacto/Core/EvaluationService.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace defacto {

/// One synthesized-and-estimated candidate.
struct EvaluatedDesign {
  UnrollVector U;
  SynthesisEstimate Estimate;
  /// Why the search visited it ("Uinit", "increase", "bisect", "fit").
  std::string Role;
  /// The full design point (DesignPoint(U) for unroll-only designs;
  /// interchange/tile dimensions for guided+tile refinements). Last
  /// member so {U, Estimate, Role} aggregate initializations stay valid.
  DesignPoint Point;
};

/// Outcome of one exploration.
struct ExplorationResult {
  UnrollVector Selected;
  SynthesisEstimate SelectedEstimate;
  /// The selected design as a full point. Unroll-only strategies leave
  /// it defaulted or set it to DesignPoint(Selected); guided+tile
  /// records the winning interchange/tile here (Selected then holds the
  /// point's unroll vector). Check SelectedPoint.isUnrollOnly() before
  /// rendering a result as a bare unroll vector.
  DesignPoint SelectedPoint;
  /// The paper's baseline: no unrolling, all other transformations.
  SynthesisEstimate BaselineEstimate;
  std::vector<EvaluatedDesign> Visited; // in search order, no duplicates
  /// False when no candidate — not even the baseline — fits the device
  /// (the kernel's mandatory registers alone exceed it); Selected then
  /// holds the baseline regardless.
  bool SelectedFits = true;
  /// True when the search did not run to healthy convergence: an
  /// estimation permanently failed, or the deadline or evaluation budget
  /// cut the walk short. Selected then holds the best design that was
  /// successfully evaluated (baseline included).
  bool Degraded = false;
  /// Machine-readable failure log; every entry is also mirrored into
  /// Trace as a "FAIL"/"stop" line. Bounded: the evaluation layer keeps
  /// a ring of the most recent MaxFailureLogEntries failures and counts
  /// the rest in DroppedFailures.
  std::vector<EvaluationFailure> Failures;
  /// Failure-log entries evicted by the ring bound (a fault storm).
  uint64_t DroppedFailures = 0;
  /// Estimator attempts actually spent (retries included; cached results
  /// consumed from a shared EstimateCache charge the attempts their
  /// original computation cost).
  unsigned EvaluationsUsed = 0;
  SaturationInfo Sat;
  uint64_t FullSpaceSize = 0;
  std::string Trace;
  /// Registry name of the strategy that produced this result ("guided",
  /// "portfolio", ...); empty only for hand-built results.
  std::string Strategy;
  /// Portfolio runs: one entry per sub-strategy, in execution order,
  /// each carrying its own Strategy name, visit table, and failure log.
  /// Empty for single-strategy runs.
  std::vector<ExplorationResult> SubResults;

  double speedup() const {
    return SelectedEstimate.Cycles == 0
               ? 0.0
               : static_cast<double>(BaselineEstimate.Cycles) /
                     static_cast<double>(SelectedEstimate.Cycles);
  }
  double fractionSearched() const {
    return FullSpaceSize == 0
               ? 0.0
               : static_cast<double>(Visited.size()) /
                     static_cast<double>(FullSpaceSize);
  }

  /// One-line human-readable summary: strategy, selected design,
  /// estimate, speedup, evaluations, and the degradation flags (which
  /// callers otherwise tend to drop silently). ExplorationReport.h
  /// renders the full multi-line explanation.
  std::string toString() const;
};

/// Everything a strategy needs to search one kernel: the source (to spin
/// up sub-services — the portfolio does), the normalized options, and
/// the evaluation service performing the actual estimations.
struct SearchContext {
  const Kernel &Source;
  const ExplorerOptions &Opts;
  EvaluationService &Eval;
};

/// A search policy over the unroll space. Implementations must be
/// deterministic for a deterministic estimation backend: the selected
/// design, visit order, and trace may depend only on the kernel, the
/// options, and the estimates — never on wall-clock time or thread
/// scheduling.
class SearchStrategy {
public:
  virtual ~SearchStrategy();

  /// The registry name this strategy reports in results.
  virtual std::string name() const = 0;

  /// Runs the search to completion. Implementations stamp
  /// ExplorationResult::Strategy with name().
  virtual ExplorationResult search(const SearchContext &Ctx) = 0;
};

/// Maps strategy names to factories. Built-in strategies are registered
/// on first use; add() extends the set at runtime (thread-safe).
class StrategyRegistry {
public:
  using Factory = std::function<std::unique_ptr<SearchStrategy>()>;

  /// The process-wide registry, with the five built-ins pre-registered.
  static StrategyRegistry &instance();

  /// Registers \p MakeStrategy under \p Name. Returns false (and leaves
  /// the registry unchanged) when the name is already taken.
  bool add(const std::string &Name, const std::string &Description,
           Factory MakeStrategy);

  /// A fresh strategy instance, or nullptr for an unknown name.
  std::unique_ptr<SearchStrategy> create(const std::string &Name) const;

  bool contains(const std::string &Name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// "name  description" lines, sorted by name — the drivers print this
  /// when --strategy gets an unknown name.
  std::string describe() const;

private:
  StrategyRegistry();
  struct RegisteredStrategy {
    std::string Description;
    Factory Make;
  };
  mutable std::mutex M;
  std::map<std::string, RegisteredStrategy> Strategies;
};

//===----------------------------------------------------------------===//
// Built-in strategy factories. The registry uses these; direct
// construction allows non-default parameters (sample counts, seeds,
// portfolio composition).
//===----------------------------------------------------------------===//

std::unique_ptr<SearchStrategy> createGuidedStrategy();
std::unique_ptr<SearchStrategy> createExhaustiveStrategy();
/// \p Samples distinct candidates drawn deterministically from \p Seed.
std::unique_ptr<SearchStrategy> createRandomStrategy(unsigned Samples = 24,
                                                     uint64_t Seed = 2002);
std::unique_ptr<SearchStrategy> createHillClimbStrategy();
/// The guided walk plus a multi-dimensional refinement stage: after the
/// unroll-only optimum is selected, legal pairwise interchanges and §5.4
/// tiles around it are evaluated (within the remaining budget) and the
/// selection is upgraded when a point strictly beats the unroll-only
/// optimum. Registered as "guided+tile".
std::unique_ptr<SearchStrategy> createGuidedTileStrategy();
/// Runs \p Strategies (registry names; the default portfolio is
/// {"guided", "hillclimb", "random"}) under an evenly split evaluation
/// budget and selects the per-kernel winner.
std::unique_ptr<SearchStrategy>
createPortfolioStrategy(std::vector<std::string> Strategies = {});

/// One-call driver: looks \p Name up in the registry, builds a fresh
/// EvaluationService over \p Source, and runs the strategy. Fails with
/// InvalidInput (message lists the registered strategies) for an unknown
/// name.
Expected<ExplorationResult> exploreWithStrategy(const Kernel &Source,
                                                const ExplorerOptions &Opts,
                                                const std::string &Name);

//===----------------------------------------------------------------===//
// Guided-walk helpers, shared by the guided strategy, the hill climb
// (start point), and the explorer façade's public API.
//===----------------------------------------------------------------===//

/// The search's starting point (§5.3's Uinit selection) for \p Eval's
/// kernel: the saturation-point design.
UnrollVector guidedInitialVector(const EvaluationService &Eval);

/// The frontier the guided walk would speculate: base, Uinit, the
/// Increase doubling chain, and the SelectBetween bisection midpoint
/// closure (Psat multiples), deduplicated and capped.
std::vector<UnrollVector> guidedFrontier(const EvaluationService &Eval);

} // namespace defacto

#endif // DEFACTO_CORE_SEARCHSTRATEGY_H
