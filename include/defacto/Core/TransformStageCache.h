//===- TransformStageCache.h - Memoized pipeline prefixes ------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of the transform pipeline's *prefix* — strip-mine +
/// unroll-and-jam + renormalization — across candidate designs. The key
/// observation: write a candidate's unroll vector U as U = P (+) W where
/// W carries only U's outermost factor > 1 and P ("the prefix") carries
/// the rest. Then
///
///   stripmine ; unroll(U) ; normalize
///     ==  [stripmine ; unroll(P) ; normalize]  ; unroll(W) ; normalize
///
/// bit-for-bit (outer-major copy order and canonical affine substitution
/// make the two factorizations commute; fastpath_parity_test proves the
/// printed IR identical). The bracketed part depends only on (kernel
/// fingerprint, strip-mine, P), so the guided walk's Increase chain and
/// exhaustive sweeps that revisit a shared prefix clone the memoized
/// stage instead of re-running unroll-and-jam from the base kernel.
///
/// TransformStageCache stores those snapshots behind the same
/// ticket-style in-flight dedup as EstimateCache: a stage is built
/// exactly once no matter how many workers race for it. FastPathPipeline
/// is the consumer: applyPipeline(), staged — identical results, with
/// per-candidate fallbacks to the unstaged path whenever staging cannot
/// be proven equivalent (no perfect nest, unroll vector not applicable,
/// loop-index uses interacting with strip-mine renormalization).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_TRANSFORMSTAGECACHE_H
#define DEFACTO_CORE_TRANSFORMSTAGECACHE_H

#include "defacto/Transforms/Pipeline.h"

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace defacto {

/// Cache key of one memoized stage: kernel fingerprint, strip-mine
/// request, and the unroll-vector prefix the stage has applied.
std::string stageCacheKey(
    uint64_t KernelFingerprint,
    const std::optional<std::pair<unsigned, int64_t>> &StripMine,
    const UnrollVector &Prefix);

/// Thread-safe, sharded store of pipeline-prefix snapshots.
class TransformStageCache {
public:
  /// One memoized stage. Immutable once published; shared read-only
  /// across worker threads (clones are taken from Staged concurrently,
  /// exactly like PipelineContext::normalized()).
  struct Entry {
    /// The snapshot: strip-mined, prefix-unrolled, normalized. Always
    /// heap-allocated (built with the arena suspended) so it outlives
    /// any worker's arena resets.
    Kernel Staged;
    /// Trip counts of the perfect nest after strip-mining but before
    /// unrolling — what canUnroll() consults — so full-vector
    /// applicability is checked without reconstructing that kernel.
    /// Empty when the kernel has no perfect nest.
    std::vector<int64_t> Trips;
    /// unrollAndJam(Prefix) returned true while building this stage.
    bool PrefixApplied = false;
    /// The body uses loop indices outside array subscripts (guards,
    /// select conditions). Combined with strip-mining, staged
    /// renormalization can then produce a differently-shaped (equal
    /// valued) expression tree, so such candidates stay unstaged.
    bool HasLoopIndexUses = false;
    /// The snapshot passed IR verification when it was built. Staged
    /// candidates inherit this one check instead of re-verifying per
    /// candidate; a malformed stage forces the unstaged route, whose
    /// full pipeline reports the error exactly as the slow path would.
    bool StageVerified = false;

    explicit Entry(Kernel K) : Staged(std::move(K)) {}
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// Obligation to build one in-flight stage; obtained from
  /// lookupOrBegin(), consumed by fulfill()/abandon().
  struct Ticket {
    unsigned Shard = 0;
    std::string Key;
    std::shared_ptr<std::promise<EntryPtr>> Promise;
  };

  enum class Outcome {
    Hit,  ///< Completed stage found.
    Miss, ///< No entry: the caller received a Ticket.
    Wait, ///< In flight elsewhere: the caller blocked for it.
  };

  /// Consistent all-shard snapshot (same discipline as
  /// EstimateCache::Stats: a lookup's counters land under one shard
  /// lock, so Lookups == Hits + Misses + Waits exactly). Mirrored into
  /// the StatRegistry as cache.stage_hits / stage_misses /
  /// stage_evictions.
  struct Stats {
    uint64_t Lookups = 0;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Waits = 0;
    uint64_t Inserts = 0;
    uint64_t Evictions = 0;

    double hitRate() const {
      uint64_t Total = Hits + Waits + Misses;
      return Total == 0 ? 0.0
                        : static_cast<double>(Hits + Waits) /
                              static_cast<double>(Total);
    }
  };

  /// \p MaxEntriesPerShard bounds resident snapshots; the oldest
  /// completed stage is evicted first (stages are cheap to rebuild, so
  /// a simple FIFO bound beats tracking recency on the hot path).
  explicit TransformStageCache(unsigned NumShards = 8,
                               size_t MaxEntriesPerShard = 64);

  TransformStageCache(const TransformStageCache &) = delete;
  TransformStageCache &operator=(const TransformStageCache &) = delete;

  /// A completed stage (blocking on an in-flight build if one is
  /// running), or a Ticket making this caller the builder for \p Key.
  /// A returned EntryPtr can be null if the builder abandoned; callers
  /// fall back to the unstaged pipeline. \p Final selects the registry
  /// counter family (stage prefixes vs finished candidates); both entry
  /// kinds share the shard store and its FIFO bound.
  std::variant<EntryPtr, Ticket> lookupOrBegin(const std::string &Key,
                                               Outcome *Served = nullptr,
                                               bool Final = false);

  /// Publishes \p E under \p T's key and wakes every waiter.
  void fulfill(Ticket T, EntryPtr E);

  /// Gives up on \p T: waiters receive a null entry and the key is
  /// forgotten so a later lookup rebuilds it.
  void abandon(Ticket T);

  /// Completed stages currently resident.
  size_t size() const;

  Stats stats() const;

private:
  struct Slot {
    std::shared_future<EntryPtr> Future;
    bool Completed = false; // guarded by the shard lock
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, Slot> Map;
    std::deque<std::string> InsertOrder; // completed keys, oldest first
    Stats Counters;
  };

  Shard &shardFor(const std::string &Key, unsigned &Index) const;

  std::vector<std::unique_ptr<Shard>> Shards;
  size_t MaxEntriesPerShard;
};

/// How one FastPathPipeline::run() resolved, for trace emission
/// (dse.stagecache events) by the evaluation service.
struct StageRunInfo {
  /// The candidate actually took the staged route (false: per-candidate
  /// fallback to the unstaged pipeline).
  bool Staged = false;
  /// Stage lookup outcome; meaningful whenever the cache was consulted.
  TransformStageCache::Outcome Outcome = TransformStageCache::Outcome::Miss;
  /// The finished candidate itself was served from the cache's second
  /// level, skipping every post-stage transform pass.
  bool FinalHit = false;
  /// Stage key, for trace correlation.
  std::string Key;
};

/// applyPipeline() over a shared context with stage memoization:
/// bit-identical TransformResults, one unroll-and-jam per distinct
/// (strip-mine, prefix) instead of one per candidate.
class FastPathPipeline {
public:
  /// \p Ctx and \p Cache must outlive the pipeline. One instance is
  /// shared across worker threads (it holds no per-run mutable state).
  FastPathPipeline(const PipelineContext &Ctx,
                   std::shared_ptr<TransformStageCache> Cache);

  /// Runs the full pipeline for \p Opts. SkipVerify drops the final
  /// IR-verification pass — sound only when the consumer re-verifies
  /// (estimateDesignChecked does). Info, when non-null, reports how the
  /// stage cache resolved.
  TransformResult run(const TransformOptions &Opts, bool SkipVerify = false,
                      StageRunInfo *Info = nullptr) const;

  const PipelineContext &context() const { return Ctx; }
  const std::shared_ptr<TransformStageCache> &cache() const { return Cache; }

private:
  TransformStageCache::EntryPtr buildStage(const TransformOptions &Opts,
                                           const UnrollVector &Prefix) const;

  const PipelineContext &Ctx;
  std::shared_ptr<TransformStageCache> Cache;
  uint64_t SourceFp = 0;
};

} // namespace defacto

#endif // DEFACTO_CORE_TRANSFORMSTAGECACHE_H
