//===- DesignSpace.h - The unroll-factor design space ----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The design space the paper explores: one unroll factor per nest loop.
/// The *full* space, used for the coverage accounting (§6.3's "0.3% of
/// the design space consisting of all possible unroll factors"), has
/// trip-count many choices per loop. The *candidate* set the search
/// materializes is the divisor vectors (remainderless unrolling).
///
/// DesignPoint / DesignSpace generalize the unroll lattice into the
/// multi-dimensional space of §5.4: a point composes an unroll vector
/// with an optional loop permutation (interchange) and an optional tile
/// (strip-mine position and size). An unroll-only point is bit-for-bit
/// the historical design; the extra dimensions serialize to nothing when
/// unset, so caches and journals keyed on the old shape stay valid.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_DESIGNSPACE_H
#define DEFACTO_CORE_DESIGNSPACE_H

#include "defacto/Transforms/UnrollAndJam.h"

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace defacto {

/// The unroll-factor lattice of one loop nest.
class UnrollSpace {
public:
  explicit UnrollSpace(std::vector<int64_t> TripCounts);

  unsigned numLoops() const { return Trips.size(); }
  int64_t trip(unsigned Position) const { return Trips[Position]; }

  /// Number of points in the full design space: product of trip counts.
  uint64_t fullSize() const;

  /// All divisor unroll vectors, in lexicographic order.
  std::vector<UnrollVector> allCandidates() const;

  /// True when every factor divides its trip count.
  bool isCandidate(const UnrollVector &U) const;

  /// The no-unrolling baseline (all ones).
  UnrollVector base() const;

  /// Full unrolling of every loop (Umax).
  UnrollVector max() const;

  /// Componentwise Lo <= U <= Hi.
  static bool between(const UnrollVector &U, const UnrollVector &Lo,
                      const UnrollVector &Hi);

  /// Candidate vectors componentwise between \p Lo and \p Hi whose
  /// product equals \p Product; empty when none exists.
  std::vector<UnrollVector> candidatesWithProduct(const UnrollVector &Lo,
                                                  const UnrollVector &Hi,
                                                  int64_t Product) const;

  /// The paper's Increase: a candidate U' >= U with P(U') == 2 * P(U),
  /// preferring to double the position in \p Preference order (earlier
  /// entries first; positions absent from Preference are tried last).
  /// Returns U when no such vector exists.
  UnrollVector increase(const UnrollVector &U,
                        const std::vector<unsigned> &Preference) const;

  /// The paper's SelectBetween: a candidate between Small and Large whose
  /// product is a multiple of \p Quantum as close as possible to
  /// (P(Small) + P(Large)) / 2, strictly between the two products.
  /// Returns Small when no such vector exists.
  UnrollVector selectBetween(const UnrollVector &Small,
                             const UnrollVector &Large,
                             int64_t Quantum) const;

private:
  std::vector<int64_t> Trips;
  std::vector<std::vector<int64_t>> Divisors; // per position
};

/// One point of the multi-dimensional design space: interchange is
/// applied first, Tile indexes the post-interchange nest, and Unroll
/// indexes the post-tile nest (whose depth grew by one when Tile is
/// set). A default-constructed point with just an unroll vector is
/// exactly the historical unroll-only design.
struct DesignPoint {
  UnrollVector Unroll;
  /// Loop permutation: entry i names the original nest position whose
  /// loop lands at position i (outermost first). Empty means identity.
  std::vector<unsigned> Interchange;
  /// Strip-mine the post-interchange loop at this position to this tile
  /// size before unrolling.
  std::optional<std::pair<unsigned, int64_t>> Tile;

  DesignPoint() = default;
  explicit DesignPoint(UnrollVector U) : Unroll(std::move(U)) {}

  /// True when the point has no interchange and no tile — the historical
  /// design shape, cached and journaled under the unchanged key.
  bool isUnrollOnly() const { return Interchange.empty() && !Tile; }

  /// unrollVectorToString(Unroll) for unroll-only points (so digests of
  /// unroll-only runs are unchanged); otherwise that string plus
  /// " perm(i,j,...)" and/or " tile(PxS)" suffixes.
  std::string toString() const;

  friend bool operator==(const DesignPoint &A, const DesignPoint &B) {
    return A.Unroll == B.Unroll && A.Interchange == B.Interchange &&
           A.Tile == B.Tile;
  }
  friend bool operator!=(const DesignPoint &A, const DesignPoint &B) {
    return !(A == B);
  }
  friend bool operator<(const DesignPoint &A, const DesignPoint &B) {
    return std::tie(A.Unroll, A.Interchange, A.Tile) <
           std::tie(B.Unroll, B.Interchange, B.Tile);
  }
};

/// The multi-dimensional design space over one nest: the unroll lattice
/// composed with the legal-by-shape interchange permutations and tile
/// choices. Shape-validity only — dependence legality of a permutation
/// is the interchange pass's job (an illegal point evaluates to an
/// error, it is not a member-check here).
class DesignSpace {
public:
  explicit DesignSpace(UnrollSpace Unroll) : Space(std::move(Unroll)) {}

  const UnrollSpace &unroll() const { return Space; }

  /// Tile sizes available at nest position \p Position: the proper
  /// divisors 1 < T < trip (tiling by 1 or by the full trip is the
  /// identity).
  std::vector<int64_t> tileSizes(unsigned Position) const;

  /// Every permutation exchanging exactly two nest positions (identity
  /// excluded) — the interchange neighborhood the guided+tile strategy
  /// explores. Empty for nests of depth < 2.
  std::vector<std::vector<unsigned>> pairSwaps() const;

  /// Trip counts of the nest once \p P's interchange and tile are
  /// applied — the nest \p P's unroll vector indexes. Empty when the
  /// interchange or tile is shape-invalid.
  std::vector<int64_t> tripsAfter(const DesignPoint &P) const;

  /// True when the point is shape-valid: the permutation (if any)
  /// permutes the nest positions, the tile (if any) is a proper divisor
  /// at a valid position, and every unroll factor divides its
  /// post-transform trip count.
  bool isCandidate(const DesignPoint &P) const;

  /// Coverage accounting for the generalized space: unroll choices times
  /// (identity + pair swaps) times (untiled + tile choices per position).
  uint64_t fullSize() const;

  /// Deterministically enumerates every shape-valid point, in a fixed
  /// order that is a pure function of the nest shape: permutations
  /// first (identity, then pairSwaps() in their construction order),
  /// tiles inside each permutation (untiled, then ascending position
  /// and size over the post-interchange nest), and the post-transform
  /// unroll lattice lexicographically inside each combination. The
  /// leading block is therefore exactly the historical unroll-only
  /// enumeration — stable cache keys and digests depend on that, and
  /// designspace_test pins the order across runs and threads.
  /// \p Limit > 0 truncates the enumeration after that many points.
  std::vector<DesignPoint> enumerate(size_t Limit = 0) const;

private:
  UnrollSpace Space;
};

} // namespace defacto

#endif // DEFACTO_CORE_DESIGNSPACE_H
