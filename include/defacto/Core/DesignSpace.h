//===- DesignSpace.h - The unroll-factor design space ----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The design space the paper explores: one unroll factor per nest loop.
/// The *full* space, used for the coverage accounting (§6.3's "0.3% of
/// the design space consisting of all possible unroll factors"), has
/// trip-count many choices per loop. The *candidate* set the search
/// materializes is the divisor vectors (remainderless unrolling).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_DESIGNSPACE_H
#define DEFACTO_CORE_DESIGNSPACE_H

#include "defacto/Transforms/UnrollAndJam.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace defacto {

/// The unroll-factor lattice of one loop nest.
class UnrollSpace {
public:
  explicit UnrollSpace(std::vector<int64_t> TripCounts);

  unsigned numLoops() const { return Trips.size(); }
  int64_t trip(unsigned Position) const { return Trips[Position]; }

  /// Number of points in the full design space: product of trip counts.
  uint64_t fullSize() const;

  /// All divisor unroll vectors, in lexicographic order.
  std::vector<UnrollVector> allCandidates() const;

  /// True when every factor divides its trip count.
  bool isCandidate(const UnrollVector &U) const;

  /// The no-unrolling baseline (all ones).
  UnrollVector base() const;

  /// Full unrolling of every loop (Umax).
  UnrollVector max() const;

  /// Componentwise Lo <= U <= Hi.
  static bool between(const UnrollVector &U, const UnrollVector &Lo,
                      const UnrollVector &Hi);

  /// Candidate vectors componentwise between \p Lo and \p Hi whose
  /// product equals \p Product; empty when none exists.
  std::vector<UnrollVector> candidatesWithProduct(const UnrollVector &Lo,
                                                  const UnrollVector &Hi,
                                                  int64_t Product) const;

  /// The paper's Increase: a candidate U' >= U with P(U') == 2 * P(U),
  /// preferring to double the position in \p Preference order (earlier
  /// entries first; positions absent from Preference are tried last).
  /// Returns U when no such vector exists.
  UnrollVector increase(const UnrollVector &U,
                        const std::vector<unsigned> &Preference) const;

  /// The paper's SelectBetween: a candidate between Small and Large whose
  /// product is a multiple of \p Quantum as close as possible to
  /// (P(Small) + P(Large)) / 2, strictly between the two products.
  /// Returns Small when no such vector exists.
  UnrollVector selectBetween(const UnrollVector &Small,
                             const UnrollVector &Large,
                             int64_t Quantum) const;

private:
  std::vector<int64_t> Trips;
  std::vector<std::vector<int64_t>> Divisors; // per position
};

} // namespace defacto

#endif // DEFACTO_CORE_DESIGNSPACE_H
