//===- BatchExplorer.h - Multi-kernel exploration driver -------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores many (kernel, platform) jobs concurrently on one worker pool
/// with one shared EstimateCache. Each job runs the ordinary sequential
/// engine inside a pool worker — job-level parallelism composes with the
/// per-job speculative engine only through the shared cache, never
/// through nested pool submission (which could deadlock a bounded pool).
/// Results come back in submission order and each job's outcome is
/// identical to running it alone; jobs over the same kernel and platform
/// additionally hit each other's cached estimates.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_BATCHEXPLORER_H
#define DEFACTO_CORE_BATCHEXPLORER_H

#include "defacto/Core/Explorer.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace defacto {

class CircuitBreakerRegistry;
class EvaluationJournal;

/// One unit of batch work: explore one kernel for one platform.
struct BatchJob {
  std::string Name; // label for reports; defaults to the kernel's name
  Kernel K;
  ExplorerOptions Opts;
  /// Legacy two-mode selector, honored when Strategy is empty.
  enum class Mode { Guided, Exhaustive } SearchMode = Mode::Guided;
  /// StrategyRegistry name ("guided", "portfolio", ...); wins over
  /// SearchMode when non-empty. Unknown names degrade to guided with a
  /// note in the result's trace — a batch never aborts over one job.
  std::string Strategy;

  BatchJob(std::string Name, Kernel K, ExplorerOptions Opts,
           Mode SearchMode = Mode::Guided)
      : Name(std::move(Name)), K(std::move(K)), Opts(std::move(Opts)),
        SearchMode(SearchMode) {}
  BatchJob(std::string Name, Kernel K, ExplorerOptions Opts,
           std::string Strategy)
      : Name(std::move(Name)), K(std::move(K)), Opts(std::move(Opts)),
        Strategy(std::move(Strategy)) {}
};

/// One finished job, in submission order.
struct BatchResult {
  std::string Name;
  ExplorationResult Result;
};

/// Batch-level configuration.
struct BatchOptions {
  /// Concurrent jobs. <= 1 runs the batch sequentially (still sharing
  /// the cache across jobs).
  unsigned NumThreads = 1;
  /// Pool to run jobs on; created on demand when unset and NumThreads
  /// exceeds one.
  std::shared_ptr<ThreadPool> Pool;
  /// Estimate cache shared by every job; created when unset. Exposed so
  /// callers can carry warm state across batches.
  std::shared_ptr<EstimateCache> Cache;
  /// Trace recorder shared by every job (each job's events land on a
  /// track named after the job). Jobs that set their own recorder keep
  /// it. Unset: jobs fall back to TraceRecorder::global().
  std::shared_ptr<TraceRecorder> Trace;
  /// Crash-safety journal. When set, the batch registers it as the
  /// shared cache's completion observer — every finished estimation is
  /// durable (write-then-rename) the moment it lands — and records a
  /// winner summary after each job. To resume an interrupted run, load
  /// the journal, adopt() it into a fresh journal, and replayInto() the
  /// shared cache before runAll(); finished jobs then re-derive their
  /// winners from the warmed cache with zero backend calls, and the
  /// batch verifies each against its journaled record (a note lands in
  /// the result's trace either way).
  std::shared_ptr<EvaluationJournal> Journal;
  /// Per-backend circuit breakers shared by every job that does not
  /// bring its own (see ExplorerOptions::Breakers). Unset: no breakers.
  std::shared_ptr<CircuitBreakerRegistry> Breakers;
};

/// Collects jobs, runs them concurrently, returns ordered results.
class BatchExplorer {
public:
  explicit BatchExplorer(BatchOptions Opts = {});

  /// Queues one job. Convenience overloads label it with the kernel name
  /// and select the search by legacy mode or by registry strategy name.
  void addJob(BatchJob Job);
  void addJob(const Kernel &K, ExplorerOptions Opts,
              BatchJob::Mode Mode = BatchJob::Mode::Guided);
  void addJob(const Kernel &K, ExplorerOptions Opts, std::string Strategy);

  unsigned numJobs() const { return Jobs.size(); }

  /// Runs every queued job and clears the queue. Results are in
  /// submission order regardless of completion order.
  std::vector<BatchResult> runAll();

  /// The shared cache (for stats reporting and cross-batch reuse).
  const std::shared_ptr<EstimateCache> &estimateCache() const {
    return Cache;
  }

  //===--------------------------------------------------------------===//
  // Live progress, for the metrics gauges: readable from any thread
  // while runAll() executes on another.
  //===--------------------------------------------------------------===//

  /// Jobs the in-progress (or most recent) runAll() call took on.
  uint64_t jobsQueued() const {
    return JobsQueued.load(std::memory_order_relaxed);
  }
  /// Jobs that have finished so far in that call.
  uint64_t jobsCompleted() const {
    return JobsDone.load(std::memory_order_relaxed);
  }

private:
  BatchOptions Opts;
  std::shared_ptr<EstimateCache> Cache; // never null
  std::vector<BatchJob> Jobs;
  std::atomic<uint64_t> JobsQueued{0};
  std::atomic<uint64_t> JobsDone{0};
};

/// One-shot convenience: run \p Jobs with \p Opts.
std::vector<BatchResult> exploreBatch(std::vector<BatchJob> Jobs,
                                      const BatchOptions &Opts = {});

} // namespace defacto

#endif // DEFACTO_CORE_BATCHEXPLORER_H
