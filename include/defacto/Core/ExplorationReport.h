//===- ExplorationReport.h - Human-readable exploration explain -*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an ExplorationResult as a multi-line explanation: which design
/// won and why, how the balance-guided walk pruned the space (saturation
/// point, Observation-1 monotonicity, capacity), what every visited
/// design looked like, and — crucially — any degradation the run suffered
/// (permanent estimation failures, budget or deadline stops), which
/// one-line summaries tend to drop silently.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_EXPLORATIONREPORT_H
#define DEFACTO_CORE_EXPLORATIONREPORT_H

#include "defacto/Core/Explorer.h"

#include <string>

namespace defacto {

/// Knobs for renderExplorationReport.
struct ReportOptions {
  /// Emit the per-design visit table.
  bool ShowVisited = true;
  /// Rows of the visit table before eliding the middle (0 = unlimited).
  unsigned MaxVisitedRows = 24;
  /// Append the engine's raw textual walk trace verbatim.
  bool ShowWalkTrace = false;
  /// Append the per-pass pipeline timing table (pipeline.pass.* phase
  /// timers). The timers only accumulate while stats recording is
  /// enabled, and they are process-wide — in a batch the table covers
  /// every job run so far, not just this result.
  bool ShowPassTimings = false;
};

/// Full multi-line explanation of \p R. \p Label names the exploration
/// (kernel or batch-job name) in the heading; empty omits the heading.
std::string renderExplorationReport(const ExplorationResult &R,
                                    const std::string &Label = "",
                                    const ReportOptions &Opts = {});

} // namespace defacto

#endif // DEFACTO_CORE_EXPLORATIONREPORT_H
