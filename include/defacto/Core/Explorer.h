//===- Explorer.h - The design space exploration façade --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the balance-guided design space
/// exploration of Figure 2, packaged behind the historical one-object
/// API. Since the SearchStrategy / EvaluationService split the explorer
/// is a thin façade over the two layers:
///
///   DesignSpaceExplorer (this header, compatibility façade)
///        │ run() = guided strategy; runWithStrategy(name) = any
///        ▼
///   SearchStrategy (SearchStrategy.h — guided/exhaustive/random/
///        │          hillclimb/portfolio, plus the StrategyRegistry)
///        ▼
///   EvaluationService (EvaluationService.h — estimator seam, cache,
///                      retries/budget/deadline, speculation, trace)
///
/// run() executes the guided balance walk: starting from a
/// saturation-point design Uinit, the search walks unroll-factor vectors
/// using the monotonicity of balance (Observation 3): while compute
/// bound it doubles the unroll product (Increase); on crossing to memory
/// bound or exceeding capacity it bisects between the last compute-bound
/// design and the current one (SelectBetween), in multiples of Psat.
/// Memory bound at the saturation point stops immediately (no unrolling
/// can help). Capacity overflow at Uinit falls back to the largest
/// fitting design (FindLargestFit).
///
/// Exhaustive and random search baselines are provided for the coverage
/// and quality comparisons of §6.3.
///
/// Concurrency: with NumThreads > 1 (or an explicit Pool) the engine
/// speculatively evaluates the walk's whole candidate frontier — the
/// Increase doubling chain and the SelectBetween bisection midpoints,
/// both enumerable upfront in Psat multiples — on a worker pool, while
/// the walk itself runs unchanged and consumes memoized results in its
/// original deterministic order. The exhaustive and random baselines fan
/// every candidate out across the pool the same way. For a deterministic
/// estimation backend the selected design is bit-identical to the
/// sequential walk's; estimator attempts are charged to the evaluation
/// budget when the walk consumes a result, not when a worker computes it.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_EXPLORER_H
#define DEFACTO_CORE_EXPLORER_H

#include "defacto/Core/EvaluationService.h"
#include "defacto/Core/SearchStrategy.h"

namespace defacto {

/// Runs design-space explorations over \p Source: the guided walk via
/// run(), any registered strategy via runWithStrategy(). One explorer
/// keeps one EvaluationService, so repeated runs share its memoization
/// and accounting exactly as the pre-split engine did.
class DesignSpaceExplorer {
public:
  DesignSpaceExplorer(const Kernel &Source, ExplorerOptions Opts);
  ~DesignSpaceExplorer();

  /// The Figure-2 algorithm (the "guided" strategy).
  ExplorationResult run();

  /// Runs the named registered strategy over this explorer's evaluation
  /// service. Fails with InvalidInput (message lists the registered
  /// strategies) for an unknown name.
  Expected<ExplorationResult> runWithStrategy(const std::string &Name);

  /// Evaluates one unroll vector (cached). Returns std::nullopt for
  /// non-candidate vectors and for designs whose estimation permanently
  /// failed; evaluateChecked distinguishes the two.
  std::optional<SynthesisEstimate> evaluate(const UnrollVector &U) {
    return Svc.evaluate(U);
  }

  /// Evaluates one unroll vector under the degradation policy: retries
  /// with capped backoff, honors the deadline, caches successes and
  /// permanent failures alike. Deadline/budget errors are global
  /// conditions and are never cached against the vector.
  Expected<SynthesisEstimate> evaluateChecked(const UnrollVector &U) {
    return Svc.evaluateChecked(U);
  }

  /// Speculatively evaluates \p Candidates on the configured worker pool
  /// into the estimate cache; no-op in sequential mode. Later
  /// evaluate()/run() calls consume the results in their own
  /// deterministic order. Speculative work never charges the evaluation
  /// budget; consumption does.
  void prefetch(const std::vector<UnrollVector> &Candidates) {
    Svc.prefetch(Candidates);
  }

  /// Blocks until every outstanding speculative evaluation finished.
  void drainSpeculation() { Svc.drainSpeculation(); }

  /// The frontier run() would speculate: base, Uinit, the Increase
  /// doubling chain, and the SelectBetween bisection midpoint closure
  /// (Psat multiples), deduplicated and capped.
  std::vector<UnrollVector> guidedFrontier() const {
    return defacto::guidedFrontier(Svc);
  }

  const UnrollSpace &space() const { return Svc.space(); }
  const SaturationInfo &saturation() const { return Svc.saturation(); }

  /// The estimate cache this explorer reads and writes (the shared one
  /// from the options, or its private one).
  const std::shared_ptr<EstimateCache> &estimateCache() const {
    return Svc.estimateCache();
  }

  /// Estimator attempts spent so far (retries included).
  unsigned evaluationsUsed() const { return Svc.evaluationsUsed(); }

  /// Designs whose estimation permanently failed, oldest retained first
  /// (the log is a bounded ring; see
  /// ExplorerOptions::MaxFailureLogEntries).
  std::vector<EvaluationFailure> failures() const { return Svc.failures(); }

  /// Failure-log entries the ring bound evicted.
  uint64_t failuresDropped() const { return Svc.failuresDropped(); }

  /// The search's starting point (§5.3's Uinit selection).
  UnrollVector initialVector() const { return guidedInitialVector(Svc); }

  /// Emits one "dse.decision" trace event for an evaluated design; see
  /// EvaluationService::traceDecision. The exhaustive/random drivers
  /// call it per candidate; the guided walk at every branch.
  void traceDecision(const UnrollVector &U, const SynthesisEstimate &E,
                     const char *Role, const char *Decision) {
    Svc.traceDecision(U, E, Role, Decision);
  }

  /// The evaluation layer, for callers (custom strategies, tests) that
  /// need the full service API.
  EvaluationService &evaluationService() { return Svc; }

private:
  EvaluationService Svc;
};

/// Exhaustive baseline: evaluates every divisor vector and picks the
/// fastest fitting design, breaking ties by smaller area. Visited lists
/// every candidate. With Opts.NumThreads > 1 the candidates are estimated
/// concurrently; the reduction stays in candidate order, so the result is
/// identical to the sequential one.
ExplorationResult exploreExhaustive(const Kernel &Source,
                                    const ExplorerOptions &Opts);

/// Random-sampling baseline: evaluates \p Samples distinct candidates
/// drawn deterministically from \p Seed and picks the best as above.
ExplorationResult exploreRandom(const Kernel &Source,
                                const ExplorerOptions &Opts,
                                unsigned Samples, uint64_t Seed);

} // namespace defacto

#endif // DEFACTO_CORE_EXPLORER_H
