//===- Explorer.h - The design space exploration algorithm -----*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the balance-guided design space
/// exploration algorithm of Figure 2. Starting from a saturation-point
/// design Uinit, the search walks unroll-factor vectors using the
/// monotonicity of balance (Observation 3): while compute bound it
/// doubles the unroll product (Increase); on crossing to memory bound or
/// exceeding capacity it bisects between the last compute-bound design
/// and the current one (SelectBetween), in multiples of Psat. Memory
/// bound at the saturation point stops immediately (no unrolling can
/// help). Capacity overflow at Uinit falls back to the largest fitting
/// design (FindLargestFit).
///
/// Exhaustive and random search baselines are provided for the coverage
/// and quality comparisons of §6.3.
///
/// Concurrency: with NumThreads > 1 (or an explicit Pool) the engine
/// speculatively evaluates the walk's whole candidate frontier — the
/// Increase doubling chain and the SelectBetween bisection midpoints,
/// both enumerable upfront in Psat multiples — on a worker pool, while
/// the walk itself runs unchanged and consumes memoized results in its
/// original deterministic order. The exhaustive and random baselines fan
/// every candidate out across the pool the same way. For a deterministic
/// estimation backend the selected design is bit-identical to the
/// sequential walk's; estimator attempts are charged to the evaluation
/// budget when the walk consumes a result, not when a worker computes it.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_EXPLORER_H
#define DEFACTO_CORE_EXPLORER_H

#include "defacto/Core/DesignSpace.h"
#include "defacto/Core/EstimateCache.h"
#include "defacto/Core/Saturation.h"
#include "defacto/HLS/Estimator.h"
#include "defacto/Support/Error.h"
#include "defacto/Support/ThreadPool.h"
#include "defacto/Support/Trace.h"
#include "defacto/Transforms/Pipeline.h"

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace defacto {

/// Exploration configuration.
struct ExplorerOptions {
  TargetPlatform Platform = TargetPlatform::wildstarPipelined();
  /// |Balance - 1| <= tolerance counts as balanced (the paper's B == 1).
  double BalanceTolerance = 0.15;
  /// Budget of estimator attempts per run() (retries included). When it
  /// runs out the search stops and the best design evaluated so far is
  /// selected deterministically.
  unsigned MaxEvaluations = 100;
  /// §5.4: when set, designs needing more registers have their reuse
  /// chains shortened until the register count fits.
  std::optional<unsigned> RegisterCap;
  /// Pass toggles, for ablation studies (unroll factors are supplied by
  /// the search; the Unroll field here is ignored).
  TransformOptions BaseTransforms;

  //===--------------------------------------------------------------===//
  // Degradation policy. A synthesis-estimation backend is an unreliable
  // oracle (a real tool crashes, hangs, or times out); these knobs bound
  // what one exploration may spend on it and how it recovers.
  //===--------------------------------------------------------------===//

  /// Estimation backend; estimateDesignChecked when unset. FaultInjector
  /// (HLS/FaultInjector.h) wraps one backend in a fault-injecting one.
  EstimatorFn Estimator;
  /// Extra attempts after a failed estimation of the same design. A
  /// design failing all 1 + MaxRetries attempts is negatively cached and
  /// recorded in ExplorationResult::Failures.
  unsigned MaxRetries = 2;
  /// Pause before the first retry; doubled each further retry and capped
  /// at MaxBackoffSeconds. 0 retries immediately.
  double RetryBackoffSeconds = 0.0;
  double MaxBackoffSeconds = 1.0;
  /// Wall-clock budget for one exploration, measured by Clock from
  /// explorer construction. 0 disables the deadline.
  double DeadlineSeconds = 0.0;
  /// Time source (seconds) and sleeper behind the deadline and backoff.
  /// Defaults read the steady clock and really sleep; tests substitute a
  /// virtual clock for determinism.
  std::function<double()> Clock;
  std::function<void(double /*Seconds*/)> Sleep;

  //===--------------------------------------------------------------===//
  // Concurrency. Defaults keep every run fully sequential and
  // bit-identical to the historical engine.
  //===--------------------------------------------------------------===//

  /// Worker threads for the speculative frontier evaluation and the
  /// exhaustive/random fan-out. <= 1 means sequential. Parallel mode
  /// requires a thread-safe Estimator (the default backend is; a
  /// FaultInjector-wrapped one is not) and assumes it is deterministic —
  /// that is what makes the parallel walk's selection bit-identical to
  /// the sequential one's.
  unsigned NumThreads = 1;
  /// Worker pool to draw from; with NumThreads > 1 and no pool the
  /// explorer creates a private one. Sharing one pool across explorers
  /// (BatchExplorer does) bounds total worker threads.
  std::shared_ptr<ThreadPool> Pool;
  /// Estimate cache shared across explorers, runs, and threads. Unset:
  /// the explorer creates a private cache, i.e. per-instance memoization
  /// exactly as before.
  std::shared_ptr<EstimateCache> Cache;

  //===--------------------------------------------------------------===//
  // Observability. Off by default and zero-cost while off: a disabled
  // event site is one relaxed load and a branch.
  //===--------------------------------------------------------------===//

  /// Trace recorder the engine emits decision/speculation/phase events
  /// to; TraceRecorder::global() (disabled by default) when unset.
  /// Events are recorded only while the recorder is enabled.
  std::shared_ptr<TraceRecorder> Trace;
  /// Track label for this exploration's events (batch job name); the
  /// kernel's name when empty.
  std::string TraceLabel;
};

/// One design whose estimation permanently failed (every retry included),
/// or the condition that cut the search short (deadline or budget; then
/// Attempts is 0 and U is the design the search wanted next).
struct EvaluationFailure {
  UnrollVector U;
  unsigned Attempts = 0;
  Status Error;
};

/// One synthesized-and-estimated candidate.
struct EvaluatedDesign {
  UnrollVector U;
  SynthesisEstimate Estimate;
  /// Why the search visited it ("Uinit", "increase", "bisect", "fit").
  std::string Role;
};

/// Outcome of one exploration.
struct ExplorationResult {
  UnrollVector Selected;
  SynthesisEstimate SelectedEstimate;
  /// The paper's baseline: no unrolling, all other transformations.
  SynthesisEstimate BaselineEstimate;
  std::vector<EvaluatedDesign> Visited; // in search order, no duplicates
  /// False when no candidate — not even the baseline — fits the device
  /// (the kernel's mandatory registers alone exceed it); Selected then
  /// holds the baseline regardless.
  bool SelectedFits = true;
  /// True when the search did not run to healthy convergence: an
  /// estimation permanently failed, or the deadline or evaluation budget
  /// cut the walk short. Selected then holds the best design that was
  /// successfully evaluated (baseline included).
  bool Degraded = false;
  /// Machine-readable failure log; every entry is also mirrored into
  /// Trace as a "FAIL"/"stop" line.
  std::vector<EvaluationFailure> Failures;
  /// Estimator attempts actually spent (retries included; cached results
  /// consumed from a shared EstimateCache charge the attempts their
  /// original computation cost).
  unsigned EvaluationsUsed = 0;
  SaturationInfo Sat;
  uint64_t FullSpaceSize = 0;
  std::string Trace;

  double speedup() const {
    return SelectedEstimate.Cycles == 0
               ? 0.0
               : static_cast<double>(BaselineEstimate.Cycles) /
                     static_cast<double>(SelectedEstimate.Cycles);
  }
  double fractionSearched() const {
    return FullSpaceSize == 0
               ? 0.0
               : static_cast<double>(Visited.size()) /
                     static_cast<double>(FullSpaceSize);
  }

  /// One-line human-readable summary: selected design, estimate,
  /// speedup, evaluations, and the degradation flags (which callers
  /// otherwise tend to drop silently). ExplorationReport.h renders the
  /// full multi-line explanation.
  std::string toString() const;
};

/// Runs one design-space exploration over \p Source.
class DesignSpaceExplorer {
public:
  DesignSpaceExplorer(const Kernel &Source, ExplorerOptions Opts);
  ~DesignSpaceExplorer();

  /// The Figure-2 algorithm.
  ExplorationResult run();

  /// Evaluates one unroll vector (cached). Returns std::nullopt for
  /// non-candidate vectors and for designs whose estimation permanently
  /// failed; evaluateChecked distinguishes the two.
  std::optional<SynthesisEstimate> evaluate(const UnrollVector &U);

  /// Evaluates one unroll vector under the degradation policy: retries
  /// with capped backoff, honors the deadline, caches successes and
  /// permanent failures alike. Deadline/budget errors are global
  /// conditions and are never cached against the vector.
  Expected<SynthesisEstimate> evaluateChecked(const UnrollVector &U);

  /// Speculatively evaluates \p Candidates on the configured worker pool
  /// into the estimate cache; no-op in sequential mode. Later
  /// evaluate()/run() calls consume the results in their own
  /// deterministic order. Speculative work never charges the evaluation
  /// budget; consumption does.
  void prefetch(const std::vector<UnrollVector> &Candidates);

  /// Blocks until every outstanding speculative evaluation finished.
  void drainSpeculation();

  /// The frontier run() would speculate: base, Uinit, the Increase
  /// doubling chain, and the SelectBetween bisection midpoint closure
  /// (Psat multiples), deduplicated and capped.
  std::vector<UnrollVector> guidedFrontier() const;

  const UnrollSpace &space() const { return Space; }
  const SaturationInfo &saturation() const { return Sat; }

  /// The estimate cache this explorer reads and writes (the shared one
  /// from the options, or its private one).
  const std::shared_ptr<EstimateCache> &estimateCache() const {
    return Estimates;
  }

  /// Estimator attempts spent so far (retries included).
  unsigned evaluationsUsed() const { return Used; }

  /// Designs whose estimation permanently failed, in discovery order.
  const std::vector<EvaluationFailure> &failures() const { return FailLog; }

  /// The search's starting point (§5.3's Uinit selection).
  UnrollVector initialVector() const;

  /// Emits one "dse.decision" trace event for an evaluated design: the
  /// unroll vector, its balance/cycles/slices, why the walk visited it
  /// (\p Role) and what it decided next (\p Decision). No-op while the
  /// recorder is disabled. The exhaustive/random drivers call it per
  /// candidate; run() calls it at every branch of the guided walk.
  void traceDecision(const UnrollVector &U, const SynthesisEstimate &E,
                     const char *Role, const char *Decision);

private:
  /// "dse.failure" counterpart for designs whose evaluation failed (or
  /// the stop condition that cut the walk short).
  void traceFailure(const UnrollVector &U, const char *Role,
                    const Status &Err);
  TraceRecorder &recorder() const;
  /// One raw estimation attempt: transform pipeline + estimator (+ the
  /// §5.4 register-cap shrink loop). Thread-safe: touches only the
  /// shared read-only PipelineContext and the options.
  Expected<SynthesisEstimate> computeRaw(const UnrollVector &U) const;
  std::string cacheKey(const UnrollVector &U) const;
  std::shared_ptr<ThreadPool> workerPool();
  bool parallel() const { return Opts.Pool != nullptr || Opts.NumThreads > 1; }
  Status checkLimits() const;

  const Kernel &Source;
  ExplorerOptions Opts;
  SaturationInfo Sat;
  UnrollSpace Space;
  PipelineContext Ctx; // normalized base kernel, shared across workers
  uint64_t SourceFp = 0;
  std::vector<unsigned> Preference; // nest positions, best first
  std::shared_ptr<EstimateCache> Estimates; // never null
  std::shared_ptr<ThreadPool> Pool;         // created lazily when parallel
  std::vector<std::future<void>> Speculation;
  std::map<UnrollVector, SynthesisEstimate> Cache; // this run's successes
  std::map<UnrollVector, Status> FailCache; // this run's permanent failures
  std::vector<EvaluationFailure> FailLog;
  std::string Track; // trace track label (TraceLabel or kernel name)
  /// Decision-event sequence number within this exploration; assigned by
  /// the deterministic walk, so it is identical across thread counts.
  uint64_t DecisionOrdinal = 0;
  /// How the shared cache served the walk's most recent evaluation
  /// ("computed", "hit", "wait", ...): run-variant trace detail.
  const char *LastCacheOutcome = "none";
  unsigned Used = 0;
  /// MaxEvaluations is enforced only while run() is active; the
  /// exhaustive and random baselines enumerate freely.
  std::optional<unsigned> BudgetCap;
  double StartSeconds = 0;
};

/// Exhaustive baseline: evaluates every divisor vector and picks the
/// fastest fitting design, breaking ties by smaller area. Visited lists
/// every candidate. With Opts.NumThreads > 1 the candidates are estimated
/// concurrently; the reduction stays in candidate order, so the result is
/// identical to the sequential one.
ExplorationResult exploreExhaustive(const Kernel &Source,
                                    const ExplorerOptions &Opts);

/// Random-sampling baseline: evaluates \p Samples distinct candidates
/// drawn deterministically from \p Seed and picks the best as above.
ExplorationResult exploreRandom(const Kernel &Source,
                                const ExplorerOptions &Opts,
                                unsigned Samples, uint64_t Seed);

} // namespace defacto

#endif // DEFACTO_CORE_EXPLORER_H
