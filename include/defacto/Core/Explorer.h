//===- Explorer.h - The design space exploration algorithm -----*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the balance-guided design space
/// exploration algorithm of Figure 2. Starting from a saturation-point
/// design Uinit, the search walks unroll-factor vectors using the
/// monotonicity of balance (Observation 3): while compute bound it
/// doubles the unroll product (Increase); on crossing to memory bound or
/// exceeding capacity it bisects between the last compute-bound design
/// and the current one (SelectBetween), in multiples of Psat. Memory
/// bound at the saturation point stops immediately (no unrolling can
/// help). Capacity overflow at Uinit falls back to the largest fitting
/// design (FindLargestFit).
///
/// Exhaustive and random search baselines are provided for the coverage
/// and quality comparisons of §6.3.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_EXPLORER_H
#define DEFACTO_CORE_EXPLORER_H

#include "defacto/Core/DesignSpace.h"
#include "defacto/Core/Saturation.h"
#include "defacto/HLS/Estimator.h"
#include "defacto/Transforms/Pipeline.h"

#include <map>
#include <optional>
#include <string>

namespace defacto {

/// Exploration configuration.
struct ExplorerOptions {
  TargetPlatform Platform = TargetPlatform::wildstarPipelined();
  /// |Balance - 1| <= tolerance counts as balanced (the paper's B == 1).
  double BalanceTolerance = 0.15;
  /// Safety bound on synthesis estimations per exploration.
  unsigned MaxEvaluations = 100;
  /// §5.4: when set, designs needing more registers have their reuse
  /// chains shortened until the register count fits.
  std::optional<unsigned> RegisterCap;
  /// Pass toggles, for ablation studies (unroll factors are supplied by
  /// the search; the Unroll field here is ignored).
  TransformOptions BaseTransforms;
};

/// One synthesized-and-estimated candidate.
struct EvaluatedDesign {
  UnrollVector U;
  SynthesisEstimate Estimate;
  /// Why the search visited it ("Uinit", "increase", "bisect", "fit").
  std::string Role;
};

/// Outcome of one exploration.
struct ExplorationResult {
  UnrollVector Selected;
  SynthesisEstimate SelectedEstimate;
  /// The paper's baseline: no unrolling, all other transformations.
  SynthesisEstimate BaselineEstimate;
  std::vector<EvaluatedDesign> Visited; // in search order, no duplicates
  /// False when no candidate — not even the baseline — fits the device
  /// (the kernel's mandatory registers alone exceed it); Selected then
  /// holds the baseline regardless.
  bool SelectedFits = true;
  SaturationInfo Sat;
  uint64_t FullSpaceSize = 0;
  std::string Trace;

  double speedup() const {
    return SelectedEstimate.Cycles == 0
               ? 0.0
               : static_cast<double>(BaselineEstimate.Cycles) /
                     static_cast<double>(SelectedEstimate.Cycles);
  }
  double fractionSearched() const {
    return FullSpaceSize == 0
               ? 0.0
               : static_cast<double>(Visited.size()) /
                     static_cast<double>(FullSpaceSize);
  }
};

/// Runs one design-space exploration over \p Source.
class DesignSpaceExplorer {
public:
  DesignSpaceExplorer(const Kernel &Source, ExplorerOptions Opts);

  /// The Figure-2 algorithm.
  ExplorationResult run();

  /// Evaluates one unroll vector (cached). Returns std::nullopt for
  /// non-candidate vectors.
  std::optional<SynthesisEstimate> evaluate(const UnrollVector &U);

  const UnrollSpace &space() const { return Space; }
  const SaturationInfo &saturation() const { return Sat; }

  /// The search's starting point (§5.3's Uinit selection).
  UnrollVector initialVector() const;

private:
  SynthesisEstimate evaluateUncached(const UnrollVector &U);

  const Kernel &Source;
  ExplorerOptions Opts;
  SaturationInfo Sat;
  UnrollSpace Space;
  std::vector<unsigned> Preference; // nest positions, best first
  std::map<UnrollVector, SynthesisEstimate> Cache;
};

/// Exhaustive baseline: evaluates every divisor vector and picks the
/// fastest fitting design, breaking ties by smaller area. Visited lists
/// every candidate.
ExplorationResult exploreExhaustive(const Kernel &Source,
                                    const ExplorerOptions &Opts);

/// Random-sampling baseline: evaluates \p Samples distinct candidates
/// drawn deterministically from \p Seed and picks the best as above.
ExplorationResult exploreRandom(const Kernel &Source,
                                const ExplorerOptions &Opts,
                                unsigned Samples, uint64_t Seed);

} // namespace defacto

#endif // DEFACTO_CORE_EXPLORER_H
