//===- EvaluationService.h - The design-evaluation layer -------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mechanics half of the exploration engine: everything a search
/// policy needs to turn an unroll vector into a synthesis estimate,
/// with none of the policy itself. The service owns
///
///  - the estimator backend seam (ExplorerOptions::Estimator; a
///    FaultInjector wraps one backend in a fault-injecting one),
///  - the shared EstimateCache (positive and negative entries, in-flight
///    dedup via the ticket protocol),
///  - the degradation policy: retries with capped backoff, the wall-clock
///    deadline, and the evaluation budget with the engine's
///    charge-on-consumption semantics (a cached result charges the
///    attempts its original computation cost when it is consumed, not
///    when a worker computes it),
///  - speculation: prefetch() fans candidate evaluations out across the
///    worker pool; the strategy consumes memoized results in its own
///    deterministic order,
///  - per-evaluation observability: the "dse.decision" / "dse.failure" /
///    "dse.selection" trace events and the explore/cache stat counters.
///
/// SearchStrategy implementations (SearchStrategy.h) drive this API;
/// DesignSpaceExplorer (Explorer.h) is a thin façade over the two
/// layers. The service also computes the search context every policy
/// shares — saturation analysis, the unroll space, and the §5.3 loop
/// preference order — because all three derive from the normalized
/// kernel the service already owns for the transform pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_EVALUATIONSERVICE_H
#define DEFACTO_CORE_EVALUATIONSERVICE_H

#include "defacto/Core/DesignSpace.h"
#include "defacto/Core/EstimateCache.h"
#include "defacto/Core/Saturation.h"
#include "defacto/Core/TransformStageCache.h"
#include "defacto/HLS/Estimator.h"
#include "defacto/Support/Error.h"
#include "defacto/Support/ThreadPool.h"
#include "defacto/Support/Trace.h"
#include "defacto/Transforms/Pipeline.h"

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace defacto {

class CircuitBreakerRegistry;
struct ExplorationResult;

/// Evaluation fast-path selector (ExplorerOptions::FastPath).
enum class FastPathMode {
  Off,    ///< Historical per-candidate evaluation, bit for bit.
  On,     ///< Staged pipeline, arena clones, memoized scheduling.
  Verify, ///< Run both paths, assert bit-equality, return the slow result.
};

/// Exploration configuration, shared by every search strategy and the
/// evaluation service underneath them.
struct ExplorerOptions {
  TargetPlatform Platform = TargetPlatform::wildstarPipelined();
  /// |Balance - 1| <= tolerance counts as balanced (the paper's B == 1).
  double BalanceTolerance = 0.15;
  /// Budget of estimator attempts per run() (retries included). When it
  /// runs out the search stops and the best design evaluated so far is
  /// selected deterministically.
  unsigned MaxEvaluations = 100;
  /// §5.4: when set, designs needing more registers have their reuse
  /// chains shortened until the register count fits.
  std::optional<unsigned> RegisterCap;
  /// Pass toggles, for ablation studies (unroll factors are supplied by
  /// the search; the Unroll field here is ignored).
  TransformOptions BaseTransforms;

  //===--------------------------------------------------------------===//
  // Degradation policy. A synthesis-estimation backend is an unreliable
  // oracle (a real tool crashes, hangs, or times out); these knobs bound
  // what one exploration may spend on it and how it recovers.
  //===--------------------------------------------------------------===//

  /// Estimation backend; estimateDesignChecked when unset. FaultInjector
  /// (HLS/FaultInjector.h) wraps one backend in a fault-injecting one.
  EstimatorFn Estimator;
  /// Extra attempts after a failed estimation of the same design. A
  /// design failing all 1 + MaxRetries attempts is negatively cached and
  /// recorded in ExplorationResult::Failures.
  unsigned MaxRetries = 2;
  /// Pause before the first retry; doubled each further retry and capped
  /// at MaxBackoffSeconds. 0 retries immediately.
  double RetryBackoffSeconds = 0.0;
  double MaxBackoffSeconds = 1.0;
  /// Wall-clock budget for one exploration, measured by Clock from
  /// explorer construction. 0 disables the deadline.
  double DeadlineSeconds = 0.0;
  /// Time source (seconds) and sleeper behind the deadline and backoff.
  /// Defaults read the steady clock and really sleep; tests substitute a
  /// virtual clock for determinism.
  std::function<double()> Clock;
  std::function<void(double /*Seconds*/)> Sleep;
  /// Hang watchdog: every estimator invocation runs under a
  /// CancellationScope whose token self-cancels this many seconds after
  /// the invocation starts (measured by Clock). A cooperative backend —
  /// the real estimator polls in its scheduling loops, a FaultInjector
  /// hang polls between simulated sleeps — returns ErrorCode::Cancelled,
  /// which counts as a failed attempt under the normal retry policy.
  /// 0 disables the watchdog.
  double WatchdogSeconds = 0.0;
  /// Per-backend circuit breaker registry (keyed by the platform name),
  /// shared across a batch's explorations. When set, an open circuit
  /// fails evaluations fast with ErrorCode::BackendUnavailable before
  /// they reach the backend; fast failures are never cached against the
  /// design and charge no budget. Unset: no breaker (historical
  /// behavior).
  std::shared_ptr<CircuitBreakerRegistry> Breakers;
  /// Bound on the in-memory permanent-failure log. A fault storm in a
  /// long batch run must not grow memory without bound, so the log is a
  /// ring keeping the most recent entries; older ones are dropped and
  /// counted (failuresDropped()). Values below 1 clamp to 1.
  unsigned MaxFailureLogEntries = 1024;

  //===--------------------------------------------------------------===//
  // Concurrency. Defaults keep every run fully sequential and
  // bit-identical to the historical engine.
  //===--------------------------------------------------------------===//

  /// Worker threads for the speculative frontier evaluation and the
  /// exhaustive/random fan-out. <= 1 means sequential. Parallel mode
  /// requires a thread-safe Estimator (the default backend is; a
  /// FaultInjector-wrapped one is not) and assumes it is deterministic —
  /// that is what makes the parallel walk's selection bit-identical to
  /// the sequential one's.
  unsigned NumThreads = 1;
  /// Worker pool to draw from; with NumThreads > 1 and no pool the
  /// explorer creates a private one. Sharing one pool across explorers
  /// (BatchExplorer does) bounds total worker threads.
  std::shared_ptr<ThreadPool> Pool;
  /// Estimate cache shared across explorers, runs, and threads. Unset:
  /// the explorer creates a private cache, i.e. per-instance memoization
  /// exactly as before.
  std::shared_ptr<EstimateCache> Cache;

  //===--------------------------------------------------------------===//
  // Fast path. An evaluation-speed lever, never a results lever: every
  // mode produces the same estimates, the same winners, and the same
  // decision digest (fastpath_parity_test and Verify enforce it).
  //===--------------------------------------------------------------===//

  /// Off: the historical per-candidate pipeline. On: arena-allocated IR
  /// clones, memoized transform-stage prefixes (StageCache), the scalar-
  /// replacement site index, skipping the pipeline's verification pass
  /// when the built-in checked estimator re-verifies anyway, and the
  /// replication-aware estimator (estimateDesignCheckedFast). Verify:
  /// run both paths for every attempt, compare every estimate field
  /// bit-exactly (violations increment fastpath.parity_violations), and
  /// return the slow result.
  FastPathMode FastPath = FastPathMode::Off;
  /// Transform-stage snapshots shared across explorers, runs, and
  /// threads. Unset with FastPath != Off: the service creates a private
  /// cache.
  std::shared_ptr<TransformStageCache> StageCache;

  //===--------------------------------------------------------------===//
  // Observability. Off by default and zero-cost while off: a disabled
  // event site is one relaxed load and a branch.
  //===--------------------------------------------------------------===//

  /// Trace recorder the engine emits decision/speculation/phase events
  /// to; TraceRecorder::global() (disabled by default) when unset.
  /// Events are recorded only while the recorder is enabled.
  std::shared_ptr<TraceRecorder> Trace;
  /// Track label for this exploration's events (batch job name); the
  /// kernel's name when empty.
  std::string TraceLabel;
};

/// One design whose estimation permanently failed (every retry included),
/// or the condition that cut the search short (deadline or budget; then
/// Attempts is 0 and U is the design the search wanted next).
struct EvaluationFailure {
  UnrollVector U;
  unsigned Attempts = 0;
  Status Error;
  /// The full design point (equals DesignPoint(U) for unroll-only
  /// designs; carries the interchange/tile of a multi-dimensional one).
  /// Last member so the historical {U, Attempts, Error} aggregate
  /// initializations stay valid.
  DesignPoint Point;
};

/// The evaluation layer of one exploration: memoized, budgeted, traced
/// estimation of candidate designs over one source kernel.
///
/// Thread-compatibility: one service instance serves one search strategy
/// at a time (strategies call it from their driving thread); prefetch()
/// is the only entry point that fans work onto other threads, and the
/// underlying EstimateCache serializes those against the consuming walk.
class EvaluationService {
public:
  /// Normalizes \p Opts (default estimator/clock/sleep, private cache
  /// when none is shared) and computes the shared search context:
  /// saturation analysis, the unroll space, the normalized pipeline
  /// context, and the §5.3 unroll preference order.
  EvaluationService(const Kernel &Source, ExplorerOptions Opts);
  ~EvaluationService();

  EvaluationService(const EvaluationService &) = delete;
  EvaluationService &operator=(const EvaluationService &) = delete;

  /// Evaluates one unroll vector (cached). Returns std::nullopt for
  /// non-candidate vectors and for designs whose estimation permanently
  /// failed; evaluateChecked distinguishes the two.
  std::optional<SynthesisEstimate> evaluate(const UnrollVector &U);

  /// Evaluates one unroll vector under the degradation policy: retries
  /// with capped backoff, honors the deadline, caches successes and
  /// permanent failures alike. Deadline/budget errors are global
  /// conditions and are never cached against the vector.
  Expected<SynthesisEstimate> evaluateChecked(const UnrollVector &U);

  /// The multi-dimensional generalization: evaluates one design point
  /// (unroll + optional interchange/tile) under the same degradation
  /// policy and caches. For an unroll-only point this is bit-identical
  /// to evaluateChecked(P.Unroll) — same cache key, same trace events.
  /// Non-unroll-only points always take the historical (slow) pipeline
  /// route: the stage-cache factorization is only proven for the
  /// default shape.
  Expected<SynthesisEstimate> evaluateChecked(const DesignPoint &P);

  /// evaluate() over a design point.
  std::optional<SynthesisEstimate> evaluate(const DesignPoint &P);

  /// Speculatively evaluates \p Candidates on the configured worker pool
  /// into the estimate cache; no-op in sequential mode. Later
  /// evaluate() calls consume the results in their own deterministic
  /// order. Speculative work never charges the evaluation budget;
  /// consumption does.
  void prefetch(const std::vector<UnrollVector> &Candidates);

  /// prefetch() over design points.
  void prefetchPoints(const std::vector<DesignPoint> &Candidates);

  /// Blocks until every outstanding speculative evaluation finished.
  void drainSpeculation();

  /// Arms the evaluation budget: evaluateChecked fails with
  /// BudgetExhausted once \p MaxEvaluations attempts have been charged.
  /// Strategies that enumerate freely (the exhaustive baseline) never
  /// arm it.
  void beginBudget(unsigned MaxEvaluations);
  /// Disarms the budget (run teardown).
  void endBudget();

  /// Deadline/budget check, in that order; Status::ok() when neither
  /// limit is hit.
  Status checkLimits() const;

  //===--------------------------------------------------------------===//
  // Search context: deterministic per-kernel data every policy shares.
  //===--------------------------------------------------------------===//

  const Kernel &source() const { return Source; }
  /// The normalized options (never-null Estimator/Clock/Sleep).
  const ExplorerOptions &options() const { return Opts; }
  const UnrollSpace &space() const { return Space; }
  /// The generalized space composing the unroll lattice with interchange
  /// permutations and tile sizes (shape-validity for DesignPoints).
  const DesignSpace &designSpace() const { return DSpace; }
  const SaturationInfo &saturation() const { return Sat; }
  /// Nest positions in §5.3 unroll-preference order, best first.
  const std::vector<unsigned> &preference() const { return Preference; }

  //===--------------------------------------------------------------===//
  // Accounting.
  //===--------------------------------------------------------------===//

  /// The estimate cache this service reads and writes (the shared one
  /// from the options, or its private one).
  const std::shared_ptr<EstimateCache> &estimateCache() const {
    return Estimates;
  }

  /// Estimator attempts spent so far (retries included).
  unsigned evaluationsUsed() const { return Used; }

  /// Designs whose estimation permanently failed, oldest retained entry
  /// first. The log is a bounded ring (MaxFailureLogEntries); this
  /// materializes it in chronological order.
  std::vector<EvaluationFailure> failures() const;

  /// Failure-log entries evicted by the ring bound (a fault storm
  /// overflowing MaxFailureLogEntries).
  uint64_t failuresDropped() const { return DroppedFailures; }

  /// This run's successful evaluation of \p U, if it happened; never
  /// computes. Strategies use it for final selection without spending
  /// budget.
  std::optional<SynthesisEstimate> evaluated(const UnrollVector &U) const;

  /// evaluated() over a design point.
  std::optional<SynthesisEstimate> evaluated(const DesignPoint &P) const;

  //===--------------------------------------------------------------===//
  // Observability. The service is the single emission site for
  // per-evaluation trace events; strategies call these at every branch
  // so the decision digest stays deterministic across thread counts.
  //===--------------------------------------------------------------===//

  /// Emits one "dse.decision" trace event for an evaluated design: the
  /// unroll vector, its balance/cycles/slices, why the search visited it
  /// (\p Role) and what it decided next (\p Decision). No-op while the
  /// recorder is disabled.
  void traceDecision(const UnrollVector &U, const SynthesisEstimate &E,
                     const char *Role, const char *Decision);

  /// traceDecision over a design point. For unroll-only points the event
  /// is byte-identical to the UnrollVector overload (same name, same
  /// args) so unroll-only digests are unchanged; multi-dimensional
  /// points add deterministic "perm"/"tile" args.
  void traceDecision(const DesignPoint &P, const SynthesisEstimate &E,
                     const char *Role, const char *Decision);

  /// "dse.failure" counterpart for designs whose evaluation failed (or
  /// the stop condition that cut the walk short).
  void traceFailure(const UnrollVector &U, const char *Role,
                    const Status &Err);

  /// traceFailure over a design point.
  void traceFailure(const DesignPoint &P, const char *Role,
                    const Status &Err);

  /// Final "dse.selection" event summarizing \p Res.
  void traceSelection(const ExplorationResult &Res);

  /// The recorder events land on (injected or the global one).
  TraceRecorder &recorder() const;

  /// Track label for this exploration's events (TraceLabel or the
  /// kernel's name).
  const std::string &trackLabel() const { return Track; }

  /// True when a worker pool is configured (speculation is live).
  bool parallel() const { return Opts.Pool != nullptr || Opts.NumThreads > 1; }

  /// Raw estimation attempts currently executing, process-wide (every
  /// service, sequential walks and speculation workers alike). Tracked
  /// only while stats recording is enabled; the MetricsSampler exposes
  /// it as the in_flight_evals gauge.
  static uint64_t inFlightEvaluations();

private:
  /// One raw estimation attempt: transform pipeline + estimator (+ the
  /// §5.4 register-cap shrink loop). Thread-safe: touches only the
  /// shared read-only PipelineContext and the options. The single
  /// instrumentation chokepoint: records eval.latency_us and the
  /// estimate.* distributions, and tracks the in-flight gauge.
  Expected<SynthesisEstimate> computeRaw(const DesignPoint &P) const;
  /// computeRaw minus instrumentation: dispatches on Opts.FastPath;
  /// Verify runs both routes and compares. Non-unroll-only points and
  /// custom pipelines always route slow (the stage factorization is only
  /// proven for the default shape).
  Expected<SynthesisEstimate> computeDispatch(const DesignPoint &P) const;
  /// The historical route: applyPipeline + configured backend.
  Expected<SynthesisEstimate> computeSlow(const DesignPoint &P) const;
  /// The staged route: FastPathPipeline over this worker's IR arena,
  /// estimateDesignCheckedFast when the backend is the built-in one.
  Expected<SynthesisEstimate> computeFast(const DesignPoint &P) const;
  /// The per-point transform configuration: BaseTransforms plus the
  /// point's unroll vector (and interchange/tile when set) plus the
  /// platform's memory count.
  TransformOptions transformOptionsFor(const DesignPoint &P) const;
  /// The estimator seam both routes share: invocation timing, the hang
  /// watchdog, the dse.cancel trace event. \p FastBackend substitutes
  /// estimateDesignCheckedFast for the configured estimator.
  Expected<SynthesisEstimate> invokeBackend(const Kernel &K,
                                            const DesignPoint &P,
                                            bool FastBackend) const;
  /// Emits one run-variant "dse.stagecache" trace event.
  void traceStageCache(const DesignPoint &P, const StageRunInfo &Info) const;
  std::string cacheKey(const DesignPoint &P) const;
  std::shared_ptr<ThreadPool> workerPool();
  /// Appends to the bounded failure ring, evicting (and counting) the
  /// oldest entry when full.
  void logFailure(EvaluationFailure F);
  /// Emits one "dse.breaker" trace event for a circuit transition or
  /// admission decision ("opened", "reopened", "closed", "probe",
  /// "fail-fast").
  void traceBreaker(const char *What);

  const Kernel &Source;
  ExplorerOptions Opts;
  SaturationInfo Sat;
  UnrollSpace Space;
  DesignSpace DSpace; // the generalized space over Space
  PipelineContext Ctx; // normalized base kernel, shared across workers
  uint64_t SourceFp = 0;
  std::vector<unsigned> Preference; // nest positions, best first
  std::shared_ptr<EstimateCache> Estimates; // never null
  /// Stage snapshots (never null when FastPath != Off) and the staged
  /// pipeline over Ctx; unset in Off mode.
  std::shared_ptr<TransformStageCache> Stages;
  std::optional<FastPathPipeline> FastPipeline;
  /// No estimator was injected, i.e. the backend is the built-in checked
  /// estimator — the precondition for the fast estimator substitution
  /// and for skipping the pipeline's redundant verification pass.
  bool DefaultEstimator = false;
  std::shared_ptr<ThreadPool> Pool;         // created lazily when parallel
  std::vector<std::future<void>> Speculation;
  std::map<DesignPoint, SynthesisEstimate> Cache; // this run's successes
  std::map<DesignPoint, Status> FailCache; // this run's permanent failures
  /// Bounded failure ring: oldest entry at FailLogStart once the ring
  /// wrapped; failures() linearizes it.
  std::vector<EvaluationFailure> FailLog;
  size_t FailLogStart = 0;
  uint64_t DroppedFailures = 0;
  std::string Track; // trace track label (TraceLabel or kernel name)
  /// Decision-event sequence number within this exploration; assigned by
  /// the deterministic walk, so it is identical across thread counts.
  uint64_t DecisionOrdinal = 0;
  /// How the shared cache served the walk's most recent evaluation
  /// ("computed", "hit", "wait", ...): run-variant trace detail.
  const char *LastCacheOutcome = "none";
  unsigned Used = 0;
  /// MaxEvaluations is enforced only between beginBudget()/endBudget();
  /// the exhaustive and random baselines enumerate freely.
  std::optional<unsigned> BudgetCap;
  double StartSeconds = 0;
};

} // namespace defacto

#endif // DEFACTO_CORE_EVALUATIONSERVICE_H
