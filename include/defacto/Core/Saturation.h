//===- Saturation.h - Saturation point analysis ----------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The saturation point (§5.1): the unroll product at which the design's
/// memory parallelism reaches the board's bandwidth,
///
///     Psat = lcm(gcd(R, W), NumMemories)
///
/// where R and W are the numbers of uniformly generated read and write
/// sets that remain as memory accesses after scalar replacement and
/// redundant write elimination. Only loops whose residual accesses vary
/// with them contribute memory parallelism when unrolled (§5.1's "ui = 1
/// for loops whose subscripts are invariant"), so the analysis also
/// reports which nest positions are worth unrolling for bandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_SATURATION_H
#define DEFACTO_CORE_SATURATION_H

#include "defacto/IR/Kernel.h"

#include <cstdint>
#include <vector>

namespace defacto {

/// Saturation analysis result.
struct SaturationInfo {
  /// Uniformly generated read sets with residual memory accesses.
  unsigned R = 0;
  /// Uniformly generated write sets with residual memory accesses.
  unsigned W = 0;
  /// Psat = lcm(gcd(R, W), NumMemories).
  int64_t Psat = 1;
  /// Per nest position: true when residual steady-state accesses vary
  /// with that loop (unrolling it adds memory parallelism).
  std::vector<bool> MemoryVarying;
  /// Trip count per nest position of the normalized source nest.
  std::vector<int64_t> Trips;
};

/// Computes saturation data for \p Source (an untransformed kernel). The
/// analysis applies normalization and scalar replacement internally to
/// find the residual accesses; \p Source is not modified.
SaturationInfo computeSaturation(const Kernel &Source, unsigned NumMemories);

} // namespace defacto

#endif // DEFACTO_CORE_SATURATION_H
