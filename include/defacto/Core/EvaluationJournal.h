//===- EvaluationJournal.h - Durable evaluation log with resume -*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe persistence for batch exploration. A long BatchExplorer
/// run spends almost all of its time in estimator invocations; if the
/// process dies (tool crash, OOM kill, preempted node), every completed
/// estimation used to die with it. The journal makes them durable:
///
///  - one JSONL record per *completed* evaluation — the full
///    SynthesisEstimate (success) or the permanent-failure Status, plus
///    the estimator attempts it cost, keyed by the same
///    (kernel fingerprint, platform, transforms, unroll, register-cap)
///    string as the EstimateCache entry it mirrors;
///  - one record per finished batch job (winner summary), so a resumed
///    run can verify it reproduces the same selection;
///  - a header record carrying the format version.
///
/// Durability is write-then-rename: every flush rewrites the full
/// journal to "<path>.tmp" and renames it over "<path>", so the file on
/// disk is always a complete, valid prefix of the run — a crash can
/// lose at most the records since the last flush, never corrupt the
/// file. Loading is additionally tolerant of truncated or garbage lines
/// (counted, skipped), so even a journal from a torn filesystem resumes.
///
/// Resume = replayInto(EstimateCache): every journaled evaluation is
/// seeded as a completed cache entry carrying its original attempt
/// count. Because the engine charges budget on consumption and every
/// search strategy is deterministic given the cache contents, a resumed
/// run consumes the seeded results exactly as the interrupted run
/// computed them — same winners, same decision digests, zero backend
/// calls for journaled designs. Doubles round-trip through hexfloat
/// strings, so "bit-identical" means exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_EVALUATIONJOURNAL_H
#define DEFACTO_CORE_EVALUATIONJOURNAL_H

#include "defacto/Core/EstimateCache.h"
#include "defacto/Support/Error.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace defacto {

/// Winner summary of one finished batch job.
struct JournalJobRecord {
  std::string Name;
  std::string Strategy;
  /// Selected unroll vector, in unrollVectorToString form.
  std::string Selected;
  uint64_t Cycles = 0;
  double Slices = 0;
  unsigned Evaluations = 0;
  bool Degraded = false;
  bool Fits = true;
};

/// Append-mostly JSONL journal of completed evaluations and finished
/// jobs. Thread-safe: the estimate cache's completion observer appends
/// from worker threads.
class EvaluationJournal {
public:
  /// Everything a journal file held, in record order (evaluations
  /// deduplicated by key, jobs by name — last record wins).
  struct Contents {
    std::vector<std::pair<std::string, EstimateCache::Result>> Evaluations;
    std::vector<JournalJobRecord> Jobs;
    /// Lines that failed JSON parsing or carried an unknown shape —
    /// e.g. the torn final line of a crashed run. Skipped, not fatal.
    unsigned SkippedLines = 0;
  };

  /// Creates a journal that persists to \p Path. Nothing is written
  /// until the first record (or an explicit flush()).
  explicit EvaluationJournal(std::string Path);

  EvaluationJournal(const EvaluationJournal &) = delete;
  EvaluationJournal &operator=(const EvaluationJournal &) = delete;

  /// Parses the journal at \p Path. A missing file yields empty
  /// Contents (resuming a run that never started is a no-op, not an
  /// error); an unreadable file is an error.
  static Expected<Contents> load(const std::string &Path);

  /// Adopts previously-loaded contents as this journal's starting
  /// state, so the next flush preserves them (resume compaction:
  /// rewriting drops any corrupt lines the crashed run left behind).
  void adopt(const Contents &C);

  /// Records one completed evaluation; duplicate keys are ignored (the
  /// cache computes each design once, and a resumed run re-observes
  /// nothing because replayed entries never re-fulfill).
  void recordEvaluation(const std::string &Key,
                        const EstimateCache::Result &R);

  /// Records one finished job; a record with the same name replaces the
  /// old one (a resumed run re-finishes its jobs).
  void recordJob(const JournalJobRecord &J);

  /// The job record for \p Name, when one was journaled.
  std::optional<JournalJobRecord> jobRecord(const std::string &Name) const;

  /// Seeds every journaled evaluation into \p Cache as a completed
  /// entry; returns how many entries were inserted.
  unsigned replayInto(EstimateCache &Cache) const;

  /// Journaled evaluation / job counts (for resume banners).
  size_t numEvaluations() const;
  size_t numJobs() const;

  /// Writes the whole journal to "<path>.tmp" and renames it over
  /// "<path>". Called automatically after every record; returns the
  /// first I/O error encountered.
  Status flush();

  const std::string &path() const { return Path; }

private:
  Status flushLocked();

  std::string Path;
  mutable std::mutex M;
  /// Insertion-ordered evaluation records (Keys) with a lookup map into
  /// them, plus job records by name.
  std::vector<std::string> EvalOrder;
  std::map<std::string, EstimateCache::Result> Evaluations;
  std::vector<std::string> JobOrder;
  std::map<std::string, JournalJobRecord> Jobs;
};

} // namespace defacto

#endif // DEFACTO_CORE_EVALUATIONJOURNAL_H
