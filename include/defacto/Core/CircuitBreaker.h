//===- CircuitBreaker.h - Per-backend fail-fast state machine --*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of circuit breakers, one per estimation backend key (the
/// target platform's name — one synthesis-tool installation per board in
/// the deployment this models). The breaker protects a long batch run
/// from a *dead* backend: retries and negative caching handle designs
/// that individually fail, but when every call fails, each new design
/// still costs 1 + MaxRetries doomed backend invocations plus backoff
/// sleeps. The breaker converts that retry storm into an immediate
/// ErrorCode::BackendUnavailable, which flows into the explorer's
/// existing degradation path (best-evaluated fallback, Degraded flag).
///
/// Classic three-state machine, per key:
///
///   Closed ──(FailureThreshold consecutive permanent failures)──▶ Open
///   Open ──(CooldownSeconds elapse; next admit() becomes the one
///           half-open probe)──▶ HalfOpen
///   HalfOpen ──probe succeeds──▶ Closed    (service restored)
///   HalfOpen ──probe fails────▶ Open       (cooldown restarts)
///
/// "Permanent failure" means a design failed every retry — individual
/// attempt failures that a retry recovers never trip the breaker, and a
/// success in Closed resets the consecutive count. Time comes from the
/// caller (the exploration's injected clock), so tests drive the
/// cooldown virtually. The registry is thread-safe and shared across a
/// batch's jobs; EvaluationService emits a "dse.breaker" trace event and
/// counters on every state transition.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_CORE_CIRCUITBREAKER_H
#define DEFACTO_CORE_CIRCUITBREAKER_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace defacto {

/// Policy knobs for every breaker a registry manages.
struct CircuitBreakerOptions {
  /// Consecutive permanent failures that open the circuit.
  unsigned FailureThreshold = 5;
  /// Seconds an open circuit waits before admitting one half-open probe.
  double CooldownSeconds = 30.0;
};

/// Thread-safe map of backend key -> breaker state.
class CircuitBreakerRegistry {
public:
  enum class State { Closed, Open, HalfOpen };

  /// What admit() tells the caller to do with one evaluation.
  enum class Decision {
    Allow,    ///< Circuit closed: call the backend normally.
    Probe,    ///< This call is the half-open probe; report its outcome.
    FailFast, ///< Circuit open: fail without touching the backend.
  };

  /// Point-in-time view of one breaker, for reports and tests.
  struct Snapshot {
    State Current = State::Closed;
    unsigned ConsecutiveFailures = 0;
    uint64_t TimesOpened = 0;
    uint64_t FastFailures = 0;
    uint64_t Probes = 0;
  };

  explicit CircuitBreakerRegistry(CircuitBreakerOptions Opts = {});

  CircuitBreakerRegistry(const CircuitBreakerRegistry &) = delete;
  CircuitBreakerRegistry &operator=(const CircuitBreakerRegistry &) = delete;

  /// Admission decision for one evaluation against \p Key at time \p Now
  /// (the exploration clock). Transitions Open -> HalfOpen when the
  /// cooldown elapsed; only one probe is outstanding at a time.
  Decision admit(const std::string &Key, double Now);

  /// Reports a successful evaluation. Returns the transition this caused
  /// ("closed" when a probe restored service) or nullptr.
  const char *recordSuccess(const std::string &Key, double Now);

  /// Reports a permanently-failed evaluation (every retry exhausted).
  /// Returns "opened" (threshold reached) or "reopened" (probe failed)
  /// when the circuit trips, nullptr otherwise.
  const char *recordFailure(const std::string &Key, double Now);

  Snapshot snapshot(const std::string &Key) const;

  /// Every breaker the registry has seen, keyed and sorted by backend
  /// key — the metrics gauges derive open/half-open counts from this.
  std::vector<std::pair<std::string, Snapshot>> snapshotAll() const;

  const CircuitBreakerOptions &options() const { return Opts; }

private:
  struct Breaker {
    State Current = State::Closed;
    unsigned ConsecutiveFailures = 0;
    double OpenedAt = 0;
    bool ProbeInFlight = false;
    uint64_t TimesOpened = 0;
    uint64_t FastFailures = 0;
    uint64_t Probes = 0;
  };

  CircuitBreakerOptions Opts;
  mutable std::mutex M;
  std::map<std::string, Breaker> Breakers;
};

} // namespace defacto

#endif // DEFACTO_CORE_CIRCUITBREAKER_H
