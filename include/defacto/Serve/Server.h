//===- Server.h - The batching DSE daemon core -----------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exploration-as-a-service: a long-running, single-machine DSE server
/// that answers "which unroll vector?" over a Unix-domain socket and
/// keeps every expensive cache warm across requests. The paper prunes
/// ~99.7% of the design space per query; the server amortizes the rest
/// across queries — a repeat or near-repeat request consumes memoized
/// estimates and transform-stage snapshots instead of re-running the
/// synthesis estimator.
///
/// Architecture (one DseServer instance per daemon):
///
///   accept thread ──► one reader thread per connection
///                        │  parse + validate (bad requests answered
///                        │  immediately, never queued)
///                        ▼
///                 bounded admission queue ── full? ─► "overloaded" reply
///                        │                            (backpressure, the
///                        ▼                             429 analogue)
///                 batch worker: drains up to MaxBatch queued requests,
///                 coalesces them into ONE BatchExplorer run over the
///                 process-lifetime EstimateCache / TransformStageCache /
///                 worker pool, then fulfills each request's reply
///
/// Resilience reuses the Core seams wholesale: per-request Cancellation
/// deadline tokens (expired requests answer "deadline" without spending
/// budget), per-platform circuit breakers, and the evaluation journal —
/// with --journal every completed estimation is durable, and a restarted
/// daemon replays the journal into the shared cache so the interrupted
/// request is served from replayed state (chaos_serve_resume.sh proves
/// it under SIGKILL).
///
/// Observability: serve.requests/hits/overloads/deadline_misses/errors/
/// batches counters, the serve.request_us latency histogram, one
/// "serve.request" trace event per reply, and registerGauges() wires
/// queue depth / in-flight jobs / cache sizes into a MetricsSampler so
/// defacto_monitor works unmodified against a live daemon.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SERVE_SERVER_H
#define DEFACTO_SERVE_SERVER_H

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Serve/Protocol.h"
#include "defacto/Support/Socket.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace defacto {

class MetricsSampler;

/// Daemon configuration.
struct ServeOptions {
  /// Filesystem path of the Unix-domain socket to listen on.
  std::string SocketPath;
  /// Worker threads for coalesced batch runs (BatchOptions::NumThreads).
  unsigned NumThreads = 2;
  /// Admission bound: queued explore requests past this depth are
  /// answered "overloaded" immediately. 0 rejects everything (useful in
  /// tests); the daemon default is 64.
  unsigned MaxQueueDepth = 64;
  /// Requests coalesced into one BatchExplorer run.
  unsigned MaxBatch = 8;
  /// Evaluation fast path for served explorations; the stage cache is
  /// shared across every request when enabled.
  FastPathMode FastPath = FastPathMode::On;
  /// Per-evaluation hang watchdog (ExplorerOptions::WatchdogSeconds).
  double WatchdogSeconds = 0;
  /// Per-platform circuit breaker; 0 disables.
  unsigned BreakerThreshold = 0;
  double BreakerCooldownSeconds = 30;
  /// Crash-safety journal path; empty disables. When the file already
  /// exists at start(), its contents are replayed into the shared cache
  /// (daemon-restart resume).
  std::string JournalPath;
  /// Recorder for serve.* and dse.* events; TraceRecorder::global()
  /// when unset.
  std::shared_ptr<TraceRecorder> Trace;
};

/// The daemon core. start() spins the accept/worker threads; stop()
/// drains and joins them. Tools embed it (tools/defacto_served.cpp);
/// tests and the serve_throughput bench run it in-process.
class DseServer {
public:
  explicit DseServer(ServeOptions Opts);
  ~DseServer();

  DseServer(const DseServer &) = delete;
  DseServer &operator=(const DseServer &) = delete;

  /// Binds the socket, replays the journal (when configured and
  /// present), and starts the accept + batch-worker threads.
  Status start();

  /// Stops accepting, fails queued requests with a shutting-down error,
  /// finishes the in-flight batch, and joins every thread. Idempotent.
  void stop();

  /// Blocks until a client's "shutdown" request (or requestStop()).
  void waitForShutdownRequest();

  /// Asks the daemon loop to exit (signal handlers and tests).
  void requestStop();

  /// The deterministic batch-job label for \p Req over \p K — also the
  /// journal job key and the trace track, so a restarted daemon (or a
  /// standalone run in a test) re-derives the identical identity.
  static std::string requestJobName(const ServeRequest &Req, const Kernel &K);

  //===--------------------------------------------------------------===//
  // Warm state and live gauges.
  //===--------------------------------------------------------------===//

  const std::string &socketPath() const { return Opts.SocketPath; }

  const std::shared_ptr<EstimateCache> &estimateCache() const {
    return Cache;
  }
  const std::shared_ptr<TransformStageCache> &stageCache() const {
    return StageCache;
  }

  /// Journal entries replayed into the cache at start().
  unsigned resumedEvaluations() const { return ResumedEvals; }

  uint64_t requestsReceived() const { return Requests.load(); }
  uint64_t warmHits() const { return WarmHits.load(); }
  uint64_t overloads() const { return Overloads.load(); }
  uint64_t deadlineMisses() const { return DeadlineMisses.load(); }
  uint64_t errorReplies() const { return ErrorReplies.load(); }
  uint64_t batchesRun() const { return Batches.load(); }
  uint64_t queueDepth() const;
  uint64_t inFlightJobs() const { return InFlight.load(); }

  /// Registers the daemon's gauges (serve_queue_depth, serve_in_flight,
  /// cache_designs, stage_entries, in_flight_evals, breakers_open) on
  /// \p Sampler. Call before Sampler.start().
  void registerGauges(MetricsSampler &Sampler);

private:
  struct Pending;

  void acceptLoop();
  void connectionLoop(UnixConnection Conn);
  void workerLoop();
  /// Runs one coalesced batch and fulfills every reply.
  void runBatch(std::vector<std::shared_ptr<Pending>> Batch);
  ServeResponse handlePing(const ServeRequest &Req) const;
  /// Validates an explore request into a Pending (kernel built, platform
  /// resolved); an error ServeResponse otherwise.
  Expected<std::shared_ptr<Pending>> admitPrep(const ServeRequest &Req);
  void emitRequestTrace(const ServeRequest &Req, const ServeResponse &Resp);
  TraceRecorder &recorder() const;

  ServeOptions Opts;
  UnixListener Listener;

  // Process-lifetime warm state, shared by every served batch.
  std::shared_ptr<EstimateCache> Cache;
  std::shared_ptr<TransformStageCache> StageCache; // null when FastPath off
  std::shared_ptr<ThreadPool> Pool;                // null when NumThreads <= 1
  std::shared_ptr<CircuitBreakerRegistry> Breakers;
  std::shared_ptr<EvaluationJournal> Journal;
  unsigned ResumedEvals = 0;

  std::atomic<bool> Running{false};
  std::atomic<bool> Stop{false};
  std::atomic<bool> ShutdownRequested{false};
  std::mutex ShutdownM;
  std::condition_variable ShutdownCV;

  mutable std::mutex QueueM;
  std::condition_variable QueueCV;
  std::deque<std::shared_ptr<Pending>> Queue;

  std::thread AcceptThread;
  std::thread WorkerThread;
  std::mutex ConnM;
  std::vector<std::thread> ConnThreads;
  std::vector<int> ConnFds; // live connection fds, for stop()'s shutdown(2)

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> WarmHits{0};
  std::atomic<uint64_t> Overloads{0};
  std::atomic<uint64_t> DeadlineMisses{0};
  std::atomic<uint64_t> ErrorReplies{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> InFlight{0};
  std::atomic<uint64_t> NextSeq{0};
};

} // namespace defacto

#endif // DEFACTO_SERVE_SERVER_H
