//===- Protocol.h - The DSE daemon wire protocol ---------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol between defacto_served and its
/// clients (docs/SERVING.md documents it for humans). One request per
/// line, one reply per line, replies in request order per connection.
///
/// Three commands:
///  - "explore": the real work — run one design-space exploration and
///    return the winner. Identified by a kernel (named benchmark kernel
///    or inline C source), a platform, a strategy, an optional pass
///    pipeline, an evaluation budget, and an optional deadline.
///  - "ping": liveness + warm-state probe (cache sizes, request
///    counters, journal-resume count). Never queued.
///  - "shutdown": ask the daemon to finish in-flight work and exit.
///
/// Reply statuses mirror the driver exit-code taxonomy: "ok" healthy,
/// "degraded" completed under faults/deadline/budget, "overloaded" the
/// admission queue was full (the 429 analogue — retry later),
/// "deadline" the request's deadline expired before evaluation began,
/// "error" the request itself was invalid (unknown kernel/platform/
/// strategy/pipeline, unparsable source or JSON).
///
/// Doubles that feed bit-identity checks (slices) travel as hexfloat
/// strings, the journal's exact-round-trip convention.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SERVE_PROTOCOL_H
#define DEFACTO_SERVE_PROTOCOL_H

#include "defacto/Support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace defacto {

/// One client request, one JSONL line on the wire.
struct ServeRequest {
  /// Echoed verbatim in the reply so pipelined clients can correlate.
  std::string Id;
  /// "explore" (default), "ping", or "shutdown".
  std::string Cmd = "explore";
  /// Named benchmark kernel (paper or extended set)...
  std::string Kernel;
  /// ...or inline C source, parsed by the frontend. When both are set,
  /// Source wins and Kernel names it.
  std::string Source;
  std::string Platform = "wildstar-pipelined";
  std::string Strategy = "guided";
  /// Pass-pipeline text ("normalize,unroll,..."); empty = default.
  std::string Pipeline;
  /// Evaluation budget (ExplorerOptions::MaxEvaluations).
  unsigned Budget = 100;
  /// Seconds from admission until the request expires; 0 = no deadline.
  double DeadlineSeconds = 0;
  /// Request the deterministic decision digest (hash) in the reply —
  /// clients use it to prove a served result bit-identical to a
  /// standalone run.
  bool WantDigest = false;

  std::string toJson() const;
};

/// Parses one request line. Unknown fields are ignored (forward
/// compatibility); a missing/unknown "cmd" or non-object line is an
/// error the server answers with an "error" reply.
Expected<ServeRequest> parseServeRequest(const std::string &Line);

/// Reply status taxonomy; see file comment.
enum class ServeStatus {
  Ok,
  Degraded,
  Overloaded,
  Deadline,
  Error,
  Pong, ///< Reply to "ping".
  Bye,  ///< Reply to "shutdown".
};

const char *serveStatusName(ServeStatus S);

/// One daemon reply, one JSONL line on the wire.
struct ServeResponse {
  std::string Id;
  ServeStatus RStatus = ServeStatus::Error;
  /// Human-readable reason for Error/Overloaded/Deadline replies.
  std::string Reason;

  // Explore results.
  std::string Kernel;
  std::string Strategy;
  std::string Platform;
  /// The winning design (DesignPoint::toString form).
  std::string Selected;
  uint64_t Cycles = 0;
  double Slices = 0;
  double Speedup = 0;
  unsigned Evaluations = 0;
  bool Fits = true;
  bool Degraded = false;

  /// True when this request's batch consumed only warm cache state (no
  /// new backend computation) — the repeat-query fast path. Attribution
  /// is batch-level: a request coalesced with cold neighbours reports
  /// cold (see docs/SERVING.md).
  bool Warm = false;
  /// Estimate-cache hit/miss deltas over the batch window that served
  /// this request.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Batch sequence number and how many requests it coalesced.
  uint64_t BatchSeq = 0;
  unsigned BatchSize = 0;
  /// Admission-to-reply latency, daemon-side.
  double LatencyUs = 0;
  /// FNV-1a hash over the deterministic decision-digest lines, hex;
  /// present when the request set WantDigest.
  std::string Digest;

  // Ping extras.
  uint64_t CacheDesigns = 0;
  uint64_t StageCacheEntries = 0;
  uint64_t Requests = 0;
  unsigned ResumedEvaluations = 0;

  std::string toJson() const;
};

/// Parses one reply line (the client and the tests).
Expected<ServeResponse> parseServeResponse(const std::string &Line);

/// FNV-1a 64-bit hash over \p Lines (each terminated with '\n'), as a
/// fixed-width hex string. The digest the daemon returns for
/// WantDigest requests; tests hash TraceRecorder::decisionDigest() with
/// the same function to prove bit-identity.
std::string digestHash(const std::vector<std::string> &Lines);

} // namespace defacto

#endif // DEFACTO_SERVE_PROTOCOL_H
