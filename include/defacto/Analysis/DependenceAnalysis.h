//===- DependenceAnalysis.h - Affine data dependence analysis --*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data dependence analysis on affine array accesses: the capability the
/// paper identifies as the key advantage of parallelizing compiler
/// technology over behavioral synthesis (§2.3, Table 1).
///
/// For uniformly generated pairs the analysis computes exact dependence
/// distance vectors (with per-loop "star" entries when a loop does not
/// constrain the distance, e.g. C[i] reused across every j iteration).
/// For other pairs it falls back to GCD and Banerjee existence tests and
/// records a conservative, distance-less dependence.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_ANALYSIS_DEPENDENCEANALYSIS_H
#define DEFACTO_ANALYSIS_DEPENDENCEANALYSIS_H

#include "defacto/IR/IRUtils.h"
#include "defacto/IR/Kernel.h"

#include <optional>
#include <string>
#include <vector>

namespace defacto {

/// Dependence classes. Input dependences (read-read) are retained because
/// they describe data reuse exploited by scalar replacement.
enum class DepKind { Flow, Anti, Output, Input };

const char *depKindName(DepKind Kind);

/// One component of a dependence distance vector.
struct DistanceEntry {
  enum class Kind {
    Exact, ///< The distance in this loop is exactly Value.
    Star,  ///< The loop does not constrain the distance (any value).
  };
  Kind EntryKind = Kind::Exact;
  int64_t Value = 0;

  static DistanceEntry exact(int64_t V) {
    return {Kind::Exact, V};
  }
  static DistanceEntry star() { return {Kind::Star, 0}; }

  bool isExact() const { return EntryKind == Kind::Exact; }
  bool isStar() const { return EntryKind == Kind::Star; }
  bool isExactZero() const { return isExact() && Value == 0; }

  std::string toString() const;
};

/// A dependence between two access instances, oriented source -> dest
/// (source instance executes no later than the destination instance).
struct Dependence {
  const ArrayAccessExpr *Src = nullptr;
  const ArrayAccessExpr *Dst = nullptr;
  DepKind Kind = DepKind::Flow;

  /// True when Distance below is meaningful (a consistent dependence in
  /// the paper's terminology). Inconsistent dependences have no distance
  /// and are treated conservatively.
  bool Consistent = false;

  /// Distance per loop in nest order (outermost first); only valid when
  /// Consistent.
  std::vector<DistanceEntry> Distance;

  /// All-exact-zero distance: both instances in the same iteration.
  bool isLoopIndependent() const;

  /// Nest position (0 = outermost) of the loop carrying this dependence:
  /// the outermost non-exact-zero entry. -1 for loop-independent
  /// dependences. Inconsistent dependences report 0 (conservatively
  /// carried by the outermost loop).
  int carrierPosition() const;

  std::string toString(const std::function<std::string(int)> &NameOf) const;
};

/// Dependence analysis result for one kernel's loop nest.
class DependenceInfo {
public:
  /// Analyzes the perfect nest rooted at the kernel's top loop. Accesses
  /// outside loops (none in the input domain) are ignored.
  static DependenceInfo compute(Kernel &K);

  /// The analyzed loops, outermost first.
  const std::vector<ForStmt *> &nest() const { return Nest; }

  const std::vector<Dependence> &dependences() const { return Deps; }

  /// True when no flow, anti, or output dependence is carried by the loop
  /// at \p NestPosition: all its unrolled iterations can run in parallel
  /// (the DSE algorithm's preferred unroll target).
  bool carriesNoDependence(unsigned NestPosition) const;

  /// The smallest positive exact distance carried at \p NestPosition over
  /// all non-input dependences, or std::nullopt when none has an exact
  /// positive distance there. Larger values mean more parallelism between
  /// dependences (used for initial unroll-factor selection).
  std::optional<int64_t> minCarriedDistance(unsigned NestPosition) const;

  /// Nest position of \p LoopId, or -1 when the loop is not in the nest.
  int positionOf(int LoopId) const;

private:
  std::vector<ForStmt *> Nest;
  std::vector<Dependence> Deps;
};

} // namespace defacto

#endif // DEFACTO_ANALYSIS_DEPENDENCEANALYSIS_H
