//===- UniformlyGenerated.h - Uniformly generated reference sets *- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two affine references A(a1*i1+b1, ..., an*in+bn) and A(c1*i1+d1, ...,
/// cn*in+dn) are *uniformly generated* when ai == ci for every i (§4 of the
/// paper): their subscripts differ only in constants. Uniformly generated
/// sets drive array renaming (custom data layout) and the saturation-point
/// computation: R and W in Psat = lcm(gcd(R, W), NumMemories) are the
/// number of uniformly generated read and write sets.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_ANALYSIS_UNIFORMLYGENERATED_H
#define DEFACTO_ANALYSIS_UNIFORMLYGENERATED_H

#include "defacto/IR/IRUtils.h"
#include "defacto/IR/Kernel.h"

namespace defacto {

/// One uniformly generated set: accesses to the same array whose
/// subscripts share linear parts, separated into reads and writes (the
/// paper schedules them separately).
struct UGSet {
  const ArrayDecl *Array = nullptr;
  bool IsWrite = false;
  /// Members in program order; after scalar replacement one memory access
  /// per set remains.
  std::vector<ArrayAccessExpr *> Accesses;
};

/// The uniformly generated partition of a kernel's array accesses.
struct UGPartition {
  std::vector<UGSet> ReadSets;
  std::vector<UGSet> WriteSets;

  /// R in the saturation-point formula.
  unsigned numReadSets() const { return ReadSets.size(); }
  /// W in the saturation-point formula.
  unsigned numWriteSets() const { return WriteSets.size(); }

  /// True when every access to \p Array is uniformly generated with every
  /// other access of the same direction (precondition for array renaming).
  bool isArrayUniform(const ArrayDecl *Array) const;
};

/// True when the two accesses reference the same array with identical
/// linear subscript parts in every dimension.
bool areUniformlyGenerated(const ArrayAccessExpr *A,
                           const ArrayAccessExpr *B);

/// Partitions all array accesses under \p Stmts.
UGPartition computeUniformlyGenerated(StmtList &Stmts);

/// Partitions all array accesses of \p K.
UGPartition computeUniformlyGenerated(Kernel &K);

} // namespace defacto

#endif // DEFACTO_ANALYSIS_UNIFORMLYGENERATED_H
