//===- AnalysisManager.h - Cached kernel analyses --------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One cache for the kernel-level analyses the transform pipeline and the
/// exploration engine consume: dependence analysis, reuse groups, value
/// ranges, and the uniformly generated partition. Each result is cached
/// per kernel fingerprint, so a lookup against an unchanged kernel is a
/// hit and a lookup after any mutation recomputes — even when a pass
/// over-claimed preservation, the fingerprint check makes a stale result
/// impossible.
///
/// Transform passes (Transforms/Pass.h) declare which analyses they
/// preserve; the pass-pipeline executor calls invalidate() with that set
/// after each pass. PipelineContext owns one manager warmed with the
/// normalized kernel's dependence analysis, replacing the historical
/// hoist-once special case in the evaluation service.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_ANALYSIS_ANALYSISMANAGER_H
#define DEFACTO_ANALYSIS_ANALYSISMANAGER_H

#include "defacto/Analysis/DependenceAnalysis.h"
#include "defacto/Analysis/ReuseAnalysis.h"
#include "defacto/Analysis/UniformlyGenerated.h"
#include "defacto/Analysis/ValueRange.h"
#include "defacto/IR/Kernel.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace defacto {

/// The analyses the manager caches.
enum class AnalysisKind : unsigned {
  Dependence = 0,
  Reuse,
  ValueRange,
  UniformlyGenerated,
};

inline constexpr unsigned NumAnalysisKinds = 4;

/// The set of analyses a transform pass leaves valid — the pass-pipeline
/// executor invalidates everything outside it after the pass runs.
class PreservedAnalyses {
public:
  /// Nothing survives (the safe default for a mutating pass).
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  /// Everything survives (a pass that did not mutate the kernel).
  static PreservedAnalyses all() {
    PreservedAnalyses P;
    P.Mask = (1u << NumAnalysisKinds) - 1;
    return P;
  }

  PreservedAnalyses &preserve(AnalysisKind Kind) {
    Mask |= 1u << static_cast<unsigned>(Kind);
    return *this;
  }

  bool isPreserved(AnalysisKind Kind) const {
    return Mask & (1u << static_cast<unsigned>(Kind));
  }

private:
  unsigned Mask = 0;
};

/// Caches one kernel's analysis results, keyed by kernel fingerprint.
///
/// Each getter computes on demand and returns a reference that stays
/// valid until the next mutation-and-recompute or invalidation of that
/// analysis. The fingerprint tag makes the cache self-correcting: a
/// getter called after the kernel changed recomputes even if no one
/// invalidated, so preserved-set mistakes cost time, never correctness.
/// Not thread-safe; share one manager per single-threaded pipeline run
/// (read-only sharing of a warmed manager across threads is safe as long
/// as no thread calls a getter that misses).
class AnalysisManager {
public:
  /// Dependence analysis of \p K (cached).
  const DependenceInfo &dependence(Kernel &K);

  /// Reuse groups of \p K (cached; computes the dependence analysis
  /// first when needed).
  const std::vector<ReuseGroup> &reuse(Kernel &K);

  /// Value ranges of \p K (cached).
  const ValueRangeAnalysis &valueRange(const Kernel &K);

  /// Uniformly generated partition of \p K (cached).
  const UGPartition &uniformlyGenerated(Kernel &K);

  /// Drops every cached result \p Preserved does not cover.
  void invalidate(const PreservedAnalyses &Preserved);

  /// Drops everything.
  void invalidateAll() { invalidate(PreservedAnalyses::none()); }

  /// The cached dependence analysis, or nullptr when none is cached —
  /// read-only access for consumers of a pre-warmed manager
  /// (PipelineContext warms this one at construction).
  const DependenceInfo *cachedDependence() const {
    return Dep ? &*Dep : nullptr;
  }

  /// Cache accounting (tests and the stats surface).
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  std::optional<DependenceInfo> Dep;
  uint64_t DepFp = 0;
  std::optional<std::vector<ReuseGroup>> Reuse;
  uint64_t ReuseFp = 0;
  std::optional<ValueRangeAnalysis> Ranges;
  uint64_t RangesFp = 0;
  std::optional<UGPartition> UG;
  uint64_t UGFp = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace defacto

#endif // DEFACTO_ANALYSIS_ANALYSISMANAGER_H
