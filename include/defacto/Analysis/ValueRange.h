//===- ValueRange.h - Integer range and bit-width inference ----*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value-range analysis over kernel expressions, for datapath bit-width
/// inference. The paper's application domain argues FPGAs win exactly
/// because they "benefit from non-standard numeric formats (e.g.,
/// reduced data widths)" (§2.4): an 8-bit image pixel sum needs a
/// 10-bit adder, not a 32-bit one. Ranges are derived from declared
/// element types, loop bounds, and constant arithmetic; scalars
/// conservatively take their declared type's range (assignments truncate
/// to the declared type, so that is sound).
///
/// The estimator consumes widthOf() when the target platform enables
/// width inference, shrinking operator areas and delays accordingly.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_ANALYSIS_VALUERANGE_H
#define DEFACTO_ANALYSIS_VALUERANGE_H

#include "defacto/IR/Kernel.h"

#include <cstdint>
#include <map>

namespace defacto {

/// A closed signed integer interval.
struct ValueRange {
  int64_t Min = 0;
  int64_t Max = 0;

  static ValueRange ofType(ScalarType Ty);
  static ValueRange constant(int64_t V) { return {V, V}; }

  /// Smallest two's-complement width holding every value in the range
  /// (at least 1, at most 64).
  unsigned bitsNeeded() const;

  ValueRange add(const ValueRange &O) const;
  ValueRange sub(const ValueRange &O) const;
  ValueRange mul(const ValueRange &O) const;
  ValueRange unionWith(const ValueRange &O) const;
  ValueRange negate() const;
  ValueRange abs() const;

  bool operator==(const ValueRange &O) const {
    return Min == O.Min && Max == O.Max;
  }
};

/// Computes ranges for every expression in a kernel (including guard
/// conditions), with loop indices ranging over their actual bounds.
class ValueRangeAnalysis {
public:
  explicit ValueRangeAnalysis(const Kernel &K);

  /// Range of \p E; expressions outside the analyzed kernel fall back to
  /// a conservative 32-bit range.
  ValueRange rangeOf(const Expr *E) const;

  /// bitsNeeded of rangeOf, the width the datapath must carry.
  unsigned widthOf(const Expr *E) const;

private:
  std::map<const Expr *, ValueRange> Ranges;
};

} // namespace defacto

#endif // DEFACTO_ANALYSIS_VALUERANGE_H
