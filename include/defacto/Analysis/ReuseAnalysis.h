//===- ReuseAnalysis.h - Data reuse groups ---------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data reuse analysis in the style of Carr/Kennedy as extended by the
/// paper: accesses connected by consistent (constant-distance) input or
/// flow dependences form reuse groups whose data can live in on-chip
/// registers. The paper exploits reuse across *all* loops of the nest, not
/// just the innermost one; a group's carrier loop determines the register
/// structure scalar replacement materializes (single register, rotating
/// chain across an inner sweep, or sliding window).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_ANALYSIS_REUSEANALYSIS_H
#define DEFACTO_ANALYSIS_REUSEANALYSIS_H

#include "defacto/Analysis/DependenceAnalysis.h"

namespace defacto {

/// How a reuse group maps onto registers.
enum class ReuseShape {
  /// All members access the same element in the same iteration: one load
  /// feeds every use (common-subexpression reuse, e.g. S_0 in Fig. 1(c)).
  LoopIndependent,
  /// The accessed element is invariant in one or more inner loops (the
  /// D[j] case): one register per access, live across the inner sweep.
  InnerInvariant,
  /// Reuse is carried by an outer loop while the access varies with inner
  /// loops (the C[i] case): a rotating chain holding one inner sweep.
  OuterCarriedChain,
  /// Reuse is carried by the innermost varying loop with a small constant
  /// distance (stencil windows, e.g. JAC/SOBEL neighbors).
  InnerCarriedWindow,
  /// No exploitable reuse (inconsistent distances, e.g. S[i+j] vs
  /// S[i+j+1] across iterations).
  None,
};

const char *reuseShapeName(ReuseShape Shape);

/// A set of accesses to one array connected by consistent reuse.
struct ReuseGroup {
  const ArrayDecl *Array = nullptr;
  /// Members in program order. Includes reads and writes.
  std::vector<const ArrayAccessExpr *> Accesses;
  bool HasWrite = false;
  ReuseShape Shape = ReuseShape::None;
  /// Nest position of the loop carrying the temporal reuse (-1 when the
  /// reuse is loop-independent or there is none).
  int CarrierPosition = -1;
  /// The exact carried distance in iterations, when known.
  std::optional<int64_t> Distance;
};

/// Partitions the kernel's accesses into reuse groups using \p DI.
std::vector<ReuseGroup> computeReuseGroups(Kernel &K,
                                           const DependenceInfo &DI);

} // namespace defacto

#endif // DEFACTO_ANALYSIS_REUSEANALYSIS_H
