//===- DataLayout.h - Array renaming and memory mapping --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Custom data layout (§4), in the paper's two phases:
///
/// 1. *Array renaming*: each array whose accesses are all uniformly
///    generated is distributed cyclically across B virtual memories along
///    one dimension (B derived from the subscript coefficients and the
///    number of board memories), creating renamed bank arrays (S -> S0,
///    S1 in Figure 1(d)) and rewriting subscripts to bank-local form.
///    Arrays with non-uniformly-generated accesses map to one virtual
///    memory.
/// 2. *Memory mapping*: virtual memories are bound to physical memories
///    round-robin, reads first in program order, then writes, so parallel
///    reads land in distinct physical memories (matching the paper's
///    conflict-avoidance discipline).
///
/// Precondition: loops normalized (step 1), so bank-local subscripts are
/// exact integer divisions.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_DATALAYOUT_H
#define DEFACTO_TRANSFORMS_DATALAYOUT_H

#include "defacto/IR/Kernel.h"
#include "defacto/Support/Error.h"

namespace defacto {

struct DataLayoutOptions {
  /// Number of physical external memories on the board (4 on the
  /// Annapolis WildStar the paper targets).
  unsigned NumMemories = 4;
};

struct DataLayoutStats {
  /// Arrays split into more than one bank.
  unsigned ArraysDistributed = 0;
  /// Total virtual memories created (banks plus single-memory arrays).
  unsigned VirtualMemories = 0;
};

/// Applies both phases in place. Every array access in \p K ends up
/// pointing at a (possibly renamed) array with an assigned physical
/// memory id. Fails with ErrorCode::MalformedIR when a subscript cannot
/// be rewritten to bank-local form (non-normalized input); \p K is then
/// left untouched for that array and must be discarded by the caller.
Expected<DataLayoutStats> applyDataLayout(Kernel &K,
                                          const DataLayoutOptions &Opts);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_DATALAYOUT_H
