//===- Interchange.h - Loop interchange ------------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop interchange on a perfect nest. Needed to realize §5.4's tiling:
/// strip-mining alone leaves a reuse chain's span unchanged — the tile
/// loop must move outside the reuse carrier so the localized iteration
/// space (and with it the rotating chain) shrinks to the tile.
///
/// Legality: every non-input dependence's distance vector must stay
/// lexicographically non-negative under the permutation. Star entries
/// are canonically oriented positive (the analysis normalizes
/// orientation), so a leading star stays legal. Inconsistent
/// (distance-less) non-input dependences conservatively block the
/// interchange.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_INTERCHANGE_H
#define DEFACTO_TRANSFORMS_INTERCHANGE_H

#include "defacto/IR/Kernel.h"

namespace defacto {

/// True when swapping nest positions \p PosA and \p PosB preserves all
/// dependences. Positions index the perfect nest, outermost first.
bool canInterchange(Kernel &K, unsigned PosA, unsigned PosB);

/// Swaps the loops at nest positions \p PosA and \p PosB in place.
/// Returns false (kernel untouched) when the positions are invalid or
/// the interchange is illegal.
bool interchangeLoops(Kernel &K, unsigned PosA, unsigned PosB);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_INTERCHANGE_H
