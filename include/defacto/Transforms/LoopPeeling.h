//===- LoopPeeling.h - Peel guarded first iterations -----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop peeling (§4): scalar replacement emits first-iteration guards
/// (`if (j == 0) { c_0_0 = C[i]; ... }`) for chain and window warm-up
/// loads. This pass peels the first iteration of every loop that owns
/// such a guard, so the steady-state loop body has a uniform number of
/// memory accesses that high-level synthesis can schedule tightly. The
/// peeled copy is constant-folded (resolving the guards); operator reuse
/// between the peeled and main bodies is the synthesis tool's job, so the
/// code growth does not imply design growth (per the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_LOOPPEELING_H
#define DEFACTO_TRANSFORMS_LOOPPEELING_H

#include "defacto/IR/Kernel.h"

namespace defacto {

struct PeelingStats {
  unsigned LoopsPeeled = 0;
};

/// Peels, to a fixed point, the first iteration of every loop whose body
/// contains a guard of the form `if (<index> == <lower bound>)`. Cloned
/// loops receive fresh loop ids. Loops with a single iteration are
/// replaced entirely by their peeled body.
PeelingStats peelGuardedIterations(Kernel &K);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_LOOPPEELING_H
