//===- PassRegistry.h - Named passes and the pipeline parser ---*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps pass names to factories and parses textual pipeline descriptions
/// ("normalize,stripmine,unroll,normalize,scalar-repl,peel,fold,layout")
/// into PassPipelines. The eight built-in §4 passes are pre-registered;
/// add() extends the set at runtime, after which `--pipeline=` strings
/// reach the new pass by name.
///
/// Pass instances are parameterized by the TransformOptions of the run
/// and write their statistics into the run's TransformResult, so a
/// factory binds both by reference: a built PassPipeline must not outlive
/// the options and result it was built against.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_PASSREGISTRY_H
#define DEFACTO_TRANSFORMS_PASSREGISTRY_H

#include "defacto/Transforms/Pass.h"
#include "defacto/Transforms/Pipeline.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace defacto {

/// The default §4 sequence applyPipeline runs when TransformOptions::
/// Pipeline is empty: normalize, strip-mine (register control, §5.4),
/// unroll-and-jam, renormalize, scalar replacement, loop peeling,
/// constant folding, data layout.
const char *defaultPipelineText();

/// The default sequence with the interchange pass scheduled before
/// strip-mining — selected automatically for design points carrying a
/// loop permutation.
const char *defaultPipelineTextWithInterchange();

/// Thread-safe name -> factory registry with the eight built-in passes
/// pre-registered: normalize, stripmine, unroll, interchange,
/// scalar-repl, peel, fold, layout.
class PassRegistry {
public:
  /// Builds one pass instance for a run over \p Opts writing statistics
  /// into \p Result.
  using Factory = std::function<std::unique_ptr<TransformPass>(
      const TransformOptions &Opts, TransformResult &Result)>;

  static PassRegistry &instance();

  /// Registers \p Make under \p Name. Returns false (registry unchanged)
  /// when the name is taken.
  bool add(const std::string &Name, const std::string &Description,
           Factory Make);

  /// A fresh instance of the named pass, or nullptr for an unknown name.
  std::unique_ptr<TransformPass> create(const std::string &Name,
                                        const TransformOptions &Opts,
                                        TransformResult &Result) const;

  bool contains(const std::string &Name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// "name  description" lines, sorted by name — drivers print this when
  /// --pipeline names an unknown pass.
  std::string describe() const;

private:
  PassRegistry();
  struct RegisteredPass {
    std::string Description;
    Factory Make;
  };
  mutable std::mutex M;
  std::map<std::string, RegisteredPass> Passes;
};

/// Splits a comma-separated pipeline description into pass names,
/// validating each against the registry. Fails with InvalidInput naming
/// the first unknown pass (message lists the registered names).
Expected<std::vector<std::string>> parsePipelineText(const std::string &Text);

/// Parses \p Text (empty selects defaultPipelineText()) and instantiates
/// the sequence over \p Opts / \p Result. The returned pipeline holds
/// references to both and must not outlive them.
Expected<PassPipeline> buildPassPipeline(const std::string &Text,
                                         const TransformOptions &Opts,
                                         TransformResult &Result);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_PASSREGISTRY_H
