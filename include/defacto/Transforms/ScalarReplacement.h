//===- ScalarReplacement.h - Register promotion of array reuse -*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar replacement (§4, Figure 1(c)): replaces array references with
/// compiler-created register temporaries so high-level synthesis exploits
/// reuse in registers. Follows Carr/Kennedy with the paper's extensions:
/// reuse is exploited across *all* loops of the nest (rotating register
/// chains for outer-loop-carried reuse), and redundant memory writes on
/// output dependences are eliminated.
///
/// Four reuse shapes are materialized, on a perfect (typically unrolled)
/// nest:
///  - CSE loads: several reads of the same element in one iteration share
///    a single load (S_0 in Figure 1(c)).
///  - Inner-invariant promotion: an element invariant in the inner loops
///    (D[j]) lives in one register across the inner sweep; its loads and
///    redundant stores leave the loop (this subsumes the paper's
///    loop-invariant code motion of memory accesses).
///  - Outer-carried chains: a read-only stream that repeats every
///    iteration of an outer loop (C[i]) is cached in a rotating register
///    chain, loaded only on the carrier's first iteration behind a
///    `if (j == 0)` guard that loop peeling later removes.
///  - Inner-carried windows: a read-only stencil window sliding along the
///    innermost loop (JAC/SOBEL neighbors) keeps the overlap in a
///    rotating window; only the leading edge is loaded each iteration.
///
/// Accesses under conditional control flow and arrays with potentially
/// aliasing (non-uniformly-generated) writes are conservatively left in
/// memory.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_SCALARREPLACEMENT_H
#define DEFACTO_TRANSFORMS_SCALARREPLACEMENT_H

#include "defacto/IR/Kernel.h"

namespace defacto {

/// Knobs for scalar replacement.
struct ScalarReplacementOptions {
  /// Upper bound on the length of one rotating chain; streams needing
  /// more registers stay in memory (§5.4 controls totals via tiling).
  unsigned MaxChainLength = 4096;
  /// Enables the outer-carried rotating chains (C[i] style).
  bool EnableOuterCarriedChains = true;
  /// Enables the inner-carried sliding windows (stencil style).
  bool EnableWindows = true;
  /// Accelerates the (array, subscripts) -> site lookup with a hash
  /// index instead of a linear scan. Identical results either way; the
  /// scan is quadratic in unrolled-body size, so the evaluation fast
  /// path turns this on (see docs/PERFORMANCE.md).
  bool UseSiteIndex = false;
};

/// Static effect summary, per innermost-body execution.
struct ScalarReplacementStats {
  unsigned RegistersAllocated = 0;
  unsigned ChainsCreated = 0;
  unsigned WindowsCreated = 0;
  /// Memory reads/writes removed from (and left in) the steady-state
  /// innermost body.
  unsigned LoadsRemoved = 0;
  unsigned StoresRemoved = 0;
  unsigned LoadsKept = 0;
  unsigned StoresKept = 0;
};

/// Applies scalar replacement in place to \p K's perfect nest. Returns
/// the effect summary; a kernel without a top loop is left untouched.
ScalarReplacementStats
scalarReplace(Kernel &K, const ScalarReplacementOptions &Opts = {});

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_SCALARREPLACEMENT_H
