//===- Pipeline.h - The paper's transformation sequence --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the paper's code transformations (§4) into the sequence the
/// DSE algorithm applies per candidate design:
///
///   normalize -> (strip-mine for register control, §5.4) -> unroll-and-
///   jam -> normalize -> scalar replacement -> loop peeling -> constant
///   folding -> data layout
///
/// The input kernel is cloned; each candidate gets an independent copy.
/// The sequence is expressed as a pass pipeline (Transforms/Pass.h); the
/// default is defaultPipelineText() and TransformOptions::Pipeline
/// substitutes any registered pass sequence.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_PIPELINE_H
#define DEFACTO_TRANSFORMS_PIPELINE_H

#include "defacto/Analysis/AnalysisManager.h"
#include "defacto/IR/Kernel.h"
#include "defacto/Transforms/DataLayout.h"
#include "defacto/Transforms/LoopPeeling.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace defacto {

/// Configuration of one candidate design's code transformations.
struct TransformOptions {
  /// Unroll factors per nest position (outermost first); missing entries
  /// default to 1.
  UnrollVector Unroll;
  /// Strip-mine the nest loop at this position to this tile size before
  /// unrolling (register-pressure control, §5.4). The position indexes
  /// the post-interchange nest when Interchange is set.
  std::optional<std::pair<unsigned, int64_t>> StripMine;
  /// Loop permutation the "interchange" pass applies before strip-mining:
  /// entry i names the original nest position that lands at position i
  /// (outermost first). Empty means identity (the pass is a no-op).
  std::vector<unsigned> Interchange;
  /// Pass-pipeline description ("normalize,unroll,..."); empty runs the
  /// default §4 sequence (defaultPipelineText(); the interchange variant
  /// when Interchange is set). Parsed by buildPassPipeline — unknown pass
  /// names surface as TransformResult::Error.
  std::string Pipeline;
  bool EnableScalarReplacement = true;
  bool EnablePeeling = true;
  bool EnableDataLayout = true;
  ScalarReplacementOptions SR;
  DataLayoutOptions Layout;
};

/// Outcome of the pipeline: the transformed kernel plus per-pass
/// statistics the DSE algorithm and the tests consume.
struct TransformResult {
  Kernel K;
  ScalarReplacementStats SR;
  PeelingStats Peeling;
  DataLayoutStats Layout;
  bool UnrollApplied = false;
  /// Non-ok when a pass failed or the result failed verification; K then
  /// holds an untransformed clone of the source (still valid IR) so the
  /// caller can degrade instead of crash.
  Status Error;

  bool ok() const { return Error.isOk(); }

  explicit TransformResult(Kernel Transformed) : K(std::move(Transformed)) {}
};

/// Runs the pipeline on a clone of \p Source. The unroll vector must be
/// valid for the (possibly strip-mined) nest or UnrollApplied is false
/// and only the remaining passes run. Never aborts: failures are
/// reported through TransformResult::Error.
TransformResult applyPipeline(const Kernel &Source,
                              const TransformOptions &Opts);

/// The pipeline stages downstream of unroll-and-jam + renormalization:
/// scalar replacement, peeling, constant folding, data layout, and —
/// unless \p SkipVerify — final IR verification. \p Staged must already
/// be strip-mined (if requested), unrolled, and normalized; callers that
/// memoize that prefix (TransformStageCache) clone the snapshot and
/// resume here. Opts.Unroll/Opts.StripMine are not consulted.
/// \p UnrollApplied is recorded verbatim in the result. \p ErrorFallback
/// is cloned only on failure. SkipVerify is sound only when the consumer
/// re-verifies (estimateDesignChecked does).
TransformResult finishPipeline(Kernel Staged, const TransformOptions &Opts,
                               const Kernel &ErrorFallback,
                               bool UnrollApplied, bool SkipVerify = false);

/// Unroll-invariant per-kernel state, hoisted out of the per-design path:
/// the source kernel normalized exactly once. A context is immutable
/// after construction and safe to share read-only across the exploration
/// engine's worker threads; every candidate design then costs one clone
/// of the pre-normalized kernel instead of clone + renormalization.
class PipelineContext {
public:
  explicit PipelineContext(const Kernel &Source);

  /// The normalized base kernel. Never mutate this through a cast: the
  /// clones handed to the per-design pipeline are taken from it
  /// concurrently.
  const Kernel &normalized() const { return Normalized; }

  /// Debug-only guard: aborts if the shared base kernel was mutated since
  /// construction (a worker wrote through the read-only share). Release
  /// builds: no-op.
  void assertUnchanged() const;

  /// The analysis cache over the normalized kernel, warmed with the
  /// dependence analysis at construction (it is unroll-invariant, so no
  /// per-design path recomputes it). Read-only after construction and
  /// safe to share across worker threads.
  const AnalysisManager &analyses() const { return Analyses; }

private:
  Kernel Normalized;
  AnalysisManager Analyses;
#ifndef NDEBUG
  uint64_t Fingerprint = 0;
#endif
};

/// applyPipeline() over a shared context: identical result to the
/// Kernel overload, minus the redundant initial normalization.
TransformResult applyPipeline(const PipelineContext &Ctx,
                              const TransformOptions &Opts);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_PIPELINE_H
