//===- Tiling.h - Strip-mining for register control ------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop tiling via strip-mining (§5.4): when full reuse would require too
/// many on-chip registers, tiling the nest shrinks the localized
/// iteration space so scalar replacement's rotating chains match a
/// register budget. Strip-mining keeps every loop bound constant (the
/// inner strip runs 0..T and the original index becomes `T*outer +
/// inner`), which the rest of the pipeline requires.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_TILING_H
#define DEFACTO_TRANSFORMS_TILING_H

#include "defacto/IR/Kernel.h"

#include <cstdint>

namespace defacto {

/// Splits the loop with \p LoopId into an outer tile loop (keeping the
/// id) and an inner strip of \p TileSize iterations. Requires the loop to
/// be normalized (lower 0, step 1) and TileSize to divide the trip count
/// with 1 < TileSize < trip. Returns false (kernel untouched) otherwise.
bool stripMine(Kernel &K, int LoopId, int64_t TileSize);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_TILING_H
