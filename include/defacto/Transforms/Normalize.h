//===- Normalize.h - Loop normalization ------------------------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites every loop to lower bound 0 and step 1, folding the original
/// lower bound and step into the affine subscripts (i becomes step*i' +
/// lower everywhere). The paper's final generated code is normalized
/// (Figure 1(d)); normalization after unrolling is also what lets array
/// renaming divide subscripts by the bank count exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_NORMALIZE_H
#define DEFACTO_TRANSFORMS_NORMALIZE_H

#include "defacto/IR/Kernel.h"

namespace defacto {

/// Normalizes every loop in \p K in place. Idempotent.
void normalizeLoops(Kernel &K);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_NORMALIZE_H
