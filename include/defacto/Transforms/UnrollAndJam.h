//===- UnrollAndJam.h - Unroll-and-jam of a perfect nest -------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unroll-and-jam (§4, Figure 1(b)): unrolls one or more loops of a
/// perfect nest and fuses the copies, exposing operator parallelism to
/// high-level synthesis and shortening dependence distances for reuse.
///
/// For a perfect nest, unroll-and-jam with factor vector U is equivalent
/// to scaling each loop's step by its factor and replicating the innermost
/// body over the cross product of unroll offsets (outer-major order, the
/// order of Figure 1(b)); that is how it is implemented here.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_UNROLLANDJAM_H
#define DEFACTO_TRANSFORMS_UNROLLANDJAM_H

#include "defacto/IR/Kernel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace defacto {

/// A vector of unroll factors, one per nest loop, outermost first.
using UnrollVector = std::vector<int64_t>;

/// The product of all factors (P(U) in the paper).
int64_t unrollProduct(const UnrollVector &U);

/// Renders like "(2, 4)".
std::string unrollVectorToString(const UnrollVector &U);

/// Checks that \p U is applicable to \p K's nest: one factor per nest
/// loop (shorter vectors are padded with 1), every factor >= 1 and an
/// exact divisor of the loop's trip count (remainderless unrolling; the
/// paper's kernels have power-of-two bounds making divisor factors
/// natural).
bool canUnroll(const Kernel &K, const UnrollVector &U);

/// Applies unroll-and-jam in place. Returns false (leaving \p K
/// untouched) when canUnroll fails.
bool unrollAndJam(Kernel &K, const UnrollVector &U);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_UNROLLANDJAM_H
