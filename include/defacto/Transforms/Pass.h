//===- Pass.h - Transform pass interface and pipeline ----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The composable pass architecture behind the transformation pipeline
/// (§4). A TransformPass mutates one kernel in place and declares which
/// analyses it preserves; a PassPipeline runs an ordered sequence of
/// passes, handing each one the shared AnalysisManager and invalidating
/// the non-preserved analyses after it. The eight §4 transforms
/// (normalize, strip-mine/tiling, unroll-and-jam, interchange, scalar
/// replacement, loop peeling, constant folding, data layout) all ship as
/// passes; PassRegistry.h maps their textual names to factories and
/// parses `--pipeline=` strings into PassPipelines.
///
/// Timing convention: every pass charges itself to the
/// `pipeline.pass.<name>` phase timer and the `pipeline.pass.<name>_us`
/// histogram inside its own run() (function-local static resolution, the
/// repo-wide zero-cost-while-off idiom).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_PASS_H
#define DEFACTO_TRANSFORMS_PASS_H

#include "defacto/Support/Error.h"

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace defacto {

class AnalysisManager;
class Kernel;
class PreservedAnalyses;

/// One code transformation over a kernel. Implementations mutate the
/// kernel in place; a non-ok Status aborts the pipeline (the executor
/// restores the caller's error-fallback clone). Pass objects are cheap,
/// single-use, and never shared across threads — the registry builds a
/// fresh instance per pipeline run.
class TransformPass {
public:
  virtual ~TransformPass();

  /// The registry name ("normalize", "unroll", ...), also the suffix of
  /// the pass's pipeline.pass.<name> timer.
  virtual std::string name() const = 0;

  /// Runs the transformation on \p K. \p AM serves cached analyses of the
  /// kernel's current state; results the pass computes through it are
  /// shared with later passes until invalidated.
  virtual Status run(Kernel &K, AnalysisManager &AM) = 0;

  /// The analyses still valid after run(). Defaults to none — the safe
  /// claim for any mutating pass. Over-claiming costs correctness only in
  /// principle: the AnalysisManager's fingerprint tag still forces a
  /// recompute for a changed kernel.
  virtual PreservedAnalyses preserved() const;
};

/// An ordered, instantiated pass sequence. Built by hand via add() or
/// from a textual description via buildPassPipeline (PassRegistry.h).
class PassPipeline {
public:
  PassPipeline();
  PassPipeline(PassPipeline &&);
  PassPipeline &operator=(PassPipeline &&);
  ~PassPipeline();

  void add(std::unique_ptr<TransformPass> Pass);

  /// Runs every pass in order on \p K, invalidating \p AM per each pass's
  /// preserved set. Stops at the first failure and returns its status;
  /// the kernel is then in the failed pass's partial state and the caller
  /// owns recovery.
  Status run(Kernel &K, AnalysisManager &AM) const;

  size_t size() const { return Passes.size(); }
  const TransformPass &pass(size_t Index) const { return *Passes[Index]; }

private:
  std::vector<std::unique_ptr<TransformPass>> Passes;
};

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_PASS_H
