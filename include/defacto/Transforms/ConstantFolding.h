//===- ConstantFolding.h - Expression and branch folding -------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds constant subexpressions and statically-decided branches. Used by
/// loop peeling: substituting the peeled iteration's index value turns the
/// scalar-replacement load guards (`if (j == 0)`) into constant branches
/// that fold away.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_TRANSFORMS_CONSTANTFOLDING_H
#define DEFACTO_TRANSFORMS_CONSTANTFOLDING_H

#include "defacto/IR/Kernel.h"

namespace defacto {

/// Folds constants in every expression under \p Stmts and flattens if
/// statements with constant conditions (splicing the taken branch's body
/// in place). Select expressions with constant conditions fold to the
/// taken value.
void foldConstants(StmtList &Stmts);

/// Folds one owning expression slot in place.
void foldConstantsInExpr(ExprPtr &Slot);

} // namespace defacto

#endif // DEFACTO_TRANSFORMS_CONSTANTFOLDING_H
