//===- Interpreter.h - Functional simulator for kernels --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A functional interpreter for the kernel IR. The paper relies on the
/// compiler preserving semantics through every transformation; here that
/// obligation is discharged mechanically: tests run the original and the
/// transformed kernel on identical memory images and compare all array
/// contents.
///
/// Arrays renamed by the data layout pass carry no storage of their own:
/// accesses are routed through to the origin array's storage using the
/// recorded bank offset/stride, so results remain comparable by original
/// array name.
///
/// The interpreter runs untrusted kernels: an out-of-bounds access or a
/// blown statement budget is a recoverable Status, never an abort, so
/// callers (the explorer, the fuzzer, a service front end) can degrade
/// gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_SIM_INTERPRETER_H
#define DEFACTO_SIM_INTERPRETER_H

#include "defacto/IR/Kernel.h"
#include "defacto/Support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace defacto {

/// Storage for a kernel's arrays and scalars. Origin arrays own flattened
/// row-major buffers; renamed arrays alias their origin.
class MemoryImage {
public:
  /// Allocates storage for every origin array in \p K and fills it with
  /// deterministic pseudo-random values derived from \p Seed and the
  /// array's name (so clones of a kernel get identical images). Values
  /// are kept small to avoid multiplication overflow in deep reductions.
  MemoryImage(const Kernel &K, uint64_t Seed);

  /// Reads one element; fails with ErrorCode::OutOfBounds when \p Indices
  /// does not match the array's rank or falls outside its extents.
  /// Renamed arrays are routed to their origin.
  Expected<int64_t> load(const ArrayDecl *A,
                         const std::vector<int64_t> &Indices) const;

  /// Writes one element, truncating to the element type. Same failure
  /// modes as load().
  Status store(const ArrayDecl *A, const std::vector<int64_t> &Indices,
               int64_t Value);

  int64_t scalar(const ScalarDecl *S) const;
  void setScalar(const ScalarDecl *S, int64_t Value);

  /// Flattened contents of the origin array named \p Name; fatal if
  /// absent (API misuse: names come from arrayNames()).
  const std::vector<int64_t> &arrayData(const std::string &Name) const;

  /// Names of all origin arrays (sorted).
  std::vector<std::string> arrayNames() const;

private:
  Expected<const ArrayDecl *> resolve(const ArrayDecl *A,
                                      std::vector<int64_t> &Indices) const;
  Expected<size_t> flatten(const ArrayDecl *A,
                           const std::vector<int64_t> &Indices) const;

  std::map<std::string, std::vector<int64_t>> Arrays; // origin name -> data
  std::map<std::string, ScalarType> ArrayTypes;
  std::map<const ScalarDecl *, int64_t> Scalars;
};

/// Execution statistics, usable as a coarse dynamic-cost cross-check.
struct SimStats {
  uint64_t AssignsExecuted = 0;
  uint64_t MemoryReads = 0;  // array element loads
  uint64_t MemoryWrites = 0; // array element stores
  uint64_t RotatesExecuted = 0;

  bool operator==(const SimStats &O) const {
    return AssignsExecuted == O.AssignsExecuted &&
           MemoryReads == O.MemoryReads && MemoryWrites == O.MemoryWrites &&
           RotatesExecuted == O.RotatesExecuted;
  }
};

/// Resource bounds on one interpretation. The defaults are far above any
/// legitimate kernel in the paper's domain; they exist so a hostile or
/// degenerate input cannot stall the process.
struct InterpreterLimits {
  /// Maximum statements executed (loop iterations included) before the
  /// run fails with ErrorCode::StepLimitExceeded.
  uint64_t MaxSteps = 100'000'000;
};

/// Runs \p K against \p Mem. Returns execution statistics, or a Status
/// for an out-of-bounds access / step-limit overrun (the image is then
/// left in its partially-updated state). Division and modulo by zero
/// yield zero (the IR has no trapping semantics).
Expected<SimStats> runKernel(const Kernel &K, MemoryImage &Mem,
                             const InterpreterLimits &Limits = {});

/// Convenience: runs \p K on a fresh image seeded with \p Seed and
/// returns the final contents of every origin array by name.
Expected<std::map<std::string, std::vector<int64_t>>>
simulate(const Kernel &K, uint64_t Seed, const InterpreterLimits &Limits = {});

} // namespace defacto

#endif // DEFACTO_SIM_INTERPRETER_H
