//===- Estimator.h - Behavioral synthesis estimation -----------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The behavioral synthesis estimator standing in for Mentor Graphics
/// Monet (§6.2): given a transformed kernel, it returns execution cycles
/// and area, plus the data fetch rate F, consumption rate C, and the
/// Balance = F/C metric (§3) the DSE algorithm steers by.
///
/// The estimator walks the kernel's loop structure, schedules every
/// straight-line segment (Scheduler.h), and aggregates:
///  - Cycles: sum over regions of trips * (segment cycles + loop control
///    overhead).
///  - F = total bits moved / bandwidth-limited cycles; C = total bits
///    moved / compute-critical-path cycles. Balance = F/C collapses to
///    (compute-only cycles) / (memory-only cycles): > 1 means the memory
///    system outruns the datapath (compute bound), < 1 memory bound.
///  - Area: bound datapath units (peak concurrent use per operator shape,
///    shared across peeled and steady-state code, as behavioral synthesis
///    reuses operators), registers, rotation muxes, memory interfaces,
///    and FSM control.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_ESTIMATOR_H
#define DEFACTO_HLS_ESTIMATOR_H

#include "defacto/HLS/Scheduler.h"
#include "defacto/IR/Kernel.h"
#include "defacto/Support/Error.h"

#include <functional>
#include <map>
#include <string>

namespace defacto {

/// What behavioral synthesis estimation reports for one design.
struct SynthesisEstimate {
  /// Execution cycles for the whole computation.
  uint64_t Cycles = 0;
  /// Estimated device slices.
  double Slices = 0;
  /// On-chip registers (scalar variables incl. chains/windows).
  unsigned Registers = 0;
  /// Allocated datapath units per operator shape.
  std::map<OpShape, unsigned> Units;
  /// Data fetch rate F: bits/cycle the memory system provides.
  double FetchRate = 0;
  /// Data consumption rate C: bits/cycle the datapath consumes.
  double ConsumeRate = 0;
  /// Balance = F / C (§3). HUGE_VAL when the design needs no memory.
  double Balance = 0;
  /// Aggregate scheduling detail (whole-execution totals).
  double MemOnlyCycles = 0;
  double CompOnlyCycles = 0;
  double BitsTransferred = 0;
  uint64_t FsmStates = 0;

  bool isComputeBound() const { return Balance > 1.0; }
  bool isMemoryBound() const { return Balance < 1.0; }
  bool fits(double CapacitySlices) const { return Slices <= CapacitySlices; }

  std::string toString() const;
};

/// One scheduled straight-line region in the estimate breakdown:
/// where it sits in the loop structure, how often it executes, and what
/// one execution costs. Useful for understanding where a design's
/// cycles go (the paper's designers read Monet schedules the same way).
struct RegionReport {
  /// Loop-index path, e.g. "j/i" for FIR's innermost body; "<top>" for
  /// code outside all loops.
  std::string Path;
  /// How many times the region executes over the whole computation.
  uint64_t Executions = 0;
  /// Joint schedule length of one execution.
  uint64_t CyclesPerExecution = 0;
  unsigned MemReads = 0;
  unsigned MemWrites = 0;

  uint64_t totalCycles() const { return Executions * CyclesPerExecution; }
};

/// Estimates \p K on \p Platform. \p K is typically the output of
/// applyPipeline; arrays without a physical memory id are assigned ports
/// round-robin in first-use order. When \p Breakdown is non-null it is
/// filled with one entry per scheduled region, in program order.
SynthesisEstimate
estimateDesign(const Kernel &K, const TargetPlatform &Platform,
               std::vector<RegionReport> *Breakdown = nullptr);

/// Signature of a synthesis-estimation backend as the exploration engine
/// consumes it. Backends may fail (a real synthesis tool crashes, times
/// out, or returns garbage); FaultInjector wraps one backend in another.
using EstimatorFn =
    std::function<Expected<SynthesisEstimate>(const Kernel &,
                                              const TargetPlatform &)>;

/// The recoverable entry point: verifies \p K first and reports
/// ErrorCode::MalformedIR instead of computing garbage on invalid IR,
/// then estimates. This is the default backend behind ExplorerOptions.
Expected<SynthesisEstimate>
estimateDesignChecked(const Kernel &K, const TargetPlatform &Platform);

/// estimateDesign(), replication-aware: an unrolled body is U structurally
/// identical copies of a base body, so the straight-line segments a sweep
/// schedules repeat across candidates. This variant memoizes list
/// scheduling per (DFG content, platform) in a per-thread table (exact
/// key compare — a hit returns the bit-identical SegmentSchedule) and
/// fuses the register/rotation-mux area walks into one traversal. Every
/// area term is a dyadic rational, so the fused summation is exact and
/// the result equals estimateDesign() bit for bit; fastpath_parity_test
/// and FastPath::Verify enforce that.
SynthesisEstimate estimateDesignFast(const Kernel &K,
                                     const TargetPlatform &Platform);

/// estimateDesignChecked() over estimateDesignFast(): same verification,
/// cancellation, and degeneracy reporting, bit-identical results.
Expected<SynthesisEstimate>
estimateDesignCheckedFast(const Kernel &K, const TargetPlatform &Platform);

} // namespace defacto

#endif // DEFACTO_HLS_ESTIMATOR_H
