//===- DFG.h - Dataflow graph of a straight-line segment -------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow graph behavioral synthesis schedules: one graph per
/// straight-line code segment (a maximal run of non-loop statements).
/// Nodes are datapath operators and memory accesses; edges are scalar
/// def-use and predication dependences. Affine subscripts cost nothing
/// (address counters), register reads/writes cost nothing (wires /
/// clock-edge updates), and conditional statements turn into predicated
/// writes and value multiplexers — matching the paper's "conditional
/// memory accesses always performed" discipline.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_DFG_H
#define DEFACTO_HLS_DFG_H

#include "defacto/HLS/OperatorLibrary.h"
#include "defacto/IR/Stmt.h"

#include <functional>
#include <vector>

namespace defacto {

/// One scheduled entity.
struct DFGNode {
  enum class Kind { Compute, MemRead, MemWrite };
  Kind NodeKind = Kind::Compute;
  OpClass Class = OpClass::Wire; // Compute nodes only.
  unsigned WidthBits = 32;
  int Port = 0; // Memory nodes: physical memory id.
  std::vector<unsigned> Preds;

  bool isMemory() const { return NodeKind != Kind::Compute; }
};

/// A dataflow graph in topological order (predecessor indices are always
/// smaller than the node's own index).
struct DFG {
  std::vector<DFGNode> Nodes;

  unsigned numMemReads() const;
  unsigned numMemWrites() const;
  unsigned numComputeOfClass(OpClass Class) const;
};

/// Builds the DFG of a straight-line segment. \p PortOf maps each array
/// access to its physical memory port (honoring steady-state port
/// annotations). If statements are handled by predication. For statements
/// must not appear in \p Segment. When \p WidthOf is non-empty it
/// supplies each expression's datapath width (bit-width inference);
/// otherwise widths come from declared operand types.
DFG buildSegmentDFG(
    const std::vector<const Stmt *> &Segment,
    const std::function<int(const ArrayAccessExpr *)> &PortOf,
    const std::function<unsigned(const Expr *)> &WidthOf = {});

} // namespace defacto

#endif // DEFACTO_HLS_DFG_H
