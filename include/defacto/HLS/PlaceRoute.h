//===- PlaceRoute.h - Post-synthesis implementation model ------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parametric model of logic synthesis + place-and-route outcomes,
/// standing in for the full implementation flow the paper runs in §6.4 to
/// validate behavioral estimates. Mirrors the paper's findings: cycle
/// counts are unchanged from behavioral synthesis; the achieved clock
/// degrades with routing complexity (mildly below ~70% utilization,
/// steeply beyond); and area grows slightly more than the estimate, more
/// so for very large designs.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_PLACEROUTE_H
#define DEFACTO_HLS_PLACEROUTE_H

#include "defacto/HLS/Estimator.h"
#include "defacto/HLS/TargetPlatform.h"

namespace defacto {

/// What the implementation flow reports for one design.
struct ImplementationResult {
  uint64_t Cycles = 0;       ///< Identical to the behavioral estimate.
  double Slices = 0;         ///< Post-P&R slices.
  double AchievedClockNs = 0; ///< Degraded clock period.
  bool MeetsTargetClock = false;
  bool Routable = false; ///< False when the design exceeds the device.

  /// Wall-clock execution time implied by cycles and achieved clock.
  double executionTimeNs() const { return Cycles * AchievedClockNs; }
};

/// Runs the implementation model on a behavioral estimate.
ImplementationResult placeAndRoute(const SynthesisEstimate &Estimate,
                                   const TargetPlatform &Platform);

} // namespace defacto

#endif // DEFACTO_HLS_PLACEROUTE_H
