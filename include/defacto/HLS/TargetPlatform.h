//===- TargetPlatform.h - FPGA board and device parameters -----*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the paper's target platform (§6.2): one Xilinx
/// Virtex-1000-class FPGA on an Annapolis WildStar board with four
/// external memories, a fixed 40 ns clock, and two memory timing modes —
/// pipelined (read and write latency of 1 cycle) and non-pipelined (read
/// 7, write 3, the WildStar's latencies).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_TARGETPLATFORM_H
#define DEFACTO_HLS_TARGETPLATFORM_H

#include <string>

namespace defacto {

/// External memory timing.
struct MemoryTiming {
  unsigned ReadLatencyCycles = 1;
  unsigned WriteLatencyCycles = 1;
  /// Pipelined ports accept a new access every cycle; non-pipelined
  /// ports stay busy for the access's full latency.
  bool Pipelined = true;
};

/// The synthesis target: device capacity, clock, and board memories.
struct TargetPlatform {
  std::string Name = "wildstar-pipelined";
  unsigned NumMemories = 4;
  /// Width of each external memory port in bits.
  unsigned MemoryWidthBits = 32;
  MemoryTiming Timing;
  /// The compiler fixes the clock period to 40 ns (§6.2).
  double ClockPeriodNs = 40.0;
  /// Device capacity in slices (Xilinx Virtex-1000 class).
  double CapacitySlices = 12288.0;
  /// Extra cycles of loop control (FSM next-state + index update) charged
  /// per loop iteration.
  unsigned LoopOverheadCycles = 1;
  /// How datapath operator widths are chosen.
  enum class WidthModel {
    /// Widths follow declared operand types (the calibration default;
    /// slightly optimistic, since an 8-bit + 8-bit add really carries
    /// 9 bits).
    DeclaredTypes,
    /// Value-range analysis sizes every operator exactly (models both
    /// the "reduced data widths" win of §2.4 and carry growth).
    Inferred,
    /// Everything is a 32-bit operator: the standard-datapath strawman
    /// the paper's domain argument compares against.
    Uniform32,
  };
  WidthModel Widths = WidthModel::DeclaredTypes;
  /// When true, dependent operators chain combinationally within one
  /// clock period. Monet-era behavioral synthesis scheduled one operator
  /// level per cycle, so the default is off; enabling it models a more
  /// aggressive modern scheduler (ablation bench).
  bool OperatorChaining = false;

  /// WildStar with fully pipelined memory accesses (read/write 1 cycle).
  static TargetPlatform wildstarPipelined();
  /// WildStar without pipelining (read 7 / write 3 cycles, §6.3).
  static TargetPlatform wildstarNonPipelined();
};

} // namespace defacto

#endif // DEFACTO_HLS_TARGETPLATFORM_H
