//===- OperatorLibrary.h - Datapath operator cost models -------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-operator delay and area models for a Virtex-class device. Delays
/// are combinational estimates in nanoseconds (the scheduler chains
/// operators within the 40 ns clock period, as behavioral synthesis
/// does); areas are in device slices. Strength reduction is encoded here:
/// multiplication/division by a power-of-two constant costs nothing
/// (wiring), and multiplication by a small constant becomes shift-add.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_OPERATORLIBRARY_H
#define DEFACTO_HLS_OPERATORLIBRARY_H

#include "defacto/IR/Expr.h"

#include <string>

namespace defacto {

/// Operator classes the scheduler and binder reason about. Each class is
/// shared among compatible operations during binding.
enum class OpClass {
  AddSub,     ///< Adders/subtractors (also abs, min/max datapath adds).
  Mul,        ///< General multiplier.
  ConstMul,   ///< Multiplication by a non-power-of-two constant (shift-add).
  Div,        ///< General divider (iterative).
  Logic,      ///< Bitwise and/or/xor.
  Compare,    ///< Comparators.
  Mux,        ///< Select/predication multiplexer.
  Wire,       ///< Free operations: shifts/mul/div by power-of-two consts.
};

const char *opClassName(OpClass Class);

/// Combinational delay of one \p Class operation on \p WidthBits operands.
double operatorDelayNs(OpClass Class, unsigned WidthBits);

/// Slices consumed by one bound unit of \p Class at \p WidthBits.
double operatorAreaSlices(OpClass Class, unsigned WidthBits);

/// Slices for one \p WidthBits register (2 flip-flops per slice).
double registerAreaSlices(unsigned WidthBits);

/// Classifies a binary operation, applying strength reduction against a
/// constant operand value when one exists.
OpClass classifyBinary(BinaryOp Op, bool HasConstOperand,
                       int64_t ConstOperand);

/// Classifies a unary operation.
OpClass classifyUnary(UnaryOp Op);

} // namespace defacto

#endif // DEFACTO_HLS_OPERATORLIBRARY_H
