//===- Scheduler.h - Resource-constrained list scheduling ------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedules one segment DFG the way the paper describes Monet's
/// As-Soon-As-Possible scheduling (§5.2): memory accesses are issued
/// greedily in program order subject to one access port per physical
/// memory (a pipelined port accepts one access per cycle; a non-pipelined
/// port stays busy for the full latency), and datapath operators chain
/// combinationally within the fixed clock period.
///
/// Three schedule lengths are produced per segment:
///  - Joint: memory and compute together — the design's real cycles.
///  - MemOnly: bandwidth-limited lower bound (compute assumed free) —
///    the denominator of the data fetch rate F.
///  - CompOnly: dataflow critical path (operands assumed ready) — the
///    denominator of the data consumption rate C.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_SCHEDULER_H
#define DEFACTO_HLS_SCHEDULER_H

#include "defacto/HLS/DFG.h"
#include "defacto/HLS/TargetPlatform.h"

#include <cstdint>
#include <map>

namespace defacto {

/// A bindable operator shape: class plus operand width.
using OpShape = std::pair<OpClass, unsigned>;

/// Schedule metrics of one straight-line segment.
struct SegmentSchedule {
  uint64_t JointCycles = 0;
  uint64_t MemOnlyCycles = 0;
  uint64_t CompOnlyCycles = 0;
  /// Total data bits moved between the FPGA and external memories.
  uint64_t BitsTransferred = 0;
  unsigned MemReads = 0;
  unsigned MemWrites = 0;
  /// Peak number of simultaneously busy units per operator shape in the
  /// joint schedule — what binding must allocate.
  std::map<OpShape, unsigned> PeakUnits;
};

/// Schedules \p Graph for \p Platform.
SegmentSchedule scheduleSegment(const DFG &Graph,
                                const TargetPlatform &Platform);

/// Cycle placement of one DFG node in the joint schedule.
struct NodePlacement {
  int64_t StartCycle = 0;
  int64_t EndCycle = 0; ///< Exclusive; EndCycle == StartCycle for wires.
};

/// A segment schedule together with every node's cycle placement —
/// what a designer reads out of a behavioral synthesis report.
struct DetailedSchedule {
  SegmentSchedule Summary;
  std::vector<NodePlacement> Placements; ///< Indexed like Graph.Nodes.
};

/// Schedules \p Graph and returns per-node placements.
DetailedSchedule scheduleSegmentDetailed(const DFG &Graph,
                                         const TargetPlatform &Platform);

/// Renders the joint schedule as an ASCII Gantt chart: one row per node
/// ("rd@m0", "mul32", "wr@m2"...), one column per cycle.
std::string renderScheduleGantt(const DFG &Graph,
                                const DetailedSchedule &Schedule);

} // namespace defacto

#endif // DEFACTO_HLS_SCHEDULER_H
