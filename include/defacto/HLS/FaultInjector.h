//===- FaultInjector.h - Chaos testing hook for estimation -----*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the synthesis-estimation backend.
/// The production explorer treats estimation as an unreliable oracle: a
/// real behavioral-synthesis tool can crash, hang past its deadline, or
/// return nonsense numbers. FaultInjector wraps any EstimatorFn in a
/// backend that reproduces those failure modes on a seeded PRNG stream,
/// so the degradation policy in Core/Explorer can be exercised — and its
/// guarantees pinned by tests — without a flaky tool in the loop.
///
/// Per call, independently and in this order:
///  - with probability FailureRate, fail with ErrorCode::EstimationFailed;
///  - with probability HangRate, hang: sleep LatencySeconds at a time
///    until the thread's current CancellationToken (the evaluation
///    watchdog's) cancels the call, which then fails with
///    ErrorCode::Cancelled. With no token armed the hang gives up after
///    a large bounded number of sleeps and fails with EstimationFailed —
///    a chaos run without a watchdog must not deadlock the test suite;
///  - with probability StallRate, invoke the Sleep hook for StallSeconds
///    before answering (simulating a slow — but finite — tool; tests
///    point Sleep at a virtual clock);
///  - with probability PerturbRate, scale the returned cycle count and
///    area by independent factors in [1-PerturbMagnitude,
///    1+PerturbMagnitude] (simulating estimation noise).
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_HLS_FAULTINJECTOR_H
#define DEFACTO_HLS_FAULTINJECTOR_H

#include "defacto/HLS/Estimator.h"
#include "defacto/Support/Random.h"

#include <cstdint>
#include <functional>

namespace defacto {

/// Configuration of one injector. Rates are probabilities in [0, 1].
struct FaultInjectorOptions {
  uint64_t Seed = 0;
  /// Probability a call fails outright.
  double FailureRate = 0.0;
  /// Probability a call hangs — sleeping LatencySeconds per poll until
  /// the current CancellationToken cancels it (the "tool never returns"
  /// failure mode the hang watchdog exists for).
  double HangRate = 0.0;
  /// Virtual (or real) seconds slept per hang poll.
  double LatencySeconds = 0.05;
  /// Probability a call stalls for StallSeconds before completing.
  double StallRate = 0.0;
  double StallSeconds = 0.0;
  /// Probability a call's area/cycles are perturbed, and by how much.
  double PerturbRate = 0.0;
  double PerturbMagnitude = 0.25;
};

/// Wraps an EstimatorFn in a fault-injecting one. The injector owns the
/// PRNG stream and failure counters, so it must outlive every backend
/// returned by wrap().
class FaultInjector {
public:
  struct Counters {
    uint64_t Calls = 0;
    uint64_t Failures = 0;
    uint64_t Stalls = 0;
    uint64_t Perturbations = 0;
    /// Injected hangs, and how many of them a watchdog cancelled (the
    /// remainder hit the no-watchdog give-up bound).
    uint64_t Hangs = 0;
    uint64_t HangCancellations = 0;
  };

  explicit FaultInjector(FaultInjectorOptions Opts);

  /// A backend that forwards to \p Inner under this injector's fault
  /// model. Captures `this`; keep the injector alive.
  EstimatorFn wrap(EstimatorFn Inner);

  /// Convenience: wrap() around estimateDesignChecked.
  EstimatorFn wrapDefault();

  const Counters &counters() const { return Stats; }

  /// Stall implementation; defaults to a real sleep. Tests replace this
  /// with a virtual-clock advance for determinism.
  std::function<void(double /*Seconds*/)> Sleep;

private:
  Expected<SynthesisEstimate> invoke(const EstimatorFn &Inner,
                                     const Kernel &K,
                                     const TargetPlatform &Platform);

  FaultInjectorOptions Opts;
  SplitMix64 Rng;
  Counters Stats;
};

} // namespace defacto

#endif // DEFACTO_HLS_FAULTINJECTOR_H
