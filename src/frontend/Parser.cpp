//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"

#include "defacto/IR/IRUtils.h"

#include <cassert>

using namespace defacto;

namespace {

/// The recursive-descent parser, with panic-mode error recovery: an
/// error sets Failed and unwinds the current statement; the statement
/// loops then resynchronize at the next ';' or '}' and keep going, so
/// one parse reports every independent mistake (up to MaxErrors).
/// Callers must check Failed before using a statement's results.
class Parser {
public:
  Parser(const std::string &Source, const std::string &KernelName,
         DiagnosticEngine &Diags)
      : Diags(Diags), K(KernelName) {
    Lexer Lex(Source, Diags);
    Tokens = Lex.lexAll();
    AnyFailed = Diags.hasErrors();
  }

  std::optional<Kernel> run() {
    parseProgram();
    if (AnyFailed || Diags.hasErrors())
      return std::nullopt;
    return std::move(K);
  }

private:
  //===------------------------------------------------------------------===//
  // Token plumbing
  //===------------------------------------------------------------------===//

  const Token &cur() const { return Tokens[Index]; }
  const Token &peekAhead(unsigned N = 1) const {
    size_t I = Index + N;
    return Tokens[I < Tokens.size() ? I : Tokens.size() - 1];
  }

  void consume() {
    if (Index + 1 < Tokens.size())
      ++Index;
  }

  bool accept(TokenKind Kind) {
    if (!cur().is(Kind))
      return false;
    consume();
    return true;
  }

  bool expect(TokenKind Kind, const char *Context) {
    if (accept(Kind))
      return true;
    error(cur().Loc, std::string("expected ") + tokenKindName(Kind) + " " +
                         Context + ", found " + tokenKindName(cur().Kind));
    return false;
  }

  void error(SourceLocation Loc, std::string Msg) {
    // Report only the first error per statement to avoid cascades; the
    // statement loops clear Failed once they resynchronize.
    if (!Failed && !HardStop) {
      Diags.error(Loc, std::move(Msg));
      if (++ErrorCount >= MaxErrors) {
        Diags.error(Loc, "too many errors; giving up");
        HardStop = true;
      }
    }
    Failed = true;
    AnyFailed = true;
  }

  /// Panic-mode resynchronization after a failed statement or
  /// declaration: skip to the next ';' (consumed) or '}' (left for the
  /// enclosing body to close), then resume parsing.
  void recoverToStmtBoundary() {
    Failed = false;
    while (!cur().is(TokenKind::Semi) && !cur().is(TokenKind::RBrace) &&
           !cur().is(TokenKind::Eof))
      consume();
    accept(TokenKind::Semi);
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  bool isTypeToken(TokenKind Kind) const {
    return Kind == TokenKind::KwChar || Kind == TokenKind::KwShort ||
           Kind == TokenKind::KwInt;
  }

  ScalarType parseType() {
    if (accept(TokenKind::KwChar))
      return ScalarType::Int8;
    if (accept(TokenKind::KwShort))
      return ScalarType::Int16;
    expect(TokenKind::KwInt, "in declaration");
    return ScalarType::Int32;
  }

  void parseDecl() {
    ScalarType Ty = parseType();
    if (Failed)
      return;
    SourceLocation NameLoc = cur().Loc;
    std::string Name = cur().Text;
    if (!expect(TokenKind::Identifier, "in declaration"))
      return;
    if (K.findArray(Name) || K.findScalar(Name)) {
      error(NameLoc, "redeclaration of '" + Name + "'");
      return;
    }
    std::vector<int64_t> Dims;
    while (accept(TokenKind::LBracket)) {
      if (!cur().is(TokenKind::IntLiteral)) {
        error(cur().Loc, "array dimension must be an integer constant");
        return;
      }
      if (cur().IntValue <= 0) {
        error(cur().Loc, "array dimension must be positive");
        return;
      }
      Dims.push_back(cur().IntValue);
      consume();
      if (!expect(TokenKind::RBracket, "after array dimension"))
        return;
    }
    if (!expect(TokenKind::Semi, "after declaration"))
      return;
    if (Dims.empty())
      K.makeScalar(Name, Ty);
    else
      K.makeArray(Name, Ty, std::move(Dims));
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void parseProgram() {
    while (!HardStop && isTypeToken(cur().Kind)) {
      parseDecl();
      if (Failed)
        recoverToStmtBoundary();
    }
    while (!HardStop && !cur().is(TokenKind::Eof)) {
      size_t Before = Index;
      StmtPtr S = parseStmt();
      if (S)
        K.body().push_back(std::move(S));
      if (Failed)
        recoverToStmtBoundary();
      if (Index == Before)
        consume(); // Guarantee progress on stray tokens such as '}'.
    }
  }

  StmtList parseBody(const char *Context) {
    StmtList Body;
    if (accept(TokenKind::LBrace)) {
      while (!HardStop && !cur().is(TokenKind::RBrace) &&
             !cur().is(TokenKind::Eof)) {
        size_t Before = Index;
        StmtPtr S = parseStmt();
        if (S)
          Body.push_back(std::move(S));
        if (Failed)
          recoverToStmtBoundary();
        if (Index == Before)
          consume(); // Guarantee progress inside malformed bodies.
      }
      expect(TokenKind::RBrace, Context);
      return Body;
    }
    StmtPtr S = parseStmt();
    if (S)
      Body.push_back(std::move(S));
    return Body;
  }

  StmtPtr parseStmt() {
    if (Failed)
      return nullptr;
    switch (cur().Kind) {
    case TokenKind::KwFor:
      return parseFor();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::Semi:
      consume();
      return nullptr;
    case TokenKind::Identifier:
      return parseAssign();
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
      error(cur().Loc, "declarations must precede all statements");
      return nullptr;
    default:
      error(cur().Loc, std::string("expected statement, found ") +
                           tokenKindName(cur().Kind));
      return nullptr;
    }
  }

  /// Parses a constant expression (for loop bounds). The paper requires
  /// constant bounds; anything else is rejected.
  std::optional<int64_t> parseConstExpr(const char *Context) {
    SourceLocation Loc = cur().Loc;
    ExprPtr E = parseExpr();
    if (Failed || !E)
      return std::nullopt;
    auto Aff = exprToAffine(E.get());
    if (!Aff || !Aff->isConstant()) {
      error(Loc, std::string("loop ") + Context +
                     " must be a constant expression (the input domain "
                     "requires constant loop bounds)");
      return std::nullopt;
    }
    return Aff->constant();
  }

  StmtPtr parseFor() {
    SourceLocation ForLoc = cur().Loc;
    consume(); // 'for'
    if (!expect(TokenKind::LParen, "after 'for'"))
      return nullptr;

    // Initialization: ident '=' const.
    SourceLocation IdxLoc = cur().Loc;
    std::string IdxName = cur().Text;
    if (!expect(TokenKind::Identifier, "as loop index"))
      return nullptr;
    if (K.findArray(IdxName) || K.findScalar(IdxName)) {
      error(IdxLoc, "loop index '" + IdxName +
                        "' shadows a declared variable");
      return nullptr;
    }
    for (const auto &[Name, Id] : LoopScope) {
      (void)Id;
      if (Name == IdxName) {
        error(IdxLoc, "loop index '" + IdxName +
                          "' shadows an enclosing loop index");
        return nullptr;
      }
    }
    if (!expect(TokenKind::Assign, "in loop initialization"))
      return nullptr;
    auto Lower = parseConstExpr("lower bound");
    if (!Lower)
      return nullptr;
    if (!expect(TokenKind::Semi, "after loop initialization"))
      return nullptr;

    // Condition: ident '<' const  (or '<=' const).
    SourceLocation CondLoc = cur().Loc;
    std::string CondName = cur().Text;
    if (!expect(TokenKind::Identifier, "in loop condition"))
      return nullptr;
    if (CondName != IdxName) {
      error(CondLoc, "loop condition must test the loop index '" + IdxName +
                         "'");
      return nullptr;
    }
    bool Inclusive = false;
    if (accept(TokenKind::Le))
      Inclusive = true;
    else if (!expect(TokenKind::Lt, "in loop condition"))
      return nullptr;
    auto Upper = parseConstExpr("upper bound");
    if (!Upper)
      return nullptr;
    if (!expect(TokenKind::Semi, "after loop condition"))
      return nullptr;

    // Increment: ident '++' | ident '+=' intlit.
    SourceLocation IncLoc = cur().Loc;
    std::string IncName = cur().Text;
    if (!expect(TokenKind::Identifier, "in loop increment"))
      return nullptr;
    if (IncName != IdxName) {
      error(IncLoc, "loop increment must update the loop index '" + IdxName +
                        "'");
      return nullptr;
    }
    int64_t Step = 1;
    if (accept(TokenKind::PlusPlus)) {
      // Step stays 1.
    } else if (accept(TokenKind::PlusAssign)) {
      auto StepVal = parseConstExpr("step");
      if (!StepVal)
        return nullptr;
      Step = *StepVal;
      if (Step <= 0) {
        error(IncLoc, "loop step must be positive (fixed-stride domain)");
        return nullptr;
      }
    } else if (accept(TokenKind::Assign)) {
      // The `i = i + <constant>` spelling.
      std::string RhsName = cur().Text;
      if (!expect(TokenKind::Identifier, "in loop increment"))
        return nullptr;
      if (RhsName != IdxName) {
        error(IncLoc, "loop increment must update the loop index '" +
                          IdxName + "'");
        return nullptr;
      }
      if (!expect(TokenKind::Plus, "in loop increment"))
        return nullptr;
      auto StepVal = parseConstExpr("step");
      if (!StepVal)
        return nullptr;
      Step = *StepVal;
      if (Step <= 0) {
        error(IncLoc, "loop step must be positive (fixed-stride domain)");
        return nullptr;
      }
    } else {
      error(cur().Loc, "expected '++', '+= <constant>', or '= <index> + "
                       "<constant>' in loop increment");
      return nullptr;
    }
    if (!expect(TokenKind::RParen, "after loop header"))
      return nullptr;

    int LoopId = K.allocateLoopId();
    auto Loop = std::make_unique<ForStmt>(
        LoopId, IdxName, *Lower, Inclusive ? *Upper + 1 : *Upper, Step);
    if (Loop->tripCount() <= 0) {
      error(ForLoc, "loop '" + IdxName + "' has an empty iteration range");
      return nullptr;
    }
    LoopScope.push_back({IdxName, LoopId});
    Loop->body() = parseBody("to close loop body");
    LoopScope.pop_back();
    return Loop;
  }

  StmtPtr parseIf() {
    consume(); // 'if'
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (Failed || !Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    auto If = std::make_unique<IfStmt>(std::move(Cond));
    If->thenBody() = parseBody("to close if body");
    if (accept(TokenKind::KwElse))
      If->elseBody() = parseBody("to close else body");
    return If;
  }

  StmtPtr parseAssign() {
    SourceLocation Loc = cur().Loc;
    ExprPtr Dest = parsePrimary();
    if (Failed || !Dest)
      return nullptr;
    if (!isa<ScalarRefExpr>(Dest.get()) &&
        !isa<ArrayAccessExpr>(Dest.get())) {
      error(Loc, "assignment destination must be a scalar or array element");
      return nullptr;
    }
    bool Compound = false;
    if (accept(TokenKind::PlusAssign))
      Compound = true;
    else if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (Failed || !Value)
      return nullptr;
    if (!expect(TokenKind::Semi, "after assignment"))
      return nullptr;
    if (Compound)
      Value = std::make_unique<BinaryExpr>(BinaryOp::Add, Dest->clone(),
                                           std::move(Value));
    return std::make_unique<AssignStmt>(std::move(Dest), std::move(Value));
  }

  //===------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===------------------------------------------------------------------===//

  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    ExprPtr Cond = parseLogicalOr();
    if (Failed || !Cond)
      return nullptr;
    if (!accept(TokenKind::Question))
      return Cond;
    ExprPtr TrueV = parseExpr();
    if (Failed || !TrueV)
      return nullptr;
    if (!expect(TokenKind::Colon, "in conditional expression"))
      return nullptr;
    ExprPtr FalseV = parseTernary();
    if (Failed || !FalseV)
      return nullptr;
    return std::make_unique<SelectExpr>(std::move(Cond), std::move(TrueV),
                                        std::move(FalseV));
  }

  /// Normalizes `a op b` for logical ops into bit ops over 0/1 values:
  /// a && b -> (a != 0) & (b != 0).
  static ExprPtr boolize(ExprPtr E) {
    if (auto *B = dyn_cast<BinaryExpr>(E.get()))
      if (isComparisonOp(B->op()))
        return E;
    return std::make_unique<BinaryExpr>(BinaryOp::CmpNe, std::move(E),
                                        std::make_unique<IntLitExpr>(0));
  }

  ExprPtr parseLogicalOr() {
    ExprPtr Lhs = parseLogicalAnd();
    while (!Failed && Lhs && cur().is(TokenKind::PipePipe)) {
      consume();
      ExprPtr Rhs = parseLogicalAnd();
      if (Failed || !Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, boolize(std::move(Lhs)),
                                         boolize(std::move(Rhs)));
    }
    return Lhs;
  }

  ExprPtr parseLogicalAnd() {
    ExprPtr Lhs = parseBitOr();
    while (!Failed && Lhs && cur().is(TokenKind::AmpAmp)) {
      consume();
      ExprPtr Rhs = parseBitOr();
      if (Failed || !Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(
          BinaryOp::And, boolize(std::move(Lhs)), boolize(std::move(Rhs)));
    }
    return Lhs;
  }

  ExprPtr parseBinaryChain(ExprPtr (Parser::*Next)(),
                           std::initializer_list<std::pair<TokenKind,
                                                           BinaryOp>> Ops) {
    ExprPtr Lhs = (this->*Next)();
    while (!Failed && Lhs) {
      bool Matched = false;
      for (const auto &[Kind, Op] : Ops) {
        if (!cur().is(Kind))
          continue;
        consume();
        ExprPtr Rhs = (this->*Next)();
        if (Failed || !Rhs)
          return nullptr;
        Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs),
                                           std::move(Rhs));
        Matched = true;
        break;
      }
      if (!Matched)
        break;
    }
    return Lhs;
  }

  ExprPtr parseBitOr() {
    return parseBinaryChain(&Parser::parseBitXor,
                            {{TokenKind::Pipe, BinaryOp::Or}});
  }
  ExprPtr parseBitXor() {
    return parseBinaryChain(&Parser::parseBitAnd,
                            {{TokenKind::Caret, BinaryOp::Xor}});
  }
  ExprPtr parseBitAnd() {
    return parseBinaryChain(&Parser::parseEquality,
                            {{TokenKind::Amp, BinaryOp::And}});
  }
  ExprPtr parseEquality() {
    return parseBinaryChain(&Parser::parseRelational,
                            {{TokenKind::EqEq, BinaryOp::CmpEq},
                             {TokenKind::Ne, BinaryOp::CmpNe}});
  }
  ExprPtr parseRelational() {
    return parseBinaryChain(&Parser::parseShift,
                            {{TokenKind::Lt, BinaryOp::CmpLt},
                             {TokenKind::Le, BinaryOp::CmpLe},
                             {TokenKind::Gt, BinaryOp::CmpGt},
                             {TokenKind::Ge, BinaryOp::CmpGe}});
  }
  ExprPtr parseShift() {
    return parseBinaryChain(&Parser::parseAdditive,
                            {{TokenKind::Shl, BinaryOp::Shl},
                             {TokenKind::Shr, BinaryOp::Shr}});
  }
  ExprPtr parseAdditive() {
    return parseBinaryChain(&Parser::parseMultiplicative,
                            {{TokenKind::Plus, BinaryOp::Add},
                             {TokenKind::Minus, BinaryOp::Sub}});
  }
  ExprPtr parseMultiplicative() {
    return parseBinaryChain(&Parser::parseUnary,
                            {{TokenKind::Star, BinaryOp::Mul},
                             {TokenKind::Slash, BinaryOp::Div},
                             {TokenKind::Percent, BinaryOp::Mod}});
  }

  ExprPtr parseUnary() {
    if (accept(TokenKind::Minus)) {
      ExprPtr E = parseUnary();
      if (Failed || !E)
        return nullptr;
      return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(E));
    }
    if (accept(TokenKind::Bang)) {
      ExprPtr E = parseUnary();
      if (Failed || !E)
        return nullptr;
      return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(E));
    }
    if (accept(TokenKind::Plus))
      return parseUnary();
    return parsePrimary();
  }

  /// Parses one affine subscript expression and verifies affinity.
  std::optional<AffineExpr> parseSubscript(const std::string &ArrayName) {
    SourceLocation Loc = cur().Loc;
    ExprPtr E = parseExpr();
    if (Failed || !E)
      return std::nullopt;
    auto Aff = exprToAffine(E.get());
    if (!Aff) {
      error(Loc, "subscript of '" + ArrayName +
                     "' is not an affine function of loop indices");
      return std::nullopt;
    }
    return Aff;
  }

  ExprPtr parseBuiltinCall(const std::string &Name, unsigned Arity) {
    consume(); // '('
    std::vector<ExprPtr> Args;
    for (unsigned I = 0; I != Arity; ++I) {
      if (I != 0 && !expect(TokenKind::Comma, "between builtin arguments"))
        return nullptr;
      ExprPtr A = parseExpr();
      if (Failed || !A)
        return nullptr;
      Args.push_back(std::move(A));
    }
    if (!expect(TokenKind::RParen, ("after arguments of '" + Name + "'")
                                       .c_str()))
      return nullptr;
    if (Name == "abs")
      return std::make_unique<UnaryExpr>(UnaryOp::Abs, std::move(Args[0]));
    BinaryOp Op = Name == "min" ? BinaryOp::Min : BinaryOp::Max;
    return std::make_unique<BinaryExpr>(Op, std::move(Args[0]),
                                        std::move(Args[1]));
  }

  ExprPtr parsePrimary() {
    if (cur().is(TokenKind::IntLiteral)) {
      int64_t V = cur().IntValue;
      consume();
      return std::make_unique<IntLitExpr>(V);
    }
    if (accept(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      if (Failed || !E)
        return nullptr;
      if (!expect(TokenKind::RParen, "to close parenthesized expression"))
        return nullptr;
      return E;
    }
    if (!cur().is(TokenKind::Identifier)) {
      error(cur().Loc, std::string("expected expression, found ") +
                           tokenKindName(cur().Kind));
      return nullptr;
    }

    SourceLocation Loc = cur().Loc;
    std::string Name = cur().Text;
    consume();

    // Builtins.
    if (cur().is(TokenKind::LParen)) {
      if (Name == "abs")
        return parseBuiltinCall(Name, 1);
      if (Name == "min" || Name == "max")
        return parseBuiltinCall(Name, 2);
      error(Loc, "unknown function '" + Name +
                     "' (only abs, min, max are supported)");
      return nullptr;
    }

    // Loop index?
    for (const auto &[IdxName, Id] : LoopScope)
      if (IdxName == Name)
        return std::make_unique<LoopIndexExpr>(Id);

    // Array access?
    if (ArrayDecl *A = K.findArray(Name)) {
      std::vector<AffineExpr> Subs;
      while (accept(TokenKind::LBracket)) {
        auto Sub = parseSubscript(Name);
        if (!Sub)
          return nullptr;
        Subs.push_back(std::move(*Sub));
        if (!expect(TokenKind::RBracket, "after subscript"))
          return nullptr;
      }
      if (Subs.size() != A->numDims()) {
        error(Loc, "array '" + Name + "' has " +
                       std::to_string(A->numDims()) +
                       " dimensions but is accessed with " +
                       std::to_string(Subs.size()) + " subscripts");
        return nullptr;
      }
      return std::make_unique<ArrayAccessExpr>(A, std::move(Subs));
    }

    // Scalar?
    if (ScalarDecl *S = K.findScalar(Name))
      return std::make_unique<ScalarRefExpr>(S);

    error(Loc, "use of undeclared identifier '" + Name + "'");
    return nullptr;
  }

  /// Stop reporting (and parsing) after this many errors; a degenerate
  /// input should not produce an unbounded diagnostic stream.
  static constexpr unsigned MaxErrors = 20;

  DiagnosticEngine &Diags;
  Kernel K;
  std::vector<Token> Tokens;
  size_t Index = 0;
  bool Failed = false;    // The current statement failed.
  bool AnyFailed = false; // Some statement failed; no Kernel is returned.
  bool HardStop = false;  // MaxErrors reached; abandon the parse.
  unsigned ErrorCount = 0;
  std::vector<std::pair<std::string, int>> LoopScope;
};

} // namespace

std::optional<Kernel> defacto::parseKernel(const std::string &Source,
                                           const std::string &KernelName,
                                           DiagnosticEngine &Diags) {
  return Parser(Source, KernelName, Diags).run();
}
