//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Lexer.h"

#include "defacto/Support/ErrorHandling.h"

#include <cctype>

using namespace defacto;

const char *defacto::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwShort:
    return "'short'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::Ne:
    return "'!='";
  }
  defacto_unreachable("unknown token kind");
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char Ch = Source[Pos++];
  if (Ch == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return Ch;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char Ch = peek();
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      advance();
      continue;
    }
    if (Ch == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (Ch == '/' && peek(1) == '*') {
      SourceLocation Start = here();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  Token T;
  T.Loc = here();
  if (atEnd()) {
    T.Kind = TokenKind::Eof;
    return T;
  }

  char Ch = peek();
  if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
    std::string Word;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Word += advance();
    if (Word == "for")
      T.Kind = TokenKind::KwFor;
    else if (Word == "if")
      T.Kind = TokenKind::KwIf;
    else if (Word == "else")
      T.Kind = TokenKind::KwElse;
    else if (Word == "char")
      T.Kind = TokenKind::KwChar;
    else if (Word == "short")
      T.Kind = TokenKind::KwShort;
    else if (Word == "int")
      T.Kind = TokenKind::KwInt;
    else {
      T.Kind = TokenKind::Identifier;
      T.Text = std::move(Word);
    }
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(Ch))) {
    int64_t Value = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
    T.Kind = TokenKind::IntLiteral;
    T.IntValue = Value;
    return T;
  }

  advance();
  auto twoChar = [&](char Next, TokenKind Two, TokenKind One) {
    if (peek() == Next) {
      advance();
      T.Kind = Two;
    } else {
      T.Kind = One;
    }
  };

  switch (Ch) {
  case '(':
    T.Kind = TokenKind::LParen;
    break;
  case ')':
    T.Kind = TokenKind::RParen;
    break;
  case '{':
    T.Kind = TokenKind::LBrace;
    break;
  case '}':
    T.Kind = TokenKind::RBrace;
    break;
  case '[':
    T.Kind = TokenKind::LBracket;
    break;
  case ']':
    T.Kind = TokenKind::RBracket;
    break;
  case ';':
    T.Kind = TokenKind::Semi;
    break;
  case ',':
    T.Kind = TokenKind::Comma;
    break;
  case '?':
    T.Kind = TokenKind::Question;
    break;
  case ':':
    T.Kind = TokenKind::Colon;
    break;
  case '^':
    T.Kind = TokenKind::Caret;
    break;
  case '%':
    T.Kind = TokenKind::Percent;
    break;
  case '*':
    T.Kind = TokenKind::Star;
    break;
  case '/':
    T.Kind = TokenKind::Slash;
    break;
  case '=':
    twoChar('=', TokenKind::EqEq, TokenKind::Assign);
    break;
  case '!':
    twoChar('=', TokenKind::Ne, TokenKind::Bang);
    break;
  case '&':
    twoChar('&', TokenKind::AmpAmp, TokenKind::Amp);
    break;
  case '|':
    twoChar('|', TokenKind::PipePipe, TokenKind::Pipe);
    break;
  case '+':
    if (peek() == '+') {
      advance();
      T.Kind = TokenKind::PlusPlus;
    } else if (peek() == '=') {
      advance();
      T.Kind = TokenKind::PlusAssign;
    } else {
      T.Kind = TokenKind::Plus;
    }
    break;
  case '-':
    T.Kind = TokenKind::Minus;
    break;
  case '<':
    if (peek() == '<') {
      advance();
      T.Kind = TokenKind::Shl;
    } else if (peek() == '=') {
      advance();
      T.Kind = TokenKind::Le;
    } else {
      T.Kind = TokenKind::Lt;
    }
    break;
  case '>':
    if (peek() == '>') {
      advance();
      T.Kind = TokenKind::Shr;
    } else if (peek() == '=') {
      advance();
      T.Kind = TokenKind::Ge;
    } else {
      T.Kind = TokenKind::Gt;
    }
    break;
  default:
    T.Kind = TokenKind::Error;
    T.Text = std::string(1, Ch);
    Diags.error(T.Loc, "unexpected character '" + T.Text + "'");
    break;
  }
  return T;
}
