//===- Kernels.cpp --------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Kernels/Kernels.h"

#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/ErrorHandling.h"

#include <cstdio>

using namespace defacto;

const std::vector<KernelSpec> &defacto::paperKernels() {
  static const std::vector<KernelSpec> Specs = {
      {"FIR",
       "int S[96];\n"
       "int C[32];\n"
       "int D[64];\n"
       "for (j = 0; j < 64; j++)\n"
       "  for (i = 0; i < 32; i++)\n"
       "    D[j] = D[j] + (S[i + j] * C[i]);\n",
       "finite impulse response filter: integer multiply-accumulate over "
       "32 consecutive elements of a 96-element signal"},

      {"MM",
       "int A[32][16];\n"
       "int B[16][4];\n"
       "int Z[32][4];\n"
       "for (i = 0; i < 32; i++)\n"
       "  for (j = 0; j < 4; j++)\n"
       "    for (k = 0; k < 16; k++)\n"
       "      Z[i][j] = Z[i][j] + A[i][k] * B[k][j];\n",
       "integer dense matrix multiply of a 32x16 matrix by a 16x4 matrix"},

      {"PAT",
       "char T[80];\n"
       "char P[16];\n"
       "int M[64];\n"
       "for (i = 0; i < 64; i++)\n"
       "  for (j = 0; j < 16; j++)\n"
       "    M[i] = M[i] + (T[i + j] == P[j]);\n",
       "string pattern matching: character match of a length-16 pattern "
       "over a length-64 input string"},

      {"JAC",
       "short A[34][34];\n"
       "short B[34][34];\n"
       "for (i = 1; i < 33; i++)\n"
       "  for (j = 1; j < 33; j++)\n"
       "    B[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + "
       "A[i][j + 1]) / 4;\n",
       "Jacobi iteration: 4-point stencil averaging over a 32x32 interior"},

      {"SOBEL",
       "char I[34][34];\n"
       "short E[34][34];\n"
       "for (i = 1; i < 33; i++)\n"
       "  for (j = 1; j < 33; j++)\n"
       "    E[i][j] = min(255,\n"
       "      abs(I[i - 1][j - 1] + 2 * I[i - 1][j] + I[i - 1][j + 1]\n"
       "        - I[i + 1][j - 1] - 2 * I[i + 1][j] - I[i + 1][j + 1])\n"
       "      + abs(I[i - 1][j - 1] + 2 * I[i][j - 1] + I[i + 1][j - 1]\n"
       "        - I[i - 1][j + 1] - 2 * I[i][j + 1] - I[i + 1][j + 1]));\n",
       "Sobel edge detection: 3x3 window Laplacian operator over a 32x32 "
       "image interior"},
  };
  return Specs;
}

const std::vector<KernelSpec> &defacto::extendedKernels() {
  static const std::vector<KernelSpec> Specs = {
      {"CORR",
       "short I[19][19];\n"
       "short T[4][4];\n"
       "int R[16][16];\n"
       "for (x = 0; x < 16; x++)\n"
       "  for (y = 0; y < 16; y++)\n"
       "    for (u = 0; u < 4; u++)\n"
       "      for (v = 0; v < 4; v++)\n"
       "        R[x][y] = R[x][y] + I[x + u][y + v] * T[u][v];\n",
       "image correlation: 4x4 template over a 16x16 image, a 4-deep "
       "affine nest"},

      {"DILATE",
       "char I[34][34];\n"
       "char D[34][34];\n"
       "for (i = 1; i < 33; i++)\n"
       "  for (j = 1; j < 33; j++)\n"
       "    D[i][j] = max(max(max(I[i - 1][j - 1], I[i - 1][j]),\n"
       "                      max(I[i - 1][j + 1], I[i][j - 1])),\n"
       "                  max(max(I[i][j], I[i][j + 1]),\n"
       "                      max(I[i + 1][j - 1],\n"
       "                          max(I[i + 1][j], I[i + 1][j + 1]))));\n",
       "morphological dilation: 3x3 window maximum over a 32x32 image "
       "interior"},

      {"ERODE",
       "char I[34][34];\n"
       "char E[34][34];\n"
       "for (i = 1; i < 33; i++)\n"
       "  for (j = 1; j < 33; j++)\n"
       "    E[i][j] = min(min(min(I[i - 1][j - 1], I[i - 1][j]),\n"
       "                      min(I[i - 1][j + 1], I[i][j - 1])),\n"
       "                  min(min(I[i][j], I[i][j + 1]),\n"
       "                      min(I[i + 1][j - 1],\n"
       "                          min(I[i + 1][j], I[i + 1][j + 1]))));\n",
       "morphological erosion: 3x3 window minimum over a 32x32 image "
       "interior"},
  };
  return Specs;
}

const KernelSpec *defacto::findKernelSpec(const std::string &Name) {
  for (const KernelSpec &Spec : paperKernels())
    if (Spec.Name == Name)
      return &Spec;
  for (const KernelSpec &Spec : extendedKernels())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

Kernel defacto::buildKernel(const std::string &Name) {
  const KernelSpec *Spec = findKernelSpec(Name);
  if (!Spec)
    reportFatalError("unknown kernel name");
  DiagnosticEngine Diags;
  std::optional<Kernel> K = parseKernel(Spec->Source, Spec->Name, Diags);
  if (!K) {
    std::fprintf(stderr, "%s\n", Diags.toString().c_str());
    reportFatalError("built-in kernel failed to parse");
  }
  std::vector<std::string> Problems = verifyKernel(*K);
  if (!Problems.empty())
    reportFatalError("built-in kernel failed verification");
  return std::move(*K);
}
