//===- UniformlyGenerated.cpp ---------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/UniformlyGenerated.h"

using namespace defacto;

bool defacto::areUniformlyGenerated(const ArrayAccessExpr *A,
                                    const ArrayAccessExpr *B) {
  if (A->array() != B->array())
    return false;
  if (A->numSubscripts() != B->numSubscripts())
    return false;
  for (unsigned D = 0, N = A->numSubscripts(); D != N; ++D) {
    const AffineExpr &SA = A->subscript(D);
    const AffineExpr &SB = B->subscript(D);
    // Same linear part: the difference must be constant.
    if (!SA.sub(SB).isConstant())
      return false;
  }
  return true;
}

static void insertIntoSets(std::vector<UGSet> &Sets, ArrayAccessExpr *Access,
                           bool IsWrite) {
  for (UGSet &Set : Sets) {
    if (Set.Array != Access->array())
      continue;
    if (areUniformlyGenerated(Set.Accesses.front(), Access)) {
      Set.Accesses.push_back(Access);
      return;
    }
  }
  UGSet New;
  New.Array = Access->array();
  New.IsWrite = IsWrite;
  New.Accesses.push_back(Access);
  Sets.push_back(std::move(New));
}

UGPartition defacto::computeUniformlyGenerated(StmtList &Stmts) {
  UGPartition Part;
  for (const AccessInfo &Info : collectArrayAccesses(Stmts)) {
    if (Info.IsWrite)
      insertIntoSets(Part.WriteSets, Info.Access, /*IsWrite=*/true);
    else
      insertIntoSets(Part.ReadSets, Info.Access, /*IsWrite=*/false);
  }
  return Part;
}

UGPartition defacto::computeUniformlyGenerated(Kernel &K) {
  return computeUniformlyGenerated(K.body());
}

bool UGPartition::isArrayUniform(const ArrayDecl *Array) const {
  unsigned ReadSetsOfArray = 0, WriteSetsOfArray = 0;
  for (const UGSet &Set : ReadSets)
    if (Set.Array == Array)
      ++ReadSetsOfArray;
  for (const UGSet &Set : WriteSets)
    if (Set.Array == Array)
      ++WriteSetsOfArray;
  // All reads uniformly generated with each other, likewise all writes,
  // and reads uniformly generated with writes when both exist.
  if (ReadSetsOfArray > 1 || WriteSetsOfArray > 1)
    return false;
  if (ReadSetsOfArray == 1 && WriteSetsOfArray == 1) {
    const UGSet *Read = nullptr, *Write = nullptr;
    for (const UGSet &Set : ReadSets)
      if (Set.Array == Array)
        Read = &Set;
    for (const UGSet &Set : WriteSets)
      if (Set.Array == Array)
        Write = &Set;
    return areUniformlyGenerated(Read->Accesses.front(),
                                 Write->Accesses.front());
  }
  return true;
}
