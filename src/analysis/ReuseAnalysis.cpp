//===- ReuseAnalysis.cpp --------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/ReuseAnalysis.h"

#include "defacto/Support/ErrorHandling.h"

#include <map>
#include <numeric>

using namespace defacto;

const char *defacto::reuseShapeName(ReuseShape Shape) {
  switch (Shape) {
  case ReuseShape::LoopIndependent:
    return "loop-independent";
  case ReuseShape::InnerInvariant:
    return "inner-invariant";
  case ReuseShape::OuterCarriedChain:
    return "outer-carried-chain";
  case ReuseShape::InnerCarriedWindow:
    return "inner-carried-window";
  case ReuseShape::None:
    return "none";
  }
  defacto_unreachable("unknown reuse shape");
}

namespace {

/// Small union-find over access indices.
class UnionFind {
public:
  explicit UnionFind(unsigned N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0u);
  }
  unsigned find(unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(unsigned A, unsigned B) { Parent[find(A)] = find(B); }

private:
  std::vector<unsigned> Parent;
};

} // namespace

std::vector<ReuseGroup>
defacto::computeReuseGroups(Kernel &K, const DependenceInfo &DI) {
  std::vector<AccessInfo> Accesses = collectArrayAccesses(K);
  std::map<const ArrayAccessExpr *, unsigned> IndexOf;
  for (unsigned I = 0; I != Accesses.size(); ++I)
    IndexOf[Accesses[I].Access] = I;

  UnionFind UF(Accesses.size());
  // Union endpoints of consistent dependences: those are the pairs whose
  // reuse scalar replacement can exploit.
  for (const Dependence &Dep : DI.dependences()) {
    if (!Dep.Consistent)
      continue;
    auto SrcIt = IndexOf.find(Dep.Src);
    auto DstIt = IndexOf.find(Dep.Dst);
    if (SrcIt == IndexOf.end() || DstIt == IndexOf.end())
      continue;
    UF.merge(SrcIt->second, DstIt->second);
  }
  // Identical subscript vectors always share (loop-independent reuse).
  for (unsigned I = 0; I != Accesses.size(); ++I)
    for (unsigned J = I + 1; J != Accesses.size(); ++J)
      if (Accesses[I].Access->array() == Accesses[J].Access->array() &&
          Accesses[I].Access->subscripts() ==
              Accesses[J].Access->subscripts())
        UF.merge(I, J);

  std::map<unsigned, ReuseGroup> Groups; // root -> group, ordered
  for (unsigned I = 0; I != Accesses.size(); ++I) {
    ReuseGroup &G = Groups[UF.find(I)];
    G.Array = Accesses[I].Access->array();
    G.Accesses.push_back(Accesses[I].Access);
    G.HasWrite |= Accesses[I].IsWrite;
  }

  const std::vector<ForStmt *> &Nest = DI.nest();
  auto nestPosition = [&Nest](int LoopId) {
    for (unsigned P = 0; P != Nest.size(); ++P)
      if (Nest[P]->loopId() == LoopId)
        return static_cast<int>(P);
    return -1;
  };

  std::vector<ReuseGroup> Out;
  for (auto &[Root, G] : Groups) {
    (void)Root;
    // Deepest nest position any member's subscripts vary with.
    int MaxVary = -1;
    for (const ArrayAccessExpr *A : G.Accesses)
      for (const AffineExpr &Sub : A->subscripts())
        for (int Id : Sub.loopIds())
          MaxVary = std::max(MaxVary, nestPosition(Id));

    // Consistent dependences internal to the group.
    std::vector<const Dependence *> GroupDeps;
    for (const Dependence &Dep : DI.dependences()) {
      if (!Dep.Consistent)
        continue;
      bool SrcIn = false, DstIn = false;
      for (const ArrayAccessExpr *A : G.Accesses) {
        SrcIn |= A == Dep.Src;
        DstIn |= A == Dep.Dst;
      }
      if (SrcIn && DstIn)
        GroupDeps.push_back(&Dep);
    }

    if (MaxVary < static_cast<int>(Nest.size()) - 1) {
      // Invariant in at least the innermost loop: registers live across
      // the inner sweep (D[j] in FIR, Z[i][j] in MM).
      G.Shape = ReuseShape::InnerInvariant;
      G.CarrierPosition = MaxVary + 1;
    } else {
      // Varies with the innermost loop; look for carried reuse.
      const Dependence *OuterDep = nullptr;
      std::optional<int64_t> WindowDist;
      for (const Dependence *Dep : GroupDeps) {
        int P = Dep->carrierPosition();
        if (P < 0)
          continue;
        if (P < MaxVary && !OuterDep)
          OuterDep = Dep;
        if (P == MaxVary && Dep->Distance[P].isExact()) {
          int64_t V = Dep->Distance[P].Value;
          if (V > 0 && (!WindowDist || V > *WindowDist))
            WindowDist = V;
        }
      }
      // A group can carry reuse both across an outer loop (row reuse in
      // a stencil) and along the innermost loop (the sliding window);
      // the window is what scalar replacement materializes, so it takes
      // precedence in the classification.
      if (WindowDist) {
        G.Shape = ReuseShape::InnerCarriedWindow;
        G.CarrierPosition = MaxVary;
        G.Distance = WindowDist;
      } else if (OuterDep) {
        G.Shape = ReuseShape::OuterCarriedChain;
        G.CarrierPosition = OuterDep->carrierPosition();
        const DistanceEntry &E = OuterDep->Distance[G.CarrierPosition];
        G.Distance = E.isExact() ? E.Value : 1;
      } else {
        bool Identical = false;
        for (unsigned I = 0; I != G.Accesses.size() && !Identical; ++I)
          for (unsigned J = I + 1; J != G.Accesses.size(); ++J)
            if (G.Accesses[I]->subscripts() == G.Accesses[J]->subscripts()) {
              Identical = true;
              break;
            }
        G.Shape = Identical ? ReuseShape::LoopIndependent : ReuseShape::None;
      }
    }
    Out.push_back(std::move(G));
  }
  return Out;
}
