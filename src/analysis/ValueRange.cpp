//===- ValueRange.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/ValueRange.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/Support/ErrorHandling.h"

#include <algorithm>

using namespace defacto;

namespace {

/// Saturating clamp keeping ranges within a safe 48-bit envelope so
/// products of products cannot overflow int64 arithmetic.
constexpr int64_t RangeCap = (1LL << 47);

int64_t clampV(int64_t V) {
  return std::min(RangeCap, std::max(-RangeCap, V));
}

} // namespace

ValueRange ValueRange::ofType(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Int8:
    return {-128, 127};
  case ScalarType::Int16:
    return {-32768, 32767};
  case ScalarType::Int32:
    return {-2147483648LL, 2147483647LL};
  }
  defacto_unreachable("unknown scalar type");
}

unsigned ValueRange::bitsNeeded() const {
  for (unsigned B = 1; B != 64; ++B) {
    int64_t Lo = B == 64 ? INT64_MIN : -(1LL << (B - 1));
    int64_t Hi = (1LL << (B - 1)) - 1;
    if (Min >= Lo && Max <= Hi)
      return B;
  }
  return 64;
}

ValueRange ValueRange::add(const ValueRange &O) const {
  return {clampV(Min + O.Min), clampV(Max + O.Max)};
}

ValueRange ValueRange::sub(const ValueRange &O) const {
  return {clampV(Min - O.Max), clampV(Max - O.Min)};
}

ValueRange ValueRange::mul(const ValueRange &O) const {
  int64_t Products[4] = {clampV(Min * O.Min), clampV(Min * O.Max),
                         clampV(Max * O.Min), clampV(Max * O.Max)};
  return {*std::min_element(Products, Products + 4),
          *std::max_element(Products, Products + 4)};
}

ValueRange ValueRange::unionWith(const ValueRange &O) const {
  return {std::min(Min, O.Min), std::max(Max, O.Max)};
}

ValueRange ValueRange::negate() const {
  return {clampV(-Max), clampV(-Min)};
}

ValueRange ValueRange::abs() const {
  int64_t Lo = 0;
  if (Min > 0)
    Lo = Min;
  else if (Max < 0)
    Lo = clampV(-Max);
  int64_t Hi = std::max(clampV(-Min), Max);
  return {Lo, Hi};
}

namespace {

class RangeWalk {
public:
  explicit RangeWalk(std::map<const Expr *, ValueRange> &Ranges)
      : Ranges(Ranges) {}

  void walkList(const StmtList &Stmts) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt *S = SP.get();
      if (const auto *F = dyn_cast<ForStmt>(S)) {
        // The index value range over the loop's actual bounds.
        LoopRanges[F->loopId()] = {
            F->lower(), F->lower() + (F->tripCount() - 1) * F->step()};
        walkList(F->body());
        LoopRanges.erase(F->loopId());
      } else if (const auto *I = dyn_cast<IfStmt>(S)) {
        visit(I->cond());
        walkList(I->thenBody());
        walkList(I->elseBody());
      } else if (const auto *A = dyn_cast<AssignStmt>(S)) {
        visit(A->dest());
        visit(A->value());
      }
    }
  }

private:
  ValueRange visit(const Expr *E) {
    ValueRange R = compute(E);
    Ranges[E] = R;
    return R;
  }

  ValueRange compute(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return ValueRange::constant(cast<IntLitExpr>(E)->value());
    case Expr::Kind::LoopIndex: {
      auto It = LoopRanges.find(cast<LoopIndexExpr>(E)->loopId());
      if (It != LoopRanges.end())
        return It->second;
      return ValueRange::ofType(ScalarType::Int32);
    }
    case Expr::Kind::ScalarRef:
      // Assignments truncate to the declared type: sound and simple.
      return ValueRange::ofType(cast<ScalarRefExpr>(E)->decl()->type());
    case Expr::Kind::ArrayAccess:
      return ValueRange::ofType(
          cast<ArrayAccessExpr>(E)->array()->elementType());
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      ValueRange In = visit(U->operand());
      switch (U->op()) {
      case UnaryOp::Neg:
        return In.negate();
      case UnaryOp::Abs:
        return In.abs();
      case UnaryOp::Not:
        return {0, 1};
      }
      defacto_unreachable("unknown unary op");
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      ValueRange L = visit(B->lhs());
      ValueRange R = visit(B->rhs());
      switch (B->op()) {
      case BinaryOp::Add:
        return L.add(R);
      case BinaryOp::Sub:
        return L.sub(R);
      case BinaryOp::Mul:
        return L.mul(R);
      case BinaryOp::Div:
        // Quotient magnitude never exceeds the dividend's.
        return L.unionWith(L.negate());
      case BinaryOp::Mod:
        return L.unionWith(R.unionWith(R.negate()));
      case BinaryOp::Min:
        return {std::min(L.Min, R.Min), std::min(L.Max, R.Max)};
      case BinaryOp::Max:
        return {std::max(L.Min, R.Min), std::max(L.Max, R.Max)};
      case BinaryOp::And:
      case BinaryOp::Or:
      case BinaryOp::Xor:
        // Bitwise results stay within the wider operand's width.
        return L.unionWith(R);
      case BinaryOp::Shl:
        // Conservative: behaves like a multiply by up to 2^31; clamp.
        return {clampV(std::min(L.Min, -RangeCap)),
                clampV(std::max(L.Max, RangeCap))};
      case BinaryOp::Shr:
        return L.unionWith({0, 0});
      case BinaryOp::CmpEq:
      case BinaryOp::CmpNe:
      case BinaryOp::CmpLt:
      case BinaryOp::CmpLe:
      case BinaryOp::CmpGt:
      case BinaryOp::CmpGe:
        return {0, 1};
      }
      defacto_unreachable("unknown binary op");
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      visit(S->cond());
      return visit(S->trueValue()).unionWith(visit(S->falseValue()));
    }
    }
    defacto_unreachable("unknown expression kind");
  }

  std::map<const Expr *, ValueRange> &Ranges;
  std::map<int, ValueRange> LoopRanges;
};

} // namespace

ValueRangeAnalysis::ValueRangeAnalysis(const Kernel &K) {
  RangeWalk(Ranges).walkList(K.body());
}

ValueRange ValueRangeAnalysis::rangeOf(const Expr *E) const {
  auto It = Ranges.find(E);
  if (It != Ranges.end())
    return It->second;
  return ValueRange::ofType(ScalarType::Int32);
}

unsigned ValueRangeAnalysis::widthOf(const Expr *E) const {
  return rangeOf(E).bitsNeeded();
}
