//===- DependenceAnalysis.cpp ---------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/DependenceAnalysis.h"

#include "defacto/Analysis/UniformlyGenerated.h"
#include "defacto/Support/ErrorHandling.h"
#include "defacto/Support/MathExtras.h"

#include <algorithm>

using namespace defacto;

const char *defacto::depKindName(DepKind Kind) {
  switch (Kind) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Input:
    return "input";
  }
  defacto_unreachable("unknown dependence kind");
}

std::string DistanceEntry::toString() const {
  return isStar() ? "*" : std::to_string(Value);
}

bool Dependence::isLoopIndependent() const {
  if (!Consistent)
    return false;
  for (const DistanceEntry &E : Distance)
    if (!E.isExactZero())
      return false;
  return true;
}

int Dependence::carrierPosition() const {
  if (!Consistent)
    return 0; // Conservatively carried by the outermost loop.
  for (unsigned P = 0; P != Distance.size(); ++P)
    if (!Distance[P].isExactZero())
      return static_cast<int>(P);
  return -1;
}

std::string Dependence::toString(
    const std::function<std::string(int)> &NameOf) const {
  std::string Out = depKindName(Kind);
  Out += " dep on ";
  Out += Src->array()->name();
  if (!Consistent)
    return Out + " (inconsistent)";
  Out += " distance (";
  for (unsigned P = 0; P != Distance.size(); ++P) {
    if (P != 0)
      Out += ", ";
    Out += Distance[P].toString();
  }
  Out += ")";
  (void)NameOf;
  return Out;
}

namespace {

/// Iteration-space information for one nest loop.
struct LoopRange {
  int LoopId;
  int64_t Lower;     // first index value
  int64_t LastValue; // last index value actually taken
  int64_t Step;
};

/// Outcome of the exact distance solve for a uniformly generated pair.
struct SolveResult {
  enum class Status {
    NoDependence,  ///< The accesses can never touch the same element.
    Exact,         ///< Unique distance vector (with possible stars).
    Underdetermined, ///< Solutions exist but are not unique: inconsistent.
  };
  Status St = Status::NoDependence;
  std::vector<DistanceEntry> Distance; // valid when Exact
};

/// Solves sum(a_l * d_l) = Rhs_dim for every dimension, where d_l is the
/// iteration-count distance of loop l (index-value difference divided by
/// the loop step). Handles the common subscript forms exactly: every
/// dimension whose linear part involves a single loop pins that loop;
/// dimensions involving two or more loops make the system underdetermined
/// unless the involved loops are already pinned.
SolveResult solveUniformDistance(const ArrayAccessExpr *A,
                                 const ArrayAccessExpr *B,
                                 const std::vector<LoopRange> &Loops) {
  unsigned N = Loops.size();
  std::vector<bool> Pinned(N, false);
  std::vector<int64_t> Value(N, 0); // index-value distance when pinned

  struct Equation {
    std::vector<int64_t> Coeff; // per nest position, index-value units
    int64_t Rhs;
  };
  std::vector<Equation> Eqs;
  for (unsigned D = 0, ND = A->numSubscripts(); D != ND; ++D) {
    const AffineExpr &SA = A->subscript(D);
    const AffineExpr &SB = B->subscript(D);
    Equation Eq;
    Eq.Coeff.assign(N, 0);
    bool Any = false;
    for (unsigned P = 0; P != N; ++P) {
      Eq.Coeff[P] = SA.coeff(Loops[P].LoopId);
      if (Eq.Coeff[P] != 0)
        Any = true;
    }
    // Same element: SA(I) == SB(I'), i.e. sum a_l (I'_l - I_l) = bA - bB.
    Eq.Rhs = SA.constant() - SB.constant();
    if (!Any) {
      if (Eq.Rhs != 0)
        return {SolveResult::Status::NoDependence, {}};
      continue;
    }
    Eqs.push_back(std::move(Eq));
  }

  // Propagate single-unknown equations to a fixed point.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Equation &Eq : Eqs) {
      int UnknownPos = -1;
      unsigned NumUnknown = 0;
      int64_t Residual = Eq.Rhs;
      for (unsigned P = 0; P != N; ++P) {
        if (Eq.Coeff[P] == 0)
          continue;
        if (Pinned[P]) {
          Residual -= Eq.Coeff[P] * Value[P];
          Eq.Rhs -= Eq.Coeff[P] * Value[P];
          Eq.Coeff[P] = 0;
          Changed = true;
          continue;
        }
        ++NumUnknown;
        UnknownPos = static_cast<int>(P);
      }
      if (NumUnknown == 0) {
        if (Residual != 0)
          return {SolveResult::Status::NoDependence, {}};
        continue;
      }
      if (NumUnknown != 1)
        continue;
      int64_t C = Eq.Coeff[UnknownPos];
      if (Residual % C != 0)
        return {SolveResult::Status::NoDependence, {}};
      int64_t V = Residual / C;
      // The index-value distance must be a multiple of the loop step and
      // within the loop's span.
      const LoopRange &L = Loops[UnknownPos];
      if (V % L.Step != 0)
        return {SolveResult::Status::NoDependence, {}};
      int64_t Span = L.LastValue - L.Lower;
      if (V > Span || V < -Span)
        return {SolveResult::Status::NoDependence, {}};
      Pinned[UnknownPos] = true;
      Value[UnknownPos] = V;
      Eq.Coeff[UnknownPos] = 0;
      Eq.Rhs = 0;
      Changed = true;
    }
  }

  // Any equation still mentioning >= 2 unpinned unknowns leaves the
  // system underdetermined: no consistent distance (the paper's S[i+j]
  // case).
  for (const Equation &Eq : Eqs)
    for (unsigned P = 0; P != N; ++P)
      if (Eq.Coeff[P] != 0 && !Pinned[P])
        return {SolveResult::Status::Underdetermined, {}};

  SolveResult Res;
  Res.St = SolveResult::Status::Exact;
  Res.Distance.resize(N);
  for (unsigned P = 0; P != N; ++P) {
    if (Pinned[P])
      Res.Distance[P] = DistanceEntry::exact(Value[P] / Loops[P].Step);
    else
      Res.Distance[P] = DistanceEntry::star();
  }
  return Res;
}

/// GCD + Banerjee existence test per dimension for pairs without an exact
/// distance. Returns true when a dependence may exist.
bool mayDepend(const ArrayAccessExpr *A, const ArrayAccessExpr *B,
               const std::vector<LoopRange> &Loops) {
  for (unsigned D = 0, ND = A->numSubscripts(); D != ND; ++D) {
    const AffineExpr &SA = A->subscript(D);
    const AffineExpr &SB = B->subscript(D);
    // h(I, I') = SA(I) - SB(I') must admit a zero.
    int64_t Const = SA.constant() - SB.constant();
    int64_t G = 0;
    int64_t Min = Const, Max = Const;
    for (const LoopRange &L : Loops) {
      for (int Side = 0; Side != 2; ++Side) {
        int64_t C = Side == 0 ? SA.coeff(L.LoopId) : -SB.coeff(L.LoopId);
        if (C == 0)
          continue;
        // Index values range over [Lower, LastValue] in Step multiples.
        G = gcd64(G, C * L.Step);
        if (C > 0) {
          Min += C * L.Lower;
          Max += C * L.LastValue;
        } else {
          Min += C * L.LastValue;
          Max += C * L.Lower;
        }
      }
    }
    if (G == 0) {
      if (Const != 0)
        return false;
      continue;
    }
    // GCD test: the gcd of the step-scaled coefficients must divide the
    // constant offset relative to the base index values. Using the raw
    // coefficient gcd is conservative; keep it simple and sound.
    int64_t CoeffGcd = 0;
    for (const LoopRange &L : Loops) {
      CoeffGcd = gcd64(CoeffGcd, SA.coeff(L.LoopId));
      CoeffGcd = gcd64(CoeffGcd, SB.coeff(L.LoopId));
    }
    if (CoeffGcd != 0 && Const % CoeffGcd != 0)
      return false;
    // Banerjee bounds.
    if (Min > 0 || Max < 0)
      return false;
  }
  return true;
}

} // namespace

DependenceInfo DependenceInfo::compute(Kernel &K) {
  DependenceInfo Info;
  ForStmt *Top = K.topLoop();
  if (!Top)
    return Info;
  Info.Nest = perfectNest(Top);

  std::vector<LoopRange> Loops;
  for (ForStmt *F : Info.Nest) {
    LoopRange R;
    R.LoopId = F->loopId();
    R.Lower = F->lower();
    R.Step = F->step();
    R.LastValue = F->lower() + (F->tripCount() - 1) * F->step();
    Loops.push_back(R);
  }

  std::vector<AccessInfo> Accesses = collectArrayAccesses(K);
  for (unsigned I = 0; I != Accesses.size(); ++I) {
    for (unsigned J = I; J != Accesses.size(); ++J) {
      const AccessInfo &AI = Accesses[I];
      const AccessInfo &BJ = Accesses[J];
      if (AI.Access->array() != BJ.Access->array())
        continue;

      auto classify = [&](bool SrcWrite, bool DstWrite) {
        if (SrcWrite && DstWrite)
          return DepKind::Output;
        if (SrcWrite)
          return DepKind::Flow;
        if (DstWrite)
          return DepKind::Anti;
        return DepKind::Input;
      };

      if (areUniformlyGenerated(AI.Access, BJ.Access)) {
        SolveResult Res = solveUniformDistance(AI.Access, BJ.Access, Loops);
        if (Res.St == SolveResult::Status::NoDependence)
          continue;
        if (Res.St == SolveResult::Status::Exact) {
          // Orient the dependence so the distance is lexicographically
          // non-negative (stars orient forward).
          bool Swap = false;
          bool AllZero = true;
          for (const DistanceEntry &E : Res.Distance) {
            if (E.isStar()) {
              AllZero = false;
              break;
            }
            if (E.Value != 0) {
              Swap = E.Value < 0;
              AllZero = false;
              break;
            }
          }
          if (AllZero && I == J)
            continue; // An access trivially "depends" on itself.
          Dependence Dep;
          Dep.Consistent = true;
          if (Swap) {
            Dep.Src = BJ.Access;
            Dep.Dst = AI.Access;
            Dep.Kind = classify(BJ.IsWrite, AI.IsWrite);
            for (DistanceEntry &E : Res.Distance)
              if (E.isExact())
                E.Value = -E.Value;
          } else {
            Dep.Src = AI.Access;
            Dep.Dst = BJ.Access;
            Dep.Kind = classify(AI.IsWrite, BJ.IsWrite);
          }
          Dep.Distance = std::move(Res.Distance);
          Info.Deps.push_back(std::move(Dep));
          continue;
        }
        // Underdetermined: fall through to the existence test below.
      }

      if (I == J && !AI.IsWrite)
        continue; // Self input dependence without a distance is useless.
      if (!mayDepend(AI.Access, BJ.Access, Loops))
        continue;
      Dependence Dep;
      Dep.Src = AI.Access;
      Dep.Dst = BJ.Access;
      Dep.Kind = classify(AI.IsWrite, BJ.IsWrite);
      Dep.Consistent = false;
      Info.Deps.push_back(std::move(Dep));
    }
  }
  return Info;
}

bool DependenceInfo::carriesNoDependence(unsigned NestPosition) const {
  for (const Dependence &Dep : Deps) {
    if (Dep.Kind == DepKind::Input)
      continue;
    if (!Dep.Consistent)
      return false; // Conservative: could be carried anywhere.
    if (Dep.carrierPosition() == static_cast<int>(NestPosition))
      return false;
    // A star at this position with an outer exact carrier still permits
    // instances of this loop to conflict; treat stars as carried here too.
    if (Dep.carrierPosition() >= 0 &&
        static_cast<unsigned>(Dep.carrierPosition()) < NestPosition &&
        NestPosition < Dep.Distance.size() &&
        Dep.Distance[NestPosition].isStar())
      return false;
  }
  return true;
}

std::optional<int64_t>
DependenceInfo::minCarriedDistance(unsigned NestPosition) const {
  std::optional<int64_t> Min;
  for (const Dependence &Dep : Deps) {
    if (Dep.Kind == DepKind::Input || !Dep.Consistent)
      continue;
    if (Dep.carrierPosition() != static_cast<int>(NestPosition))
      continue;
    const DistanceEntry &E = Dep.Distance[NestPosition];
    if (!E.isExact())
      continue;
    int64_t V = E.Value;
    if (V > 0 && (!Min || V < *Min))
      Min = V;
  }
  return Min;
}

int DependenceInfo::positionOf(int LoopId) const {
  for (unsigned P = 0; P != Nest.size(); ++P)
    if (Nest[P]->loopId() == LoopId)
      return static_cast<int>(P);
  return -1;
}
