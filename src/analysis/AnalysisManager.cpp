//===- AnalysisManager.cpp ------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/AnalysisManager.h"

#include "defacto/IR/IRUtils.h"

using namespace defacto;

const DependenceInfo &AnalysisManager::dependence(Kernel &K) {
  uint64_t Fp = kernelFingerprint(K);
  if (Dep && DepFp == Fp) {
    ++Hits;
    return *Dep;
  }
  ++Misses;
  Dep.emplace(DependenceInfo::compute(K));
  DepFp = Fp;
  return *Dep;
}

const std::vector<ReuseGroup> &AnalysisManager::reuse(Kernel &K) {
  uint64_t Fp = kernelFingerprint(K);
  if (Reuse && ReuseFp == Fp) {
    ++Hits;
    return *Reuse;
  }
  ++Misses;
  const DependenceInfo &DI = dependence(K);
  Reuse.emplace(computeReuseGroups(K, DI));
  ReuseFp = Fp;
  return *Reuse;
}

const ValueRangeAnalysis &AnalysisManager::valueRange(const Kernel &K) {
  uint64_t Fp = kernelFingerprint(K);
  if (Ranges && RangesFp == Fp) {
    ++Hits;
    return *Ranges;
  }
  ++Misses;
  Ranges.emplace(K);
  RangesFp = Fp;
  return *Ranges;
}

const UGPartition &AnalysisManager::uniformlyGenerated(Kernel &K) {
  uint64_t Fp = kernelFingerprint(K);
  if (UG && UGFp == Fp) {
    ++Hits;
    return *UG;
  }
  ++Misses;
  UG.emplace(computeUniformlyGenerated(K));
  UGFp = Fp;
  return *UG;
}

void AnalysisManager::invalidate(const PreservedAnalyses &Preserved) {
  if (!Preserved.isPreserved(AnalysisKind::Dependence))
    Dep.reset();
  if (!Preserved.isPreserved(AnalysisKind::Reuse))
    Reuse.reset();
  if (!Preserved.isPreserved(AnalysisKind::ValueRange))
    Ranges.reset();
  if (!Preserved.isPreserved(AnalysisKind::UniformlyGenerated))
    UG.reset();
}
