//===- DataLayout.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/DataLayout.h"

#include "defacto/Analysis/UniformlyGenerated.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/MathExtras.h"

#include <cassert>
#include <map>

using namespace defacto;

namespace {

/// (Sub - Bank) / Banks with exact division of every coefficient. Fails
/// when a coefficient or the shifted constant is not divisible (the input
/// was not normalized; the bank count was derived from a different
/// subscript population).
Expected<AffineExpr> bankLocalSubscript(const AffineExpr &Sub, int64_t Banks,
                                        int64_t Bank) {
  AffineExpr Out;
  for (int Id : Sub.loopIds()) {
    int64_t C = Sub.coeff(Id);
    if (C % Banks != 0)
      return Status::error(ErrorCode::MalformedIR,
                           "subscript coefficient " + std::to_string(C) +
                               " not divisible by bank count " +
                               std::to_string(Banks));
    Out = Out.add(AffineExpr::term(Id, C / Banks));
  }
  int64_t K = Sub.constant() - Bank;
  if (K % Banks != 0)
    return Status::error(ErrorCode::MalformedIR,
                         "subscript constant " + std::to_string(K) +
                             " not divisible by bank count " +
                             std::to_string(Banks));
  return Out.addConstant(K / Banks);
}

/// Number of distinct constant offsets of \p Accs in dimension \p D,
/// optionally reduced mod \p Mod (Mod == 0: no reduction).
unsigned distinctConstants(const std::vector<ArrayAccessExpr *> &Accs,
                           unsigned D, int64_t Mod) {
  std::vector<int64_t> Seen;
  for (ArrayAccessExpr *Acc : Accs) {
    int64_t C = Acc->subscript(D).constant();
    if (Mod > 0)
      C = ((C % Mod) + Mod) % Mod;
    bool Found = false;
    for (int64_t V : Seen)
      Found |= V == C;
    if (!Found)
      Seen.push_back(C);
  }
  return Seen.size();
}

} // namespace

Expected<DataLayoutStats>
defacto::applyDataLayout(Kernel &K, const DataLayoutOptions &Opts) {
  DataLayoutStats Stats;
  int64_t M = Opts.NumMemories == 0 ? 1 : Opts.NumMemories;

  // Group accesses by origin array, in declaration order.
  std::vector<ArrayDecl *> Order;
  std::map<const ArrayDecl *, std::vector<ArrayAccessExpr *>> ByArray;
  for (const auto &A : K.arrays())
    if (!A->renamedFrom())
      Order.push_back(A.get());
  // One walk serves both phases: phase 1 rewrites subscripts and
  // retargets accesses in place, so the collected pointers stay valid.
  const std::vector<AccessInfo> AllAccesses = collectArrayAccesses(K);
  for (const AccessInfo &Info : AllAccesses)
    ByArray[Info.Access->array()].push_back(Info.Access);

  // Phase 1 preparation: per array, pick the distribution dimension (the
  // one unrolling spread constants along) and record each access's cyclic
  // residue mod M in that dimension *before* any subscript rewriting.
  // The residue determines the access's bank relative to the other
  // accesses of the same array on every iteration — the paper's steady
  // state mapping — regardless of whether the bank index is iteration-
  // invariant.
  struct PortClass {
    const ArrayDecl *Array;
    int64_t Residue;
    bool operator<(const PortClass &O) const {
      return Array != O.Array ? Array < O.Array : Residue < O.Residue;
    }
  };
  std::map<const ArrayAccessExpr *, PortClass> ClassOf;

  int NextVirtualId = 0;
  for (ArrayDecl *A : Order) {
    auto It = ByArray.find(A);
    if (It == ByArray.end())
      continue; // Never accessed; no memory needed.
    std::vector<ArrayAccessExpr *> &Accs = It->second;

    // Distribution dimension: most distinct residues mod M; ties go to
    // the fastest-varying (last) dimension.
    unsigned Dim = A->numDims() - 1;
    unsigned BestSpread = 0;
    for (unsigned D = 0; D != A->numDims(); ++D) {
      unsigned Spread = distinctConstants(Accs, D, M);
      if (Spread >= BestSpread) {
        BestSpread = Spread;
        Dim = D;
      }
    }
    for (ArrayAccessExpr *Acc : Accs) {
      int64_t R = ((Acc->subscript(Dim).constant() % M) + M) % M;
      ClassOf[Acc] = {A, R};
    }

    // Phase 1b: array renaming when the bank index is iteration-invariant
    // along Dim: every loop coefficient divisible by the bank count
    // (coincides with the uniformly generated condition on the source
    // nest). Produces the S0/S1-style bank arrays of Figure 1(d).
    int64_t G = 0;
    for (ArrayAccessExpr *Acc : Accs)
      for (int Id : Acc->subscript(Dim).loopIds())
        G = gcd64(G, Acc->subscript(Dim).coeff(Id));
    int64_t Banks = G == 0 ? M : gcd64(M, G);
    if (Banks > A->dim(Dim))
      Banks = 1;

    if (Banks <= 1) {
      A->setVirtualMemId(NextVirtualId++);
      ++Stats.VirtualMemories;
      continue;
    }

    std::vector<ArrayDecl *> BankArrays(Banks);
    for (int64_t B = 0; B != Banks; ++B) {
      std::string Name = A->name() + std::to_string(B);
      while (K.findArray(Name) || K.findScalar(Name))
        Name += "_";
      std::vector<int64_t> Dims = A->dims();
      Dims[Dim] = ceilDiv(Dims[Dim], Banks);
      ArrayDecl *BankArr = K.makeArray(Name, A->elementType(), Dims);
      BankArr->setRenaming(A, Dim, B, Banks);
      BankArr->setVirtualMemId(NextVirtualId++);
      BankArrays[B] = BankArr;
      ++Stats.VirtualMemories;
    }
    ++Stats.ArraysDistributed;

    for (ArrayAccessExpr *Acc : Accs) {
      const AffineExpr &Sub = Acc->subscript(Dim);
      int64_t Bank = ((Sub.constant() % Banks) + Banks) % Banks;
      Expected<AffineExpr> Local = bankLocalSubscript(Sub, Banks, Bank);
      if (!Local)
        return Local.status();
      Acc->setSubscript(Dim, *Local);
      Acc->setArray(BankArrays[Bank]);
    }
  }

  // Phase 2: memory mapping. Bind port classes to physical memories
  // round-robin, reads first in program order then writes, so reads that
  // can be parallel land in distinct memories (§5.2). Every access gets a
  // scheduling port; (renamed) arrays additionally record the port of
  // their first access for display and codegen.
  int NextPhysical = 0;
  std::map<PortClass, int> PortOfClass;
  auto bind = [&](ArrayAccessExpr *Acc) {
    auto ClassIt = ClassOf.find(Acc);
    if (ClassIt == ClassOf.end())
      return;
    auto [It, Inserted] = PortOfClass.try_emplace(ClassIt->second, 0);
    if (Inserted)
      It->second = NextPhysical++ % static_cast<int>(M);
    Acc->setSteadyStatePort(It->second);
    auto *Arr = const_cast<ArrayDecl *>(Acc->array());
    if (Arr->physicalMemId() < 0)
      Arr->setPhysicalMemId(It->second);
  };
  for (const AccessInfo &Info : AllAccesses)
    if (!Info.IsWrite)
      bind(Info.Access);
  for (const AccessInfo &Info : AllAccesses)
    if (Info.IsWrite)
      bind(Info.Access);

  return Stats;
}
