//===- UnrollAndJam.cpp ---------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/UnrollAndJam.h"

#include "defacto/IR/IRUtils.h"

#include <cassert>

using namespace defacto;

int64_t defacto::unrollProduct(const UnrollVector &U) {
  int64_t P = 1;
  for (int64_t F : U)
    P *= F;
  return P;
}

std::string defacto::unrollVectorToString(const UnrollVector &U) {
  std::string Out = "(";
  for (size_t I = 0; I != U.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += std::to_string(U[I]);
  }
  return Out + ")";
}

bool defacto::canUnroll(const Kernel &K, const UnrollVector &U) {
  ForStmt *Top = const_cast<Kernel &>(K).topLoop();
  if (!Top)
    return false;
  std::vector<ForStmt *> Nest = perfectNest(Top);
  if (U.size() > Nest.size())
    return false;
  for (size_t P = 0; P != U.size(); ++P) {
    if (U[P] < 1)
      return false;
    if (Nest[P]->tripCount() % U[P] != 0)
      return false;
  }
  return true;
}

bool defacto::unrollAndJam(Kernel &K, const UnrollVector &U) {
  if (!canUnroll(K, U))
    return false;
  std::vector<ForStmt *> Nest = perfectNest(K.topLoop());

  UnrollVector Factors = U;
  Factors.resize(Nest.size(), 1);

  bool AnyUnroll = false;
  for (int64_t F : Factors)
    AnyUnroll |= F > 1;
  if (!AnyUnroll)
    return true;

  ForStmt *Innermost = Nest.back();
  StmtList Original = std::move(Innermost->body());
  Innermost->body().clear();
  Innermost->body().reserve(static_cast<size_t>(unrollProduct(Factors)) *
                            Original.size());

  // Enumerate offset combinations in outer-major lexicographic order
  // (Figure 1(b): unroll(0,0), unroll(0,1), unroll(1,0), unroll(1,1)).
  std::vector<int64_t> Offsets(Nest.size(), 0);
  while (true) {
    StmtList Copy = cloneStmtList(Original);
    for (size_t P = 0; P != Nest.size(); ++P) {
      if (Offsets[P] == 0)
        continue;
      int64_t Shift = Offsets[P] * Nest[P]->step();
      substituteLoopInStmts(
          Copy, Nest[P]->loopId(),
          AffineExpr::term(Nest[P]->loopId(), 1, Shift));
    }
    for (StmtPtr &S : Copy)
      Innermost->body().push_back(std::move(S));

    // Advance the odometer, innermost position fastest.
    size_t P = Nest.size();
    while (P > 0) {
      --P;
      if (++Offsets[P] < Factors[P])
        break;
      Offsets[P] = 0;
      if (P == 0)
        goto done;
    }
  }
done:
  for (size_t P = 0; P != Nest.size(); ++P)
    Nest[P]->setBounds(Nest[P]->lower(), Nest[P]->upper(),
                       Nest[P]->step() * Factors[P]);
  return true;
}
