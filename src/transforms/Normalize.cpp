//===- Normalize.cpp ------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/Normalize.h"

#include "defacto/IR/IRUtils.h"

using namespace defacto;

void defacto::normalizeLoops(Kernel &K) {
  for (ForStmt *F : collectLoops(K.body())) {
    if (F->lower() == 0 && F->step() == 1)
      continue;
    // Old index value = step * i' + lower.
    AffineExpr Replacement =
        AffineExpr::term(F->loopId(), F->step(), F->lower());
    substituteLoopInStmts(F->body(), F->loopId(), Replacement);
    F->setBounds(0, F->tripCount(), 1);
  }
}
