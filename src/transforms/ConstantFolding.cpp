//===- ConstantFolding.cpp ------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/ConstantFolding.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/Support/ErrorHandling.h"

using namespace defacto;

namespace {

std::optional<int64_t> constantValue(const Expr *E) {
  if (const auto *Lit = dyn_cast<IntLitExpr>(E))
    return Lit->value();
  return std::nullopt;
}

int64_t foldBinary(BinaryOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case BinaryOp::Add:
    return L + R;
  case BinaryOp::Sub:
    return L - R;
  case BinaryOp::Mul:
    return L * R;
  case BinaryOp::Div:
    return R == 0 ? 0 : L / R;
  case BinaryOp::Mod:
    return R == 0 ? 0 : L % R;
  case BinaryOp::Min:
    return L < R ? L : R;
  case BinaryOp::Max:
    return L > R ? L : R;
  case BinaryOp::And:
    return L & R;
  case BinaryOp::Or:
    return L | R;
  case BinaryOp::Xor:
    return L ^ R;
  case BinaryOp::Shl:
    return (R < 0 || R > 62) ? 0 : static_cast<int64_t>(
                                       static_cast<uint64_t>(L) << R);
  case BinaryOp::Shr:
    return (R < 0 || R > 62) ? 0 : (L >> R);
  case BinaryOp::CmpEq:
    return L == R;
  case BinaryOp::CmpNe:
    return L != R;
  case BinaryOp::CmpLt:
    return L < R;
  case BinaryOp::CmpLe:
    return L <= R;
  case BinaryOp::CmpGt:
    return L > R;
  case BinaryOp::CmpGe:
    return L >= R;
  }
  defacto_unreachable("unknown binary op");
}

} // namespace

void defacto::foldConstantsInExpr(ExprPtr &Slot) {
  rewriteExpr(Slot, [](ExprPtr &E) {
    switch (E->kind()) {
    case Expr::Kind::Unary: {
      auto *U = cast<UnaryExpr>(E.get());
      auto V = constantValue(U->operand());
      if (!V)
        return;
      int64_t Folded = 0;
      switch (U->op()) {
      case UnaryOp::Neg:
        Folded = -*V;
        break;
      case UnaryOp::Abs:
        Folded = *V < 0 ? -*V : *V;
        break;
      case UnaryOp::Not:
        Folded = *V == 0 ? 1 : 0;
        break;
      }
      E = std::make_unique<IntLitExpr>(Folded);
      return;
    }
    case Expr::Kind::Binary: {
      auto *B = cast<BinaryExpr>(E.get());
      auto L = constantValue(B->lhs());
      auto R = constantValue(B->rhs());
      if (L && R) {
        E = std::make_unique<IntLitExpr>(foldBinary(B->op(), *L, *R));
        return;
      }
      // Identity simplifications keep generated code tidy.
      if (B->op() == BinaryOp::Add && L && *L == 0) {
        E = std::move(B->rhsRef());
        return;
      }
      if ((B->op() == BinaryOp::Add || B->op() == BinaryOp::Sub) && R &&
          *R == 0) {
        E = std::move(B->lhsRef());
        return;
      }
      if (B->op() == BinaryOp::Mul && L && *L == 1) {
        E = std::move(B->rhsRef());
        return;
      }
      if (B->op() == BinaryOp::Mul && R && *R == 1) {
        E = std::move(B->lhsRef());
        return;
      }
      return;
    }
    case Expr::Kind::Select: {
      auto *S = cast<SelectExpr>(E.get());
      auto C = constantValue(S->cond());
      if (!C)
        return;
      E = *C != 0 ? std::move(S->trueValueRef())
                  : std::move(S->falseValueRef());
      return;
    }
    default:
      return;
    }
  });
}

void defacto::foldConstants(StmtList &Stmts) {
  StmtList Out;
  Out.reserve(Stmts.size());
  for (StmtPtr &SP : Stmts) {
    switch (SP->kind()) {
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(SP.get());
      foldConstantsInExpr(A->destRef());
      foldConstantsInExpr(A->valueRef());
      Out.push_back(std::move(SP));
      break;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(SP.get());
      foldConstants(F->body());
      Out.push_back(std::move(SP));
      break;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(SP.get());
      foldConstantsInExpr(I->condRef());
      foldConstants(I->thenBody());
      foldConstants(I->elseBody());
      if (auto C = constantValue(I->cond())) {
        StmtList &Taken = *C != 0 ? I->thenBody() : I->elseBody();
        for (StmtPtr &S : Taken)
          Out.push_back(std::move(S));
        break; // The if statement itself is dropped.
      }
      Out.push_back(std::move(SP));
      break;
    }
    case Stmt::Kind::Rotate:
      Out.push_back(std::move(SP));
      break;
    }
  }
  Stmts = std::move(Out);
}
