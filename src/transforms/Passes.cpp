//===- Passes.cpp - The §4 transforms as registered passes ----------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/PassRegistry.h"

#include "defacto/Analysis/AnalysisManager.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/Timer.h"
#include "defacto/Transforms/ConstantFolding.h"
#include "defacto/Transforms/Interchange.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Tiling.h"

#include <numeric>
#include <sstream>

using namespace defacto;

TransformPass::~TransformPass() = default;

PreservedAnalyses TransformPass::preserved() const {
  return PreservedAnalyses::none();
}

PassPipeline::PassPipeline() = default;
PassPipeline::PassPipeline(PassPipeline &&) = default;
PassPipeline &PassPipeline::operator=(PassPipeline &&) = default;
PassPipeline::~PassPipeline() = default;

void PassPipeline::add(std::unique_ptr<TransformPass> Pass) {
  Passes.push_back(std::move(Pass));
}

Status PassPipeline::run(Kernel &K, AnalysisManager &AM) const {
  for (const std::unique_ptr<TransformPass> &P : Passes) {
    if (Status S = P->run(K, AM); !S.isOk())
      return S;
    AM.invalidate(P->preserved());
  }
  return Status::ok();
}

const char *defacto::defaultPipelineText() {
  return "normalize,stripmine,unroll,normalize,scalar-repl,peel,fold,layout";
}

const char *defacto::defaultPipelineTextWithInterchange() {
  return "normalize,interchange,stripmine,unroll,normalize,scalar-repl,peel,"
         "fold,layout";
}

//===----------------------------------------------------------------------===//
// The eight built-in passes. Each mirrors the historical hardcoded
// pipeline stage bit for bit (pipeline_parity_test holds the line) and
// charges itself to its pipeline.pass.<name> timer/histogram.
//===----------------------------------------------------------------------===//

namespace {

class NormalizePass : public TransformPass {
public:
  std::string name() const override { return "normalize"; }
  Status run(Kernel &K, AnalysisManager &) override {
    DEFACTO_SCOPED_TIMER("pipeline.pass.normalize");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.normalize_us");
    normalizeLoops(K);
    return Status::ok();
  }
};

/// Strip-mining (§5.4 register control). A no-op unless the run's options
/// request a tile; invalid positions/sizes are silently skipped, exactly
/// like the historical sequence (stripMine itself rejects them).
class StripMinePass : public TransformPass {
public:
  explicit StripMinePass(const TransformOptions &Opts) : Opts(Opts) {}
  std::string name() const override { return "stripmine"; }
  Status run(Kernel &K, AnalysisManager &) override {
    if (!Opts.StripMine)
      return Status::ok();
    DEFACTO_SCOPED_TIMER("pipeline.pass.stripmine");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.stripmine_us");
    if (ForStmt *Top = K.topLoop()) {
      std::vector<ForStmt *> Nest = perfectNest(Top);
      unsigned Pos = Opts.StripMine->first;
      if (Pos < Nest.size())
        stripMine(K, Nest[Pos]->loopId(), Opts.StripMine->second);
    }
    return Status::ok();
  }

private:
  const TransformOptions &Opts;
};

class UnrollPass : public TransformPass {
public:
  UnrollPass(const TransformOptions &Opts, TransformResult &Result)
      : Opts(Opts), Result(Result) {}
  std::string name() const override { return "unroll"; }
  Status run(Kernel &K, AnalysisManager &) override {
    DEFACTO_SCOPED_TIMER("pipeline.pass.unroll");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.unroll_us");
    Result.UnrollApplied = unrollAndJam(K, Opts.Unroll);
    return Status::ok();
  }

private:
  const TransformOptions &Opts;
  TransformResult &Result;
};

/// Loop interchange. Applies the options' permutation as a sequence of
/// pairwise interchanges; an illegal or malformed permutation fails the
/// pipeline (the caller degrades to the untransformed fallback).
class InterchangePass : public TransformPass {
public:
  explicit InterchangePass(const TransformOptions &Opts) : Opts(Opts) {}
  std::string name() const override { return "interchange"; }
  Status run(Kernel &K, AnalysisManager &) override {
    const std::vector<unsigned> &Perm = Opts.Interchange;
    if (Perm.empty())
      return Status::ok();
    DEFACTO_SCOPED_TIMER("pipeline.pass.interchange");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.interchange_us");
    ForStmt *Top = K.topLoop();
    if (!Top)
      return Status::error(ErrorCode::InvalidInput,
                           "interchange requires a loop nest");
    size_t N = perfectNest(Top).size();
    if (Perm.size() != N)
      return Status::error(ErrorCode::InvalidInput,
                           "interchange permutation has " +
                               std::to_string(Perm.size()) +
                               " entries for a nest of depth " +
                               std::to_string(N));
    std::vector<bool> Seen(N, false);
    for (unsigned P : Perm) {
      if (P >= N || Seen[P])
        return Status::error(ErrorCode::InvalidInput,
                             "interchange vector is not a permutation of "
                             "the nest positions");
      Seen[P] = true;
    }
    // Realize the permutation by selection: bring Perm[I]'s loop to
    // position I with one direct interchange per misplaced slot.
    std::vector<unsigned> Cur(N);
    std::iota(Cur.begin(), Cur.end(), 0u);
    for (unsigned I = 0; I != N; ++I) {
      unsigned J = I;
      while (Cur[J] != Perm[I])
        ++J;
      if (J == I)
        continue;
      if (!interchangeLoops(K, I, J))
        return Status::error(ErrorCode::InvalidInput,
                             "interchange of nest positions " +
                                 std::to_string(I) + " and " +
                                 std::to_string(J) +
                                 " violates a dependence");
      std::swap(Cur[I], Cur[J]);
    }
    return Status::ok();
  }

private:
  const TransformOptions &Opts;
};

class ScalarReplacementPass : public TransformPass {
public:
  ScalarReplacementPass(const TransformOptions &Opts, TransformResult &Result)
      : Opts(Opts), Result(Result) {}
  std::string name() const override { return "scalar-repl"; }
  Status run(Kernel &K, AnalysisManager &) override {
    if (!Opts.EnableScalarReplacement)
      return Status::ok();
    DEFACTO_SCOPED_TIMER("pipeline.pass.scalar-repl");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.scalar-repl_us");
    Result.SR = scalarReplace(K, Opts.SR);
    return Status::ok();
  }

private:
  const TransformOptions &Opts;
  TransformResult &Result;
};

class LoopPeelingPass : public TransformPass {
public:
  LoopPeelingPass(const TransformOptions &Opts, TransformResult &Result)
      : Opts(Opts), Result(Result) {}
  std::string name() const override { return "peel"; }
  Status run(Kernel &K, AnalysisManager &) override {
    if (!Opts.EnablePeeling)
      return Status::ok();
    DEFACTO_SCOPED_TIMER("pipeline.pass.peel");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.peel_us");
    Result.Peeling = peelGuardedIterations(K);
    return Status::ok();
  }

private:
  const TransformOptions &Opts;
  TransformResult &Result;
};

class ConstantFoldingPass : public TransformPass {
public:
  std::string name() const override { return "fold"; }
  Status run(Kernel &K, AnalysisManager &) override {
    DEFACTO_SCOPED_TIMER("pipeline.pass.fold");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.fold_us");
    foldConstants(K.body());
    return Status::ok();
  }
};

class DataLayoutPass : public TransformPass {
public:
  DataLayoutPass(const TransformOptions &Opts, TransformResult &Result)
      : Opts(Opts), Result(Result) {}
  std::string name() const override { return "layout"; }
  Status run(Kernel &K, AnalysisManager &) override {
    if (!Opts.EnableDataLayout)
      return Status::ok();
    DEFACTO_SCOPED_TIMER("pipeline.pass.layout");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.pass.layout_us");
    Expected<DataLayoutStats> Layout = applyDataLayout(K, Opts.Layout);
    if (!Layout)
      return Layout.status();
    Result.Layout = *Layout;
    return Status::ok();
  }

private:
  const TransformOptions &Opts;
  TransformResult &Result;
};

} // namespace

//===----------------------------------------------------------------------===//
// Registry and parser
//===----------------------------------------------------------------------===//

PassRegistry::PassRegistry() {
  auto Reg = [this](const std::string &Name, const std::string &Desc,
                    Factory Make) {
    Passes.emplace(Name, RegisteredPass{Desc, std::move(Make)});
  };
  Reg("normalize", "rewrite every loop to lower bound 0, step 1",
      [](const TransformOptions &, TransformResult &) {
        return std::make_unique<NormalizePass>();
      });
  Reg("stripmine", "strip-mine per Opts.StripMine (§5.4 register control)",
      [](const TransformOptions &O, TransformResult &) {
        return std::make_unique<StripMinePass>(O);
      });
  Reg("unroll", "unroll-and-jam per Opts.Unroll",
      [](const TransformOptions &O, TransformResult &R) {
        return std::make_unique<UnrollPass>(O, R);
      });
  Reg("interchange", "permute the nest per Opts.Interchange (legality-checked)",
      [](const TransformOptions &O, TransformResult &) {
        return std::make_unique<InterchangePass>(O);
      });
  Reg("scalar-repl", "replace reused array accesses with register chains",
      [](const TransformOptions &O, TransformResult &R) {
        return std::make_unique<ScalarReplacementPass>(O, R);
      });
  Reg("peel", "peel guarded first iterations exposed by scalar replacement",
      [](const TransformOptions &O, TransformResult &R) {
        return std::make_unique<LoopPeelingPass>(O, R);
      });
  Reg("fold", "fold constant expressions and statically-decided branches",
      [](const TransformOptions &, TransformResult &) {
        return std::make_unique<ConstantFoldingPass>();
      });
  Reg("layout", "distribute arrays across the platform's memory banks",
      [](const TransformOptions &O, TransformResult &R) {
        return std::make_unique<DataLayoutPass>(O, R);
      });
}

PassRegistry &PassRegistry::instance() {
  static PassRegistry R;
  return R;
}

bool PassRegistry::add(const std::string &Name, const std::string &Description,
                       Factory Make) {
  std::lock_guard<std::mutex> Lock(M);
  return Passes.emplace(Name, RegisteredPass{Description, std::move(Make)})
      .second;
}

std::unique_ptr<TransformPass>
PassRegistry::create(const std::string &Name, const TransformOptions &Opts,
                     TransformResult &Result) const {
  Factory Make;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Passes.find(Name);
    if (It == Passes.end())
      return nullptr;
    Make = It->second.Make;
  }
  return Make(Opts, Result);
}

bool PassRegistry::contains(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  return Passes.count(Name) != 0;
}

std::vector<std::string> PassRegistry::names() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Names;
  for (const auto &KV : Passes)
    Names.push_back(KV.first);
  return Names;
}

std::string PassRegistry::describe() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream OS;
  size_t Widest = 0;
  for (const auto &KV : Passes)
    Widest = std::max(Widest, KV.first.size());
  for (const auto &KV : Passes) {
    OS << "  " << KV.first
       << std::string(Widest - KV.first.size() + 2, ' ')
       << KV.second.Description << '\n';
  }
  return OS.str();
}

Expected<std::vector<std::string>>
defacto::parsePipelineText(const std::string &Text) {
  std::vector<std::string> Names;
  std::string Piece;
  std::istringstream In(Text);
  while (std::getline(In, Piece, ',')) {
    size_t Begin = Piece.find_first_not_of(" \t");
    size_t End = Piece.find_last_not_of(" \t");
    std::string Name =
        Begin == std::string::npos ? "" : Piece.substr(Begin, End - Begin + 1);
    if (Name.empty())
      return Status::error(ErrorCode::InvalidInput,
                           "empty pass name in pipeline '" + Text + "'");
    if (!PassRegistry::instance().contains(Name))
      return Status::error(ErrorCode::InvalidInput,
                           "unknown pass '" + Name +
                               "' in pipeline; registered passes:\n" +
                               PassRegistry::instance().describe());
    Names.push_back(std::move(Name));
  }
  if (Names.empty())
    return Status::error(ErrorCode::InvalidInput,
                         "pipeline description is empty");
  return Names;
}

Expected<PassPipeline> defacto::buildPassPipeline(const std::string &Text,
                                                  const TransformOptions &Opts,
                                                  TransformResult &Result) {
  const std::string &Effective =
      !Text.empty() ? Text
      : Opts.Interchange.empty()
          ? std::string(defaultPipelineText())
          : std::string(defaultPipelineTextWithInterchange());
  Expected<std::vector<std::string>> Names = parsePipelineText(Effective);
  if (!Names)
    return Names.status();
  PassPipeline PP;
  for (const std::string &Name : *Names)
    PP.add(PassRegistry::instance().create(Name, Opts, Result));
  return PP;
}
