//===- Pipeline.cpp -------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/Pipeline.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/Timer.h"
#include "defacto/Transforms/ConstantFolding.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Tiling.h"

using namespace defacto;

namespace {

/// The pipeline stages downstream of normalization. \p Normalized is an
/// already-normalized clone this call owns; \p ErrorFallback is cloned
/// only on failure, so the happy path costs exactly one deep copy.
TransformResult runOnNormalized(Kernel Normalized,
                                const TransformOptions &Opts,
                                const Kernel &ErrorFallback) {
  DEFACTO_SCOPED_TIMER("pipeline.run");
  DEFACTO_SCOPED_HISTOGRAM_US("pipeline.run_us");
  Kernel K = std::move(Normalized);

  if (Opts.StripMine) {
    DEFACTO_SCOPED_TIMER("pipeline.stripmine");
    ForStmt *Top = K.topLoop();
    if (Top) {
      std::vector<ForStmt *> Nest = perfectNest(Top);
      unsigned Pos = Opts.StripMine->first;
      if (Pos < Nest.size())
        stripMine(K, Nest[Pos]->loopId(), Opts.StripMine->second);
    }
  }

  bool UnrollApplied;
  {
    DEFACTO_SCOPED_TIMER("pipeline.unroll");
    UnrollApplied = unrollAndJam(K, Opts.Unroll);
  }
  {
    DEFACTO_SCOPED_TIMER("pipeline.normalize");
    normalizeLoops(K);
  }

  return finishPipeline(std::move(K), Opts, ErrorFallback, UnrollApplied);
}

} // namespace

TransformResult defacto::finishPipeline(Kernel Staged,
                                        const TransformOptions &Opts,
                                        const Kernel &ErrorFallback,
                                        bool UnrollApplied, bool SkipVerify) {
  TransformResult Result(std::move(Staged));
  Result.UnrollApplied = UnrollApplied;
  Kernel &K = Result.K;

  if (Opts.EnableScalarReplacement) {
    DEFACTO_SCOPED_TIMER("pipeline.scalarrepl");
    Result.SR = scalarReplace(K, Opts.SR);
  }
  if (Opts.EnablePeeling) {
    DEFACTO_SCOPED_TIMER("pipeline.peel");
    Result.Peeling = peelGuardedIterations(K);
  }
  {
    DEFACTO_SCOPED_TIMER("pipeline.fold");
    foldConstants(K.body());
  }
  if (Opts.EnableDataLayout) {
    DEFACTO_SCOPED_TIMER("pipeline.layout");
    Expected<DataLayoutStats> Layout = applyDataLayout(K, Opts.Layout);
    if (!Layout) {
      Result.Error = Layout.status();
      Result.K = ErrorFallback.clone();
      return Result;
    }
    Result.Layout = *Layout;
  }

  if (SkipVerify)
    return Result;

  DEFACTO_SCOPED_TIMER("pipeline.verify");
  if (!isKernelValid(K)) {
    Result.Error = Status::error(
        ErrorCode::MalformedIR,
        "transformation pipeline produced an invalid kernel");
    Result.K = ErrorFallback.clone();
  }
  return Result;
}

TransformResult defacto::applyPipeline(const Kernel &Source,
                                       const TransformOptions &Opts) {
  Kernel Cloned = Source.clone();
  normalizeLoops(Cloned);
  return runOnNormalized(std::move(Cloned), Opts, Source);
}

PipelineContext::PipelineContext(const Kernel &Source)
    : Normalized(Source.clone()) {
  normalizeLoops(Normalized);
#ifndef NDEBUG
  Fingerprint = kernelFingerprint(Normalized);
#endif
}

void PipelineContext::assertUnchanged() const {
#ifndef NDEBUG
  assert(kernelFingerprint(Normalized) == Fingerprint &&
         "shared base kernel mutated by a pipeline worker");
#endif
}

TransformResult defacto::applyPipeline(const PipelineContext &Ctx,
                                       const TransformOptions &Opts) {
  std::optional<Kernel> Cloned;
  {
    DEFACTO_SCOPED_TIMER("pipeline.clone");
    Cloned.emplace(Ctx.normalized().clone());
  }
  TransformResult Result =
      runOnNormalized(std::move(*Cloned), Opts, Ctx.normalized());
  Ctx.assertUnchanged();
  return Result;
}
