//===- Pipeline.cpp -------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/Pipeline.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Transforms/ConstantFolding.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Tiling.h"

using namespace defacto;

TransformResult defacto::applyPipeline(const Kernel &Source,
                                       const TransformOptions &Opts) {
  TransformResult Result(Source.clone());
  Kernel &K = Result.K;

  normalizeLoops(K);

  if (Opts.StripMine) {
    ForStmt *Top = K.topLoop();
    if (Top) {
      std::vector<ForStmt *> Nest = perfectNest(Top);
      unsigned Pos = Opts.StripMine->first;
      if (Pos < Nest.size())
        stripMine(K, Nest[Pos]->loopId(), Opts.StripMine->second);
    }
  }

  Result.UnrollApplied = unrollAndJam(K, Opts.Unroll);
  normalizeLoops(K);

  if (Opts.EnableScalarReplacement)
    Result.SR = scalarReplace(K, Opts.SR);
  if (Opts.EnablePeeling)
    Result.Peeling = peelGuardedIterations(K);
  foldConstants(K.body());
  if (Opts.EnableDataLayout) {
    Expected<DataLayoutStats> Layout = applyDataLayout(K, Opts.Layout);
    if (!Layout) {
      Result.Error = Layout.status();
      Result.K = Source.clone();
      return Result;
    }
    Result.Layout = *Layout;
  }

  if (!isKernelValid(K)) {
    Result.Error = Status::error(
        ErrorCode::MalformedIR,
        "transformation pipeline produced an invalid kernel");
    Result.K = Source.clone();
  }
  return Result;
}
