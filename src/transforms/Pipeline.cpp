//===- Pipeline.cpp -------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/Pipeline.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/Timer.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/PassRegistry.h"

using namespace defacto;

namespace {

/// Builds the \p Text pipeline over \p Result and runs it on Result.K,
/// verifying the outcome unless \p SkipVerify. Any failure — parse, pass,
/// or verification — degrades Result.K to a clone of \p ErrorFallback and
/// records the status in Result.Error.
void runTextOn(const std::string &Text, const TransformOptions &Opts,
               const Kernel &ErrorFallback, bool SkipVerify,
               TransformResult &Result) {
  Status S;
  {
    AnalysisManager AM;
    Expected<PassPipeline> Pipeline = buildPassPipeline(Text, Opts, Result);
    S = Pipeline ? Pipeline->run(Result.K, AM) : Pipeline.status();
  }
  if (!S.isOk()) {
    Result.Error = std::move(S);
    Result.K = ErrorFallback.clone();
    return;
  }

  if (SkipVerify)
    return;

  DEFACTO_SCOPED_TIMER("pipeline.verify");
  if (!isKernelValid(Result.K)) {
    Result.Error = Status::error(
        ErrorCode::MalformedIR,
        "transformation pipeline produced an invalid kernel");
    Result.K = ErrorFallback.clone();
  }
}

/// The full per-candidate pipeline over an already-normalized clone this
/// call owns; \p ErrorFallback is cloned only on failure, so the happy
/// path costs exactly one deep copy.
TransformResult runOnNormalized(Kernel Normalized,
                                const TransformOptions &Opts,
                                const Kernel &ErrorFallback) {
  DEFACTO_SCOPED_TIMER("pipeline.run");
  DEFACTO_SCOPED_HISTOGRAM_US("pipeline.run_us");
  TransformResult Result(std::move(Normalized));
  runTextOn(Opts.Pipeline, Opts, ErrorFallback, /*SkipVerify=*/false, Result);
  return Result;
}

} // namespace

TransformResult defacto::finishPipeline(Kernel Staged,
                                        const TransformOptions &Opts,
                                        const Kernel &ErrorFallback,
                                        bool UnrollApplied, bool SkipVerify) {
  TransformResult Result(std::move(Staged));
  Result.UnrollApplied = UnrollApplied;
  // The sub-pipeline downstream of the memoized strip-mine/unroll/
  // normalize prefix. Opts.Pipeline is deliberately not consulted here:
  // custom pipelines bypass the stage cache entirely.
  runTextOn("scalar-repl,peel,fold,layout", Opts, ErrorFallback, SkipVerify,
            Result);
  return Result;
}

TransformResult defacto::applyPipeline(const Kernel &Source,
                                       const TransformOptions &Opts) {
  Kernel Cloned = Source.clone();
  normalizeLoops(Cloned);
  return runOnNormalized(std::move(Cloned), Opts, Source);
}

PipelineContext::PipelineContext(const Kernel &Source)
    : Normalized(Source.clone()) {
  normalizeLoops(Normalized);
  // Warm the unroll-invariant analyses so per-design evaluation never
  // recomputes them (EvaluationService reads cachedDependence()).
  Analyses.dependence(Normalized);
#ifndef NDEBUG
  Fingerprint = kernelFingerprint(Normalized);
#endif
}

void PipelineContext::assertUnchanged() const {
#ifndef NDEBUG
  assert(kernelFingerprint(Normalized) == Fingerprint &&
         "shared base kernel mutated by a pipeline worker");
#endif
}

TransformResult defacto::applyPipeline(const PipelineContext &Ctx,
                                       const TransformOptions &Opts) {
  std::optional<Kernel> Cloned;
  {
    DEFACTO_SCOPED_TIMER("pipeline.clone");
    Cloned.emplace(Ctx.normalized().clone());
  }
  TransformResult Result =
      runOnNormalized(std::move(*Cloned), Opts, Ctx.normalized());
  Ctx.assertUnchanged();
  return Result;
}
