//===- LoopPeeling.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/LoopPeeling.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/Transforms/ConstantFolding.h"

#include <cassert>

using namespace defacto;

namespace {

/// True when \p E is `<index of LoopId> == <Lower>`.
bool isFirstIterationGuard(const Expr *E, int LoopId, int64_t Lower) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || B->op() != BinaryOp::CmpEq)
    return false;
  const Expr *L = B->lhs();
  const Expr *R = B->rhs();
  if (isa<IntLitExpr>(L))
    std::swap(L, R);
  const auto *Idx = dyn_cast<LoopIndexExpr>(L);
  const auto *Lit = dyn_cast<IntLitExpr>(R);
  return Idx && Lit && Idx->loopId() == LoopId && Lit->value() == Lower;
}

/// True when any if under \p Stmts guards on the first iteration of
/// \p LoopId.
bool containsGuardFor(const StmtList &Stmts, int LoopId, int64_t Lower) {
  bool Found = false;
  walkStmts(Stmts, [&](const Stmt *S) {
    if (Found)
      return;
    if (const auto *If = dyn_cast<IfStmt>(S))
      if (isFirstIterationGuard(If->cond(), LoopId, Lower))
        Found = true;
  });
  return Found;
}

/// Gives every cloned loop a fresh id (subscripts and index uses in its
/// body are rewritten to the new id).
void renameClonedLoops(StmtList &Stmts, Kernel &K) {
  for (StmtPtr &SP : Stmts) {
    if (auto *F = dyn_cast<ForStmt>(SP.get())) {
      int NewId = K.allocateLoopId();
      substituteLoopInStmts(F->body(), F->loopId(),
                            AffineExpr::term(NewId, 1));
      F->setLoopId(NewId);
      F->setIndexName(F->indexName() + "p");
      renameClonedLoops(F->body(), K);
    } else if (auto *If = dyn_cast<IfStmt>(SP.get())) {
      renameClonedLoops(If->thenBody(), K);
      renameClonedLoops(If->elseBody(), K);
    }
  }
}

/// Rewrites guards of \p LoopId's first iteration to a constant false in
/// \p Stmts (the loop's remaining range no longer visits Lower).
void falsifyGuards(StmtList &Stmts, int LoopId, int64_t Lower) {
  walkStmts(Stmts, [&](Stmt *S) {
    if (auto *If = dyn_cast<IfStmt>(S))
      if (isFirstIterationGuard(If->cond(), LoopId, Lower))
        If->setCond(std::make_unique<IntLitExpr>(0));
  });
}

/// One peeling pass over a statement list; returns true when something
/// was peeled (caller repeats to a fixed point).
bool peelOnce(StmtList &Stmts, Kernel &K, PeelingStats &Stats) {
  for (size_t Idx = 0; Idx != Stmts.size(); ++Idx) {
    Stmt *S = Stmts[Idx].get();
    if (auto *If = dyn_cast<IfStmt>(S)) {
      if (peelOnce(If->thenBody(), K, Stats) ||
          peelOnce(If->elseBody(), K, Stats))
        return true;
      continue;
    }
    auto *F = dyn_cast<ForStmt>(S);
    if (!F)
      continue;
    if (!containsGuardFor(F->body(), F->loopId(), F->lower())) {
      if (peelOnce(F->body(), K, Stats))
        return true;
      continue;
    }

    // Build the peeled first iteration.
    StmtList Peeled = cloneStmtList(F->body());
    substituteLoopInStmts(Peeled, F->loopId(), AffineExpr(F->lower()));
    renameClonedLoops(Peeled, K);
    foldConstants(Peeled);

    // Remaining iterations never see the first-iteration guard again.
    falsifyGuards(F->body(), F->loopId(), F->lower());
    foldConstants(F->body());
    F->setBounds(F->lower() + F->step(), F->upper(), F->step());
    ++Stats.LoopsPeeled;

    // Splice: peeled body before the (possibly now empty) loop.
    StmtList NewStmts;
    for (size_t J = 0; J != Stmts.size(); ++J) {
      if (J == Idx)
        for (StmtPtr &P : Peeled)
          NewStmts.push_back(std::move(P));
      if (J == Idx && F->tripCount() <= 0)
        continue; // Loop fully peeled away.
      NewStmts.push_back(std::move(Stmts[J]));
    }
    Stmts = std::move(NewStmts);
    return true;
  }
  return false;
}

} // namespace

PeelingStats defacto::peelGuardedIterations(Kernel &K) {
  PeelingStats Stats;
  // Fixed point; each round peels at most one loop. The bound is
  // generous: peeling can cascade through cloned inner loops.
  for (unsigned Round = 0; Round != 1000; ++Round)
    if (!peelOnce(K.body(), K, Stats))
      return Stats;
  return Stats;
}
