//===- ScalarReplacement.cpp ----------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/ScalarReplacement.h"

#include "defacto/Analysis/UniformlyGenerated.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

using namespace defacto;

namespace {

/// How one unique (array, subscripts) access site is handled.
enum class SitePlan {
  Keep,           ///< Stays a memory access.
  CseTemp,        ///< Multiple same-iteration reads share one load.
  InnerInvariant, ///< Register across the inner sweep (D[j] case).
  Chain,          ///< Outer-carried rotating chain (C[i] case).
  Window,         ///< Inner-carried sliding window (stencil case).
};

/// One unique access site in the innermost body.
struct Site {
  const ArrayDecl *Array = nullptr;
  std::vector<AffineExpr> Subs;
  unsigned FirstUseIdx = 0; // statement index of first appearance
  unsigned ReadCount = 0;
  bool IsRead = false;
  bool IsWritten = false;
  SitePlan Plan = SitePlan::Keep;

  // CseTemp / InnerInvariant register.
  ScalarDecl *Reg = nullptr;
  // InnerInvariant: nest position whose body hosts the load/store
  // (-1 = kernel top level).
  int HoistPos = -1;
  // Chain: registers, carrier nest position.
  std::vector<ScalarDecl *> Chain;
  int CarrierPos = -1;
  // Window: stream id and offset within the stream.
  int StreamId = -1;
  int64_t StreamOffset = 0;
};

/// A sliding-window stream of sites along the innermost loop.
struct Stream {
  std::vector<unsigned> SiteIdx; // indices into Sites
  int64_t MinOffset = 0;
  int64_t MaxOffset = 0;
  std::vector<ScalarDecl *> Window; // size MaxOffset - MinOffset + 1
  unsigned LeadSite = 0;            // site with MaxOffset
};

class ScalarReplacer {
public:
  ScalarReplacer(Kernel &K, const ScalarReplacementOptions &Opts)
      : K(K), Opts(Opts) {}

  ScalarReplacementStats run();

private:
  void collectSites();
  void classifySites();
  void buildStreams();
  void allocateRegisters();
  void rewriteBody();
  void insertCode();

  /// Positions (outermost first) of loops whose index appears in the
  /// site's subscripts.
  std::set<int> varyingPositions(const Site &S) const {
    std::set<int> Out;
    for (const AffineExpr &Sub : S.Subs)
      for (int Id : Sub.loopIds()) {
        int P = positionOf(Id);
        if (P >= 0)
          Out.insert(P);
      }
    return Out;
  }

  int positionOf(int LoopId) const {
    for (unsigned P = 0; P != Nest.size(); ++P)
      if (Nest[P]->loopId() == LoopId)
        return static_cast<int>(P);
    return -1;
  }

  /// Hash of a site key for the optional index; exact equality is still
  /// checked on every probe, so collisions only cost a compare.
  static uint64_t hashSiteKey(const ArrayDecl *Array,
                              const std::vector<AffineExpr> &Subs) {
    uint64_t H = std::hash<const void *>()(Array);
    auto Mix = [&H](uint64_t V) {
      H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    };
    for (const AffineExpr &Sub : Subs) {
      Mix(static_cast<uint64_t>(Sub.constant()));
      for (const auto &[Id, Coeff] : Sub.terms()) {
        Mix(static_cast<uint64_t>(Id));
        Mix(static_cast<uint64_t>(Coeff));
      }
      Mix(0x5b5bu); // subscript separator
    }
    return H;
  }

  int findSite(const ArrayAccessExpr *A) const {
    if (Opts.UseSiteIndex) {
      auto It = SiteIndex.find(hashSiteKey(A->array(), A->subscripts()));
      if (It == SiteIndex.end())
        return -1;
      for (unsigned I : It->second)
        if (Sites[I].Array == A->array() && Sites[I].Subs == A->subscripts())
          return static_cast<int>(I);
      return -1;
    }
    for (unsigned I = 0; I != Sites.size(); ++I)
      if (Sites[I].Array == A->array() && Sites[I].Subs == A->subscripts())
        return static_cast<int>(I);
    return -1;
  }

  ExprPtr makeAccess(const Site &S) const {
    return std::make_unique<ArrayAccessExpr>(S.Array, S.Subs);
  }

  /// Access for the lead site shifted by \p Delta iterations of the
  /// innermost loop.
  ExprPtr makeShiftedAccess(const Site &S, int64_t Delta) const {
    int InnerId = Nest.back()->loopId();
    std::vector<AffineExpr> Subs;
    AffineExpr Shift = AffineExpr::term(
        InnerId, 1, Delta * Nest.back()->step());
    for (const AffineExpr &Sub : S.Subs)
      Subs.push_back(Sub.substitute(InnerId, Shift));
    return std::make_unique<ArrayAccessExpr>(S.Array, std::move(Subs));
  }

  Kernel &K;
  const ScalarReplacementOptions &Opts;
  std::vector<ForStmt *> Nest;
  std::vector<Site> Sites;
  /// Site-key hash -> site indices, maintained by collectSites when
  /// Opts.UseSiteIndex is set. Sites are append-only after collection,
  /// so the index stays valid through rewriteBody.
  std::unordered_map<uint64_t, std::vector<unsigned>> SiteIndex;
  std::vector<Stream> Streams;
  std::set<const ArrayDecl *> IneligibleArrays; // accessed under control flow
  std::set<const ArrayDecl *> WrittenArrays;
  std::set<const ArrayDecl *> NonUniformArrays;
  ScalarReplacementStats Stats;
};

ScalarReplacementStats ScalarReplacer::run() {
  ForStmt *Top = K.topLoop();
  if (!Top)
    return Stats;
  Nest = perfectNest(Top);

  // Arrays with accesses under conditional control flow or with
  // non-uniformly-generated aliasing writes are left alone.
  walkStmts(K.body(), [this](Stmt *S) {
    auto *If = dyn_cast<IfStmt>(S);
    if (!If)
      return;
    auto mark = [this](Expr *E) {
      walkExpr(E, [this](Expr *X) {
        if (auto *A = dyn_cast<ArrayAccessExpr>(X))
          IneligibleArrays.insert(A->array());
      });
    };
    mark(If->cond());
    walkExprsInStmts(If->thenBody(), mark);
    walkExprsInStmts(If->elseBody(), mark);
  });
  for (const AccessInfo &Info : collectArrayAccesses(K))
    if (Info.IsWrite)
      WrittenArrays.insert(Info.Access->array());
  UGPartition UG = computeUniformlyGenerated(K);
  for (const auto &A : K.arrays())
    if (!UG.isArrayUniform(A.get()))
      NonUniformArrays.insert(A.get());

  collectSites();
  classifySites();
  buildStreams();
  allocateRegisters();
  rewriteBody();
  insertCode();
  return Stats;
}

void ScalarReplacer::collectSites() {
  StmtList &Body = Nest.back()->body();
  for (unsigned Idx = 0; Idx != Body.size(); ++Idx) {
    auto *Assign = dyn_cast<AssignStmt>(Body[Idx].get());
    if (!Assign)
      continue;

    auto record = [&](const ArrayAccessExpr *A, bool IsWrite) {
      int SiteIdx = findSite(A);
      if (SiteIdx < 0) {
        Site S;
        S.Array = A->array();
        S.Subs = A->subscripts();
        S.FirstUseIdx = Idx;
        Sites.push_back(std::move(S));
        SiteIdx = static_cast<int>(Sites.size()) - 1;
        if (Opts.UseSiteIndex)
          SiteIndex[hashSiteKey(A->array(), A->subscripts())].push_back(
              static_cast<unsigned>(SiteIdx));
      }
      Site &S = Sites[SiteIdx];
      if (IsWrite)
        S.IsWritten = true;
      else {
        S.IsRead = true;
        ++S.ReadCount;
      }
    };

    walkExpr(Assign->value(), [&record](Expr *E) {
      if (auto *A = dyn_cast<ArrayAccessExpr>(E))
        record(A, /*IsWrite=*/false);
    });
    if (auto *Dest = dyn_cast<ArrayAccessExpr>(Assign->dest()))
      record(Dest, /*IsWrite=*/true);
  }
}

void ScalarReplacer::classifySites() {
  int N = static_cast<int>(Nest.size());
  for (Site &S : Sites) {
    if (IneligibleArrays.count(S.Array))
      continue; // Keep.
    bool ArrayWritten = WrittenArrays.count(S.Array) != 0;
    std::set<int> Vary = varyingPositions(S);
    int DeepestVary = Vary.empty() ? -1 : *Vary.rbegin();

    if (DeepestVary < N - 1) {
      // Invariant in all loops deeper than DeepestVary: promote to a
      // register living across the inner sweep. Needs alias safety when
      // the array is written.
      if (ArrayWritten && NonUniformArrays.count(S.Array))
        continue;
      S.Plan = SitePlan::InnerInvariant;
      S.HoistPos = DeepestVary;
      continue;
    }

    // Varies with the innermost loop. The remaining shapes require a
    // read-only array.
    if (ArrayWritten)
      continue;

    // Outer-carried chain: the deepest loop the site is invariant in
    // carries the reuse; every deeper loop varies (guaranteed by taking
    // the deepest invariant position).
    int DeepestInvariant = -1;
    for (int P = N - 2; P >= 0; --P)
      if (!Vary.count(P)) {
        DeepestInvariant = P;
        break;
      }
    if (DeepestInvariant >= 0 && Opts.EnableOuterCarriedChains) {
      int64_t Len = 1;
      for (int P = DeepestInvariant + 1; P != N; ++P)
        Len *= Nest[P]->tripCount();
      if (Len >= 2 && Len <= Opts.MaxChainLength) {
        S.Plan = SitePlan::Chain;
        S.CarrierPos = DeepestInvariant;
        S.Chain.resize(Len, nullptr);
        continue;
      }
    }

    // CSE and windows are decided later (buildStreams); mark multi-read
    // sites as CSE candidates for now.
    if (S.ReadCount >= 2)
      S.Plan = SitePlan::CseTemp;
  }
}

void ScalarReplacer::buildStreams() {
  if (!Opts.EnableWindows || Nest.empty())
    return;
  int InnerId = Nest.back()->loopId();

  // Precomputed per-site signatures for the indexed fast path: two sites
  // can belong to one stream only when every subscript pair differs by a
  // constant, i.e. the loop-term vectors match exactly (AffineExpr is
  // canonical, so term equality is sub().isConstant() verbatim). Group
  // sites by (array, per-dimension terms) once; then streamDelta within
  // a group is pure integer arithmetic over the precomputed constants —
  // no AffineExpr temporaries in the quadratic greedy loop.
  std::vector<int> GroupOf;
  struct SubSig {
    int64_t Constant = 0;
    int64_t InnerCoeff = 0;
    bool UsesOther = false;
  };
  std::vector<std::vector<SubSig>> Sigs;
  if (Opts.UseSiteIndex) {
    GroupOf.resize(Sites.size(), -1);
    Sigs.resize(Sites.size());
    std::map<std::pair<const ArrayDecl *,
                       std::vector<std::vector<std::pair<int, int64_t>>>>,
             int>
        Groups;
    for (unsigned I = 0; I != Sites.size(); ++I) {
      std::vector<std::vector<std::pair<int, int64_t>>> Terms;
      Terms.reserve(Sites[I].Subs.size());
      for (const AffineExpr &Sub : Sites[I].Subs) {
        Terms.push_back(Sub.terms());
        SubSig Sig;
        Sig.Constant = Sub.constant();
        Sig.InnerCoeff = Sub.coeff(InnerId);
        for (const auto &[Id, Coeff] : Sub.terms()) {
          (void)Coeff;
          if (Id != InnerId)
            Sig.UsesOther = true;
        }
        Sigs[I].push_back(Sig);
      }
      auto [It, Inserted] = Groups.emplace(
          std::make_pair(Sites[I].Array, std::move(Terms)),
          static_cast<int>(Groups.size()));
      GroupOf[I] = It->second;
      (void)Inserted;
    }
  }

  // Signature-based delta: bit-identical verdicts to the AffineExpr
  // version below, an order of magnitude cheaper.
  auto fastStreamDelta = [&](unsigned I,
                             unsigned J) -> std::optional<int64_t> {
    if (GroupOf[I] != GroupOf[J])
      return std::nullopt; // Some dimension's difference is not constant.
    std::optional<int64_t> Delta;
    const std::vector<SubSig> &A = Sigs[I];
    const std::vector<SubSig> &B = Sigs[J];
    for (unsigned D = 0; D != A.size(); ++D) {
      int64_t DiffC = B[D].Constant - A[D].Constant;
      if (A[D].UsesOther) {
        if (DiffC != 0)
          return std::nullopt;
        continue;
      }
      if (A[D].InnerCoeff == 0) {
        if (DiffC != 0)
          return std::nullopt;
        continue;
      }
      int64_t Scale = A[D].InnerCoeff * Nest.back()->step();
      if (DiffC % Scale != 0)
        return std::nullopt;
      int64_t D1 = DiffC / Scale;
      if (Delta && *Delta != D1)
        return std::nullopt;
      Delta = D1;
    }
    return Delta ? Delta : std::optional<int64_t>(0);
  };

  // Relative inner-iteration offset between two sites, when the shift is
  // the *unique* explanation of element equality (mirrors the paper's
  // consistent-distance requirement; S[i+j] vs S[i+j+1] is rejected
  // because an outer loop could also explain the offset).
  auto streamDelta = [&](const Site &A,
                         const Site &B) -> std::optional<int64_t> {
    if (A.Array != B.Array || A.Subs.size() != B.Subs.size())
      return std::nullopt;
    std::optional<int64_t> Delta;
    for (unsigned D = 0; D != A.Subs.size(); ++D) {
      const AffineExpr &SA = A.Subs[D];
      const AffineExpr &SB = B.Subs[D];
      if (!SA.sub(SB).isConstant())
        return std::nullopt; // Not uniformly generated.
      int64_t DiffC = SB.constant() - SA.constant();
      bool UsesOther = false;
      for (int Id : SA.loopIds())
        if (Id != InnerId)
          UsesOther = true;
      int64_t InnerCoeff = SA.coeff(InnerId);
      if (UsesOther) {
        // Mixed dimension: only a zero offset is uniquely explained.
        if (DiffC != 0)
          return std::nullopt;
        continue;
      }
      if (InnerCoeff == 0) {
        if (DiffC != 0)
          return std::nullopt;
        continue;
      }
      int64_t Scale = InnerCoeff * Nest.back()->step();
      if (DiffC % Scale != 0)
        return std::nullopt;
      int64_t D1 = DiffC / Scale;
      if (Delta && *Delta != D1)
        return std::nullopt;
      Delta = D1;
    }
    return Delta ? Delta : std::optional<int64_t>(0);
  };

  // Greedy stream construction over the window-eligible sites.
  std::vector<int> StreamOf(Sites.size(), -1);
  for (unsigned I = 0; I != Sites.size(); ++I) {
    Site &SI = Sites[I];
    if (SI.Plan != SitePlan::Keep && SI.Plan != SitePlan::CseTemp)
      continue;
    if (IneligibleArrays.count(SI.Array) || WrittenArrays.count(SI.Array))
      continue;
    // Must vary with the innermost loop to slide.
    bool VariesInner = false;
    for (const AffineExpr &Sub : SI.Subs)
      if (Sub.usesLoop(InnerId))
        VariesInner = true;
    if (!VariesInner)
      continue;

    if (StreamOf[I] < 0) {
      Stream NewStream;
      NewStream.SiteIdx.push_back(I);
      StreamOf[I] = static_cast<int>(Streams.size());
      Streams.push_back(std::move(NewStream));
      Sites[I].StreamOffset = 0;
    }
    Stream &St = Streams[StreamOf[I]];
    for (unsigned J = I + 1; J != Sites.size(); ++J) {
      Site &SJ = Sites[J];
      if (StreamOf[J] >= 0)
        continue;
      if (SJ.Plan != SitePlan::Keep && SJ.Plan != SitePlan::CseTemp)
        continue;
      auto Delta =
          Opts.UseSiteIndex ? fastStreamDelta(I, J) : streamDelta(SI, SJ);
      if (!Delta)
        continue;
      StreamOf[J] = StreamOf[I];
      SJ.StreamOffset = SI.StreamOffset + *Delta;
      St.SiteIdx.push_back(J);
    }
  }

  // Keep only streams that provide sliding reuse (span >= 1) and fit.
  std::vector<Stream> Kept;
  for (Stream &St : Streams) {
    int64_t Min = Sites[St.SiteIdx.front()].StreamOffset;
    int64_t Max = Min;
    for (unsigned I : St.SiteIdx) {
      Min = std::min(Min, Sites[I].StreamOffset);
      Max = std::max(Max, Sites[I].StreamOffset);
    }
    int64_t Span = Max - Min + 1;
    if (Span < 2 || Span > static_cast<int64_t>(Opts.MaxChainLength))
      continue;
    St.MinOffset = Min;
    St.MaxOffset = Max;
    for (unsigned I : St.SiteIdx)
      if (Sites[I].StreamOffset == Max)
        St.LeadSite = I;
    int Id = static_cast<int>(Kept.size());
    for (unsigned I : St.SiteIdx) {
      Sites[I].Plan = SitePlan::Window;
      Sites[I].StreamId = Id;
    }
    Kept.push_back(std::move(St));
  }
  Streams = std::move(Kept);
}

void ScalarReplacer::allocateRegisters() {
  for (Site &S : Sites) {
    switch (S.Plan) {
    case SitePlan::Keep:
      if (S.IsRead)
        Stats.LoadsKept += S.ReadCount;
      if (S.IsWritten)
        ++Stats.StoresKept;
      break;
    case SitePlan::CseTemp:
      S.Reg = K.makeTempScalar(S.Array->name() + "_t",
                               S.Array->elementType());
      ++Stats.RegistersAllocated;
      ++Stats.LoadsKept; // The single shared load stays in the body.
      Stats.LoadsRemoved += S.ReadCount - 1;
      break;
    case SitePlan::InnerInvariant:
      S.Reg = K.makeTempScalar(S.Array->name() + "_r",
                               S.Array->elementType());
      ++Stats.RegistersAllocated;
      if (S.IsRead)
        Stats.LoadsRemoved += S.ReadCount;
      if (S.IsWritten)
        ++Stats.StoresRemoved;
      break;
    case SitePlan::Chain: {
      for (auto &Reg : S.Chain) {
        Reg = K.makeTempScalar(S.Array->name() + "_c",
                               S.Array->elementType());
        ++Stats.RegistersAllocated;
      }
      ++Stats.ChainsCreated;
      Stats.LoadsRemoved += S.ReadCount;
      break;
    }
    case SitePlan::Window:
      // Window registers are allocated per stream below.
      break;
    }
  }
  for (Stream &St : Streams) {
    const Site &Lead = Sites[St.LeadSite];
    int64_t Span = St.MaxOffset - St.MinOffset + 1;
    St.Window.resize(Span);
    for (auto &Reg : St.Window) {
      Reg = K.makeTempScalar(Lead.Array->name() + "_w",
                             Lead.Array->elementType());
      ++Stats.RegistersAllocated;
    }
    ++Stats.WindowsCreated;
    ++Stats.LoadsKept; // One leading-edge load per iteration.
    for (unsigned I : St.SiteIdx)
      Stats.LoadsRemoved += Sites[I].ReadCount;
    --Stats.LoadsRemoved; // Minus the load that stays.
  }
}

void ScalarReplacer::rewriteBody() {
  StmtList &Body = Nest.back()->body();
  for (StmtPtr &SP : Body) {
    auto *Assign = dyn_cast<AssignStmt>(SP.get());
    if (!Assign)
      continue;
    rewriteExpr(Assign->valueRef(), [this](ExprPtr &E) {
      auto *A = dyn_cast<ArrayAccessExpr>(E.get());
      if (!A)
        return;
      int Idx = findSite(A);
      if (Idx < 0)
        return;
      const Site &S = Sites[Idx];
      switch (S.Plan) {
      case SitePlan::Keep:
        return;
      case SitePlan::CseTemp:
      case SitePlan::InnerInvariant:
        E = std::make_unique<ScalarRefExpr>(S.Reg);
        return;
      case SitePlan::Chain:
        E = std::make_unique<ScalarRefExpr>(S.Chain.front());
        return;
      case SitePlan::Window: {
        const Stream &St = Streams[S.StreamId];
        E = std::make_unique<ScalarRefExpr>(
            St.Window[S.StreamOffset - St.MinOffset]);
        return;
      }
      }
    });
    if (auto *Dest = dyn_cast<ArrayAccessExpr>(Assign->dest())) {
      int Idx = findSite(Dest);
      if (Idx >= 0 && Sites[Idx].Plan == SitePlan::InnerInvariant)
        Assign->setDest(std::make_unique<ScalarRefExpr>(Sites[Idx].Reg));
    }
  }
}

void ScalarReplacer::insertCode() {
  StmtList &Body = Nest.back()->body();
  StmtList NewBody;

  // 1. Guarded chain loads, grouped by carrier loop (Figure 1(c)'s
  //    `if (j == 0) { c_0_0 = C[i]; ... }`).
  std::map<int, std::vector<StmtPtr>> GuardedLoads; // carrier pos -> loads
  for (Site &S : Sites) {
    if (S.Plan != SitePlan::Chain)
      continue;
    GuardedLoads[S.CarrierPos].push_back(std::make_unique<AssignStmt>(
        std::make_unique<ScalarRefExpr>(S.Chain.front()), makeAccess(S)));
  }
  for (auto &[CarrierPos, Loads] : GuardedLoads) {
    ForStmt *Carrier = Nest[CarrierPos];
    auto Guard = std::make_unique<IfStmt>(std::make_unique<BinaryExpr>(
        BinaryOp::CmpEq, std::make_unique<LoopIndexExpr>(Carrier->loopId()),
        std::make_unique<IntLitExpr>(Carrier->lower())));
    for (StmtPtr &L : Loads)
      Guard->thenBody().push_back(std::move(L));
    NewBody.push_back(std::move(Guard));
  }

  // 2. Window warm-up loads, guarded on the innermost loop's first
  //    iteration, plus the unguarded leading-edge load.
  ForStmt *Inner = Nest.back();
  for (Stream &St : Streams) {
    const Site &Lead = Sites[St.LeadSite];
    auto Guard = std::make_unique<IfStmt>(std::make_unique<BinaryExpr>(
        BinaryOp::CmpEq, std::make_unique<LoopIndexExpr>(Inner->loopId()),
        std::make_unique<IntLitExpr>(Inner->lower())));
    int64_t Span = St.MaxOffset - St.MinOffset + 1;
    for (int64_t T = 0; T + 1 < Span; ++T) {
      // Register W[T] holds the element at relative offset MinOffset + T;
      // the lead site's subscripts sit at MaxOffset.
      int64_t Delta = St.MinOffset + T - St.MaxOffset;
      Guard->thenBody().push_back(std::make_unique<AssignStmt>(
          std::make_unique<ScalarRefExpr>(St.Window[T]),
          makeShiftedAccess(Lead, Delta)));
    }
    NewBody.push_back(std::move(Guard));
    NewBody.push_back(std::make_unique<AssignStmt>(
        std::make_unique<ScalarRefExpr>(St.Window.back()),
        makeAccess(Lead)));
  }

  // 3. Original statements, with CSE temp loads before first use. The
  //    loads are bucketed by first-use index up front (site order within
  //    a bucket preserved) so this is linear, not |Body| x |Sites|.
  std::vector<std::vector<Site *>> CseLoadsAt(Body.size());
  for (Site &S : Sites)
    if (S.Plan == SitePlan::CseTemp)
      CseLoadsAt[S.FirstUseIdx].push_back(&S);
  NewBody.reserve(NewBody.size() + Body.size() + Sites.size());
  for (unsigned Idx = 0; Idx != Body.size(); ++Idx) {
    for (Site *S : CseLoadsAt[Idx])
      NewBody.push_back(std::make_unique<AssignStmt>(
          std::make_unique<ScalarRefExpr>(S->Reg), makeAccess(*S)));
    NewBody.push_back(std::move(Body[Idx]));
  }

  // 4. Rotations at the end of the body.
  for (Site &S : Sites)
    if (S.Plan == SitePlan::Chain)
      NewBody.push_back(std::make_unique<RotateStmt>(
          std::vector<const ScalarDecl *>(S.Chain.begin(), S.Chain.end())));
  for (Stream &St : Streams)
    NewBody.push_back(std::make_unique<RotateStmt>(
        std::vector<const ScalarDecl *>(St.Window.begin(),
                                        St.Window.end())));

  Body = std::move(NewBody);

  // 5. Inner-invariant loads/stores hoisted to the carrier level.
  std::map<int, std::vector<Site *>> ByLevel;
  for (Site &S : Sites)
    if (S.Plan == SitePlan::InnerInvariant)
      ByLevel[S.HoistPos].push_back(&S);
  for (auto &[Level, LevelSites] : ByLevel) {
    StmtList *Host =
        Level < 0 ? &K.body() : &Nest[Level]->body();
    // Loads go before everything, in site order; stores after everything.
    std::vector<StmtPtr> Loads, Stores;
    for (Site *S : LevelSites) {
      if (S->IsRead)
        Loads.push_back(std::make_unique<AssignStmt>(
            std::make_unique<ScalarRefExpr>(S->Reg), makeAccess(*S)));
      if (S->IsWritten)
        Stores.push_back(std::make_unique<AssignStmt>(
            makeAccess(*S), std::make_unique<ScalarRefExpr>(S->Reg)));
    }
    for (auto It = Loads.rbegin(); It != Loads.rend(); ++It)
      Host->insert(Host->begin(), std::move(*It));
    for (StmtPtr &S : Stores)
      Host->push_back(std::move(S));
  }
}

} // namespace

ScalarReplacementStats
defacto::scalarReplace(Kernel &K, const ScalarReplacementOptions &Opts) {
  return ScalarReplacer(K, Opts).run();
}
