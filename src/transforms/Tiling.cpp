//===- Tiling.cpp ---------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/Tiling.h"

#include "defacto/IR/IRUtils.h"

using namespace defacto;

bool defacto::stripMine(Kernel &K, int LoopId, int64_t TileSize) {
  ForStmt *Target = nullptr;
  for (ForStmt *F : collectLoops(K.body()))
    if (F->loopId() == LoopId)
      Target = F;
  if (!Target)
    return false;
  if (Target->lower() != 0 || Target->step() != 1)
    return false;
  int64_t Trip = Target->tripCount();
  if (TileSize <= 1 || TileSize >= Trip || Trip % TileSize != 0)
    return false;

  int InnerId = K.allocateLoopId();
  auto Inner = std::make_unique<ForStmt>(
      InnerId, Target->indexName() + "s", 0, TileSize, 1);
  Inner->body() = std::move(Target->body());

  // Original index value = TileSize * tile + strip. The tile loop keeps
  // the original id, so the substitution rebuilds its coefficient scaled
  // by the tile size.
  AffineExpr Replacement = AffineExpr::term(Target->loopId(), TileSize)
                               .add(AffineExpr::term(InnerId, 1));
  substituteLoopInStmts(Inner->body(), Target->loopId(), Replacement);

  Target->body().clear();
  Target->body().push_back(std::move(Inner));
  Target->setBounds(0, Trip / TileSize, 1);
  return true;
}
