//===- Interchange.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Transforms/Interchange.h"

#include "defacto/Analysis/DependenceAnalysis.h"
#include "defacto/IR/IRUtils.h"

#include <algorithm>

using namespace defacto;

bool defacto::canInterchange(Kernel &K, unsigned PosA, unsigned PosB) {
  ForStmt *Top = K.topLoop();
  if (!Top)
    return false;
  std::vector<ForStmt *> Nest = perfectNest(Top);
  if (PosA >= Nest.size() || PosB >= Nest.size() || PosA == PosB)
    return false;

  DependenceInfo DI = DependenceInfo::compute(K);
  for (const Dependence &Dep : DI.dependences()) {
    if (Dep.Kind == DepKind::Input)
      continue;
    if (!Dep.Consistent)
      return false; // No distance: conservatively block.
    std::vector<DistanceEntry> Permuted = Dep.Distance;
    std::swap(Permuted[PosA], Permuted[PosB]);
    // The permuted vector must be lexicographically non-negative. Stars
    // are canonically oriented positive by the analysis.
    for (const DistanceEntry &E : Permuted) {
      if (E.isStar())
        break; // Positive leading entry: fine.
      if (E.Value > 0)
        break;
      if (E.Value < 0)
        return false;
      // Zero: inspect the next entry.
    }
  }
  return true;
}

bool defacto::interchangeLoops(Kernel &K, unsigned PosA, unsigned PosB) {
  if (!canInterchange(K, PosA, PosB))
    return false;
  std::vector<ForStmt *> Nest = perfectNest(K.topLoop());
  ForStmt *A = Nest[PosA];
  ForStmt *B = Nest[PosB];

  // Swapping the loops of a perfect nest is equivalent to swapping the
  // two headers in place: bodies stay where they are, and subscripts
  // keep referring to the same ids, which now iterate at the other
  // level.
  int IdA = A->loopId();
  std::string NameA = A->indexName();
  int64_t LowerA = A->lower(), UpperA = A->upper(), StepA = A->step();

  A->setLoopId(B->loopId());
  A->setIndexName(B->indexName());
  A->setBounds(B->lower(), B->upper(), B->step());

  B->setLoopId(IdA);
  B->setIndexName(NameA);
  B->setBounds(LowerA, UpperA, StepA);
  return true;
}
