//===- Server.cpp ---------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Serve/Server.h"

#include "defacto/Core/CircuitBreaker.h"
#include "defacto/Core/EvaluationJournal.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/MetricsSampler.h"
#include "defacto/Support/Stats.h"
#include "defacto/Transforms/PassRegistry.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>
#include <sys/socket.h>

using namespace defacto;

DEFACTO_STATISTIC(NumServeRequests, "serve", "requests",
                  "explore requests received (admitted or rejected)");
DEFACTO_STATISTIC(NumServeHits, "serve", "hits",
                  "requests served entirely from warm cache state");
DEFACTO_STATISTIC(NumServeOverloads, "serve", "overloads",
                  "requests rejected by admission-queue backpressure");
DEFACTO_STATISTIC(NumServeDeadlineMisses, "serve", "deadline_misses",
                  "requests whose deadline expired before evaluation began");
DEFACTO_STATISTIC(NumServeErrors, "serve", "errors",
                  "invalid requests answered with an error reply");
DEFACTO_STATISTIC(NumServeBatches, "serve", "batches",
                  "coalesced BatchExplorer runs executed");

namespace {

double nowSeconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

double nowUs() { return nowSeconds() * 1e6; }

/// The serve-side request latency distribution (admission to reply).
Histogram &requestHistogram() {
  static Histogram &H =
      HistogramRegistry::global().histogram("serve.request_us");
  return H;
}

std::optional<TargetPlatform> platformByName(const std::string &Name) {
  for (const TargetPlatform &P : {TargetPlatform::wildstarPipelined(),
                                  TargetPlatform::wildstarNonPipelined()})
    if (P.Name == Name)
      return P;
  return std::nullopt;
}

} // namespace

/// One admitted explore request waiting for (or receiving) its batch.
struct DseServer::Pending {
  ServeRequest Req;
  Kernel K;
  TargetPlatform Platform = TargetPlatform::wildstarPipelined();
  /// Self-cancels at the request deadline (invalid when none).
  CancellationToken Deadline;
  double DeadlineAtSeconds = 0; // absolute, steady clock; 0 = none
  double EnqueueUs = 0;
  uint64_t Seq = 0;
  /// Stable request identity: the batch-job label, the journal job key,
  /// and the trace track.
  std::string JobName;
  /// Per-request recorder when the client asked for the decision digest.
  std::shared_ptr<TraceRecorder> DigestTrace;
  std::promise<ServeResponse> Reply;

  explicit Pending(Kernel K) : K(std::move(K)) {}
};

DseServer::DseServer(ServeOptions O) : Opts(std::move(O)) {
  Cache = std::make_shared<EstimateCache>();
  if (Opts.FastPath != FastPathMode::Off)
    StageCache = std::make_shared<TransformStageCache>();
  if (Opts.NumThreads > 1)
    Pool = std::make_shared<ThreadPool>(Opts.NumThreads);
  if (Opts.BreakerThreshold > 0) {
    CircuitBreakerOptions B;
    B.FailureThreshold = Opts.BreakerThreshold;
    B.CooldownSeconds = Opts.BreakerCooldownSeconds;
    Breakers = std::make_shared<CircuitBreakerRegistry>(B);
  }
}

DseServer::~DseServer() { stop(); }

TraceRecorder &DseServer::recorder() const {
  return Opts.Trace ? *Opts.Trace : TraceRecorder::global();
}

Status DseServer::start() {
  if (Running.load())
    return Status::ok();
  if (!Opts.JournalPath.empty()) {
    Journal = std::make_shared<EvaluationJournal>(Opts.JournalPath);
    Expected<EvaluationJournal::Contents> Loaded =
        EvaluationJournal::load(Opts.JournalPath);
    if (!Loaded)
      return Loaded.status();
    Journal->adopt(*Loaded);
    ResumedEvals = Journal->replayInto(*Cache);
  }
  Expected<UnixListener> L = UnixListener::listenOn(Opts.SocketPath);
  if (!L)
    return L.status();
  Listener = std::move(*L);
  Stop.store(false);
  Running.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  WorkerThread = std::thread([this] { workerLoop(); });
  return Status::ok();
}

void DseServer::stop() {
  if (!Running.exchange(false))
    return;
  Stop.store(true);
  QueueCV.notify_all();
  ShutdownCV.notify_all();
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (WorkerThread.joinable())
    WorkerThread.join();
  // Fail whatever the worker left queued so no reader waits forever.
  std::deque<std::shared_ptr<Pending>> Drained;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Drained.swap(Queue);
  }
  for (const std::shared_ptr<Pending> &P : Drained) {
    ServeResponse R;
    R.Id = P->Req.Id;
    R.RStatus = ServeStatus::Error;
    R.Reason = "daemon shutting down";
    P->Reply.set_value(R);
  }
  {
    std::lock_guard<std::mutex> Lock(ConnM);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnM);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Listener.close();
}

void DseServer::waitForShutdownRequest() {
  std::unique_lock<std::mutex> Lock(ShutdownM);
  ShutdownCV.wait(Lock,
                  [this] { return ShutdownRequested.load() || Stop.load(); });
}

void DseServer::requestStop() {
  ShutdownRequested.store(true);
  ShutdownCV.notify_all();
}

uint64_t DseServer::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueM);
  return Queue.size();
}

//===----------------------------------------------------------------------===//
// Accept + connection threads
//===----------------------------------------------------------------------===//

void DseServer::acceptLoop() {
  while (!Stop.load()) {
    Expected<std::optional<UnixConnection>> Conn = Listener.acceptFor(50);
    if (!Conn)
      break; // listener broken; daemon keeps serving live connections
    if (!Conn.value())
      continue; // timeout: re-check the stop flag
    std::lock_guard<std::mutex> Lock(ConnM);
    if (Stop.load())
      break;
    ConnFds.push_back(Conn.value()->fd());
    ConnThreads.emplace_back(
        [this, C = std::move(*Conn.value())]() mutable {
          connectionLoop(std::move(C));
        });
  }
}

void DseServer::connectionLoop(UnixConnection Conn) {
  const int Fd = Conn.fd();
  for (;;) {
    Expected<std::optional<std::string>> Line = Conn.recvLine();
    if (!Line || !Line.value())
      break; // transport error or EOF
    ServeResponse Resp;
    Expected<ServeRequest> Req = parseServeRequest(*Line.value());
    if (!Req) {
      Resp.RStatus = ServeStatus::Error;
      Resp.Reason = Req.status().message();
      ErrorReplies.fetch_add(1);
      ++NumServeErrors;
      if (!Conn.sendLine(Resp.toJson()).isOk())
        break;
      continue;
    }
    if (Req->Cmd == "ping") {
      if (!Conn.sendLine(handlePing(*Req).toJson()).isOk())
        break;
      continue;
    }
    if (Req->Cmd == "shutdown") {
      Resp.Id = Req->Id;
      Resp.RStatus = ServeStatus::Bye;
      (void)Conn.sendLine(Resp.toJson());
      requestStop();
      break;
    }

    // Explore.
    Requests.fetch_add(1);
    ++NumServeRequests;
    Resp.Id = Req->Id;
    Expected<std::shared_ptr<Pending>> P = admitPrep(*Req);
    if (!P) {
      Resp.RStatus = ServeStatus::Error;
      Resp.Reason = P.status().message();
      ErrorReplies.fetch_add(1);
      ++NumServeErrors;
      emitRequestTrace(*Req, Resp);
      if (!Conn.sendLine(Resp.toJson()).isOk())
        break;
      continue;
    }
    std::future<ServeResponse> Done = P.value()->Reply.get_future();
    bool Admitted = false;
    {
      std::lock_guard<std::mutex> Lock(QueueM);
      if (Stop.load()) {
        Resp.RStatus = ServeStatus::Error;
        Resp.Reason = "daemon shutting down";
      } else if (Queue.size() >= Opts.MaxQueueDepth) {
        Resp.RStatus = ServeStatus::Overloaded;
        Resp.Reason = "admission queue full (depth " +
                      std::to_string(Queue.size()) + "); retry later";
      } else {
        Queue.push_back(P.value());
        Admitted = true;
      }
    }
    if (!Admitted) {
      if (Resp.RStatus == ServeStatus::Overloaded) {
        Overloads.fetch_add(1);
        ++NumServeOverloads;
      }
      emitRequestTrace(*Req, Resp);
      if (!Conn.sendLine(Resp.toJson()).isOk())
        break;
      continue;
    }
    QueueCV.notify_one();
    ServeResponse Final = Done.get();
    if (!Conn.sendLine(Final.toJson()).isOk())
      break;
  }
  std::lock_guard<std::mutex> Lock(ConnM);
  ConnFds.erase(std::remove(ConnFds.begin(), ConnFds.end(), Fd),
                ConnFds.end());
}

ServeResponse DseServer::handlePing(const ServeRequest &Req) const {
  ServeResponse R;
  R.Id = Req.Id;
  R.RStatus = ServeStatus::Pong;
  R.CacheDesigns = Cache->size();
  R.StageCacheEntries = StageCache ? StageCache->size() : 0;
  R.Requests = Requests.load();
  R.ResumedEvaluations = ResumedEvals;
  return R;
}

Expected<std::shared_ptr<DseServer::Pending>>
DseServer::admitPrep(const ServeRequest &Req) {
  std::optional<TargetPlatform> Platform = platformByName(Req.Platform);
  if (!Platform)
    return Status::error(ErrorCode::InvalidInput,
                         "unknown platform '" + Req.Platform +
                             "' (known: wildstar-pipelined, "
                             "wildstar-nonpipelined)");
  if (!StrategyRegistry::instance().contains(Req.Strategy))
    return Status::error(ErrorCode::InvalidInput,
                         "unknown strategy '" + Req.Strategy +
                             "'; registered:\n" +
                             StrategyRegistry::instance().describe());
  if (!Req.Pipeline.empty()) {
    Expected<std::vector<std::string>> Parsed =
        parsePipelineText(Req.Pipeline);
    if (!Parsed)
      return Status::error(ErrorCode::InvalidInput,
                           "bad pipeline: " + Parsed.status().message());
  }

  std::optional<Kernel> K;
  std::string KernelName = Req.Kernel;
  if (!Req.Source.empty()) {
    if (KernelName.empty())
      KernelName = "custom";
    DiagnosticEngine Diags;
    K = parseKernel(Req.Source, KernelName, Diags);
    if (!K)
      return Status::error(ErrorCode::InvalidInput,
                           "kernel source rejected:\n" + Diags.toString());
  } else {
    if (!findKernelSpec(KernelName))
      return Status::error(ErrorCode::InvalidInput,
                           "unknown kernel '" + KernelName + "'");
    K = buildKernel(KernelName);
  }

  auto P = std::make_shared<Pending>(std::move(*K));
  P->Req = Req;
  P->Platform = *Platform;
  P->JobName = requestJobName(Req, P->K);
  if (Req.WantDigest) {
    P->DigestTrace = std::make_shared<TraceRecorder>();
    P->DigestTrace->setEnabled(true);
  }
  if (Req.DeadlineSeconds > 0) {
    P->DeadlineAtSeconds = nowSeconds() + Req.DeadlineSeconds;
    P->Deadline = CancellationToken::withDeadline(
        P->DeadlineAtSeconds, &nowSeconds, "request deadline");
  }
  P->EnqueueUs = nowUs();
  P->Seq = NextSeq.fetch_add(1);
  return P;
}

std::string DseServer::requestJobName(const ServeRequest &Req,
                                      const Kernel &K) {
  // The job name doubles as the journal job key and the digest's trace
  // track, so it must be a pure function of the request content — a
  // restarted daemon (or a standalone verification run) re-derives the
  // identical name.
  std::string KernelName =
      Req.Kernel.empty() ? std::string("custom") : Req.Kernel;
  std::ostringstream Name;
  char Fp[32];
  std::snprintf(Fp, sizeof(Fp), "%016llx",
                static_cast<unsigned long long>(kernelFingerprint(K)));
  Name << KernelName << '#' << Fp << " @ " << Req.Platform << " ; "
       << Req.Strategy;
  if (!Req.Pipeline.empty())
    Name << " ; pl=" << Req.Pipeline;
  Name << " ; b" << Req.Budget;
  return Name.str();
}

//===----------------------------------------------------------------------===//
// Batch worker
//===----------------------------------------------------------------------===//

void DseServer::workerLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCV.wait(Lock, [this] { return Stop.load() || !Queue.empty(); });
      if (Stop.load())
        return; // stop() fails anything still queued
      while (!Queue.empty() && Batch.size() < std::max(1u, Opts.MaxBatch)) {
        Batch.push_back(Queue.front());
        Queue.pop_front();
      }
    }
    runBatch(std::move(Batch));
  }
}

void DseServer::runBatch(std::vector<std::shared_ptr<Pending>> Batch) {
  // Requests whose deadline lapsed while queued answer "deadline"
  // without spending any evaluation budget.
  std::vector<std::shared_ptr<Pending>> Live;
  for (std::shared_ptr<Pending> &P : Batch) {
    if (P->Deadline.valid() && P->Deadline.cancelled()) {
      ServeResponse R;
      R.Id = P->Req.Id;
      R.RStatus = ServeStatus::Deadline;
      R.Reason = "deadline expired before evaluation began";
      R.LatencyUs = nowUs() - P->EnqueueUs;
      DeadlineMisses.fetch_add(1);
      ++NumServeDeadlineMisses;
      requestHistogram().record(
          static_cast<uint64_t>(std::max(0.0, R.LatencyUs)));
      emitRequestTrace(P->Req, R);
      P->Reply.set_value(R);
      continue;
    }
    Live.push_back(std::move(P));
  }
  if (Live.empty())
    return;

  const uint64_t Seq = Batches.fetch_add(1) + 1;
  ++NumServeBatches;
  InFlight.store(Live.size());

  BatchOptions B;
  B.NumThreads = std::min<unsigned>(std::max(1u, Opts.NumThreads),
                                    static_cast<unsigned>(Live.size()));
  B.Pool = Pool;
  B.Cache = Cache;
  B.Journal = Journal;
  B.Breakers = Breakers;
  B.Trace = Opts.Trace;
  BatchExplorer Engine(B);
  for (const std::shared_ptr<Pending> &P : Live) {
    ExplorerOptions O;
    O.Platform = P->Platform;
    O.MaxEvaluations = std::max(1u, P->Req.Budget);
    O.FastPath = Opts.FastPath;
    O.StageCache = StageCache;
    O.WatchdogSeconds = Opts.WatchdogSeconds;
    O.BaseTransforms.Pipeline = P->Req.Pipeline;
    if (P->DigestTrace)
      O.Trace = P->DigestTrace;
    if (P->DeadlineAtSeconds > 0)
      O.DeadlineSeconds = std::max(1e-3, P->DeadlineAtSeconds - nowSeconds());
    Engine.addJob(
        BatchJob(P->JobName, P->K.clone(), std::move(O), P->Req.Strategy));
  }

  EstimateCache::Stats Before = Cache->stats();
  std::vector<BatchResult> Results = Engine.runAll();
  EstimateCache::Stats After = Cache->stats();
  const uint64_t HitsDelta = After.Hits - Before.Hits;
  const uint64_t MissesDelta = After.Misses - Before.Misses;
  const bool Warm = MissesDelta == 0;

  for (size_t I = 0; I != Results.size() && I != Live.size(); ++I) {
    const std::shared_ptr<Pending> &P = Live[I];
    const ExplorationResult &E = Results[I].Result;
    ServeResponse R;
    R.Id = P->Req.Id;
    R.RStatus = (E.Degraded || !E.SelectedFits) ? ServeStatus::Degraded
                                                : ServeStatus::Ok;
    R.Kernel = P->Req.Source.empty() ? P->Req.Kernel
                                     : (P->Req.Kernel.empty() ? "custom"
                                                              : P->Req.Kernel);
    R.Strategy = E.Strategy.empty() ? P->Req.Strategy : E.Strategy;
    R.Platform = P->Req.Platform;
    R.Selected = E.SelectedPoint.isUnrollOnly()
                     ? unrollVectorToString(E.Selected)
                     : E.SelectedPoint.toString();
    R.Cycles = E.SelectedEstimate.Cycles;
    R.Slices = E.SelectedEstimate.Slices;
    R.Speedup = E.speedup();
    R.Evaluations = E.EvaluationsUsed;
    R.Fits = E.SelectedFits;
    R.Degraded = E.Degraded;
    R.Warm = Warm;
    R.CacheHits = HitsDelta;
    R.CacheMisses = MissesDelta;
    R.BatchSeq = Seq;
    R.BatchSize = static_cast<unsigned>(Live.size());
    R.LatencyUs = nowUs() - P->EnqueueUs;
    if (P->DigestTrace)
      R.Digest = digestHash(P->DigestTrace->decisionDigest());
    if (Warm) {
      WarmHits.fetch_add(1);
      ++NumServeHits;
    }
    requestHistogram().record(
        static_cast<uint64_t>(std::max(0.0, R.LatencyUs)));
    emitRequestTrace(P->Req, R);
    P->Reply.set_value(R);
  }
  InFlight.store(0);
}

void DseServer::emitRequestTrace(const ServeRequest &Req,
                                 const ServeResponse &Resp) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent E;
  E.Track = "serve";
  E.Category = "serve.request";
  E.Name = Req.Kernel.empty() ? std::string("custom") : Req.Kernel;
  E.Ordinal = Resp.BatchSeq;
  E.Args = {{"status", serveStatusName(Resp.RStatus)},
            {"kernel", E.Name},
            {"platform", Req.Platform},
            {"strategy", Req.Strategy}};
  E.Runtime = {{"latency_us", std::to_string(Resp.LatencyUs)},
               {"warm", Resp.Warm ? "1" : "0"},
               {"batch", std::to_string(Resp.BatchSeq)},
               {"batch_size", std::to_string(Resp.BatchSize)}};
  R.record(std::move(E));
}

void DseServer::registerGauges(MetricsSampler &Sampler) {
  Sampler.setGauge("serve_queue_depth",
                   [this] { return static_cast<double>(queueDepth()); });
  Sampler.setGauge("serve_in_flight",
                   [this] { return static_cast<double>(InFlight.load()); });
  Sampler.setGauge("cache_designs",
                   [this] { return static_cast<double>(Cache->size()); });
  if (StageCache)
    Sampler.setGauge("stage_entries", [this] {
      return static_cast<double>(StageCache->size());
    });
  Sampler.setGauge("in_flight_evals", [] {
    return static_cast<double>(EvaluationService::inFlightEvaluations());
  });
  if (Breakers)
    Sampler.setGauge("breakers_open", [this] {
      double Open = 0;
      for (const auto &[Key, Snap] : Breakers->snapshotAll())
        if (Snap.Current != CircuitBreakerRegistry::State::Closed)
          ++Open;
      return Open;
    });
}
