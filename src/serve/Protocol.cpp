//===- Protocol.cpp -------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Serve/Protocol.h"

#include "defacto/Support/Json.h"

#include <cstdio>
#include <sstream>

using namespace defacto;

namespace {

/// Hexfloat encoding for exact double round-trips, the journal's idiom.
std::string hexDouble(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", D);
  return Buf;
}

std::string plainDouble(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", D);
  return Buf;
}

} // namespace

std::string ServeRequest::toJson() const {
  std::ostringstream OS;
  OS << "{\"cmd\":" << jsonQuote(Cmd);
  if (!Id.empty())
    OS << ",\"id\":" << jsonQuote(Id);
  if (!Kernel.empty())
    OS << ",\"kernel\":" << jsonQuote(Kernel);
  if (!Source.empty())
    OS << ",\"source\":" << jsonQuote(Source);
  OS << ",\"platform\":" << jsonQuote(Platform)
     << ",\"strategy\":" << jsonQuote(Strategy);
  if (!Pipeline.empty())
    OS << ",\"pipeline\":" << jsonQuote(Pipeline);
  OS << ",\"budget\":" << Budget
     << ",\"deadline_s\":" << jsonQuote(plainDouble(DeadlineSeconds));
  if (WantDigest)
    OS << ",\"digest\":true";
  OS << '}';
  return OS.str();
}

Expected<ServeRequest> defacto::parseServeRequest(const std::string &Line) {
  Expected<JsonValue> Parsed = parseJson(Line);
  if (!Parsed)
    return Status::error(ErrorCode::InvalidInput,
                         "request is not valid JSON: " +
                             Parsed.status().message());
  const JsonValue &V = Parsed.value();
  if (!V.isObject())
    return Status::error(ErrorCode::InvalidInput,
                         "request must be a JSON object");
  ServeRequest R;
  R.Cmd = V.str("cmd", "explore");
  if (R.Cmd != "explore" && R.Cmd != "ping" && R.Cmd != "shutdown")
    return Status::error(ErrorCode::InvalidInput,
                         "unknown cmd '" + R.Cmd + "'");
  R.Id = V.str("id");
  R.Kernel = V.str("kernel");
  R.Source = V.str("source");
  R.Platform = V.str("platform", R.Platform);
  R.Strategy = V.str("strategy", R.Strategy);
  R.Pipeline = V.str("pipeline");
  R.Budget = static_cast<unsigned>(V.uint("budget", R.Budget));
  R.DeadlineSeconds = V.num("deadline_s", 0);
  R.WantDigest = V.boolean("digest");
  if (R.Cmd == "explore" && R.Kernel.empty() && R.Source.empty())
    return Status::error(ErrorCode::InvalidInput,
                         "explore needs \"kernel\" or \"source\"");
  if (R.DeadlineSeconds < 0)
    return Status::error(ErrorCode::InvalidInput,
                         "deadline_s must be non-negative");
  return R;
}

const char *defacto::serveStatusName(ServeStatus S) {
  switch (S) {
  case ServeStatus::Ok:
    return "ok";
  case ServeStatus::Degraded:
    return "degraded";
  case ServeStatus::Overloaded:
    return "overloaded";
  case ServeStatus::Deadline:
    return "deadline";
  case ServeStatus::Error:
    return "error";
  case ServeStatus::Pong:
    return "pong";
  case ServeStatus::Bye:
    return "bye";
  }
  return "error";
}

namespace {

Expected<ServeStatus> statusFromName(const std::string &Name) {
  for (ServeStatus S :
       {ServeStatus::Ok, ServeStatus::Degraded, ServeStatus::Overloaded,
        ServeStatus::Deadline, ServeStatus::Error, ServeStatus::Pong,
        ServeStatus::Bye})
    if (Name == serveStatusName(S))
      return S;
  return Status::error(ErrorCode::InvalidInput,
                       "unknown reply status '" + Name + "'");
}

} // namespace

std::string ServeResponse::toJson() const {
  std::ostringstream OS;
  OS << "{\"status\":" << jsonQuote(serveStatusName(RStatus));
  if (!Id.empty())
    OS << ",\"id\":" << jsonQuote(Id);
  if (!Reason.empty())
    OS << ",\"reason\":" << jsonQuote(Reason);
  if (RStatus == ServeStatus::Ok || RStatus == ServeStatus::Degraded) {
    OS << ",\"kernel\":" << jsonQuote(Kernel)
       << ",\"strategy\":" << jsonQuote(Strategy)
       << ",\"platform\":" << jsonQuote(Platform)
       << ",\"selected\":" << jsonQuote(Selected) << ",\"cycles\":" << Cycles
       << ",\"slices\":" << jsonQuote(hexDouble(Slices))
       << ",\"speedup\":" << jsonQuote(plainDouble(Speedup))
       << ",\"evals\":" << Evaluations
       << ",\"fits\":" << (Fits ? "true" : "false")
       << ",\"degraded\":" << (Degraded ? "true" : "false")
       << ",\"warm\":" << (Warm ? "true" : "false")
       << ",\"cache_hits\":" << CacheHits
       << ",\"cache_misses\":" << CacheMisses << ",\"batch\":" << BatchSeq
       << ",\"batch_size\":" << BatchSize;
    if (!Digest.empty())
      OS << ",\"decision_digest\":" << jsonQuote(Digest);
  }
  if (RStatus == ServeStatus::Pong)
    OS << ",\"cache_designs\":" << CacheDesigns
       << ",\"stage_entries\":" << StageCacheEntries
       << ",\"requests\":" << Requests
       << ",\"resumed_evals\":" << ResumedEvaluations;
  if (RStatus != ServeStatus::Pong && RStatus != ServeStatus::Bye)
    OS << ",\"latency_us\":" << jsonQuote(plainDouble(LatencyUs));
  OS << '}';
  return OS.str();
}

Expected<ServeResponse> defacto::parseServeResponse(const std::string &Line) {
  Expected<JsonValue> Parsed = parseJson(Line);
  if (!Parsed)
    return Status::error(ErrorCode::InvalidInput,
                         "reply is not valid JSON: " +
                             Parsed.status().message());
  const JsonValue &V = Parsed.value();
  if (!V.isObject())
    return Status::error(ErrorCode::InvalidInput,
                         "reply must be a JSON object");
  Expected<ServeStatus> S = statusFromName(V.str("status"));
  if (!S)
    return S.status();
  ServeResponse R;
  R.RStatus = S.value();
  R.Id = V.str("id");
  R.Reason = V.str("reason");
  R.Kernel = V.str("kernel");
  R.Strategy = V.str("strategy");
  R.Platform = V.str("platform");
  R.Selected = V.str("selected");
  R.Cycles = V.uint("cycles");
  R.Slices = V.num("slices");
  R.Speedup = V.num("speedup");
  R.Evaluations = static_cast<unsigned>(V.uint("evals"));
  R.Fits = V.boolean("fits", true);
  R.Degraded = V.boolean("degraded");
  R.Warm = V.boolean("warm");
  R.CacheHits = V.uint("cache_hits");
  R.CacheMisses = V.uint("cache_misses");
  R.BatchSeq = V.uint("batch");
  R.BatchSize = static_cast<unsigned>(V.uint("batch_size"));
  R.LatencyUs = V.num("latency_us");
  R.Digest = V.str("decision_digest");
  R.CacheDesigns = V.uint("cache_designs");
  R.StageCacheEntries = V.uint("stage_entries");
  R.Requests = V.uint("requests");
  R.ResumedEvaluations = static_cast<unsigned>(V.uint("resumed_evals"));
  return R;
}

std::string defacto::digestHash(const std::vector<std::string> &Lines) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis
  auto Mix = [&H](const char *Data, size_t N) {
    for (size_t I = 0; I != N; ++I) {
      H ^= static_cast<unsigned char>(Data[I]);
      H *= 1099511628211ull;
    }
  };
  for (const std::string &L : Lines) {
    Mix(L.data(), L.size());
    Mix("\n", 1);
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}
