//===- OperatorLibrary.cpp ------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/OperatorLibrary.h"

#include "defacto/Support/ErrorHandling.h"
#include "defacto/Support/MathExtras.h"

using namespace defacto;

const char *defacto::opClassName(OpClass Class) {
  switch (Class) {
  case OpClass::AddSub:
    return "addsub";
  case OpClass::Mul:
    return "mul";
  case OpClass::ConstMul:
    return "constmul";
  case OpClass::Div:
    return "div";
  case OpClass::Logic:
    return "logic";
  case OpClass::Compare:
    return "cmp";
  case OpClass::Mux:
    return "mux";
  case OpClass::Wire:
    return "wire";
  }
  defacto_unreachable("unknown operator class");
}

double defacto::operatorDelayNs(OpClass Class, unsigned WidthBits) {
  double W = WidthBits;
  switch (Class) {
  case OpClass::AddSub:
    return 2.0 + 0.25 * W; // Ripple carry: 32-bit ~ 10 ns.
  case OpClass::Mul:
    return 6.0 + 0.9 * W; // 32-bit ~ 35 ns: one full 40 ns cycle.
  case OpClass::ConstMul:
    return 3.0 + 0.3 * W; // Shift-add tree.
  case OpClass::Div:
    return 2.5 * W; // Iterative; 32-bit spans two 40 ns cycles.
  case OpClass::Logic:
    return 2.0;
  case OpClass::Compare:
    return 2.0 + 0.15 * W;
  case OpClass::Mux:
    return 3.0;
  case OpClass::Wire:
    return 0.0;
  }
  defacto_unreachable("unknown operator class");
}

double defacto::operatorAreaSlices(OpClass Class, unsigned WidthBits) {
  double W = WidthBits;
  switch (Class) {
  case OpClass::AddSub:
    return W / 2.0; // One slice carries two bits.
  case OpClass::Mul:
    return W * W / 8.0; // 32-bit ~ 128 slices.
  case OpClass::ConstMul:
    return W; // A few shift-add stages.
  case OpClass::Div:
    return W * W / 4.0;
  case OpClass::Logic:
    return W / 4.0;
  case OpClass::Compare:
    return W / 4.0;
  case OpClass::Mux:
    return W / 4.0;
  case OpClass::Wire:
    return 0.0;
  }
  defacto_unreachable("unknown operator class");
}

double defacto::registerAreaSlices(unsigned WidthBits) {
  return WidthBits / 2.0;
}

OpClass defacto::classifyBinary(BinaryOp Op, bool HasConstOperand,
                                int64_t ConstOperand) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return OpClass::AddSub;
  case BinaryOp::Mul:
    if (HasConstOperand) {
      int64_t C = ConstOperand < 0 ? -ConstOperand : ConstOperand;
      if (C == 0 || C == 1 || isPowerOf2(C))
        return OpClass::Wire;
      return OpClass::ConstMul;
    }
    return OpClass::Mul;
  case BinaryOp::Div:
  case BinaryOp::Mod:
    if (HasConstOperand) {
      int64_t C = ConstOperand < 0 ? -ConstOperand : ConstOperand;
      if (C == 1 || isPowerOf2(C))
        return OpClass::Wire;
    }
    return OpClass::Div;
  case BinaryOp::Min:
  case BinaryOp::Max:
    return OpClass::Compare; // Comparator + mux; the mux is folded in.
  case BinaryOp::And:
  case BinaryOp::Or:
  case BinaryOp::Xor:
    return OpClass::Logic;
  case BinaryOp::Shl:
  case BinaryOp::Shr:
    // Shift by a constant is wiring; a variable shift needs a barrel
    // shifter, modeled as a mux cascade.
    return HasConstOperand ? OpClass::Wire : OpClass::Mux;
  case BinaryOp::CmpEq:
  case BinaryOp::CmpNe:
  case BinaryOp::CmpLt:
  case BinaryOp::CmpLe:
  case BinaryOp::CmpGt:
  case BinaryOp::CmpGe:
    return OpClass::Compare;
  }
  defacto_unreachable("unknown binary op");
}

OpClass defacto::classifyUnary(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return OpClass::AddSub;
  case UnaryOp::Abs:
    return OpClass::AddSub; // Negate + select, dominated by the adder.
  case UnaryOp::Not:
    return OpClass::Compare;
  }
  defacto_unreachable("unknown unary op");
}
