//===- TargetPlatform.cpp -------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/TargetPlatform.h"

using namespace defacto;

TargetPlatform TargetPlatform::wildstarPipelined() {
  TargetPlatform P;
  P.Name = "wildstar-pipelined";
  P.Timing.ReadLatencyCycles = 1;
  P.Timing.WriteLatencyCycles = 1;
  P.Timing.Pipelined = true;
  return P;
}

TargetPlatform TargetPlatform::wildstarNonPipelined() {
  TargetPlatform P;
  P.Name = "wildstar-nonpipelined";
  P.Timing.ReadLatencyCycles = 7;
  P.Timing.WriteLatencyCycles = 3;
  P.Timing.Pipelined = false;
  return P;
}
