//===- DFG.cpp ------------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/DFG.h"

#include "defacto/Support/ErrorHandling.h"

#include <map>

using namespace defacto;

unsigned DFG::numMemReads() const {
  unsigned N = 0;
  for (const DFGNode &Node : Nodes)
    N += Node.NodeKind == DFGNode::Kind::MemRead;
  return N;
}

unsigned DFG::numMemWrites() const {
  unsigned N = 0;
  for (const DFGNode &Node : Nodes)
    N += Node.NodeKind == DFGNode::Kind::MemWrite;
  return N;
}

unsigned DFG::numComputeOfClass(OpClass Class) const {
  unsigned N = 0;
  for (const DFGNode &Node : Nodes)
    N += Node.NodeKind == DFGNode::Kind::Compute && Node.Class == Class;
  return N;
}

namespace {

/// The value an expression evaluates to: the producing node (if any) and
/// its width. Values with no node are ready at time zero (constants,
/// loop indices from counters, register reads of loop-carried values).
struct ValueRef {
  int Node = -1; // -1: available immediately
  unsigned WidthBits = 8;
};

class DFGBuilder {
public:
  DFGBuilder(const std::function<int(const ArrayAccessExpr *)> &PortOf,
             const std::function<unsigned(const Expr *)> &WidthOf)
      : PortOf(PortOf), WidthOf(WidthOf) {}

  DFG build(const std::vector<const Stmt *> &Segment) {
    for (const Stmt *S : Segment)
      buildStmt(S, /*Pred=*/ValueRef{});
    return std::move(Graph);
  }

private:
  unsigned addNode(DFGNode Node) {
    Graph.Nodes.push_back(std::move(Node));
    return Graph.Nodes.size() - 1;
  }

  static void addPred(DFGNode &Node, const ValueRef &V) {
    if (V.Node >= 0)
      Node.Preds.push_back(static_cast<unsigned>(V.Node));
  }

  ValueRef buildExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit: {
      int64_t V = cast<IntLitExpr>(E)->value();
      unsigned W = 8;
      for (int64_t M = 127; V > M || V < -M - 1; M = (M << 8) | 0xFF)
        W += 8;
      return {-1, W};
    }
    case Expr::Kind::LoopIndex:
      return {-1, 16}; // Index counters are part of the control FSM.
    case Expr::Kind::ScalarRef: {
      const ScalarDecl *D = cast<ScalarRefExpr>(E)->decl();
      auto It = ScalarDef.find(D);
      if (It != ScalarDef.end())
        return It->second;
      return {-1, bitWidth(D->type())};
    }
    case Expr::Kind::ArrayAccess: {
      const auto *A = cast<ArrayAccessExpr>(E);
      DFGNode Node;
      Node.NodeKind = DFGNode::Kind::MemRead;
      Node.WidthBits = bitWidth(A->array()->elementType());
      Node.Port = PortOf(A);
      unsigned Idx = addNode(std::move(Node));
      return {static_cast<int>(Idx), bitWidth(A->array()->elementType())};
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      ValueRef In = buildExpr(U->operand());
      DFGNode Node;
      Node.NodeKind = DFGNode::Kind::Compute;
      Node.Class = classifyUnary(U->op());
      Node.WidthBits = width(E, In.WidthBits);
      addPred(Node, In);
      unsigned W = Node.WidthBits;
      return {static_cast<int>(addNode(std::move(Node))), W};
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      ValueRef L = buildExpr(B->lhs());
      ValueRef R = buildExpr(B->rhs());
      bool HasConst = false;
      int64_t ConstVal = 0;
      if (const auto *Lit = dyn_cast<IntLitExpr>(B->lhs())) {
        HasConst = true;
        ConstVal = Lit->value();
      } else if (const auto *Lit2 = dyn_cast<IntLitExpr>(B->rhs())) {
        HasConst = true;
        ConstVal = Lit2->value();
      }
      DFGNode Node;
      Node.NodeKind = DFGNode::Kind::Compute;
      Node.Class = classifyBinary(B->op(), HasConst, ConstVal);
      Node.WidthBits = width(E, std::max(L.WidthBits, R.WidthBits));
      unsigned W =
          isComparisonOp(B->op()) ? 8 : Node.WidthBits; // Flags are narrow.
      addPred(Node, L);
      addPred(Node, R);
      return {static_cast<int>(addNode(std::move(Node))), W};
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      ValueRef C = buildExpr(S->cond());
      ValueRef T = buildExpr(S->trueValue());
      ValueRef F = buildExpr(S->falseValue());
      DFGNode Node;
      Node.NodeKind = DFGNode::Kind::Compute;
      Node.Class = OpClass::Mux;
      Node.WidthBits = width(E, std::max(T.WidthBits, F.WidthBits));
      addPred(Node, C);
      addPred(Node, T);
      addPred(Node, F);
      unsigned W = Node.WidthBits;
      return {static_cast<int>(addNode(std::move(Node))), W};
    }
    }
    defacto_unreachable("unknown expression kind");
  }

  /// \p Pred carries an enclosing if's condition value (for predication).
  void buildStmt(const Stmt *S, ValueRef Pred) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      ValueRef V = buildExpr(A->value());
      if (const auto *SR = dyn_cast<ScalarRefExpr>(A->dest())) {
        if (Pred.Node >= 0) {
          // Predicated register update: mux between old and new value.
          ValueRef Old{-1, bitWidth(SR->decl()->type())};
          auto It = ScalarDef.find(SR->decl());
          if (It != ScalarDef.end())
            Old = It->second;
          DFGNode Mux;
          Mux.NodeKind = DFGNode::Kind::Compute;
          Mux.Class = OpClass::Mux;
          Mux.WidthBits = std::max(V.WidthBits, Old.WidthBits);
          addPred(Mux, Pred);
          addPred(Mux, V);
          addPred(Mux, Old);
          unsigned W = Mux.WidthBits;
          ScalarDef[SR->decl()] = {static_cast<int>(addNode(std::move(Mux))),
                                   W};
        } else {
          ScalarDef[SR->decl()] = V;
        }
        return;
      }
      const auto *AA = cast<ArrayAccessExpr>(A->dest());
      DFGNode Node;
      Node.NodeKind = DFGNode::Kind::MemWrite;
      Node.WidthBits = bitWidth(AA->array()->elementType());
      Node.Port = PortOf(AA);
      addPred(Node, V);
      addPred(Node, Pred); // Conditional accesses wait on the predicate.
      addNode(std::move(Node));
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      ValueRef C = buildExpr(I->cond());
      ValueRef ThenPred = C;
      if (Pred.Node >= 0) {
        // Nested predication: and the conditions together.
        DFGNode AndNode;
        AndNode.NodeKind = DFGNode::Kind::Compute;
        AndNode.Class = OpClass::Logic;
        AndNode.WidthBits = 8;
        addPred(AndNode, C);
        addPred(AndNode, Pred);
        ThenPred = {static_cast<int>(addNode(std::move(AndNode))), 8};
      }
      for (const StmtPtr &T : I->thenBody())
        buildStmt(T.get(), ThenPred);
      for (const StmtPtr &T : I->elseBody())
        buildStmt(T.get(), ThenPred);
      return;
    }
    case Stmt::Kind::Rotate:
      return; // Parallel register shift at the clock edge: free.
    case Stmt::Kind::For:
      defacto_unreachable("loops are not part of straight-line segments");
    }
    defacto_unreachable("unknown statement kind");
  }

  /// Width override from range analysis, when enabled.
  unsigned width(const Expr *E, unsigned Fallback) const {
    return WidthOf ? WidthOf(E) : Fallback;
  }

  const std::function<int(const ArrayAccessExpr *)> &PortOf;
  const std::function<unsigned(const Expr *)> &WidthOf;
  DFG Graph;
  std::map<const ScalarDecl *, ValueRef> ScalarDef;
};

} // namespace

DFG defacto::buildSegmentDFG(
    const std::vector<const Stmt *> &Segment,
    const std::function<int(const ArrayAccessExpr *)> &PortOf,
    const std::function<unsigned(const Expr *)> &WidthOf) {
  return DFGBuilder(PortOf, WidthOf).build(Segment);
}
