//===- Scheduler.cpp ------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/Scheduler.h"

#include "defacto/Support/Cancellation.h"
#include "defacto/Support/Timer.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace defacto;

namespace {

/// Absolute times are in nanoseconds; cycle boundaries are multiples of
/// the clock period.
struct NodeTime {
  double Start = 0;
  double Finish = 0;
};

int64_t cycleOf(double TimeNs, double Period) {
  return static_cast<int64_t>(std::floor(TimeNs / Period + 1e-9));
}

double ceilToCycle(double TimeNs, double Period) {
  return std::ceil(TimeNs / Period - 1e-9) * Period;
}

/// Joint or compute-only list schedule. When \p MemoryFree is true,
/// memory reads complete at time zero and writes are skipped (the
/// compute-only critical path).
std::vector<NodeTime> listSchedule(const DFG &Graph,
                                   const TargetPlatform &P,
                                   bool MemoryFree) {
  double Period = P.ClockPeriodNs;
  std::vector<NodeTime> Times(Graph.Nodes.size());
  std::vector<double> PortFree(P.NumMemories == 0 ? 1 : P.NumMemories, 0.0);

  for (unsigned I = 0; I != Graph.Nodes.size(); ++I) {
    // Cooperative hang-watchdog poll: a cancelled evaluation abandons
    // the schedule mid-walk; estimateDesignChecked discards the partial
    // result and reports ErrorCode::Cancelled.
    if (currentCancelled())
      break;
    const DFGNode &Node = Graph.Nodes[I];
    double Ready = 0;
    for (unsigned Pred : Graph.Nodes[I].Preds)
      Ready = std::max(Ready, Times[Pred].Finish);

    if (Node.isMemory()) {
      if (MemoryFree) {
        Times[I] = {0, 0};
        continue;
      }
      unsigned Latency = Node.NodeKind == DFGNode::Kind::MemRead
                             ? P.Timing.ReadLatencyCycles
                             : P.Timing.WriteLatencyCycles;
      unsigned Busy = P.Timing.Pipelined ? 1 : Latency;
      unsigned Port = Node.Port % PortFree.size();
      double Start =
          std::max(ceilToCycle(Ready, Period), PortFree[Port]);
      PortFree[Port] = Start + Busy * Period;
      Times[I] = {Start, Start + Latency * Period};
      continue;
    }

    double Delay = operatorDelayNs(Node.Class, Node.WidthBits);
    if (Delay <= 0) {
      // Wiring (constant shifts, power-of-two scaling): free.
      Times[I] = {Ready, Ready};
      continue;
    }
    double Start = Ready;
    if (P.OperatorChaining) {
      // Chain within the current cycle if the result still meets timing;
      // otherwise start at the next cycle boundary.
      double CycleEnd = ceilToCycle(Start, Period);
      if (CycleEnd > Start && Start + Delay > CycleEnd + 1e-9)
        Start = CycleEnd;
      Times[I] = {Start, Start + Delay};
      continue;
    }
    // One operator level per cycle: start at a cycle boundary, occupy a
    // whole number of cycles.
    Start = ceilToCycle(Start, Period);
    double Cycles = std::max(1.0, std::ceil(Delay / Period - 1e-9));
    Times[I] = {Start, Start + Cycles * Period};
  }
  return Times;
}

} // namespace

SegmentSchedule defacto::scheduleSegment(const DFG &Graph,
                                         const TargetPlatform &Platform) {
  return scheduleSegmentDetailed(Graph, Platform).Summary;
}

DetailedSchedule
defacto::scheduleSegmentDetailed(const DFG &Graph,
                                 const TargetPlatform &Platform) {
  DEFACTO_SCOPED_TIMER("scheduler.schedule");
  DetailedSchedule Detailed;
  SegmentSchedule &Out = Detailed.Summary;
  if (Graph.Nodes.empty())
    return Detailed;
  double Period = Platform.ClockPeriodNs;

  // Joint schedule.
  std::vector<NodeTime> Joint = listSchedule(Graph, Platform,
                                             /*MemoryFree=*/false);
  double JointEnd = 0;
  for (const NodeTime &T : Joint)
    JointEnd = std::max(JointEnd, T.Finish);
  Out.JointCycles =
      static_cast<uint64_t>(std::ceil(JointEnd / Period - 1e-9));

  // Compute-only critical path.
  std::vector<NodeTime> Comp = listSchedule(Graph, Platform,
                                            /*MemoryFree=*/true);
  double CompEnd = 0;
  for (unsigned I = 0; I != Graph.Nodes.size(); ++I)
    if (!Graph.Nodes[I].isMemory())
      CompEnd = std::max(CompEnd, Comp[I].Finish);
  Out.CompOnlyCycles =
      static_cast<uint64_t>(std::ceil(CompEnd / Period - 1e-9));

  // Memory-only bandwidth bound: busiest port's total occupancy.
  std::vector<uint64_t> PortBusy(
      Platform.NumMemories == 0 ? 1 : Platform.NumMemories, 0);
  for (const DFGNode &Node : Graph.Nodes) {
    if (!Node.isMemory())
      continue;
    unsigned Latency = Node.NodeKind == DFGNode::Kind::MemRead
                           ? Platform.Timing.ReadLatencyCycles
                           : Platform.Timing.WriteLatencyCycles;
    unsigned Busy = Platform.Timing.Pipelined ? 1 : Latency;
    PortBusy[Node.Port % PortBusy.size()] += Busy;
    Out.BitsTransferred += Node.WidthBits;
    if (Node.NodeKind == DFGNode::Kind::MemRead)
      ++Out.MemReads;
    else
      ++Out.MemWrites;
  }
  for (uint64_t Busy : PortBusy)
    Out.MemOnlyCycles = std::max(Out.MemOnlyCycles, Busy);

  // Peak concurrent units per operator shape in the joint schedule.
  std::map<OpShape, std::vector<std::pair<int64_t, int64_t>>> Intervals;
  for (unsigned I = 0; I != Graph.Nodes.size(); ++I) {
    const DFGNode &Node = Graph.Nodes[I];
    if (Node.isMemory() || Node.Class == OpClass::Wire)
      continue;
    int64_t StartCycle = cycleOf(Joint[I].Start, Period);
    int64_t EndCycle =
        std::max(StartCycle + 1,
                 static_cast<int64_t>(
                     std::ceil(Joint[I].Finish / Period - 1e-9)));
    Intervals[{Node.Class, Node.WidthBits}].push_back({StartCycle, EndCycle});
  }
  // Per-node placements for reporting.
  Detailed.Placements.resize(Graph.Nodes.size());
  for (unsigned I = 0; I != Graph.Nodes.size(); ++I) {
    int64_t StartCycle = cycleOf(Joint[I].Start, Period);
    int64_t EndCycle = static_cast<int64_t>(
        std::ceil(Joint[I].Finish / Period - 1e-9));
    Detailed.Placements[I] = {StartCycle, std::max(StartCycle, EndCycle)};
  }

  for (auto &[Shape, Ranges] : Intervals) {
    // Sweep line over interval starts/ends.
    std::vector<std::pair<int64_t, int>> Events;
    for (const auto &[S, E] : Ranges) {
      Events.push_back({S, +1});
      Events.push_back({E, -1});
    }
    std::sort(Events.begin(), Events.end());
    int Cur = 0, Peak = 0;
    for (const auto &[At, Delta] : Events) {
      (void)At;
      Cur += Delta;
      Peak = std::max(Peak, Cur);
    }
    Out.PeakUnits[Shape] = static_cast<unsigned>(Peak);
  }
  return Detailed;
}

std::string defacto::renderScheduleGantt(const DFG &Graph,
                                         const DetailedSchedule &Schedule) {
  std::string Out;
  int64_t Cycles = static_cast<int64_t>(Schedule.Summary.JointCycles);
  if (Cycles <= 0 || Graph.Nodes.empty())
    return "(empty schedule)\n";

  // Header rule with cycle numbers every 5 cycles.
  Out += "          cycle 0";
  for (int64_t C = 5; C < Cycles; C += 5) {
    std::string Num = std::to_string(C);
    Out += std::string(5 - std::min<size_t>(4, Num.size() - 1), ' ');
    Out += Num;
  }
  Out += "\n";

  for (unsigned I = 0; I != Graph.Nodes.size(); ++I) {
    const DFGNode &Node = Graph.Nodes[I];
    std::string Label;
    switch (Node.NodeKind) {
    case DFGNode::Kind::MemRead:
      Label = "rd@m" + std::to_string(Node.Port);
      break;
    case DFGNode::Kind::MemWrite:
      Label = "wr@m" + std::to_string(Node.Port);
      break;
    case DFGNode::Kind::Compute:
      Label = std::string(opClassName(Node.Class)) +
              std::to_string(Node.WidthBits);
      break;
    }
    if (Label.size() < 10)
      Label += std::string(10 - Label.size(), ' ');
    Out += Label;

    const NodePlacement &P = Schedule.Placements[I];
    std::string Row(static_cast<size_t>(Cycles), '.');
    if (P.EndCycle == P.StartCycle) {
      // Zero-cycle wiring: mark the instant.
      if (P.StartCycle < Cycles)
        Row[static_cast<size_t>(P.StartCycle)] = '|';
    } else {
      for (int64_t C = P.StartCycle; C < P.EndCycle && C < Cycles; ++C)
        Row[static_cast<size_t>(C)] = '#';
    }
    Out += Row + "\n";
  }
  return Out;
}
