//===- Estimator.cpp ------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/Estimator.h"

#include "defacto/Analysis/ValueRange.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/Cancellation.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"

#include <cmath>
#include <memory>
#include <set>

using namespace defacto;

std::string SynthesisEstimate::toString() const {
  std::string Out;
  Out += "cycles=" + std::to_string(Cycles);
  Out += " slices=" + formatDouble(Slices, 0);
  Out += " regs=" + std::to_string(Registers);
  Out += " F=" + formatDouble(FetchRate, 2);
  Out += " C=" + formatDouble(ConsumeRate, 2);
  Out += " balance=" + formatDouble(Balance, 3);
  return Out;
}

namespace {

/// Whole-subtree totals accumulated by the recursive walk.
struct Totals {
  double Joint = 0;
  double MemOnly = 0;
  double CompOnly = 0;
  double Bits = 0;
  uint64_t States = 0;
  std::map<OpShape, unsigned> PeakUnits;

  void mergeUnits(const std::map<OpShape, unsigned> &Other) {
    for (const auto &[Shape, N] : Other) {
      unsigned &Slot = PeakUnits[Shape];
      Slot = std::max(Slot, N);
    }
  }
};

class EstimatorWalk {
public:
  EstimatorWalk(const Kernel &K, const TargetPlatform &P,
                std::vector<RegionReport> *Breakdown)
      : K(K), P(P), Breakdown(Breakdown) {
    if (P.Widths == TargetPlatform::WidthModel::Inferred)
      Ranges = std::make_unique<ValueRangeAnalysis>(K);
    // Port assignment: the data layout pass records physical ids; for
    // kernels estimated without layout, assign round-robin on first use.
    int Next = 0;
    unsigned M = P.NumMemories == 0 ? 1 : P.NumMemories;
    walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
      auto visit = [&](Expr *E) {
        walkExpr(E, [&](Expr *X) {
          auto *A = dyn_cast<ArrayAccessExpr>(X);
          if (!A || Ports.count(A->array()))
            return;
          int Port = A->array()->physicalMemId();
          if (Port < 0)
            Port = Next++ % static_cast<int>(M);
          Ports[A->array()] = Port;
        });
      };
      if (auto *A = dyn_cast<AssignStmt>(S)) {
        visit(A->dest());
        visit(A->value());
      } else if (auto *I = dyn_cast<IfStmt>(S)) {
        visit(I->cond());
      }
    });
  }

  Totals run() { return walkList(K.body(), "", 1); }

private:
  Totals walkList(const StmtList &Stmts, const std::string &Path,
                  uint64_t Executions) {
    Totals T;
    std::vector<const Stmt *> Segment;
    auto flush = [&]() {
      if (Segment.empty())
        return;
      std::function<unsigned(const Expr *)> WidthOf;
      if (Ranges)
        WidthOf = [this](const Expr *E) { return Ranges->widthOf(E); };
      else if (P.Widths == TargetPlatform::WidthModel::Uniform32)
        WidthOf = [](const Expr *) { return 32u; };
      DFG Graph = buildSegmentDFG(
          Segment,
          [this](const ArrayAccessExpr *A) {
            if (A->steadyStatePort() >= 0)
              return A->steadyStatePort() %
                     static_cast<int>(P.NumMemories ? P.NumMemories : 1);
            auto It = Ports.find(A->array());
            return It == Ports.end() ? 0 : It->second;
          },
          WidthOf);
      SegmentSchedule Sched = scheduleSegment(Graph, P);
      T.Joint += Sched.JointCycles;
      T.MemOnly += Sched.MemOnlyCycles;
      T.CompOnly += Sched.CompOnlyCycles;
      T.Bits += Sched.BitsTransferred;
      T.States += Sched.JointCycles;
      T.mergeUnits(Sched.PeakUnits);
      if (Breakdown)
        Breakdown->push_back({Path.empty() ? "<top>" : Path, Executions,
                              Sched.JointCycles, Sched.MemReads,
                              Sched.MemWrites});
      Segment.clear();
    };

    for (const StmtPtr &SP : Stmts) {
      // Cooperative hang-watchdog poll: once cancelled, stop descending
      // — the partial totals are discarded by estimateDesignChecked.
      if (currentCancelled())
        break;
      if (const auto *F = dyn_cast<ForStmt>(SP.get())) {
        flush();
        std::string ChildPath =
            Path.empty() ? F->indexName() : Path + "/" + F->indexName();
        Totals Child =
            walkList(F->body(), ChildPath,
                     Executions * static_cast<uint64_t>(F->tripCount()));
        double Trip = static_cast<double>(F->tripCount());
        T.Joint += Trip * (Child.Joint + P.LoopOverheadCycles);
        T.MemOnly += Trip * Child.MemOnly;
        T.CompOnly += Trip * Child.CompOnly;
        T.Bits += Trip * Child.Bits;
        T.States += Child.States + 2; // Loop entry/exit control states.
        T.mergeUnits(Child.PeakUnits);
        continue;
      }
      Segment.push_back(SP.get());
    }
    flush();
    return T;
  }

  const Kernel &K;
  const TargetPlatform &P;
  std::vector<RegionReport> *Breakdown;
  std::unique_ptr<ValueRangeAnalysis> Ranges;
  std::map<const ArrayDecl *, int> Ports;
};

} // namespace

SynthesisEstimate
defacto::estimateDesign(const Kernel &K, const TargetPlatform &Platform,
                        std::vector<RegionReport> *Breakdown) {
  DEFACTO_SCOPED_TIMER("estimator.estimate");
  if (Breakdown)
    Breakdown->clear();
  Totals T = EstimatorWalk(K, Platform, Breakdown).run();

  SynthesisEstimate E;
  E.Cycles = static_cast<uint64_t>(std::llround(T.Joint));
  E.MemOnlyCycles = T.MemOnly;
  E.CompOnlyCycles = T.CompOnly;
  E.BitsTransferred = T.Bits;
  E.FsmStates = T.States;
  E.Units = T.PeakUnits;

  if (T.Bits > 0 && T.MemOnly > 0)
    E.FetchRate = T.Bits / T.MemOnly;
  if (T.Bits > 0 && T.CompOnly > 0)
    E.ConsumeRate = T.Bits / T.CompOnly;
  if (T.MemOnly > 0)
    E.Balance = T.CompOnly / T.MemOnly;
  else
    E.Balance = HUGE_VAL; // No memory traffic: trivially compute bound.

  // Registers: every scalar referenced in the body is a datapath
  // register (source scalars and compiler temporaries alike).
  std::set<const ScalarDecl *> Used;
  walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
    auto visit = [&](Expr *Ex) {
      walkExpr(Ex, [&](Expr *X) {
        if (auto *SR = dyn_cast<ScalarRefExpr>(X))
          Used.insert(SR->decl());
      });
    };
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      visit(A->dest());
      visit(A->value());
    } else if (auto *I = dyn_cast<IfStmt>(S)) {
      visit(I->cond());
    } else if (auto *R = dyn_cast<RotateStmt>(S)) {
      for (const ScalarDecl *D : R->chain())
        Used.insert(D);
    }
  });
  E.Registers = Used.size();

  double Area = 0;
  for (const auto &[Shape, N] : T.PeakUnits)
    Area += N * operatorAreaSlices(Shape.first, Shape.second);
  for (const ScalarDecl *D : Used)
    Area += registerAreaSlices(bitWidth(D->type()));
  // Rotation paths add a feedback mux per register in each chain.
  walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
    if (auto *R = dyn_cast<RotateStmt>(S))
      for (const ScalarDecl *D : R->chain())
        Area += operatorAreaSlices(OpClass::Mux, bitWidth(D->type()));
  });
  // Memory interfaces: address counters and data registers per port.
  Area += 25.0 * Platform.NumMemories;
  // Control FSM: state register, next-state logic per state.
  Area += 40.0 + 1.5 * static_cast<double>(T.States);
  E.Slices = Area;
  return E;
}

Expected<SynthesisEstimate>
defacto::estimateDesignChecked(const Kernel &K,
                               const TargetPlatform &Platform) {
  std::vector<std::string> Problems = verifyKernel(K);
  if (!Problems.empty())
    return Status::error(ErrorCode::MalformedIR,
                         "cannot estimate invalid kernel: " + Problems.front());
  SynthesisEstimate Est = estimateDesign(K, Platform);
  // A watchdog cancellation mid-walk leaves partial totals; report the
  // cancellation rather than a garbage estimate.
  if (Status Cancel = currentCancelStatus(); !Cancel.isOk())
    return Cancel;
  if (Est.Cycles == 0 || Est.Slices <= 0.0)
    return Status::error(ErrorCode::EstimationFailed,
                         "estimator returned a degenerate design (cycles=" +
                             std::to_string(Est.Cycles) + ")");
  return Est;
}
