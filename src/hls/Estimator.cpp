//===- Estimator.cpp ------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/Estimator.h"

#include "defacto/Analysis/ValueRange.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/Cancellation.h"
#include "defacto/Support/ErrorHandling.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace defacto;

std::string SynthesisEstimate::toString() const {
  std::string Out;
  Out += "cycles=" + std::to_string(Cycles);
  Out += " slices=" + formatDouble(Slices, 0);
  Out += " regs=" + std::to_string(Registers);
  Out += " F=" + formatDouble(FetchRate, 2);
  Out += " C=" + formatDouble(ConsumeRate, 2);
  Out += " balance=" + formatDouble(Balance, 3);
  return Out;
}

namespace {

/// Whole-subtree totals accumulated by the recursive walk.
struct Totals {
  double Joint = 0;
  double MemOnly = 0;
  double CompOnly = 0;
  double Bits = 0;
  uint64_t States = 0;
  std::map<OpShape, unsigned> PeakUnits;

  void mergeUnits(const std::map<OpShape, unsigned> &Other) {
    for (const auto &[Shape, N] : Other) {
      unsigned &Slot = PeakUnits[Shape];
      Slot = std::max(Slot, N);
    }
  }
};

/// Per-thread memo of list-scheduling results, keyed by the exact DFG
/// content plus every platform field scheduleSegment() consults. The
/// unrolled bodies a DSE sweep schedules repeat the same straight-line
/// segments across candidates, so hits are the common case; a hit
/// returns the bit-identical SegmentSchedule the scheduler would have
/// produced (the key is compared exactly, never just by hash).
using ScheduleMemoKey = std::vector<uint64_t>;

struct ScheduleMemoKeyHash {
  size_t operator()(const ScheduleMemoKey &Blob) const {
    uint64_t H = 1469598103934665603ull;
    for (uint64_t V : Blob) {
      H ^= V;
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H);
  }
};

ScheduleMemoKey scheduleMemoKey(const DFG &Graph, const TargetPlatform &P) {
  ScheduleMemoKey Blob;
  Blob.reserve(Graph.Nodes.size() * 5 + 6);
  uint64_t PeriodBits = 0;
  static_assert(sizeof(PeriodBits) == sizeof(P.ClockPeriodNs));
  std::memcpy(&PeriodBits, &P.ClockPeriodNs, sizeof(PeriodBits));
  Blob.push_back(PeriodBits);
  Blob.push_back(P.NumMemories);
  Blob.push_back(P.Timing.ReadLatencyCycles);
  Blob.push_back(P.Timing.WriteLatencyCycles);
  Blob.push_back(P.Timing.Pipelined);
  Blob.push_back(P.OperatorChaining);
  for (const DFGNode &Node : Graph.Nodes) {
    Blob.push_back((static_cast<uint64_t>(Node.NodeKind) << 32) |
                   static_cast<uint64_t>(Node.Class));
    Blob.push_back(Node.WidthBits);
    Blob.push_back(static_cast<uint64_t>(static_cast<int64_t>(Node.Port)));
    Blob.push_back(Node.Preds.size());
    for (unsigned Pred : Node.Preds)
      Blob.push_back(Pred);
  }
  return Blob;
}

SegmentSchedule memoizedScheduleSegment(const DFG &Graph,
                                        const TargetPlatform &P) {
  // One memo per worker thread: no sharing, no locks, dropped with the
  // thread. The clear-on-overflow bound keeps a pathological sweep from
  // growing it without limit; eviction is transparent to results.
  constexpr size_t MaxMemoEntries = 512;
  thread_local std::unordered_map<ScheduleMemoKey, SegmentSchedule,
                                  ScheduleMemoKeyHash>
      Memo;
  ScheduleMemoKey Key = scheduleMemoKey(Graph, P);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  SegmentSchedule Sched = scheduleSegment(Graph, P);
  // A watchdog cancellation can truncate the schedule mid-walk; never
  // memoize a potentially partial result.
  if (!currentCancelled()) {
    if (Memo.size() >= MaxMemoEntries)
      Memo.clear();
    Memo.emplace(std::move(Key), Sched);
  }
  return Sched;
}

/// Serializes one straight-line segment into the u64 blob that determines
/// its DFG — and therefore its schedule — exactly. Replicated code is the
/// fast path's whole premise: unrolled copies and peeled prologues differ
/// only in which loop indices and scalar temporaries they name, neither
/// of which the DFG shape depends on. Scalars are alpha-numbered in
/// encounter order (their definedness dynamics and widths are encoded, so
/// alpha-equivalent segments build identical DFGs node for node); array
/// accesses contribute element width and scheduling port (subscripts are
/// address generation, free in the DFG); literal values are encoded
/// because operand widths and the const-multiply classification read
/// them. Sound only when widths come from declarations or are uniform —
/// range-inferred widths are whole-kernel state, and those platforms take
/// the DFG-keyed memo instead.
class SegmentEncoder {
public:
  SegmentEncoder(const std::function<int(const ArrayAccessExpr *)> &PortOf)
      : PortOf(PortOf) {}

  std::vector<uint64_t> encode(const std::vector<const Stmt *> &Segment,
                               const TargetPlatform &P) {
    Blob.reserve(Segment.size() * 16 + 8);
    uint64_t PeriodBits = 0;
    std::memcpy(&PeriodBits, &P.ClockPeriodNs, sizeof(PeriodBits));
    Blob.push_back(PeriodBits);
    Blob.push_back(P.NumMemories);
    Blob.push_back(P.Timing.ReadLatencyCycles);
    Blob.push_back(P.Timing.WriteLatencyCycles);
    Blob.push_back(P.Timing.Pipelined);
    Blob.push_back(P.OperatorChaining);
    Blob.push_back(static_cast<uint64_t>(P.Widths));
    for (const Stmt *S : Segment)
      encodeStmt(S);
    return std::move(Blob);
  }

private:
  void put(uint64_t V) { Blob.push_back(V); }

  uint64_t alphaId(const ScalarDecl *D) {
    auto [It, Inserted] = Alpha.emplace(D, Alpha.size());
    (void)Inserted;
    return It->second;
  }

  void encodeExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      put(1);
      put(static_cast<uint64_t>(cast<IntLitExpr>(E)->value()));
      return;
    case Expr::Kind::LoopIndex:
      put(2); // Which counter it is never reaches the DFG.
      return;
    case Expr::Kind::ScalarRef: {
      const ScalarDecl *D = cast<ScalarRefExpr>(E)->decl();
      put(3);
      put(alphaId(D));
      put(bitWidth(D->type()));
      return;
    }
    case Expr::Kind::ArrayAccess: {
      const auto *A = cast<ArrayAccessExpr>(E);
      put(4);
      put(bitWidth(A->array()->elementType()));
      put(static_cast<uint64_t>(static_cast<int64_t>(PortOf(A))));
      return;
    }
    case Expr::Kind::Unary:
      put(5);
      put(static_cast<uint64_t>(cast<UnaryExpr>(E)->op()));
      encodeExpr(cast<UnaryExpr>(E)->operand());
      return;
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      put(6);
      put(static_cast<uint64_t>(B->op()));
      encodeExpr(B->lhs());
      encodeExpr(B->rhs());
      return;
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      put(7);
      encodeExpr(S->cond());
      encodeExpr(S->trueValue());
      encodeExpr(S->falseValue());
      return;
    }
    }
    defacto_unreachable("unknown expression kind");
  }

  void encodeStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      // Value before dest, mirroring the DFG build order so alpha ids
      // line up with ScalarDef dynamics.
      put(10);
      encodeExpr(A->value());
      if (const auto *SR = dyn_cast<ScalarRefExpr>(A->dest())) {
        put(11);
        put(alphaId(SR->decl()));
        put(bitWidth(SR->decl()->type()));
      } else {
        const auto *AA = cast<ArrayAccessExpr>(A->dest());
        put(12);
        put(bitWidth(AA->array()->elementType()));
        put(static_cast<uint64_t>(static_cast<int64_t>(PortOf(AA))));
      }
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      put(13);
      encodeExpr(I->cond());
      for (const StmtPtr &T : I->thenBody())
        encodeStmt(T.get());
      put(14);
      for (const StmtPtr &T : I->elseBody())
        encodeStmt(T.get());
      put(15);
      return;
    }
    case Stmt::Kind::Rotate:
      return; // Free at the clock edge; contributes nothing to the DFG.
    case Stmt::Kind::For:
      defacto_unreachable("loops are not part of straight-line segments");
    }
    defacto_unreachable("unknown statement kind");
  }

  const std::function<int(const ArrayAccessExpr *)> &PortOf;
  std::vector<uint64_t> Blob;
  std::unordered_map<const ScalarDecl *, uint64_t> Alpha;
};

/// Schedule memo keyed by the structural blob instead of the built DFG:
/// a hit skips the DFG construction outright, which is the bulk of the
/// estimator's per-segment cost once scheduling itself is memoized.
SegmentSchedule memoizedScheduleStructural(
    const std::vector<const Stmt *> &Segment, const TargetPlatform &P,
    const std::function<int(const ArrayAccessExpr *)> &PortOf,
    const std::function<unsigned(const Expr *)> &WidthOf) {
  constexpr size_t MaxMemoEntries = 2048;
  thread_local std::unordered_map<ScheduleMemoKey, SegmentSchedule,
                                  ScheduleMemoKeyHash>
      Memo;
  ScheduleMemoKey Key = SegmentEncoder(PortOf).encode(Segment, P);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  SegmentSchedule Sched;
  {
    DEFACTO_SCOPED_TIMER("estimator.dfg");
    DFG Graph = buildSegmentDFG(Segment, PortOf, WidthOf);
    Sched = scheduleSegment(Graph, P);
  }
  // A watchdog cancellation can truncate the schedule mid-walk; never
  // memoize a potentially partial result.
  if (!currentCancelled()) {
    if (Memo.size() >= MaxMemoEntries)
      Memo.clear();
    Memo.emplace(std::move(Key), Sched);
  }
  return Sched;
}

class EstimatorWalk {
public:
  EstimatorWalk(const Kernel &K, const TargetPlatform &P,
                std::vector<RegionReport> *Breakdown,
                bool UseScheduleMemo = false)
      : K(K), P(P), Breakdown(Breakdown), UseScheduleMemo(UseScheduleMemo) {
    if (P.Widths == TargetPlatform::WidthModel::Inferred)
      Ranges = std::make_unique<ValueRangeAnalysis>(K);
    // Port assignment: the data layout pass records physical ids; for
    // kernels estimated without layout, assign round-robin on first use.
    // When every array already carries a physical id (layout ran), the
    // first-use order is irrelevant and the fast path fills the fallback
    // map straight from the declarations instead of walking the body.
    if (UseScheduleMemo) {
      bool AllPlaced = true;
      for (const auto &A : K.arrays())
        if (A->physicalMemId() < 0) {
          AllPlaced = false;
          break;
        }
      if (AllPlaced) {
        for (const auto &A : K.arrays())
          Ports[A.get()] = A->physicalMemId();
        return;
      }
    }
    int Next = 0;
    unsigned M = P.NumMemories == 0 ? 1 : P.NumMemories;
    walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
      auto visit = [&](Expr *E) {
        walkExpr(E, [&](Expr *X) {
          auto *A = dyn_cast<ArrayAccessExpr>(X);
          if (!A || Ports.count(A->array()))
            return;
          int Port = A->array()->physicalMemId();
          if (Port < 0)
            Port = Next++ % static_cast<int>(M);
          Ports[A->array()] = Port;
        });
      };
      if (auto *A = dyn_cast<AssignStmt>(S)) {
        visit(A->dest());
        visit(A->value());
      } else if (auto *I = dyn_cast<IfStmt>(S)) {
        visit(I->cond());
      }
    });
  }

  Totals run() { return walkList(K.body(), "", 1); }

private:
  Totals walkList(const StmtList &Stmts, const std::string &Path,
                  uint64_t Executions) {
    Totals T;
    std::vector<const Stmt *> Segment;
    auto flush = [&]() {
      if (Segment.empty())
        return;
      std::function<unsigned(const Expr *)> WidthOf;
      if (Ranges)
        WidthOf = [this](const Expr *E) { return Ranges->widthOf(E); };
      else if (P.Widths == TargetPlatform::WidthModel::Uniform32)
        WidthOf = [](const Expr *) { return 32u; };
      std::function<int(const ArrayAccessExpr *)> PortFn =
          [this](const ArrayAccessExpr *A) {
            if (A->steadyStatePort() >= 0)
              return A->steadyStatePort() %
                     static_cast<int>(P.NumMemories ? P.NumMemories : 1);
            auto It = Ports.find(A->array());
            return It == Ports.end() ? 0 : It->second;
          };
      SegmentSchedule Sched;
      if (UseScheduleMemo && !Ranges) {
        // Structural memo: alpha-equivalent segments (the common case
        // across unrolled candidates) share one schedule without ever
        // building the DFG. Range-inferred widths depend on whole-kernel
        // state, so those platforms keep the DFG-keyed memo below.
        Sched = memoizedScheduleStructural(Segment, P, PortFn, WidthOf);
      } else {
        std::optional<DFG> Graph;
        {
          DEFACTO_SCOPED_TIMER("estimator.dfg");
          Graph.emplace(buildSegmentDFG(Segment, PortFn, WidthOf));
        }
        Sched = UseScheduleMemo ? memoizedScheduleSegment(*Graph, P)
                                : scheduleSegment(*Graph, P);
      }
      T.Joint += Sched.JointCycles;
      T.MemOnly += Sched.MemOnlyCycles;
      T.CompOnly += Sched.CompOnlyCycles;
      T.Bits += Sched.BitsTransferred;
      T.States += Sched.JointCycles;
      T.mergeUnits(Sched.PeakUnits);
      if (Breakdown)
        Breakdown->push_back({Path.empty() ? "<top>" : Path, Executions,
                              Sched.JointCycles, Sched.MemReads,
                              Sched.MemWrites});
      Segment.clear();
    };

    for (const StmtPtr &SP : Stmts) {
      // Cooperative hang-watchdog poll: once cancelled, stop descending
      // — the partial totals are discarded by estimateDesignChecked.
      if (currentCancelled())
        break;
      if (const auto *F = dyn_cast<ForStmt>(SP.get())) {
        flush();
        std::string ChildPath =
            Path.empty() ? F->indexName() : Path + "/" + F->indexName();
        Totals Child =
            walkList(F->body(), ChildPath,
                     Executions * static_cast<uint64_t>(F->tripCount()));
        double Trip = static_cast<double>(F->tripCount());
        T.Joint += Trip * (Child.Joint + P.LoopOverheadCycles);
        T.MemOnly += Trip * Child.MemOnly;
        T.CompOnly += Trip * Child.CompOnly;
        T.Bits += Trip * Child.Bits;
        T.States += Child.States + 2; // Loop entry/exit control states.
        T.mergeUnits(Child.PeakUnits);
        continue;
      }
      Segment.push_back(SP.get());
    }
    flush();
    return T;
  }

  const Kernel &K;
  const TargetPlatform &P;
  std::vector<RegionReport> *Breakdown;
  bool UseScheduleMemo;
  std::unique_ptr<ValueRangeAnalysis> Ranges;
  std::map<const ArrayDecl *, int> Ports;
};

} // namespace

SynthesisEstimate
defacto::estimateDesign(const Kernel &K, const TargetPlatform &Platform,
                        std::vector<RegionReport> *Breakdown) {
  DEFACTO_SCOPED_TIMER("estimator.estimate");
  if (Breakdown)
    Breakdown->clear();
  Totals T = EstimatorWalk(K, Platform, Breakdown).run();

  SynthesisEstimate E;
  E.Cycles = static_cast<uint64_t>(std::llround(T.Joint));
  E.MemOnlyCycles = T.MemOnly;
  E.CompOnlyCycles = T.CompOnly;
  E.BitsTransferred = T.Bits;
  E.FsmStates = T.States;
  E.Units = T.PeakUnits;

  if (T.Bits > 0 && T.MemOnly > 0)
    E.FetchRate = T.Bits / T.MemOnly;
  if (T.Bits > 0 && T.CompOnly > 0)
    E.ConsumeRate = T.Bits / T.CompOnly;
  if (T.MemOnly > 0)
    E.Balance = T.CompOnly / T.MemOnly;
  else
    E.Balance = HUGE_VAL; // No memory traffic: trivially compute bound.

  // Registers: every scalar referenced in the body is a datapath
  // register (source scalars and compiler temporaries alike).
  std::set<const ScalarDecl *> Used;
  walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
    auto visit = [&](Expr *Ex) {
      walkExpr(Ex, [&](Expr *X) {
        if (auto *SR = dyn_cast<ScalarRefExpr>(X))
          Used.insert(SR->decl());
      });
    };
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      visit(A->dest());
      visit(A->value());
    } else if (auto *I = dyn_cast<IfStmt>(S)) {
      visit(I->cond());
    } else if (auto *R = dyn_cast<RotateStmt>(S)) {
      for (const ScalarDecl *D : R->chain())
        Used.insert(D);
    }
  });
  E.Registers = Used.size();

  double Area = 0;
  for (const auto &[Shape, N] : T.PeakUnits)
    Area += N * operatorAreaSlices(Shape.first, Shape.second);
  for (const ScalarDecl *D : Used)
    Area += registerAreaSlices(bitWidth(D->type()));
  // Rotation paths add a feedback mux per register in each chain.
  walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
    if (auto *R = dyn_cast<RotateStmt>(S))
      for (const ScalarDecl *D : R->chain())
        Area += operatorAreaSlices(OpClass::Mux, bitWidth(D->type()));
  });
  // Memory interfaces: address counters and data registers per port.
  Area += 25.0 * Platform.NumMemories;
  // Control FSM: state register, next-state logic per state.
  Area += 40.0 + 1.5 * static_cast<double>(T.States);
  E.Slices = Area;
  return E;
}

Expected<SynthesisEstimate>
defacto::estimateDesignChecked(const Kernel &K,
                               const TargetPlatform &Platform) {
  std::vector<std::string> Problems = verifyKernel(K);
  if (!Problems.empty())
    return Status::error(ErrorCode::MalformedIR,
                         "cannot estimate invalid kernel: " + Problems.front());
  SynthesisEstimate Est = estimateDesign(K, Platform);
  // A watchdog cancellation mid-walk leaves partial totals; report the
  // cancellation rather than a garbage estimate.
  if (Status Cancel = currentCancelStatus(); !Cancel.isOk())
    return Cancel;
  if (Est.Cycles == 0 || Est.Slices <= 0.0)
    return Status::error(ErrorCode::EstimationFailed,
                         "estimator returned a degenerate design (cycles=" +
                             std::to_string(Est.Cycles) + ")");
  return Est;
}

SynthesisEstimate defacto::estimateDesignFast(const Kernel &K,
                                              const TargetPlatform &Platform) {
  DEFACTO_SCOPED_TIMER("estimator.estimate");
  Totals T =
      EstimatorWalk(K, Platform, nullptr, /*UseScheduleMemo=*/true).run();

  SynthesisEstimate E;
  E.Cycles = static_cast<uint64_t>(std::llround(T.Joint));
  E.MemOnlyCycles = T.MemOnly;
  E.CompOnlyCycles = T.CompOnly;
  E.BitsTransferred = T.Bits;
  E.FsmStates = T.States;
  E.Units = T.PeakUnits;

  if (T.Bits > 0 && T.MemOnly > 0)
    E.FetchRate = T.Bits / T.MemOnly;
  if (T.Bits > 0 && T.CompOnly > 0)
    E.ConsumeRate = T.Bits / T.CompOnly;
  if (T.MemOnly > 0)
    E.Balance = T.CompOnly / T.MemOnly;
  else
    E.Balance = HUGE_VAL;

  // One pass over the body collects the register set, register area, and
  // rotation-mux area together (estimateDesign makes two walks plus an
  // ordered-set sweep). Every area term is a dyadic rational of modest
  // magnitude, so each partial sum is exactly representable and the
  // reordered summation yields the same bits as the split walks.
  std::unordered_set<const ScalarDecl *> Used;
  double RegisterArea = 0;
  double MuxArea = 0;
  auto noteUse = [&](const ScalarDecl *D) {
    if (Used.insert(D).second)
      RegisterArea += registerAreaSlices(bitWidth(D->type()));
  };
  walkStmts(const_cast<Kernel &>(K).body(), [&](Stmt *S) {
    auto visit = [&](Expr *Ex) {
      walkExpr(Ex, [&](Expr *X) {
        if (auto *SR = dyn_cast<ScalarRefExpr>(X))
          noteUse(SR->decl());
      });
    };
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      visit(A->dest());
      visit(A->value());
    } else if (auto *I = dyn_cast<IfStmt>(S)) {
      visit(I->cond());
    } else if (auto *R = dyn_cast<RotateStmt>(S)) {
      for (const ScalarDecl *D : R->chain()) {
        noteUse(D);
        MuxArea += operatorAreaSlices(OpClass::Mux, bitWidth(D->type()));
      }
    }
  });
  E.Registers = Used.size();

  double Area = 0;
  for (const auto &[Shape, N] : T.PeakUnits)
    Area += N * operatorAreaSlices(Shape.first, Shape.second);
  Area += RegisterArea;
  Area += MuxArea;
  Area += 25.0 * Platform.NumMemories;
  Area += 40.0 + 1.5 * static_cast<double>(T.States);
  E.Slices = Area;
  return E;
}

Expected<SynthesisEstimate>
defacto::estimateDesignCheckedFast(const Kernel &K,
                                   const TargetPlatform &Platform) {
  std::vector<std::string> Problems = verifyKernel(K);
  if (!Problems.empty())
    return Status::error(ErrorCode::MalformedIR,
                         "cannot estimate invalid kernel: " + Problems.front());
  SynthesisEstimate Est = estimateDesignFast(K, Platform);
  if (Status Cancel = currentCancelStatus(); !Cancel.isOk())
    return Cancel;
  if (Est.Cycles == 0 || Est.Slices <= 0.0)
    return Status::error(ErrorCode::EstimationFailed,
                         "estimator returned a degenerate design (cycles=" +
                             std::to_string(Est.Cycles) + ")");
  return Est;
}
