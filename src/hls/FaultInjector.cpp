//===- FaultInjector.cpp --------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/FaultInjector.h"

#include "defacto/Support/Cancellation.h"
#include "defacto/Support/Stats.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace defacto;

DEFACTO_STATISTIC(NumInjectedHangs, "faults", "hangs",
                  "estimator calls the fault injector hung");
DEFACTO_STATISTIC(NumHangCancellations, "faults", "hang-cancellations",
                  "injected hangs a watchdog token cancelled");

FaultInjector::FaultInjector(FaultInjectorOptions Opts)
    : Opts(Opts), Rng(Opts.Seed ^ 0xFA01D1CE5EEDULL) {
  Sleep = [](double Seconds) {
    if (Seconds > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
  };
}

Expected<SynthesisEstimate>
FaultInjector::invoke(const EstimatorFn &Inner, const Kernel &K,
                      const TargetPlatform &Platform) {
  ++Stats.Calls;
  if (Opts.FailureRate > 0 && Rng.nextDouble() < Opts.FailureRate) {
    ++Stats.Failures;
    return Status::error(ErrorCode::EstimationFailed,
                         "injected estimation failure (call " +
                             std::to_string(Stats.Calls) + ")");
  }
  if (Opts.HangRate > 0 && Rng.nextDouble() < Opts.HangRate) {
    ++Stats.Hangs;
    ++NumInjectedHangs;
    // A hung tool never returns on its own: sleep-and-poll until the
    // thread's watchdog token cancels the call. Without a token, give up
    // after a large bounded number of polls so a misconfigured chaos run
    // degrades into an ordinary failure instead of wedging its worker.
    const uint64_t MaxPolls = 2000;
    for (uint64_t Poll = 0; Poll != MaxPolls; ++Poll) {
      if (currentCancelled()) {
        ++Stats.HangCancellations;
        ++NumHangCancellations;
        return currentCancelStatus();
      }
      Sleep(Opts.LatencySeconds);
    }
    return Status::error(ErrorCode::EstimationFailed,
                         "injected hang ran its bounded course with no "
                         "watchdog (call " +
                             std::to_string(Stats.Calls) + ")");
  }
  if (Opts.StallRate > 0 && Rng.nextDouble() < Opts.StallRate) {
    ++Stats.Stalls;
    Sleep(Opts.StallSeconds);
  }
  Expected<SynthesisEstimate> Est = Inner(K, Platform);
  if (!Est)
    return Est;
  if (Opts.PerturbRate > 0 && Rng.nextDouble() < Opts.PerturbRate) {
    ++Stats.Perturbations;
    double M = std::max(0.0, std::min(1.0, Opts.PerturbMagnitude));
    auto factor = [&] { return 1.0 + M * (2.0 * Rng.nextDouble() - 1.0); };
    Est->Cycles = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(Est->Cycles) *
                                 factor()));
    Est->Slices = std::max(1.0, Est->Slices * factor());
  }
  return Est;
}

EstimatorFn FaultInjector::wrap(EstimatorFn Inner) {
  return [this, Inner = std::move(Inner)](
             const Kernel &K,
             const TargetPlatform &Platform) -> Expected<SynthesisEstimate> {
    return invoke(Inner, K, Platform);
  };
}

EstimatorFn FaultInjector::wrapDefault() {
  return wrap([](const Kernel &K, const TargetPlatform &Platform) {
    return estimateDesignChecked(K, Platform);
  });
}
