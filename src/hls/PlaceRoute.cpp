//===- PlaceRoute.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/PlaceRoute.h"

#include <cmath>

using namespace defacto;

ImplementationResult
defacto::placeAndRoute(const SynthesisEstimate &Estimate,
                       const TargetPlatform &Platform) {
  ImplementationResult R;
  R.Cycles = Estimate.Cycles; // §6.4: cycle counts survive implementation.

  // Area grows superlinearly with utilization: routing resources and
  // replicated control eat extra slices as the device fills up.
  double Util = Estimate.Slices / Platform.CapacitySlices;
  double AreaGrowth = 1.05 + 0.15 * Util * Util;
  R.Slices = Estimate.Slices * AreaGrowth;
  R.Routable = R.Slices <= Platform.CapacitySlices;

  // Clock degradation: <10% for modest designs, up to ~35% when the
  // device is nearly full (the paper saw 30% on its largest selected
  // design, still meeting the 40 ns target).
  double Degrade = 0.03 + 0.08 * Util + 0.25 * Util * Util * Util;
  if (!R.Routable)
    Degrade += 0.5; // Unroutable designs would miss timing badly.
  R.AchievedClockNs = Platform.ClockPeriodNs * (1.0 + Degrade);
  // The synthesis constraint targets 40 ns; implementations within the
  // degradation budget still close timing at the target.
  R.MeetsTargetClock = R.Routable && Degrade <= 0.35;
  if (R.MeetsTargetClock)
    R.AchievedClockNs = Platform.ClockPeriodNs;
  return R;
}
