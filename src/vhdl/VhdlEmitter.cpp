//===- VhdlEmitter.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/VHDL/VhdlEmitter.h"

#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Support/ErrorHandling.h"

#include <cctype>
#include <map>
#include <vector>

using namespace defacto;

namespace {

std::string toLowerIdent(const std::string &Name) {
  std::string Out;
  for (char Ch : Name)
    Out += std::isalnum(static_cast<unsigned char>(Ch))
               ? static_cast<char>(
                     std::tolower(static_cast<unsigned char>(Ch)))
               : '_';
  if (Out.empty() || std::isdigit(static_cast<unsigned char>(Out[0])))
    Out = "k" + Out;
  return Out;
}

class Emitter {
public:
  Emitter(const Kernel &K, const VhdlOptions &Opts) : K(K), Opts(Opts) {
    NameOf = makeLoopNamer(K);
  }

  std::string run();
  std::string runTestbench(const MemoryImage &Inputs,
                           const MemoryImage &Expected);

private:
  /// Arrays the kernel touches, in declaration order, with their access
  /// direction.
  struct UsedArray {
    const ArrayDecl *Array;
    bool Written;
  };
  std::vector<UsedArray> usedArrays() const;
  void emitHelpers();
  void emitScalarAndIndexVariables();
  /// Renders a VHDL positional aggregate of \p A's elements from \p Img
  /// (alias-resolved through renamed banks); out-of-origin padding
  /// elements render as 0.
  std::string initAggregate(const ArrayDecl *A, const MemoryImage &Img);
  void line(const std::string &Text) {
    Out += std::string(Indent * 2, ' ') + Text + "\n";
  }
  void blank() { Out += "\n"; }

  std::string exprText(const Expr *E);
  std::string subscriptText(const ArrayAccessExpr *A);
  void emitStmts(const StmtList &Stmts);

  const Kernel &K;
  const VhdlOptions &Opts;
  std::function<std::string(int)> NameOf;
  std::string Out;
  std::string Body;
  std::vector<std::string> RotateTemps;
  unsigned Indent = 0;
  unsigned NextTemp = 0;
};

std::string Emitter::subscriptText(const ArrayAccessExpr *A) {
  // Row-major linearization of the (bank-local) subscripts.
  std::string Idx;
  const ArrayDecl *Arr = A->array();
  for (unsigned D = 0; D != A->numSubscripts(); ++D) {
    std::string Sub = "(" + A->subscript(D).toString(NameOf) + ")";
    if (Idx.empty())
      Idx = Sub;
    else
      Idx = "(" + Idx + ") * " + std::to_string(Arr->dim(D)) + " + " + Sub;
  }
  if (Idx.empty())
    Idx = "0";
  return Idx;
}

std::string Emitter::exprText(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit: {
    int64_t V = cast<IntLitExpr>(E)->value();
    return V < 0 ? "(" + std::to_string(V) + ")" : std::to_string(V);
  }
  case Expr::Kind::LoopIndex:
    return NameOf(cast<LoopIndexExpr>(E)->loopId());
  case Expr::Kind::ScalarRef:
    return toLowerIdent(cast<ScalarRefExpr>(E)->decl()->name());
  case Expr::Kind::ArrayAccess: {
    const auto *A = cast<ArrayAccessExpr>(E);
    return "mem_" + toLowerIdent(A->array()->name()) + "(" +
           subscriptText(A) + ")";
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string Inner = exprText(U->operand());
    switch (U->op()) {
    case UnaryOp::Neg:
      return "(-(" + Inner + "))";
    case UnaryOp::Abs:
      return "abs(" + Inner + ")";
    case UnaryOp::Not:
      return "bool_to_int(" + Inner + " = 0)";
    }
    defacto_unreachable("unknown unary op");
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string L = exprText(B->lhs());
    std::string R = exprText(B->rhs());
    switch (B->op()) {
    case BinaryOp::Add:
      return "(" + L + " + " + R + ")";
    case BinaryOp::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryOp::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryOp::Div:
      return "int_div(" + L + ", " + R + ")";
    case BinaryOp::Mod:
      return "int_mod(" + L + ", " + R + ")";
    case BinaryOp::Min:
      return "int_min(" + L + ", " + R + ")";
    case BinaryOp::Max:
      return "int_max(" + L + ", " + R + ")";
    case BinaryOp::And:
      return "bit_and(" + L + ", " + R + ")";
    case BinaryOp::Or:
      return "bit_or(" + L + ", " + R + ")";
    case BinaryOp::Xor:
      return "bit_xor(" + L + ", " + R + ")";
    case BinaryOp::Shl:
      return "shift_left_i(" + L + ", " + R + ")";
    case BinaryOp::Shr:
      return "shift_right_i(" + L + ", " + R + ")";
    case BinaryOp::CmpEq:
      return "bool_to_int(" + L + " = " + R + ")";
    case BinaryOp::CmpNe:
      return "bool_to_int(" + L + " /= " + R + ")";
    case BinaryOp::CmpLt:
      return "bool_to_int(" + L + " < " + R + ")";
    case BinaryOp::CmpLe:
      return "bool_to_int(" + L + " <= " + R + ")";
    case BinaryOp::CmpGt:
      return "bool_to_int(" + L + " > " + R + ")";
    case BinaryOp::CmpGe:
      return "bool_to_int(" + L + " >= " + R + ")";
    }
    defacto_unreachable("unknown binary op");
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(E);
    return "sel(" + exprText(S->cond()) + " /= 0, " +
           exprText(S->trueValue()) + ", " + exprText(S->falseValue()) +
           ")";
  }
  }
  defacto_unreachable("unknown expression kind");
}

void Emitter::emitStmts(const StmtList &Stmts) {
  for (const StmtPtr &SP : Stmts) {
    const Stmt *S = SP.get();
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (const auto *SR = dyn_cast<ScalarRefExpr>(A->dest())) {
        line(toLowerIdent(SR->decl()->name()) + " := " +
             exprText(A->value()) + ";");
      } else {
        const auto *AA = cast<ArrayAccessExpr>(A->dest());
        line("mem_" + toLowerIdent(AA->array()->name()) + "(" +
             subscriptText(AA) + ") := " + exprText(A->value()) + ";");
      }
      break;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      std::string I = NameOf(F->loopId());
      if (F->step() == 1) {
        line("for " + I + " in " + std::to_string(F->lower()) + " to " +
             std::to_string(F->upper() - 1) + " loop");
      } else {
        // Behavioral VHDL has no stepped for; iterate the trip count and
        // derive the index.
        std::string T = I + "_t";
        line("for " + T + " in 0 to " +
             std::to_string(F->tripCount() - 1) + " loop");
        ++Indent;
        line(I + " := " + std::to_string(F->lower()) + " + " + T + " * " +
             std::to_string(F->step()) + ";");
        --Indent;
      }
      ++Indent;
      emitStmts(F->body());
      --Indent;
      line("end loop;");
      break;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      line("if " + exprText(I->cond()) + " /= 0 then");
      ++Indent;
      emitStmts(I->thenBody());
      --Indent;
      if (!I->elseBody().empty()) {
        line("else");
        ++Indent;
        emitStmts(I->elseBody());
        --Indent;
      }
      line("end if;");
      break;
    }
    case Stmt::Kind::Rotate: {
      const auto *R = cast<RotateStmt>(S);
      const auto &Chain = R->chain();
      if (Chain.size() < 2)
        break;
      if (Opts.EmitComments)
        line("-- rotate register chain (parallel shift in hardware)");
      std::string Tmp = "rot_tmp_" + std::to_string(NextTemp++);
      RotateTemps.push_back(Tmp);
      line(Tmp + " := " + toLowerIdent(Chain.front()->name()) + ";");
      for (size_t J = 0; J + 1 < Chain.size(); ++J)
        line(toLowerIdent(Chain[J]->name()) + " := " +
             toLowerIdent(Chain[J + 1]->name()) + ";");
      line(toLowerIdent(Chain.back()->name()) + " := " + Tmp + ";");
      break;
    }
    }
  }
}

std::string Emitter::run() {
  std::string Entity = Opts.EntityName.empty()
                           ? "defacto_" + toLowerIdent(K.name())
                           : Opts.EntityName;

  // Pre-scan rotates so their temporaries can be declared up front: VHDL
  // process variables must be declared in the declarative region. Run a
  // dry pass over the body into a scratch buffer.
  {
    unsigned BodyIndent = 4; // Depth of the emitted body inside the
                             // process; match it in the dry run.
    Indent = BodyIndent;
    emitStmts(K.body());
    Body = std::move(Out);
    Out.clear();
    Indent = 0;
  }

  line("-- Generated by DEFACTO-DSE (SUIF2VHDL-equivalent back end).");
  line("-- Kernel: " + K.name());
  line("library ieee;");
  line("use ieee.std_logic_1164.all;");
  blank();
  line("entity " + Entity + " is");
  ++Indent;
  line("port (");
  ++Indent;
  line("clk   : in  std_logic;");
  line("rst   : in  std_logic;");
  line("start : in  std_logic;");
  line("done  : out std_logic");
  --Indent;
  line(");");
  --Indent;
  line("end entity " + Entity + ";");
  blank();
  line("architecture behavioral of " + Entity + " is");
  ++Indent;
  if (Opts.EmitComments)
    line("-- Board memories (external SRAM banks on the target board).");
  for (const UsedArray &U : usedArrays()) {
    const ArrayDecl *A = U.Array;
    std::string MemName = "mem_" + toLowerIdent(A->name());
    std::string Note;
    if (A->physicalMemId() >= 0)
      Note = "  -- physical memory " + std::to_string(A->physicalMemId());
    line("type " + MemName + "_t is array (0 to " +
         std::to_string(A->numElements() - 1) + ") of integer;");
    line("shared variable " + MemName + " : " + MemName + "_t;" + Note);
  }
  blank();
  emitHelpers();
  --Indent;
  line("begin");
  ++Indent;
  line("main : process(clk)");
  ++Indent;
  emitScalarAndIndexVariables();
  --Indent;
  line("begin");
  ++Indent;
  line("if rising_edge(clk) then");
  ++Indent;
  line("if rst = '1' then");
  ++Indent;
  line("done <= '0';");
  --Indent;
  line("elsif start = '1' then");
  ++Indent;
  Out += Body;
  line("done <= '1';");
  --Indent;
  line("end if;");
  --Indent;
  line("end if;");
  --Indent;
  line("end process main;");
  --Indent;
  line("end architecture behavioral;");
  return Out;
}

std::vector<Emitter::UsedArray> Emitter::usedArrays() const {
  std::vector<UsedArray> Out;
  for (const auto &A : K.arrays()) {
    bool Accessed = false;
    bool Written = false;
    walkStmts(const_cast<Kernel &>(K).body(), [&](const Stmt *S) {
      auto check = [&](const Expr *E) {
        walkExpr(E, [&](const Expr *X) {
          if (const auto *Acc = dyn_cast<ArrayAccessExpr>(X))
            Accessed |= Acc->array() == A.get();
        });
      };
      if (const auto *As = dyn_cast<AssignStmt>(S)) {
        if (const auto *Dst = dyn_cast<ArrayAccessExpr>(As->dest()))
          Written |= Dst->array() == A.get();
        check(As->dest());
        check(As->value());
      } else if (const auto *If = dyn_cast<IfStmt>(S)) {
        check(If->cond());
      }
    });
    if (Accessed)
      Out.push_back({A.get(), Written});
  }
  return Out;
}

void Emitter::emitHelpers() {
  line("-- Helper operators.");
  line("function bool_to_int(b : boolean) return integer is");
  line("begin if b then return 1; else return 0; end if; end;");
  line("function sel(b : boolean; x : integer; y : integer) "
       "return integer is");
  line("begin if b then return x; else return y; end if; end;");
  line("function int_min(x : integer; y : integer) return integer is");
  line("begin if x < y then return x; else return y; end if; end;");
  line("function int_max(x : integer; y : integer) return integer is");
  line("begin if x > y then return x; else return y; end if; end;");
  line("function int_div(x : integer; y : integer) return integer is");
  line("begin if y = 0 then return 0; else return x / y; end if; end;");
  line("function int_mod(x : integer; y : integer) return integer is");
  line("begin if y = 0 then return 0; else return x mod y; end if; end;");
  for (const char *Op : {"and", "or", "xor"}) {
    std::string Fn = std::string("bit_") + Op;
    line("function " + Fn + "(x : integer; y : integer) "
         "return integer is");
    ++Indent;
    line("variable a : integer := x;");
    line("variable b : integer := y;");
    line("variable r : integer := 0;");
    line("variable p : integer := 1;");
    --Indent;
    line("begin");
    ++Indent;
    line("for i in 0 to 30 loop");
    ++Indent;
    std::string Cond =
        std::string(Op) == "and"
            ? "(a mod 2 = 1) and (b mod 2 = 1)"
            : (std::string(Op) == "or"
                   ? "(a mod 2 = 1) or (b mod 2 = 1)"
                   : "(a mod 2) /= (b mod 2)");
    line("if " + Cond + " then");
    ++Indent;
    line("r := r + p;");
    --Indent;
    line("end if;");
    line("a := a / 2;");
    line("b := b / 2;");
    line("p := p * 2;");
    --Indent;
    line("end loop;");
    line("return r;");
    --Indent;
    line("end;");
  }
  line("function shift_left_i(x : integer; y : integer) "
       "return integer is");
  line("begin return x * (2 ** y); end;");
  line("function shift_right_i(x : integer; y : integer) "
       "return integer is");
  line("begin return x / (2 ** y); end;");
}

void Emitter::emitScalarAndIndexVariables() {
  if (Opts.EmitComments)
    line("-- Scalars become datapath registers.");
  for (const auto &Sc : K.scalars())
    line("variable " + toLowerIdent(Sc->name()) + " : integer := 0;");
  for (const ForStmt *F : collectLoops(const_cast<Kernel &>(K).body())) {
    line("variable " + NameOf(F->loopId()) + " : integer := 0;");
    if (F->step() != 1)
      line("variable " + NameOf(F->loopId()) + "_t : integer := 0;");
  }
  for (const std::string &Tmp : RotateTemps)
    line("variable " + Tmp + " : integer := 0;");
}

std::string Emitter::initAggregate(const ArrayDecl *A,
                                   const MemoryImage &Img) {
  const ArrayDecl *Origin = A->renamedFrom() ? A->renamedFrom() : A;
  std::string Out = "(";
  std::string Line;
  int64_t N = A->numElements();
  for (int64_t Flat = 0; Flat != N; ++Flat) {
    // Unflatten to per-dim indices of A.
    std::vector<int64_t> Idx(A->numDims());
    int64_t Rem = Flat;
    for (int D = static_cast<int>(A->numDims()) - 1; D >= 0; --D) {
      Idx[D] = Rem % A->dim(D);
      Rem /= A->dim(D);
    }
    // Padding elements of renamed banks map outside the origin: zero.
    int64_t V = 0;
    bool InRange = true;
    if (A->renamedFrom()) {
      int64_t OriginIdx =
          Idx[A->bankDim()] * A->bankStride() + A->bankOffset();
      InRange = OriginIdx < Origin->dim(A->bankDim());
    }
    if (InRange)
      if (Expected<int64_t> L = Img.load(A, Idx))
        V = *L;
    if (!Line.empty())
      Line += ", ";
    Line += std::to_string(V);
    if (Line.size() > 60) {
      Out += Line + (Flat + 1 != N ? ",\n      " : "");
      Line.clear();
    } else if (Flat + 1 != N) {
      // Separator added on the next append.
    }
  }
  Out += Line + ")";
  return Out;
}

std::string Emitter::runTestbench(const MemoryImage &Inputs,
                                  const MemoryImage &Expected) {
  std::string Entity = Opts.EntityName.empty()
                           ? "defacto_" + toLowerIdent(K.name()) + "_tb"
                           : Opts.EntityName;

  // Dry-run the body for rotate temporaries.
  {
    Indent = 2;
    emitStmts(K.body());
    Body = std::move(Out);
    Out.clear();
    Indent = 0;
  }

  line("-- Generated by DEFACTO-DSE: self-checking simulation model.");
  line("-- Kernel: " + K.name());
  line("-- Memories are pre-loaded with the host-side test image; after");
  line("-- the computation every written element is asserted against");
  line("-- golden values produced by the functional simulator.");
  line("entity " + Entity + " is");
  line("end entity " + Entity + ";");
  blank();
  line("architecture sim of " + Entity + " is");
  ++Indent;
  emitHelpers();
  --Indent;
  line("begin");
  ++Indent;
  line("check : process");
  ++Indent;
  emitScalarAndIndexVariables();
  for (const UsedArray &U : usedArrays()) {
    const ArrayDecl *A = U.Array;
    std::string MemName = "mem_" + toLowerIdent(A->name());
    line("type " + MemName + "_t is array (0 to " +
         std::to_string(A->numElements() - 1) + ") of integer;");
    line("variable " + MemName + " : " + MemName + "_t := " +
         initAggregate(A, Inputs) + ";");
    if (U.Written)
      line("variable exp_" + toLowerIdent(A->name()) + " : " + MemName +
           "_t := " + initAggregate(A, Expected) + ";");
  }
  --Indent;
  line("begin");
  ++Indent;
  Out += Body;
  blank();
  if (Opts.EmitComments)
    line("-- Golden checks.");
  for (const UsedArray &U : usedArrays()) {
    if (!U.Written)
      continue;
    std::string MemName = "mem_" + toLowerIdent(U.Array->name());
    std::string ExpName = "exp_" + toLowerIdent(U.Array->name());
    std::string Loop = "chk_" + toLowerIdent(U.Array->name());
    line("for " + Loop + " in 0 to " +
         std::to_string(U.Array->numElements() - 1) + " loop");
    ++Indent;
    line("assert " + MemName + "(" + Loop + ") = " + ExpName + "(" +
         Loop + ")");
    ++Indent;
    line("report \"mismatch in " + U.Array->name() + "\" severity "
         "failure;");
    --Indent;
    --Indent;
    line("end loop;");
  }
  line("report \"TESTBENCH PASSED\" severity note;");
  line("wait;");
  --Indent;
  line("end process check;");
  --Indent;
  line("end architecture sim;");
  return Out;
}

} // namespace

std::string defacto::emitVhdl(const Kernel &K, const VhdlOptions &Opts) {
  return Emitter(K, Opts).run();
}

std::string defacto::checkVhdlStructure(const std::string &Vhdl) {
  int Entity = 0, Architecture = 0, Process = 0, Loop = 0, If = 0;
  size_t Pos = 0;
  auto startsAt = [&](size_t At, const char *Word) {
    return Vhdl.compare(At, std::string(Word).size(), Word) == 0;
  };
  while (Pos < Vhdl.size()) {
    size_t LineEnd = Vhdl.find('\n', Pos);
    if (LineEnd == std::string::npos)
      LineEnd = Vhdl.size();
    size_t First = Vhdl.find_first_not_of(" \t", Pos);
    if (First != std::string::npos && First < LineEnd &&
        !startsAt(First, "--")) {
      if (startsAt(First, "entity ") && Vhdl.find(" is", First) < LineEnd)
        ++Entity;
      else if (startsAt(First, "end entity"))
        --Entity;
      else if (startsAt(First, "architecture "))
        ++Architecture;
      else if (startsAt(First, "end architecture"))
        --Architecture;
      else if (Vhdl.find(": process", First) < LineEnd ||
               Vhdl.find(" : process", First) < LineEnd)
        ++Process;
      else if (startsAt(First, "end process"))
        --Process;
      else if (startsAt(First, "for ") && Vhdl.find(" loop", First) < LineEnd)
        ++Loop;
      else if (startsAt(First, "end loop"))
        --Loop;
      else if (startsAt(First, "if ") && Vhdl.find(" then", First) < LineEnd)
        ++If;
      else if (startsAt(First, "end if"))
        --If;
      if (Entity < 0 || Architecture < 0 || Process < 0 || Loop < 0 ||
          If < 0)
        return "unbalanced construct near offset " + std::to_string(First);
    }
    Pos = LineEnd + 1;
  }
  if (Entity != 0)
    return "unbalanced entity/end entity";
  if (Architecture != 0)
    return "unbalanced architecture/end architecture";
  if (Process != 0)
    return "unbalanced process/end process";
  if (Loop != 0)
    return "unbalanced for/end loop";
  if (If != 0)
    return "unbalanced if/end if";
  return "";
}

std::string defacto::emitVhdlTestbench(const Kernel &K,
                                       const MemoryImage &Inputs,
                                       const MemoryImage &Expected,
                                       const VhdlOptions &Opts) {
  return Emitter(K, Opts).runTestbench(Inputs, Expected);
}
