//===- Stmt.cpp -----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/Stmt.h"

#include "defacto/Support/Arena.h"
#include "defacto/Support/ErrorHandling.h"
#include "defacto/Support/MathExtras.h"

using namespace defacto;

Stmt::~Stmt() = default;

void *Stmt::operator new(std::size_t Size) {
  return detail::irNodeAllocate(Size);
}

void Stmt::operator delete(void *P) noexcept { detail::irNodeDeallocate(P); }

void Stmt::operator delete(void *P, std::size_t) noexcept {
  detail::irNodeDeallocate(P);
}

StmtList defacto::cloneStmtList(const StmtList &Stmts) {
  StmtList Out;
  Out.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Out.push_back(S->clone());
  return Out;
}

StmtPtr Stmt::clone() const {
  switch (TheKind) {
  case Kind::Assign: {
    const auto *S = cast<AssignStmt>(this);
    return std::make_unique<AssignStmt>(S->dest()->clone(),
                                        S->value()->clone());
  }
  case Kind::For: {
    const auto *S = cast<ForStmt>(this);
    auto New = std::make_unique<ForStmt>(S->loopId(), S->indexName(),
                                         S->lower(), S->upper(), S->step());
    New->body() = cloneStmtList(S->body());
    return New;
  }
  case Kind::If: {
    const auto *S = cast<IfStmt>(this);
    auto New = std::make_unique<IfStmt>(S->cond()->clone());
    New->thenBody() = cloneStmtList(S->thenBody());
    New->elseBody() = cloneStmtList(S->elseBody());
    return New;
  }
  case Kind::Rotate: {
    const auto *S = cast<RotateStmt>(this);
    return std::make_unique<RotateStmt>(S->chain());
  }
  }
  defacto_unreachable("unknown statement kind");
}

int64_t ForStmt::tripCount() const {
  if (Upper <= Lower)
    return 0;
  return ceilDiv(Upper - Lower, Step);
}
