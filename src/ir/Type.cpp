//===- Type.cpp -----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/Type.h"

#include "defacto/Support/ErrorHandling.h"

using namespace defacto;

unsigned defacto::bitWidth(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Int8:
    return 8;
  case ScalarType::Int16:
    return 16;
  case ScalarType::Int32:
    return 32;
  }
  defacto_unreachable("unknown scalar type");
}

std::string defacto::typeName(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Int8:
    return "char";
  case ScalarType::Int16:
    return "short";
  case ScalarType::Int32:
    return "int";
  }
  defacto_unreachable("unknown scalar type");
}

int64_t defacto::truncateToType(int64_t Value, ScalarType Ty) {
  unsigned Bits = bitWidth(Ty);
  uint64_t Mask = (Bits == 64) ? ~0ULL : ((1ULL << Bits) - 1);
  uint64_t U = static_cast<uint64_t>(Value) & Mask;
  // Sign-extend from bit (Bits - 1).
  uint64_t SignBit = 1ULL << (Bits - 1);
  if (U & SignBit)
    U |= ~Mask;
  return static_cast<int64_t>(U);
}
