//===- Kernel.cpp ---------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/Kernel.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/Support/Arena.h"
#include "defacto/Support/ErrorHandling.h"

#include <cassert>

using namespace defacto;

ArrayDecl *Kernel::makeArray(std::string ArrName, ScalarType ElemTy,
                             std::vector<int64_t> Dims) {
  Expected<ArrayDecl *> A =
      tryMakeArray(std::move(ArrName), ElemTy, std::move(Dims));
  if (!A)
    reportFatalError("makeArray: invalid declaration (duplicate name or "
                     "bad dimensions)");
  return *A;
}

ScalarDecl *Kernel::makeScalar(std::string VarName, ScalarType Ty,
                               bool IsCompilerTemp) {
  Expected<ScalarDecl *> S =
      tryMakeScalar(std::move(VarName), Ty, IsCompilerTemp);
  if (!S)
    reportFatalError("makeScalar: duplicate declaration name");
  return *S;
}

Expected<ArrayDecl *> Kernel::tryMakeArray(std::string ArrName,
                                           ScalarType ElemTy,
                                           std::vector<int64_t> Dims) {
  if (findArray(ArrName) || findScalar(ArrName))
    return Status::error(ErrorCode::InvalidInput,
                         "redeclaration of '" + ArrName + "'");
  if (Dims.empty())
    return Status::error(ErrorCode::InvalidInput,
                         "array '" + ArrName + "' has no dimensions");
  for (int64_t D : Dims)
    if (D <= 0)
      return Status::error(ErrorCode::InvalidInput,
                           "array '" + ArrName +
                               "' has a non-positive dimension");
  Arrays.push_back(std::make_unique<ArrayDecl>(std::move(ArrName), ElemTy,
                                               std::move(Dims)));
  ArrayIndex.emplace(Arrays.back()->name(), Arrays.back().get());
  return Arrays.back().get();
}

Expected<ScalarDecl *> Kernel::tryMakeScalar(std::string VarName,
                                             ScalarType Ty,
                                             bool IsCompilerTemp) {
  if (findArray(VarName) || findScalar(VarName))
    return Status::error(ErrorCode::InvalidInput,
                         "redeclaration of '" + VarName + "'");
  Scalars.push_back(
      std::make_unique<ScalarDecl>(std::move(VarName), Ty, IsCompilerTemp));
  ScalarIndex.emplace(Scalars.back()->name(), Scalars.back().get());
  return Scalars.back().get();
}

ScalarDecl *Kernel::makeTempScalar(const std::string &Prefix, ScalarType Ty) {
  std::string TempName;
  do {
    TempName = Prefix + "_" + std::to_string(NextTempId++);
  } while (findScalar(TempName) || findArray(TempName));
  return makeScalar(TempName, Ty, /*IsCompilerTemp=*/true);
}

ArrayDecl *Kernel::findArray(const std::string &ArrName) const {
  auto It = ArrayIndex.find(ArrName);
  return It == ArrayIndex.end() ? nullptr : It->second;
}

ScalarDecl *Kernel::findScalar(const std::string &VarName) const {
  auto It = ScalarIndex.find(VarName);
  return It == ScalarIndex.end() ? nullptr : It->second;
}

void Kernel::reserveLoopIdsThrough(int Id) {
  if (NextLoopId <= Id)
    NextLoopId = Id + 1;
}

ForStmt *Kernel::topLoop() const {
  if (Body.size() != 1)
    return nullptr;
  return dyn_cast<ForStmt>(Body.front().get());
}

Kernel Kernel::clone() const {
  Kernel New(Name);
  New.NextLoopId = NextLoopId;
  New.NextTempId = NextTempId;
  New.Arrays.reserve(Arrays.size());
  New.Scalars.reserve(Scalars.size());
  New.ArrayIndex.reserve(Arrays.size());
  New.ScalarIndex.reserve(Scalars.size());

  std::unordered_map<const ArrayDecl *, ArrayDecl *> ArrayMap;
  std::unordered_map<const ScalarDecl *, ScalarDecl *> ScalarMap;
  ArrayMap.reserve(Arrays.size());
  ScalarMap.reserve(Scalars.size());

  for (const auto &A : Arrays) {
    ArrayDecl *NewA = New.makeArray(A->name(), A->elementType(), A->dims());
    NewA->setVirtualMemId(A->virtualMemId());
    NewA->setPhysicalMemId(A->physicalMemId());
    ArrayMap[A.get()] = NewA;
  }
  // Renaming origins must be remapped after all arrays exist.
  for (const auto &A : Arrays) {
    if (const ArrayDecl *Origin = A->renamedFrom()) {
      auto It = ArrayMap.find(Origin);
      assert(It != ArrayMap.end() && "renaming origin not owned by kernel");
      ArrayMap[A.get()]->setRenaming(It->second, A->bankDim(),
                                     A->bankOffset(), A->bankStride());
    }
  }
  for (const auto &S : Scalars)
    ScalarMap[S.get()] = New.makeScalar(S->name(), S->type(),
                                        S->isCompilerTemp());

  New.Body = cloneStmtList(Body);

  // Remap declaration pointers in the cloned tree.
  walkExprsInStmts(New.Body, [&](Expr *E) {
    if (auto *SR = dyn_cast<ScalarRefExpr>(E)) {
      auto It = ScalarMap.find(SR->decl());
      assert(It != ScalarMap.end() && "scalar not owned by kernel");
      SR->setDecl(It->second);
    } else if (auto *AA = dyn_cast<ArrayAccessExpr>(E)) {
      auto It = ArrayMap.find(AA->array());
      assert(It != ArrayMap.end() && "array not owned by kernel");
      AA->setArray(It->second);
    }
  });
  walkStmts(New.Body, [&](Stmt *S) {
    auto *R = dyn_cast<RotateStmt>(S);
    if (!R)
      return;
    for (const ScalarDecl *&D : R->chain()) {
      auto It = ScalarMap.find(D);
      assert(It != ScalarMap.end() && "rotate register not owned by kernel");
      D = It->second;
    }
  });
  return New;
}

Kernel Kernel::cloneInto(IRArena &Arena) const {
  IRArenaScope Scope(&Arena);
  return clone();
}
