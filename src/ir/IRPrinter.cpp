//===- IRPrinter.cpp ------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"

#include "defacto/IR/IRUtils.h"
#include "defacto/Support/ErrorHandling.h"

#include <map>

using namespace defacto;

std::function<std::string(int)> defacto::makeLoopNamer(const Kernel &K) {
  auto Names = std::make_shared<std::map<int, std::string>>();
  for (const ForStmt *F : collectLoops(K.body()))
    (*Names)[F->loopId()] = F->indexName();
  return [Names](int Id) {
    auto It = Names->find(Id);
    if (It != Names->end())
      return It->second;
    return "L" + std::to_string(Id);
  };
}

std::string defacto::printExpr(const Expr *E,
                               const std::function<std::string(int)> &NameOf) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->value());
  case Expr::Kind::LoopIndex:
    return NameOf(cast<LoopIndexExpr>(E)->loopId());
  case Expr::Kind::ScalarRef:
    return cast<ScalarRefExpr>(E)->decl()->name();
  case Expr::Kind::ArrayAccess: {
    const auto *A = cast<ArrayAccessExpr>(E);
    std::string Out = A->array()->name();
    for (const AffineExpr &Sub : A->subscripts())
      Out += "[" + Sub.toString(NameOf) + "]";
    return Out;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string Inner = printExpr(U->operand(), NameOf);
    switch (U->op()) {
    case UnaryOp::Neg:
      return "-(" + Inner + ")";
    case UnaryOp::Abs:
      return "abs(" + Inner + ")";
    case UnaryOp::Not:
      return "!(" + Inner + ")";
    }
    defacto_unreachable("unknown unary op");
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string L = printExpr(B->lhs(), NameOf);
    std::string R = printExpr(B->rhs(), NameOf);
    if (B->op() == BinaryOp::Min || B->op() == BinaryOp::Max)
      return std::string(binaryOpSpelling(B->op())) + "(" + L + ", " + R +
             ")";
    return "(" + L + " " + binaryOpSpelling(B->op()) + " " + R + ")";
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(E);
    return "(" + printExpr(S->cond(), NameOf) + " ? " +
           printExpr(S->trueValue(), NameOf) + " : " +
           printExpr(S->falseValue(), NameOf) + ")";
  }
  }
  defacto_unreachable("unknown expression kind");
}

std::string defacto::printStmts(const StmtList &Stmts,
                                const std::function<std::string(int)> &NameOf,
                                unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  std::string Out;
  for (const StmtPtr &SP : Stmts) {
    const Stmt *S = SP.get();
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Out += Pad + printExpr(A->dest(), NameOf) + " = " +
             printExpr(A->value(), NameOf) + ";\n";
      break;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      const std::string &I = F->indexName();
      Out += Pad + "for (" + I + " = " + std::to_string(F->lower()) + "; " +
             I + " < " + std::to_string(F->upper()) + "; " + I + " += " +
             std::to_string(F->step()) + ") {\n";
      Out += printStmts(F->body(), NameOf, Indent + 1);
      Out += Pad + "}\n";
      break;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      Out += Pad + "if (" + printExpr(I->cond(), NameOf) + ") {\n";
      Out += printStmts(I->thenBody(), NameOf, Indent + 1);
      if (!I->elseBody().empty()) {
        Out += Pad + "} else {\n";
        Out += printStmts(I->elseBody(), NameOf, Indent + 1);
      }
      Out += Pad + "}\n";
      break;
    }
    case Stmt::Kind::Rotate: {
      const auto *R = cast<RotateStmt>(S);
      Out += Pad + "rotate_registers(";
      for (size_t K = 0; K != R->chain().size(); ++K) {
        if (K != 0)
          Out += ", ";
        Out += R->chain()[K]->name();
      }
      Out += ");\n";
      break;
    }
    }
  }
  return Out;
}

std::string defacto::printKernel(const Kernel &K) {
  std::string Out = "// kernel " + K.name() + "\n";
  for (const auto &A : K.arrays()) {
    Out += typeName(A->elementType()) + " " + A->name();
    for (int64_t D : A->dims())
      Out += "[" + std::to_string(D) + "]";
    Out += ";";
    if (A->virtualMemId() >= 0)
      Out += "  // vmem " + std::to_string(A->virtualMemId());
    if (A->physicalMemId() >= 0)
      Out += " pmem " + std::to_string(A->physicalMemId());
    Out += "\n";
  }
  for (const auto &S : K.scalars())
    Out += typeName(S->type()) + " " + S->name() + ";" +
           (S->isCompilerTemp() ? "  // register temp\n" : "\n");
  Out += printStmts(K.body(), makeLoopNamer(K));
  return Out;
}
