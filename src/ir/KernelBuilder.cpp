//===- KernelBuilder.cpp --------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/KernelBuilder.h"

#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/ErrorHandling.h"

#include <cassert>

using namespace defacto;

StmtList &KernelBuilder::currentBody() {
  if (Stack.empty())
    return K.body();
  Frame &Top = Stack.back();
  if (auto *F = dyn_cast<ForStmt>(Top.Owner))
    return F->body();
  auto *I = cast<IfStmt>(Top.Owner);
  return Top.InElse ? I->elseBody() : I->thenBody();
}

KernelBuilder::LoopHandle KernelBuilder::beginLoop(
    const std::string &IndexName, int64_t Lower, int64_t Upper,
    int64_t Step) {
  assert(Step > 0 && "loop step must be positive");
  assert(Upper > Lower && "loop range must be nonempty");
  int Id = K.allocateLoopId();
  auto Loop = std::make_unique<ForStmt>(Id, IndexName, Lower, Upper, Step);
  ForStmt *Raw = Loop.get();
  currentBody().push_back(std::move(Loop));
  Stack.push_back({Raw, false});
  return {Id};
}

void KernelBuilder::endLoop() {
  assert(!Stack.empty() && isa<ForStmt>(Stack.back().Owner) &&
         "endLoop without an open loop");
  Stack.pop_back();
}

void KernelBuilder::beginIf(ExprPtr Cond) {
  auto If = std::make_unique<IfStmt>(std::move(Cond));
  IfStmt *Raw = If.get();
  currentBody().push_back(std::move(If));
  Stack.push_back({Raw, false});
}

void KernelBuilder::beginElse() {
  assert(!Stack.empty() && isa<IfStmt>(Stack.back().Owner) &&
         !Stack.back().InElse && "beginElse without an open if");
  Stack.back().InElse = true;
}

void KernelBuilder::endIf() {
  assert(!Stack.empty() && isa<IfStmt>(Stack.back().Owner) &&
         "endIf without an open if");
  Stack.pop_back();
}

void KernelBuilder::assign(ExprPtr Dest, ExprPtr Value) {
  assert((isa<ScalarRefExpr>(Dest.get()) ||
          isa<ArrayAccessExpr>(Dest.get())) &&
         "assignment destination must be a scalar or array access");
  currentBody().push_back(
      std::make_unique<AssignStmt>(std::move(Dest), std::move(Value)));
}

void KernelBuilder::rotate(std::vector<const ScalarDecl *> Chain) {
  assert(Chain.size() >= 2 && "rotation needs at least two registers");
  currentBody().push_back(std::make_unique<RotateStmt>(std::move(Chain)));
}

ExprPtr KernelBuilder::access(const ArrayDecl *A,
                              std::vector<AffineExpr> Subs) const {
  assert(Subs.size() == A->numDims() &&
         "subscript count must match the array rank");
  return std::make_unique<ArrayAccessExpr>(A, std::move(Subs));
}

Expected<Kernel> KernelBuilder::finish() && {
  if (!Stack.empty())
    return Status::error(ErrorCode::MalformedIR,
                         "finish with " + std::to_string(Stack.size()) +
                             " open loop(s) or if(s)");
  std::vector<std::string> Problems = verifyKernel(K);
  if (!Problems.empty()) {
    std::string Msg = "kernel fails verification:";
    for (const std::string &P : Problems)
      Msg += "\n  " + P;
    return Status::error(ErrorCode::MalformedIR, std::move(Msg));
  }
  return std::move(K);
}
