//===- IRVerifier.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRVerifier.h"

#include "defacto/IR/IRUtils.h"

#include <set>

using namespace defacto;

namespace {

/// Walks the kernel carrying the set of enclosing loop ids.
class Verifier {
public:
  explicit Verifier(const Kernel &K) : K(K) {
    for (const auto &A : K.arrays())
      OwnedArrays.insert(A.get());
    for (const auto &S : K.scalars())
      OwnedScalars.insert(S.get());
  }

  std::vector<std::string> run() {
    checkStmts(K.body());
    return std::move(Problems);
  }

private:
  void problem(std::string Msg) { Problems.push_back(std::move(Msg)); }

  void checkExpr(const Expr *E) {
    walkExpr(E, [this](const Expr *X) {
      if (const auto *LI = dyn_cast<LoopIndexExpr>(X)) {
        if (!ActiveLoops.count(LI->loopId()))
          problem("loop-index expression references loop id " +
                  std::to_string(LI->loopId()) +
                  " which is not an enclosing loop");
        return;
      }
      if (const auto *SR = dyn_cast<ScalarRefExpr>(X)) {
        if (!OwnedScalars.count(SR->decl()))
          problem("scalar reference to declaration not owned by kernel");
        return;
      }
      const auto *AA = dyn_cast<ArrayAccessExpr>(X);
      if (!AA)
        return;
      if (!OwnedArrays.count(AA->array())) {
        problem("array access to declaration not owned by kernel");
        return;
      }
      if (AA->numSubscripts() != AA->array()->numDims())
        problem("array '" + AA->array()->name() + "' accessed with " +
                std::to_string(AA->numSubscripts()) + " subscripts but has " +
                std::to_string(AA->array()->numDims()) + " dimensions");
      for (const AffineExpr &Sub : AA->subscripts())
        for (int Id : Sub.loopIds())
          if (!ActiveLoops.count(Id))
            problem("subscript of '" + AA->array()->name() +
                    "' references loop id " + std::to_string(Id) +
                    " which is not an enclosing loop");
    });
  }

  void checkStmts(const StmtList &Stmts) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt *S = SP.get();
      switch (S->kind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(S);
        if (!isa<ScalarRefExpr>(A->dest()) &&
            !isa<ArrayAccessExpr>(A->dest()))
          problem("assignment destination is not a scalar or array access");
        checkExpr(A->dest());
        checkExpr(A->value());
        break;
      }
      case Stmt::Kind::For: {
        const auto *F = cast<ForStmt>(S);
        if (F->step() <= 0)
          problem("loop '" + F->indexName() + "' has nonpositive step");
        if (F->loopId() >= K.nextLoopId())
          problem("loop '" + F->indexName() +
                  "' has an unallocated loop id");
        if (!SeenLoopIds.insert(F->loopId()).second)
          problem("duplicate loop id " + std::to_string(F->loopId()));
        ActiveLoops.insert(F->loopId());
        checkStmts(F->body());
        ActiveLoops.erase(F->loopId());
        break;
      }
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(S);
        checkExpr(I->cond());
        checkStmts(I->thenBody());
        checkStmts(I->elseBody());
        break;
      }
      case Stmt::Kind::Rotate: {
        const auto *R = cast<RotateStmt>(S);
        if (R->chain().size() < 2)
          problem("rotate statement with fewer than two registers");
        std::set<const ScalarDecl *> Unique;
        for (const ScalarDecl *D : R->chain()) {
          if (!OwnedScalars.count(D))
            problem("rotate register not owned by kernel");
          if (!Unique.insert(D).second)
            problem("rotate chain contains a duplicate register");
        }
        break;
      }
      }
    }
  }

  const Kernel &K;
  std::set<const ArrayDecl *> OwnedArrays;
  std::set<const ScalarDecl *> OwnedScalars;
  std::set<int> ActiveLoops;
  std::set<int> SeenLoopIds;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> defacto::verifyKernel(const Kernel &K) {
  return Verifier(K).run();
}

bool defacto::isKernelValid(const Kernel &K) {
  return verifyKernel(K).empty();
}
