//===- IRUtils.cpp --------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRUtils.h"

#include "defacto/IR/IRPrinter.h"
#include "defacto/Support/ErrorHandling.h"

using namespace defacto;

void defacto::walkExpr(Expr *E, const std::function<void(Expr *)> &Fn) {
  Fn(E);
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::LoopIndex:
  case Expr::Kind::ScalarRef:
  case Expr::Kind::ArrayAccess:
    return;
  case Expr::Kind::Unary:
    walkExpr(cast<UnaryExpr>(E)->operand(), Fn);
    return;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    walkExpr(B->lhs(), Fn);
    walkExpr(B->rhs(), Fn);
    return;
  }
  case Expr::Kind::Select: {
    auto *S = cast<SelectExpr>(E);
    walkExpr(S->cond(), Fn);
    walkExpr(S->trueValue(), Fn);
    walkExpr(S->falseValue(), Fn);
    return;
  }
  }
  defacto_unreachable("unknown expression kind");
}

void defacto::walkExpr(const Expr *E,
                       const std::function<void(const Expr *)> &Fn) {
  walkExpr(const_cast<Expr *>(E),
           [&Fn](Expr *X) { Fn(const_cast<const Expr *>(X)); });
}

void defacto::walkStmts(StmtList &Stmts,
                        const std::function<void(Stmt *)> &Fn) {
  for (StmtPtr &S : Stmts) {
    Fn(S.get());
    if (auto *F = dyn_cast<ForStmt>(S.get())) {
      walkStmts(F->body(), Fn);
    } else if (auto *I = dyn_cast<IfStmt>(S.get())) {
      walkStmts(I->thenBody(), Fn);
      walkStmts(I->elseBody(), Fn);
    }
  }
}

void defacto::walkStmts(const StmtList &Stmts,
                        const std::function<void(const Stmt *)> &Fn) {
  walkStmts(const_cast<StmtList &>(Stmts),
            [&Fn](Stmt *S) { Fn(const_cast<const Stmt *>(S)); });
}

void defacto::walkExprsInStmts(StmtList &Stmts,
                               const std::function<void(Expr *)> &Fn) {
  walkStmts(Stmts, [&Fn](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      walkExpr(A->dest(), Fn);
      walkExpr(A->value(), Fn);
    } else if (auto *I = dyn_cast<IfStmt>(S)) {
      walkExpr(I->cond(), Fn);
    }
  });
}

std::vector<AccessInfo> defacto::collectArrayAccesses(StmtList &Stmts) {
  std::vector<AccessInfo> Out;
  walkStmts(Stmts, [&Out](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      if (auto *Dest = dyn_cast<ArrayAccessExpr>(A->dest()))
        Out.push_back({Dest, /*IsWrite=*/true});
      walkExpr(A->value(), [&Out](Expr *E) {
        if (auto *Acc = dyn_cast<ArrayAccessExpr>(E))
          Out.push_back({Acc, /*IsWrite=*/false});
      });
    } else if (auto *I = dyn_cast<IfStmt>(S)) {
      walkExpr(I->cond(), [&Out](Expr *E) {
        if (auto *Acc = dyn_cast<ArrayAccessExpr>(E))
          Out.push_back({Acc, /*IsWrite=*/false});
      });
    }
  });
  return Out;
}

std::vector<AccessInfo> defacto::collectArrayAccesses(Kernel &K) {
  return collectArrayAccesses(K.body());
}

std::vector<ForStmt *> defacto::perfectNest(ForStmt *Root) {
  std::vector<ForStmt *> Nest;
  ForStmt *Cur = Root;
  while (Cur) {
    Nest.push_back(Cur);
    if (Cur->body().size() != 1)
      break;
    Cur = dyn_cast<ForStmt>(Cur->body().front().get());
  }
  return Nest;
}

std::vector<ForStmt *> defacto::collectLoops(StmtList &Stmts) {
  std::vector<ForStmt *> Loops;
  walkStmts(Stmts, [&Loops](Stmt *S) {
    if (auto *F = dyn_cast<ForStmt>(S))
      Loops.push_back(F);
  });
  return Loops;
}

std::vector<const ForStmt *> defacto::collectLoops(const StmtList &Stmts) {
  std::vector<const ForStmt *> Loops;
  walkStmts(Stmts, [&Loops](const Stmt *S) {
    if (const auto *F = dyn_cast<ForStmt>(S))
      Loops.push_back(F);
  });
  return Loops;
}

void defacto::rewriteExpr(ExprPtr &Slot,
                          const std::function<void(ExprPtr &)> &Fn) {
  switch (Slot->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::LoopIndex:
  case Expr::Kind::ScalarRef:
  case Expr::Kind::ArrayAccess:
    break;
  case Expr::Kind::Unary:
    rewriteExpr(cast<UnaryExpr>(Slot.get())->operandRef(), Fn);
    break;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(Slot.get());
    rewriteExpr(B->lhsRef(), Fn);
    rewriteExpr(B->rhsRef(), Fn);
    break;
  }
  case Expr::Kind::Select: {
    auto *S = cast<SelectExpr>(Slot.get());
    rewriteExpr(S->condRef(), Fn);
    rewriteExpr(S->trueValueRef(), Fn);
    rewriteExpr(S->falseValueRef(), Fn);
    break;
  }
  }
  Fn(Slot);
}

void defacto::rewriteExprsInStmts(StmtList &Stmts,
                                  const std::function<void(ExprPtr &)> &Fn) {
  for (StmtPtr &SP : Stmts) {
    if (auto *A = dyn_cast<AssignStmt>(SP.get())) {
      rewriteExpr(A->destRef(), Fn);
      rewriteExpr(A->valueRef(), Fn);
    } else if (auto *I = dyn_cast<IfStmt>(SP.get())) {
      rewriteExpr(I->condRef(), Fn);
      rewriteExprsInStmts(I->thenBody(), Fn);
      rewriteExprsInStmts(I->elseBody(), Fn);
    } else if (auto *F = dyn_cast<ForStmt>(SP.get())) {
      rewriteExprsInStmts(F->body(), Fn);
    }
  }
}

ExprPtr defacto::affineToExpr(const AffineExpr &E) {
  ExprPtr Tree;
  auto addTerm = [&Tree](ExprPtr Term) {
    if (!Tree)
      Tree = std::move(Term);
    else
      Tree = std::make_unique<BinaryExpr>(BinaryOp::Add, std::move(Tree),
                                          std::move(Term));
  };
  for (int Id : E.loopIds()) {
    int64_t C = E.coeff(Id);
    ExprPtr Idx = std::make_unique<LoopIndexExpr>(Id);
    if (C != 1)
      Idx = std::make_unique<BinaryExpr>(
          BinaryOp::Mul, std::make_unique<IntLitExpr>(C), std::move(Idx));
    addTerm(std::move(Idx));
  }
  if (!Tree || E.constant() != 0)
    addTerm(std::make_unique<IntLitExpr>(E.constant()));
  return Tree;
}

void defacto::substituteLoopInExpr(ExprPtr &Slot, int LoopId,
                                   const AffineExpr &Replacement) {
  rewriteExpr(Slot, [LoopId, &Replacement](ExprPtr &E) {
    if (auto *A = dyn_cast<ArrayAccessExpr>(E.get())) {
      for (unsigned I = 0, N = A->numSubscripts(); I != N; ++I)
        A->setSubscript(I, A->subscript(I).substitute(LoopId, Replacement));
      return;
    }
    if (auto *L = dyn_cast<LoopIndexExpr>(E.get()))
      if (L->loopId() == LoopId)
        E = affineToExpr(Replacement);
  });
}

void defacto::substituteLoopInStmts(StmtList &Stmts, int LoopId,
                                    const AffineExpr &Replacement) {
  rewriteExprsInStmts(Stmts, [LoopId, &Replacement](ExprPtr &E) {
    if (auto *A = dyn_cast<ArrayAccessExpr>(E.get())) {
      for (unsigned I = 0, N = A->numSubscripts(); I != N; ++I)
        A->setSubscript(I, A->subscript(I).substitute(LoopId, Replacement));
      return;
    }
    if (auto *L = dyn_cast<LoopIndexExpr>(E.get()))
      if (L->loopId() == LoopId)
        E = affineToExpr(Replacement);
  });
}

bool defacto::stmtsUseLoop(const StmtList &Stmts, int LoopId) {
  bool Found = false;
  walkStmts(Stmts, [&Found, LoopId](const Stmt *S) {
    if (Found)
      return;
    auto checkExpr = [&Found, LoopId](const Expr *E) {
      walkExpr(E, [&Found, LoopId](const Expr *X) {
        if (const auto *A = dyn_cast<ArrayAccessExpr>(X)) {
          for (const AffineExpr &Sub : A->subscripts())
            if (Sub.usesLoop(LoopId))
              Found = true;
        } else if (const auto *L = dyn_cast<LoopIndexExpr>(X)) {
          if (L->loopId() == LoopId)
            Found = true;
        }
      });
    };
    if (const auto *A = dyn_cast<AssignStmt>(S)) {
      checkExpr(A->dest());
      checkExpr(A->value());
    } else if (const auto *I = dyn_cast<IfStmt>(S)) {
      checkExpr(I->cond());
    }
  });
  return Found;
}

bool defacto::exprEquals(const Expr *A, const Expr *B) {
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(A)->value() == cast<IntLitExpr>(B)->value();
  case Expr::Kind::LoopIndex:
    return cast<LoopIndexExpr>(A)->loopId() ==
           cast<LoopIndexExpr>(B)->loopId();
  case Expr::Kind::ScalarRef:
    return cast<ScalarRefExpr>(A)->decl() == cast<ScalarRefExpr>(B)->decl();
  case Expr::Kind::ArrayAccess: {
    const auto *X = cast<ArrayAccessExpr>(A);
    const auto *Y = cast<ArrayAccessExpr>(B);
    return X->array() == Y->array() && X->subscripts() == Y->subscripts();
  }
  case Expr::Kind::Unary: {
    const auto *X = cast<UnaryExpr>(A);
    const auto *Y = cast<UnaryExpr>(B);
    return X->op() == Y->op() && exprEquals(X->operand(), Y->operand());
  }
  case Expr::Kind::Binary: {
    const auto *X = cast<BinaryExpr>(A);
    const auto *Y = cast<BinaryExpr>(B);
    return X->op() == Y->op() && exprEquals(X->lhs(), Y->lhs()) &&
           exprEquals(X->rhs(), Y->rhs());
  }
  case Expr::Kind::Select: {
    const auto *X = cast<SelectExpr>(A);
    const auto *Y = cast<SelectExpr>(B);
    return exprEquals(X->cond(), Y->cond()) &&
           exprEquals(X->trueValue(), Y->trueValue()) &&
           exprEquals(X->falseValue(), Y->falseValue());
  }
  }
  defacto_unreachable("unknown expression kind");
}

std::optional<AffineExpr> defacto::exprToAffine(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return AffineExpr(cast<IntLitExpr>(E)->value());
  case Expr::Kind::LoopIndex:
    return AffineExpr::term(cast<LoopIndexExpr>(E)->loopId(), 1);
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Neg)
      return std::nullopt;
    auto Inner = exprToAffine(U->operand());
    if (!Inner)
      return std::nullopt;
    return Inner->scale(-1);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = exprToAffine(B->lhs());
    auto R = exprToAffine(B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOp::Add:
      return L->add(*R);
    case BinaryOp::Sub:
      return L->sub(*R);
    case BinaryOp::Mul:
      if (L->isConstant())
        return R->scale(L->constant());
      if (R->isConstant())
        return L->scale(R->constant());
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  case Expr::Kind::ScalarRef:
  case Expr::Kind::ArrayAccess:
  case Expr::Kind::Select:
    return std::nullopt;
  }
  defacto_unreachable("unknown expression kind");
}

StmtCounts defacto::countStmts(const StmtList &Stmts) {
  StmtCounts Counts;
  walkStmts(Stmts, [&Counts](const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign:
      ++Counts.Assign;
      break;
    case Stmt::Kind::For:
      ++Counts.For;
      break;
    case Stmt::Kind::If:
      ++Counts.If;
      break;
    case Stmt::Kind::Rotate:
      ++Counts.Rotate;
      break;
    }
  });
  return Counts;
}

uint64_t defacto::kernelFingerprint(const Kernel &K) {
  std::string Text = K.name();
  Text += '\n';
  Text += printKernel(K);
  uint64_t Hash = 0xCBF29CE484222325ULL; // FNV-1a offset basis.
  for (unsigned char C : Text) {
    Hash ^= C;
    Hash *= 0x100000001B3ULL;
  }
  return Hash;
}
