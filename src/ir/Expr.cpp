//===- Expr.cpp -----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/Expr.h"

#include "defacto/Support/Arena.h"
#include "defacto/Support/ErrorHandling.h"

using namespace defacto;

Expr::~Expr() = default;

void *Expr::operator new(std::size_t Size) {
  return detail::irNodeAllocate(Size);
}

void Expr::operator delete(void *P) noexcept { detail::irNodeDeallocate(P); }

void Expr::operator delete(void *P, std::size_t) noexcept {
  detail::irNodeDeallocate(P);
}

ExprPtr Expr::clone() const {
  switch (TheKind) {
  case Kind::IntLit: {
    const auto *E = cast<IntLitExpr>(this);
    return std::make_unique<IntLitExpr>(E->value());
  }
  case Kind::LoopIndex: {
    const auto *E = cast<LoopIndexExpr>(this);
    return std::make_unique<LoopIndexExpr>(E->loopId());
  }
  case Kind::ScalarRef: {
    const auto *E = cast<ScalarRefExpr>(this);
    return std::make_unique<ScalarRefExpr>(E->decl());
  }
  case Kind::ArrayAccess: {
    const auto *E = cast<ArrayAccessExpr>(this);
    auto Clone =
        std::make_unique<ArrayAccessExpr>(E->array(), E->subscripts());
    Clone->setSteadyStatePort(E->steadyStatePort());
    return Clone;
  }
  case Kind::Unary: {
    const auto *E = cast<UnaryExpr>(this);
    return std::make_unique<UnaryExpr>(E->op(), E->operand()->clone());
  }
  case Kind::Binary: {
    const auto *E = cast<BinaryExpr>(this);
    return std::make_unique<BinaryExpr>(E->op(), E->lhs()->clone(),
                                        E->rhs()->clone());
  }
  case Kind::Select: {
    const auto *E = cast<SelectExpr>(this);
    return std::make_unique<SelectExpr>(E->cond()->clone(),
                                        E->trueValue()->clone(),
                                        E->falseValue()->clone());
  }
  }
  defacto_unreachable("unknown expression kind");
}

bool defacto::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::CmpEq:
  case BinaryOp::CmpNe:
  case BinaryOp::CmpLt:
  case BinaryOp::CmpLe:
  case BinaryOp::CmpGt:
  case BinaryOp::CmpGe:
    return true;
  default:
    return false;
  }
}

const char *defacto::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Min:
    return "min";
  case BinaryOp::Max:
    return "max";
  case BinaryOp::And:
    return "&";
  case BinaryOp::Or:
    return "|";
  case BinaryOp::Xor:
    return "^";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::CmpEq:
    return "==";
  case BinaryOp::CmpNe:
    return "!=";
  case BinaryOp::CmpLt:
    return "<";
  case BinaryOp::CmpLe:
    return "<=";
  case BinaryOp::CmpGt:
    return ">";
  case BinaryOp::CmpGe:
    return ">=";
  }
  defacto_unreachable("unknown binary op");
}
