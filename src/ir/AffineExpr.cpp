//===- AffineExpr.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/AffineExpr.h"

#include <algorithm>
#include <cassert>

using namespace defacto;

AffineExpr AffineExpr::term(int LoopId, int64_t Coeff, int64_t C) {
  AffineExpr E(C);
  E.setCoeff(LoopId, Coeff);
  return E;
}

void AffineExpr::setCoeff(int LoopId, int64_t Coeff) {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), LoopId,
      [](const std::pair<int, int64_t> &T, int Id) { return T.first < Id; });
  if (It != Terms.end() && It->first == LoopId) {
    if (Coeff == 0)
      Terms.erase(It);
    else
      It->second = Coeff;
    return;
  }
  if (Coeff != 0)
    Terms.insert(It, {LoopId, Coeff});
}

int64_t AffineExpr::coeff(int LoopId) const {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), LoopId,
      [](const std::pair<int, int64_t> &T, int Id) { return T.first < Id; });
  if (It != Terms.end() && It->first == LoopId)
    return It->second;
  return 0;
}

std::vector<int> AffineExpr::loopIds() const {
  std::vector<int> Ids;
  Ids.reserve(Terms.size());
  for (const auto &[Id, Coeff] : Terms)
    Ids.push_back(Id);
  return Ids;
}

AffineExpr AffineExpr::add(const AffineExpr &Other) const {
  AffineExpr Out = *this;
  Out.Constant += Other.Constant;
  for (const auto &[Id, Coeff] : Other.Terms)
    Out.setCoeff(Id, Out.coeff(Id) + Coeff);
  return Out;
}

AffineExpr AffineExpr::sub(const AffineExpr &Other) const {
  return add(Other.scale(-1));
}

AffineExpr AffineExpr::scale(int64_t Factor) const {
  AffineExpr Out;
  Out.Constant = Constant * Factor;
  if (Factor != 0)
    for (const auto &[Id, Coeff] : Terms)
      Out.Terms.push_back({Id, Coeff * Factor});
  return Out;
}

AffineExpr AffineExpr::addConstant(int64_t C) const {
  AffineExpr Out = *this;
  Out.Constant += C;
  return Out;
}

AffineExpr AffineExpr::substitute(int LoopId,
                                  const AffineExpr &Replacement) const {
  int64_t C = coeff(LoopId);
  if (C == 0)
    return *this;
  AffineExpr Out = *this;
  Out.setCoeff(LoopId, 0);
  return Out.add(Replacement.scale(C));
}

int64_t AffineExpr::evaluate(
    const std::function<int64_t(int LoopId)> &ValueOf) const {
  int64_t V = Constant;
  for (const auto &[Id, Coeff] : Terms)
    V += Coeff * ValueOf(Id);
  return V;
}

std::string AffineExpr::toString(
    const std::function<std::string(int LoopId)> &NameOf) const {
  std::string Out;
  for (const auto &[Id, Coeff] : Terms) {
    if (!Out.empty())
      Out += Coeff < 0 ? " - " : " + ";
    else if (Coeff < 0)
      Out += "-";
    int64_t Mag = Coeff < 0 ? -Coeff : Coeff;
    if (Mag != 1)
      Out += std::to_string(Mag) + "*";
    Out += NameOf(Id);
  }
  if (Out.empty())
    return std::to_string(Constant);
  if (Constant > 0)
    Out += " + " + std::to_string(Constant);
  else if (Constant < 0)
    Out += " - " + std::to_string(-Constant);
  return Out;
}

std::string AffineExpr::toString() const {
  return toString([](int Id) { return "L" + std::to_string(Id); });
}
