//===- EvaluationJournal.cpp ----------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/EvaluationJournal.h"

#include "defacto/Support/Json.h"
#include "defacto/Support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace defacto;

DEFACTO_STATISTIC(NumJournalRecords, "journal", "records",
                  "evaluation records appended to the journal");
DEFACTO_STATISTIC(NumJournalFlushes, "journal", "flushes",
                  "write-then-rename journal flushes");
DEFACTO_STATISTIC(NumJournalReplayed, "journal", "replayed",
                  "journal entries seeded into an estimate cache on resume");
DEFACTO_STATISTIC(NumJournalSkippedLines, "journal", "skipped-lines",
                  "corrupt or torn journal lines tolerated during load");

namespace {

/// Schema version written to new journals. "2" extends "1" with the
/// multi-dimensional cache-key fields (";ic..."/";pl..." suffixes inside
/// eval keys); record shapes are unchanged, so v1 files load verbatim.
constexpr const char *JournalVersion = "2";

/// Versions load() accepts. Unroll-only keys are byte-identical across
/// both, so a v1 journal resumes into a v2 run with zero skipped lines.
bool versionReadable(const std::string &V) { return V == "1" || V == "2"; }

/// Doubles are journaled as hexfloat *strings*: "%a" prints every finite
/// value exactly (and "inf" for the Balance of a memory-free design),
/// and strtod reads both back bit-identically. A plain %g would round.
std::string hexDouble(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", D);
  return Buf;
}

std::string u64Str(uint64_t V) { return std::to_string(V); }

void appendEstimate(std::ostringstream &OS, const SynthesisEstimate &E) {
  OS << "\"est\":{\"cycles\":" << jsonQuote(u64Str(E.Cycles))
     << ",\"slices\":" << jsonQuote(hexDouble(E.Slices))
     << ",\"registers\":" << jsonQuote(u64Str(E.Registers)) << ",\"units\":[";
  bool First = true;
  for (const auto &[Shape, Count] : E.Units) {
    if (!First)
      OS << ',';
    First = false;
    OS << '[' << static_cast<int>(Shape.first) << ',' << Shape.second << ','
       << Count << ']';
  }
  OS << "],\"fetch\":" << jsonQuote(hexDouble(E.FetchRate))
     << ",\"consume\":" << jsonQuote(hexDouble(E.ConsumeRate))
     << ",\"balance\":" << jsonQuote(hexDouble(E.Balance))
     << ",\"mem_cycles\":" << jsonQuote(hexDouble(E.MemOnlyCycles))
     << ",\"comp_cycles\":" << jsonQuote(hexDouble(E.CompOnlyCycles))
     << ",\"bits\":" << jsonQuote(hexDouble(E.BitsTransferred))
     << ",\"fsm\":" << jsonQuote(u64Str(E.FsmStates)) << '}';
}

std::string evalLine(const std::string &Key, const EstimateCache::Result &R) {
  std::ostringstream OS;
  OS << "{\"type\":\"eval\",\"key\":" << jsonQuote(Key)
     << ",\"attempts\":" << jsonQuote(u64Str(R.Attempts)) << ',';
  if (R.ok()) {
    appendEstimate(OS, R.Estimate.value());
  } else {
    const Status &S = R.Estimate.status();
    OS << "\"err\":{\"code\":" << jsonQuote(errorCodeName(S.code()))
       << ",\"msg\":" << jsonQuote(S.message()) << '}';
  }
  OS << '}';
  return OS.str();
}

std::string jobLine(const JournalJobRecord &J) {
  std::ostringstream OS;
  OS << "{\"type\":\"job\",\"name\":" << jsonQuote(J.Name)
     << ",\"strategy\":" << jsonQuote(J.Strategy)
     << ",\"selected\":" << jsonQuote(J.Selected)
     << ",\"cycles\":" << jsonQuote(u64Str(J.Cycles))
     << ",\"slices\":" << jsonQuote(hexDouble(J.Slices))
     << ",\"evals\":" << jsonQuote(u64Str(J.Evaluations))
     << ",\"degraded\":" << (J.Degraded ? "true" : "false")
     << ",\"fits\":" << (J.Fits ? "true" : "false") << '}';
  return OS.str();
}

bool parseEstimate(const JsonValue &V, SynthesisEstimate &E) {
  E.Cycles = V.uint("cycles");
  E.Slices = V.num("slices");
  E.Registers = static_cast<unsigned>(V.uint("registers"));
  if (const JsonValue *Units = V.find("units")) {
    if (!Units->isArray())
      return false;
    for (const JsonValue &Triple : Units->Elements) {
      if (!Triple.isArray() || Triple.Elements.size() != 3)
        return false;
      OpShape Shape{static_cast<OpClass>(std::strtol(
                        Triple.Elements[0].Text.c_str(), nullptr, 10)),
                    static_cast<unsigned>(std::strtoul(
                        Triple.Elements[1].Text.c_str(), nullptr, 10))};
      E.Units[Shape] = static_cast<unsigned>(
          std::strtoul(Triple.Elements[2].Text.c_str(), nullptr, 10));
    }
  }
  E.FetchRate = V.num("fetch");
  E.ConsumeRate = V.num("consume");
  E.Balance = V.num("balance");
  E.MemOnlyCycles = V.num("mem_cycles");
  E.CompOnlyCycles = V.num("comp_cycles");
  E.BitsTransferred = V.num("bits");
  E.FsmStates = V.uint("fsm");
  return true;
}

/// One journal line -> a record merged into \p C. False on anything
/// malformed (the caller counts it as skipped).
bool parseLine(const std::string &Line, EvaluationJournal::Contents &C) {
  Expected<JsonValue> Parsed = parseJson(Line);
  if (!Parsed.hasValue() || !Parsed.value().isObject())
    return false;
  const JsonValue &V = Parsed.value();
  std::string Type = V.str("type");
  if (Type == "header")
    return versionReadable(V.str("version"));
  if (Type == "eval") {
    std::string Key = V.str("key");
    if (Key.empty())
      return false;
    unsigned Attempts = static_cast<unsigned>(V.uint("attempts", 1));
    if (const JsonValue *Est = V.find("est")) {
      SynthesisEstimate E;
      if (!parseEstimate(*Est, E))
        return false;
      C.Evaluations.emplace_back(
          Key, EstimateCache::Result{Expected<SynthesisEstimate>(E),
                                     Attempts});
      return true;
    }
    if (const JsonValue *Err = V.find("err")) {
      std::string CodeName = Err->str("code");
      if (CodeName.empty())
        return false;
      C.Evaluations.emplace_back(
          Key,
          EstimateCache::Result{
              Expected<SynthesisEstimate>(Status::error(
                  errorCodeFromName(CodeName), Err->str("msg"))),
              Attempts});
      return true;
    }
    return false;
  }
  if (Type == "job") {
    JournalJobRecord J;
    J.Name = V.str("name");
    if (J.Name.empty())
      return false;
    J.Strategy = V.str("strategy");
    J.Selected = V.str("selected");
    J.Cycles = V.uint("cycles");
    J.Slices = V.num("slices");
    J.Evaluations = static_cast<unsigned>(V.uint("evals"));
    J.Degraded = V.boolean("degraded");
    J.Fits = V.boolean("fits", true);
    C.Jobs.push_back(std::move(J));
    return true;
  }
  return false;
}

} // namespace

EvaluationJournal::EvaluationJournal(std::string Path)
    : Path(std::move(Path)) {}

Expected<EvaluationJournal::Contents>
EvaluationJournal::load(const std::string &Path) {
  Contents C;
  std::ifstream In(Path);
  if (!In.is_open())
    return C; // No journal yet: empty resume state.
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (!parseLine(Line, C)) {
      ++C.SkippedLines;
      ++NumJournalSkippedLines;
    }
  }
  if (In.bad())
    return Status::error(ErrorCode::InvalidInput,
                         "error reading journal '" + Path + "'");
  // Deduplicate: the cache fulfills each key once, but a compacted
  // journal adopted twice (or a hand-edited file) may repeat records.
  // First evaluation wins; last job record wins.
  Contents Unique;
  Unique.SkippedLines = C.SkippedLines;
  {
    std::map<std::string, bool> SeenEval;
    for (auto &KV : C.Evaluations)
      if (!SeenEval.count(KV.first)) {
        SeenEval[KV.first] = true;
        Unique.Evaluations.push_back(std::move(KV));
      }
  }
  {
    std::map<std::string, size_t> JobIndex;
    for (auto &J : C.Jobs) {
      auto It = JobIndex.find(J.Name);
      if (It == JobIndex.end()) {
        JobIndex[J.Name] = Unique.Jobs.size();
        Unique.Jobs.push_back(std::move(J));
      } else {
        Unique.Jobs[It->second] = std::move(J);
      }
    }
  }
  return Unique;
}

void EvaluationJournal::adopt(const Contents &C) {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Key, R] : C.Evaluations)
    if (Evaluations.emplace(Key, R).second)
      EvalOrder.push_back(Key);
  for (const auto &J : C.Jobs) {
    if (!Jobs.count(J.Name))
      JobOrder.push_back(J.Name);
    Jobs[J.Name] = J;
  }
}

void EvaluationJournal::recordEvaluation(const std::string &Key,
                                         const EstimateCache::Result &R) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Evaluations.emplace(Key, R).second)
    return;
  EvalOrder.push_back(Key);
  ++NumJournalRecords;
  (void)flushLocked();
}

void EvaluationJournal::recordJob(const JournalJobRecord &J) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Jobs.count(J.Name))
    JobOrder.push_back(J.Name);
  Jobs[J.Name] = J;
  (void)flushLocked();
}

std::optional<JournalJobRecord>
EvaluationJournal::jobRecord(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Jobs.find(Name);
  if (It == Jobs.end())
    return std::nullopt;
  return It->second;
}

unsigned EvaluationJournal::replayInto(EstimateCache &Cache) const {
  std::lock_guard<std::mutex> Lock(M);
  unsigned Seeded = 0;
  for (const std::string &Key : EvalOrder) {
    auto It = Evaluations.find(Key);
    if (It != Evaluations.end() && Cache.seed(Key, It->second)) {
      ++Seeded;
      ++NumJournalReplayed;
    }
  }
  return Seeded;
}

size_t EvaluationJournal::numEvaluations() const {
  std::lock_guard<std::mutex> Lock(M);
  return Evaluations.size();
}

size_t EvaluationJournal::numJobs() const {
  std::lock_guard<std::mutex> Lock(M);
  return Jobs.size();
}

Status EvaluationJournal::flush() {
  std::lock_guard<std::mutex> Lock(M);
  return flushLocked();
}

Status EvaluationJournal::flushLocked() {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out.is_open())
      return Status::error(ErrorCode::InvalidInput,
                           "cannot write journal temp file '" + Tmp + "'");
    Out << "{\"type\":\"header\",\"version\":" << jsonQuote(JournalVersion)
        << "}\n";
    for (const std::string &Key : EvalOrder) {
      auto It = Evaluations.find(Key);
      if (It != Evaluations.end())
        Out << evalLine(Key, It->second) << '\n';
    }
    for (const std::string &Name : JobOrder) {
      auto It = Jobs.find(Name);
      if (It != Jobs.end())
        Out << jobLine(It->second) << '\n';
    }
    Out.flush();
    if (!Out.good())
      return Status::error(ErrorCode::InvalidInput,
                           "error writing journal temp file '" + Tmp + "'");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return Status::error(ErrorCode::InvalidInput,
                         "cannot rename journal '" + Tmp + "' over '" + Path +
                             "'");
  ++NumJournalFlushes;
  return Status::ok();
}
