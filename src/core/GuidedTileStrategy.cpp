//===- GuidedTileStrategy.cpp - Guided walk + tile/interchange refinement -===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The multi-dimensional demonstration strategy: run the paper's guided
// walk to its unroll-only optimum, then spend the remaining evaluation
// budget probing the interchange/tile neighborhood of that optimum
// (§5.4: moving a tile loop outside the reuse carrier shrinks the
// localized iteration space, trading fetch rate for registers). The
// selection is upgraded only when a refined point strictly beats the
// unroll-only optimum; otherwise the trace explains why none did.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"

#include "defacto/Transforms/Interchange.h"
#include "defacto/Transforms/Normalize.h"

#include <algorithm>
#include <cmath>

using namespace defacto;

namespace {

class GuidedTileStrategy : public SearchStrategy {
public:
  std::string name() const override { return "guided+tile"; }
  ExplorationResult search(const SearchContext &SC) override;
};

/// Up to two deterministic tile sizes per position: the smallest proper
/// divisor and the one closest to sqrt(trip) — a small near-square tile
/// localizes reuse without flooding the budget with every divisor.
std::vector<int64_t> pickTileSizes(const DesignSpace &DS, unsigned Pos,
                                   int64_t Trip) {
  std::vector<int64_t> All = DS.tileSizes(Pos);
  if (All.size() <= 2)
    return All;
  int64_t Root = static_cast<int64_t>(std::sqrt(static_cast<double>(Trip)));
  int64_t Near = All.front();
  for (int64_t T : All)
    if (std::llabs(T - Root) < std::llabs(Near - Root))
      Near = T;
  std::vector<int64_t> Picked{All.front()};
  if (Near != All.front())
    Picked.push_back(Near);
  return Picked;
}

} // namespace

ExplorationResult GuidedTileStrategy::search(const SearchContext &SC) {
  EvaluationService &Eval = SC.Eval;
  const ExplorerOptions &Opts = Eval.options();

  // Stage 1: the unchanged guided walk finds the unroll-only optimum.
  ExplorationResult Res = createGuidedStrategy()->search(SC);
  Res.Strategy = name();
  Res.SelectedPoint = DesignPoint(Res.Selected);

  if (!Res.SelectedFits) {
    Res.Trace += "tile refinement: skipped (no fitting unroll-only design)\n";
    return Res;
  }

  // Stage 2: refinement, under the same global budget — evaluations are
  // cumulative across stages, so re-arming with MaxEvaluations grants
  // only what the walk left over.
  Eval.beginBudget(Opts.MaxEvaluations);

  const DesignSpace &DS = Eval.designSpace();
  const UnrollSpace &Space = Eval.space();
  unsigned N = Space.numLoops();
  double Capacity = Opts.Platform.CapacitySlices;
  const UnrollVector BaseU = Res.Selected;
  const SynthesisEstimate BaseE = Res.SelectedEstimate;

  // Candidate points, deterministic order: legal pairwise interchanges
  // of the winner's unroll first, then tiles of each nest position.
  std::vector<std::pair<DesignPoint, const char *>> Points;

  if (N >= 2) {
    // Dependence legality is checked once on a normalized clone of the
    // source — exactly the nest the pipeline's interchange pass sees.
    Kernel Legal = SC.Source.clone();
    normalizeLoops(Legal);
    for (const std::vector<unsigned> &Perm : DS.pairSwaps()) {
      unsigned A = N, B = N;
      for (unsigned I = 0; I != N; ++I)
        if (Perm[I] != I) {
          A = I;
          B = Perm[I];
          break;
        }
      if (A == N || !canInterchange(Legal, A, B))
        continue;
      DesignPoint P;
      P.Interchange = Perm;
      P.Unroll.resize(N);
      for (unsigned I = 0; I != N; ++I)
        P.Unroll[I] = BaseU[Perm[I]]; // factors travel with their loops
      if (DS.isCandidate(P))
        Points.push_back({P, "interchange"});
    }
  }

  for (unsigned Pos = 0; Pos != N; ++Pos) {
    int64_t Trip = Space.trip(Pos);
    for (int64_t T : pickTileSizes(DS, Pos, Trip)) {
      DesignPoint P;
      P.Tile = std::make_pair(Pos, T);
      // The post-tile nest is one deeper: the outer loop (trip/T) keeps
      // the winner's factor when it still divides, the strip itself
      // stays unrolled by 1 (the tile's purpose is localization, not
      // more parallelism).
      P.Unroll.reserve(N + 1);
      for (unsigned I = 0; I != N; ++I) {
        if (I == Pos) {
          int64_t Outer = Trip / T;
          P.Unroll.push_back(Outer % BaseU[I] == 0 ? BaseU[I] : 1);
          P.Unroll.push_back(1);
        } else {
          P.Unroll.push_back(BaseU[I]);
        }
      }
      if (DS.isCandidate(P))
        Points.push_back({P, "tile"});
    }
  }

  auto isStop = [](const Status &S) {
    return S.code() == ErrorCode::DeadlineExceeded ||
           S.code() == ErrorCode::BudgetExhausted;
  };

  bool Improved = false;
  unsigned Probed = 0;
  Status Stop = Status::ok();
  DesignPoint StoppedAt;
  for (const auto &[P, RoleName] : Points) {
    Expected<SynthesisEstimate> Est = Eval.evaluateChecked(P);
    if (!Est) {
      Res.Trace += "FAIL " + P.toString() + " [" + RoleName + "] " +
                   Est.status().toString() + "\n";
      Eval.traceFailure(P, RoleName, Est.status());
      if (isStop(Est.status())) {
        Stop = Est.status();
        StoppedAt = P;
        break;
      }
      continue; // Illegal or failed point; probe the next one.
    }
    ++Probed;
    Res.Visited.push_back({P.Unroll, *Est, RoleName, P});
    Res.Trace += "eval " + P.toString() + " [" + RoleName +
                 "]: " + Est->toString() + "\n";
    bool Fits = Est->Slices <= Capacity;
    bool Better =
        Fits && (Est->Cycles < Res.SelectedEstimate.Cycles ||
                 (Est->Cycles == Res.SelectedEstimate.Cycles &&
                  Est->Slices < Res.SelectedEstimate.Slices));
    Eval.traceDecision(P, *Est, RoleName,
                       Better ? "refine-accept" : "refine-reject");
    if (Better) {
      Res.SelectedPoint = P;
      Res.Selected = P.Unroll;
      Res.SelectedEstimate = *Est;
      Improved = true;
    }
  }

  if (Improved) {
    Res.Trace += "tile refinement: " + Res.SelectedPoint.toString() +
                 " beats the unroll-only optimum (" +
                 std::to_string(Res.SelectedEstimate.Cycles) + " < " +
                 std::to_string(BaseE.Cycles) + " cycles)\n";
  } else if (Points.empty()) {
    Res.Trace += "tile refinement: no legal interchange or tile exists "
                 "for this nest (depth " +
                 std::to_string(N) + ")\n";
  } else {
    Res.Trace += "tile refinement: none of " + std::to_string(Probed) +
                 " evaluated interchange/tile point(s) beats the "
                 "unroll-only optimum " +
                 unrollVectorToString(BaseU) +
                 " (the saturated fetch rate already bounds them)\n";
  }

  Res.Failures = Eval.failures();
  Res.DroppedFailures = Eval.failuresDropped();
  if (!Stop.isOk())
    Res.Failures.push_back({StoppedAt.Unroll, 0, Stop, StoppedAt});
  Res.Degraded = Res.Degraded || !Stop.isOk() || !Res.Failures.empty();
  Res.EvaluationsUsed = Eval.evaluationsUsed();
  Eval.traceSelection(Res);
  Eval.endBudget();
  Eval.drainSpeculation();
  return Res;
}

std::unique_ptr<SearchStrategy> defacto::createGuidedTileStrategy() {
  return std::make_unique<GuidedTileStrategy>();
}
