//===- DesignSpace.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/DesignSpace.h"

#include "defacto/Support/MathExtras.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace defacto;

UnrollSpace::UnrollSpace(std::vector<int64_t> TripCounts)
    : Trips(std::move(TripCounts)) {
  for (int64_t T : Trips) {
    assert(T >= 1 && "trip counts must be positive");
    Divisors.push_back(divisorsOf(T));
  }
}

uint64_t UnrollSpace::fullSize() const {
  uint64_t N = 1;
  for (int64_t T : Trips)
    N *= static_cast<uint64_t>(T);
  return N;
}

UnrollVector UnrollSpace::base() const {
  return UnrollVector(Trips.size(), 1);
}

UnrollVector UnrollSpace::max() const { return Trips; }

bool UnrollSpace::isCandidate(const UnrollVector &U) const {
  if (U.size() != Trips.size())
    return false;
  for (size_t P = 0; P != U.size(); ++P)
    if (U[P] < 1 || Trips[P] % U[P] != 0)
      return false;
  return true;
}

std::vector<UnrollVector> UnrollSpace::allCandidates() const {
  std::vector<UnrollVector> Out;
  UnrollVector Cur(Trips.size(), 1);
  std::vector<size_t> Index(Trips.size(), 0);
  while (true) {
    for (size_t P = 0; P != Trips.size(); ++P)
      Cur[P] = Divisors[P][Index[P]];
    Out.push_back(Cur);
    size_t P = Trips.size();
    while (P > 0) {
      --P;
      if (++Index[P] < Divisors[P].size())
        break;
      Index[P] = 0;
      if (P == 0)
        return Out;
    }
  }
}

bool UnrollSpace::between(const UnrollVector &U, const UnrollVector &Lo,
                          const UnrollVector &Hi) {
  for (size_t P = 0; P != U.size(); ++P)
    if (U[P] < Lo[P] || U[P] > Hi[P])
      return false;
  return true;
}

std::vector<UnrollVector>
UnrollSpace::candidatesWithProduct(const UnrollVector &Lo,
                                   const UnrollVector &Hi,
                                   int64_t Product) const {
  std::vector<UnrollVector> Out;
  UnrollVector Cur(Trips.size(), 1);
  // Depth-first over divisor choices with product pruning.
  std::function<void(size_t, int64_t)> Rec = [&](size_t P,
                                                 int64_t Remaining) {
    if (P == Trips.size()) {
      if (Remaining == 1)
        Out.push_back(Cur);
      return;
    }
    for (int64_t D : Divisors[P]) {
      if (D < Lo[P] || D > Hi[P])
        continue;
      if (Remaining % D != 0)
        continue;
      Cur[P] = D;
      Rec(P + 1, Remaining / D);
    }
    Cur[P] = 1;
  };
  Rec(0, Product);
  return Out;
}

UnrollVector
UnrollSpace::increase(const UnrollVector &U,
                      const std::vector<unsigned> &Preference) const {
  // Doubling one position doubles the product; try positions in
  // preference order, then the rest outermost-first.
  std::vector<unsigned> Order = Preference;
  for (unsigned P = 0; P != Trips.size(); ++P)
    if (std::find(Order.begin(), Order.end(), P) == Order.end())
      Order.push_back(P);

  // Among the preferred positions, double the one with the smallest
  // current factor (keeps the factor vector balanced, which keeps both
  // memory and operator parallelism growing together).
  unsigned Best = Trips.size();
  int64_t BestFactor = 0;
  for (unsigned P : Order) {
    if (P >= Trips.size())
      continue;
    int64_t Doubled = U[P] * 2;
    if (Doubled > Trips[P] || Trips[P] % Doubled != 0)
      continue;
    if (Best == Trips.size() || U[P] < BestFactor) {
      Best = P;
      BestFactor = U[P];
    }
  }
  if (Best == Trips.size())
    return U;
  UnrollVector Out = U;
  Out[Best] *= 2;
  return Out;
}

std::string DesignPoint::toString() const {
  std::string S = unrollVectorToString(Unroll);
  if (!Interchange.empty()) {
    std::ostringstream OS;
    OS << " perm(";
    for (size_t I = 0; I != Interchange.size(); ++I)
      OS << (I ? "," : "") << Interchange[I];
    OS << ')';
    S += OS.str();
  }
  if (Tile) {
    std::ostringstream OS;
    OS << " tile(" << Tile->first << 'x' << Tile->second << ')';
    S += OS.str();
  }
  return S;
}

std::vector<int64_t> DesignSpace::tileSizes(unsigned Position) const {
  std::vector<int64_t> Sizes;
  if (Position >= Space.numLoops())
    return Sizes;
  int64_t Trip = Space.trip(Position);
  for (int64_t D : divisorsOf(Trip))
    if (D > 1 && D < Trip)
      Sizes.push_back(D);
  return Sizes;
}

std::vector<std::vector<unsigned>> DesignSpace::pairSwaps() const {
  std::vector<std::vector<unsigned>> Swaps;
  unsigned N = Space.numLoops();
  std::vector<unsigned> Identity(N);
  for (unsigned P = 0; P != N; ++P)
    Identity[P] = P;
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = A + 1; B != N; ++B) {
      std::vector<unsigned> Perm = Identity;
      std::swap(Perm[A], Perm[B]);
      Swaps.push_back(std::move(Perm));
    }
  return Swaps;
}

std::vector<int64_t> DesignSpace::tripsAfter(const DesignPoint &P) const {
  unsigned N = Space.numLoops();
  std::vector<int64_t> Trips;
  if (P.Interchange.empty()) {
    for (unsigned Pos = 0; Pos != N; ++Pos)
      Trips.push_back(Space.trip(Pos));
  } else {
    if (P.Interchange.size() != N)
      return {};
    std::vector<bool> Seen(N, false);
    for (unsigned Orig : P.Interchange) {
      if (Orig >= N || Seen[Orig])
        return {};
      Seen[Orig] = true;
      Trips.push_back(Space.trip(Orig));
    }
  }
  if (P.Tile) {
    unsigned Pos = P.Tile->first;
    int64_t Size = P.Tile->second;
    if (Pos >= Trips.size())
      return {};
    int64_t Trip = Trips[Pos];
    if (Size <= 1 || Size >= Trip || Trip % Size != 0)
      return {};
    // Strip-mining splits the loop into an outer trip/Size loop and an
    // inner Size-trip strip right inside it.
    Trips[Pos] = Trip / Size;
    Trips.insert(Trips.begin() + Pos + 1, Size);
  }
  return Trips;
}

bool DesignSpace::isCandidate(const DesignPoint &P) const {
  if (P.isUnrollOnly())
    return Space.isCandidate(P.Unroll);
  std::vector<int64_t> Trips = tripsAfter(P);
  if (Trips.empty())
    return false;
  if (P.Unroll.size() != Trips.size())
    return false;
  for (size_t Pos = 0; Pos != Trips.size(); ++Pos)
    if (P.Unroll[Pos] < 1 || Trips[Pos] % P.Unroll[Pos] != 0)
      return false;
  return true;
}

std::vector<DesignPoint> DesignSpace::enumerate(size_t Limit) const {
  std::vector<DesignPoint> Out;
  std::vector<std::vector<unsigned>> Perms;
  Perms.push_back({}); // identity: the historical unroll-only block first
  for (std::vector<unsigned> &Swap : pairSwaps())
    Perms.push_back(std::move(Swap));
  const unsigned N = Space.numLoops();
  for (const std::vector<unsigned> &Perm : Perms) {
    std::vector<std::optional<std::pair<unsigned, int64_t>>> Tiles;
    Tiles.emplace_back(std::nullopt);
    for (unsigned Pos = 0; Pos != N; ++Pos) {
      // Tile positions index the post-interchange nest, whose loop at
      // Pos is the original nest's loop Perm[Pos].
      unsigned Orig = Perm.empty() ? Pos : Perm[Pos];
      for (int64_t Size : tileSizes(Orig))
        Tiles.emplace_back(std::make_pair(Pos, Size));
    }
    for (const std::optional<std::pair<unsigned, int64_t>> &Tile : Tiles) {
      DesignPoint P;
      P.Interchange = Perm;
      P.Tile = Tile;
      std::vector<int64_t> Trips = tripsAfter(P);
      if (Trips.empty())
        continue;
      for (UnrollVector &U : UnrollSpace(Trips).allCandidates()) {
        P.Unroll = std::move(U);
        Out.push_back(P);
        if (Limit && Out.size() == Limit)
          return Out;
      }
    }
  }
  return Out;
}

uint64_t DesignSpace::fullSize() const {
  uint64_t TileChoices = 1; // untiled
  for (unsigned Pos = 0; Pos != Space.numLoops(); ++Pos)
    TileChoices += tileSizes(Pos).size();
  uint64_t PermChoices = 1 + pairSwaps().size();
  return Space.fullSize() * PermChoices * TileChoices;
}

UnrollVector UnrollSpace::selectBetween(const UnrollVector &Small,
                                        const UnrollVector &Large,
                                        int64_t Quantum) const {
  int64_t PSmall = unrollProduct(Small);
  int64_t PLarge = unrollProduct(Large);
  if (PLarge <= PSmall || Quantum <= 0)
    return Small;
  int64_t Mid = (PSmall + PLarge) / 2;

  // Componentwise envelope of the two vectors.
  UnrollVector Lo = Small, Hi = Large;
  for (size_t P = 0; P != Lo.size(); ++P) {
    Lo[P] = std::min(Small[P], Large[P]);
    Hi[P] = std::max(Small[P], Large[P]);
  }

  UnrollVector Best = Small;
  int64_t BestDist = -1;
  for (int64_t Product = Quantum; Product < PLarge; Product += Quantum) {
    if (Product <= PSmall)
      continue;
    std::vector<UnrollVector> Candidates =
        candidatesWithProduct(Lo, Hi, Product);
    if (Candidates.empty())
      continue;
    int64_t Dist = Product > Mid ? Product - Mid : Mid - Product;
    if (BestDist < 0 || Dist < BestDist) {
      BestDist = Dist;
      Best = Candidates.front();
    }
  }
  return Best;
}
