//===- DesignSpace.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/DesignSpace.h"

#include "defacto/Support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace defacto;

UnrollSpace::UnrollSpace(std::vector<int64_t> TripCounts)
    : Trips(std::move(TripCounts)) {
  for (int64_t T : Trips) {
    assert(T >= 1 && "trip counts must be positive");
    Divisors.push_back(divisorsOf(T));
  }
}

uint64_t UnrollSpace::fullSize() const {
  uint64_t N = 1;
  for (int64_t T : Trips)
    N *= static_cast<uint64_t>(T);
  return N;
}

UnrollVector UnrollSpace::base() const {
  return UnrollVector(Trips.size(), 1);
}

UnrollVector UnrollSpace::max() const { return Trips; }

bool UnrollSpace::isCandidate(const UnrollVector &U) const {
  if (U.size() != Trips.size())
    return false;
  for (size_t P = 0; P != U.size(); ++P)
    if (U[P] < 1 || Trips[P] % U[P] != 0)
      return false;
  return true;
}

std::vector<UnrollVector> UnrollSpace::allCandidates() const {
  std::vector<UnrollVector> Out;
  UnrollVector Cur(Trips.size(), 1);
  std::vector<size_t> Index(Trips.size(), 0);
  while (true) {
    for (size_t P = 0; P != Trips.size(); ++P)
      Cur[P] = Divisors[P][Index[P]];
    Out.push_back(Cur);
    size_t P = Trips.size();
    while (P > 0) {
      --P;
      if (++Index[P] < Divisors[P].size())
        break;
      Index[P] = 0;
      if (P == 0)
        return Out;
    }
  }
}

bool UnrollSpace::between(const UnrollVector &U, const UnrollVector &Lo,
                          const UnrollVector &Hi) {
  for (size_t P = 0; P != U.size(); ++P)
    if (U[P] < Lo[P] || U[P] > Hi[P])
      return false;
  return true;
}

std::vector<UnrollVector>
UnrollSpace::candidatesWithProduct(const UnrollVector &Lo,
                                   const UnrollVector &Hi,
                                   int64_t Product) const {
  std::vector<UnrollVector> Out;
  UnrollVector Cur(Trips.size(), 1);
  // Depth-first over divisor choices with product pruning.
  std::function<void(size_t, int64_t)> Rec = [&](size_t P,
                                                 int64_t Remaining) {
    if (P == Trips.size()) {
      if (Remaining == 1)
        Out.push_back(Cur);
      return;
    }
    for (int64_t D : Divisors[P]) {
      if (D < Lo[P] || D > Hi[P])
        continue;
      if (Remaining % D != 0)
        continue;
      Cur[P] = D;
      Rec(P + 1, Remaining / D);
    }
    Cur[P] = 1;
  };
  Rec(0, Product);
  return Out;
}

UnrollVector
UnrollSpace::increase(const UnrollVector &U,
                      const std::vector<unsigned> &Preference) const {
  // Doubling one position doubles the product; try positions in
  // preference order, then the rest outermost-first.
  std::vector<unsigned> Order = Preference;
  for (unsigned P = 0; P != Trips.size(); ++P)
    if (std::find(Order.begin(), Order.end(), P) == Order.end())
      Order.push_back(P);

  // Among the preferred positions, double the one with the smallest
  // current factor (keeps the factor vector balanced, which keeps both
  // memory and operator parallelism growing together).
  unsigned Best = Trips.size();
  int64_t BestFactor = 0;
  for (unsigned P : Order) {
    if (P >= Trips.size())
      continue;
    int64_t Doubled = U[P] * 2;
    if (Doubled > Trips[P] || Trips[P] % Doubled != 0)
      continue;
    if (Best == Trips.size() || U[P] < BestFactor) {
      Best = P;
      BestFactor = U[P];
    }
  }
  if (Best == Trips.size())
    return U;
  UnrollVector Out = U;
  Out[Best] *= 2;
  return Out;
}

UnrollVector UnrollSpace::selectBetween(const UnrollVector &Small,
                                        const UnrollVector &Large,
                                        int64_t Quantum) const {
  int64_t PSmall = unrollProduct(Small);
  int64_t PLarge = unrollProduct(Large);
  if (PLarge <= PSmall || Quantum <= 0)
    return Small;
  int64_t Mid = (PSmall + PLarge) / 2;

  // Componentwise envelope of the two vectors.
  UnrollVector Lo = Small, Hi = Large;
  for (size_t P = 0; P != Lo.size(); ++P) {
    Lo[P] = std::min(Small[P], Large[P]);
    Hi[P] = std::max(Small[P], Large[P]);
  }

  UnrollVector Best = Small;
  int64_t BestDist = -1;
  for (int64_t Product = Quantum; Product < PLarge; Product += Quantum) {
    if (Product <= PSmall)
      continue;
    std::vector<UnrollVector> Candidates =
        candidatesWithProduct(Lo, Hi, Product);
    if (Candidates.empty())
      continue;
    int64_t Dist = Product > Mid ? Product - Mid : Mid - Product;
    if (BestDist < 0 || Dist < BestDist) {
      BestDist = Dist;
      Best = Candidates.front();
    }
  }
  return Best;
}
