//===- HillClimbStrategy.cpp - Neighborhood search over the lattice -------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Steepest-descent local search the old monolith could not express: start
// from the guided walk's Uinit, evaluate the whole divisor-lattice
// neighborhood of the current design (per-loop steps up/down plus the
// Psat-quantum bisection jumps), and move to the best improving neighbor
// until a local optimum or the budget/deadline. Unlike the balance walk
// it never reasons about balance, so it can escape kernels whose balance
// model is misleading — that complementarity is what the portfolio
// strategy exploits.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"

#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Timer.h"

#include <algorithm>
#include <set>

using namespace defacto;

namespace {

class HillClimbStrategy : public SearchStrategy {
public:
  std::string name() const override { return "hillclimb"; }
  ExplorationResult search(const SearchContext &SC) override;
};

} // namespace

ExplorationResult HillClimbStrategy::search(const SearchContext &SC) {
  EvaluationService &Eval = SC.Eval;
  const ExplorerOptions &Opts = Eval.options();
  const UnrollSpace &Space = Eval.space();

  DEFACTO_SCOPED_TIMER("explore.hillclimb");
  ExplorationResult Res;
  Res.Strategy = name();
  Res.Sat = Eval.saturation();
  Res.FullSpaceSize = Space.fullSize();
  Eval.beginBudget(Opts.MaxEvaluations);

  double Capacity = Opts.Platform.CapacitySlices;
  auto fits = [&](const SynthesisEstimate &E) {
    return E.Slices <= Capacity;
  };
  // Fitting beats non-fitting; among fitting designs fewer cycles, then
  // fewer slices, then the lexicographically smaller vector; among
  // non-fitting designs smaller area first (climb toward the device).
  auto better = [&](const UnrollVector &AU, const SynthesisEstimate &AE,
                    const UnrollVector &BU, const SynthesisEstimate &BE) {
    if (fits(AE) != fits(BE))
      return fits(AE);
    if (fits(AE)) {
      if (AE.Cycles != BE.Cycles)
        return AE.Cycles < BE.Cycles;
      if (AE.Slices != BE.Slices)
        return AE.Slices < BE.Slices;
      return AU < BU;
    }
    if (AE.Slices != BE.Slices)
      return AE.Slices < BE.Slices;
    if (AE.Cycles != BE.Cycles)
      return AE.Cycles < BE.Cycles;
    return AU < BU;
  };

  Status Stop = Status::ok();
  auto isStop = [](const Status &S) {
    return S.code() == ErrorCode::DeadlineExceeded ||
           S.code() == ErrorCode::BudgetExhausted;
  };
  auto record = [&](const UnrollVector &U,
                    const char *Role) -> Expected<SynthesisEstimate> {
    Expected<SynthesisEstimate> Est = Eval.evaluateChecked(U);
    if (!Est) {
      Res.Trace += "FAIL " + unrollVectorToString(U) + " [" + Role + "] " +
                   Est.status().toString() + "\n";
      Eval.traceFailure(U, Role, Est.status());
      return Est;
    }
    for (const EvaluatedDesign &D : Res.Visited)
      if (D.U == U)
        return Est;
    Res.Visited.push_back({U, *Est, Role, DesignPoint(U)});
    Res.Trace += "eval " + unrollVectorToString(U) + " [" + Role +
                 "]: " + Est->toString() + "\n";
    return Est;
  };

  bool HaveBaseline = false;
  if (Expected<SynthesisEstimate> Base = record(Space.base(), "baseline")) {
    Res.BaselineEstimate = *Base;
    HaveBaseline = true;
    Eval.traceDecision(Space.base(), *Base, "baseline", "baseline");
  } else if (isStop(Base.status())) {
    Stop = Base.status();
  }

  // The neighborhood of a design: every single-loop divisor step up or
  // down, the preference-ordered Increase, and the Psat-quantum bisection
  // jumps toward the base and the maximum. Deterministic generation
  // order; candidates outside the space are dropped.
  int64_t Quantum = std::max<int64_t>(1, Eval.saturation().Psat);
  auto neighbors = [&](const UnrollVector &U) {
    std::vector<UnrollVector> Out;
    std::set<UnrollVector> Seen{U};
    auto add = [&](UnrollVector N) {
      if (Space.isCandidate(N) && Seen.insert(N).second)
        Out.push_back(std::move(N));
    };
    for (unsigned P = 0; P != Space.numLoops(); ++P) {
      std::vector<int64_t> Divs = divisorsOf(Space.trip(P));
      std::sort(Divs.begin(), Divs.end());
      auto It = std::find(Divs.begin(), Divs.end(), U[P]);
      if (It == Divs.end())
        continue;
      if (std::next(It) != Divs.end()) {
        UnrollVector Up = U;
        Up[P] = *std::next(It);
        add(std::move(Up));
      }
      if (It != Divs.begin()) {
        UnrollVector Down = U;
        Down[P] = *std::prev(It);
        add(std::move(Down));
      }
    }
    add(Space.increase(U, Eval.preference()));
    add(Space.selectBetween(Space.base(), U, Quantum));
    add(Space.selectBetween(U, Space.max(), Quantum));
    return Out;
  };

  UnrollVector Curr = guidedInitialVector(Eval);
  std::optional<SynthesisEstimate> CurrEst;
  if (Stop.isOk()) {
    if (Expected<SynthesisEstimate> Est = record(Curr, "start")) {
      CurrEst = *Est;
      Eval.traceDecision(Curr, *Est, "start", "climb-start");
    } else if (isStop(Est.status())) {
      Stop = Est.status();
    }
  }

  // If Uinit itself failed (non-terminally), fall back to climbing from
  // the baseline.
  if (Stop.isOk() && !CurrEst && HaveBaseline) {
    Curr = Space.base();
    CurrEst = Res.BaselineEstimate;
  }

  while (Stop.isOk() && CurrEst) {
    UnrollVector BestU;
    SynthesisEstimate BestE;
    bool HaveMove = false;
    for (const UnrollVector &N : neighbors(Curr)) {
      Expected<SynthesisEstimate> Est = record(N, "climb");
      if (!Est) {
        if (isStop(Est.status())) {
          Stop = Est.status();
          break;
        }
        continue;
      }
      if (better(N, *Est, Curr, *CurrEst) &&
          (!HaveMove || better(N, *Est, BestU, BestE))) {
        BestU = N;
        BestE = *Est;
        HaveMove = true;
      }
    }
    if (!Stop.isOk())
      break;
    if (!HaveMove) {
      Res.Trace += "local optimum at " + unrollVectorToString(Curr) + "\n";
      Eval.traceDecision(Curr, *CurrEst, "climb", "local-optimum");
      break;
    }
    Res.Trace += "move " + unrollVectorToString(Curr) + " -> " +
                 unrollVectorToString(BestU) + "\n";
    Eval.traceDecision(BestU, BestE, "climb", "move");
    Curr = BestU;
    CurrEst = BestE;
  }

  if (!Stop.isOk())
    Res.Trace += "stop at " + unrollVectorToString(Curr) + ": " +
                 Stop.toString() + "\n";

  // Select the best fitting design ever evaluated (baseline included) —
  // the climb path is monotone, but a fitting design can be beaten by
  // none and the final Curr may not fit.
  UnrollVector SelU;
  SynthesisEstimate SelE;
  bool HaveSel = false;
  auto consider = [&](const UnrollVector &U, const SynthesisEstimate &E) {
    if (!fits(E))
      return;
    if (!HaveSel || better(U, E, SelU, SelE)) {
      SelU = U;
      SelE = E;
      HaveSel = true;
    }
  };
  for (const EvaluatedDesign &D : Res.Visited)
    consider(D.U, D.Estimate);
  if (HaveSel) {
    Res.Selected = SelU;
    Res.SelectedEstimate = SelE;
  } else if (HaveBaseline) {
    Res.Selected = Space.base();
    Res.SelectedEstimate = Res.BaselineEstimate;
    Res.SelectedFits = false;
    Res.Trace += "no design fits this device\n";
  } else {
    Res.Selected = Space.base();
    Res.SelectedFits = false;
    Res.Trace += "no design could be evaluated\n";
  }

  Res.Failures = Eval.failures();
  Res.DroppedFailures = Eval.failuresDropped();
  if (!Stop.isOk() && isStop(Stop))
    Res.Failures.push_back({Curr, 0, Stop, DesignPoint(Curr)});
  Res.Degraded = !Stop.isOk() || !Res.Failures.empty();
  Res.EvaluationsUsed = Eval.evaluationsUsed();
  if (Res.Degraded)
    Res.Trace += "degraded exploration: " +
                 std::to_string(Res.Failures.size()) +
                 " failure(s) logged\n";
  Eval.traceSelection(Res);
  Eval.endBudget();
  Eval.drainSpeculation();
  return Res;
}

std::unique_ptr<SearchStrategy> defacto::createHillClimbStrategy() {
  return std::make_unique<HillClimbStrategy>();
}
