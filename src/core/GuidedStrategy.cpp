//===- GuidedStrategy.cpp - The paper's balance-guided walk ---------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The Figure-2 algorithm as a SearchStrategy. The walk is the historical
// DesignSpaceExplorer::run() body verbatim — every trace string, decision
// event, and selection tie-break is preserved so the engine's
// bit-identical decisionDigest() guarantee carries across the refactor.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"

#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

using namespace defacto;

DEFACTO_STATISTIC(NumExplorations, "explore", "runs",
                  "guided explorations started");
DEFACTO_STATISTIC(NumEvaluationsSpent, "explore", "evaluations",
                  "estimator attempts charged to exploration budgets");
DEFACTO_STATISTIC(NumDegraded, "explore", "degraded",
                  "explorations that finished degraded");
DEFACTO_STATISTIC(FrontierSize, "explore", "frontier_size",
                  "candidates in the most recent speculative frontier "
                  "(gauge)");

UnrollVector defacto::guidedInitialVector(const EvaluationService &Eval) {
  const UnrollSpace &Space = Eval.space();
  const SaturationInfo &Sat = Eval.saturation();
  const std::vector<unsigned> &Preference = Eval.preference();
  unsigned N = Space.numLoops();
  UnrollVector U(N, 1);
  if (N == 0)
    return U;
  int64_t Psat = Sat.Psat;

  // Single dependence-free, memory-varying loop that admits the whole
  // saturation product: Sat_i.
  for (unsigned P : Preference) {
    if (P >= Sat.MemoryVarying.size() || !Sat.MemoryVarying[P])
      continue;
    if (Space.trip(P) % Psat == 0) {
      U[P] = Psat;
      return U;
    }
  }

  // Otherwise distribute the product across loops in preference order,
  // larger shares to earlier (larger-distance) loops.
  int64_t Remaining = Psat;
  for (unsigned P : Preference) {
    if (Remaining == 1)
      break;
    int64_t BestDiv = 1;
    for (int64_t D : divisorsOf(Space.trip(P)))
      if (Remaining % D == 0)
        BestDiv = std::max(BestDiv, D);
    U[P] = BestDiv;
    Remaining /= BestDiv;
  }
  return U;
}

std::vector<UnrollVector> defacto::guidedFrontier(const EvaluationService &Eval) {
  const UnrollSpace &Space = Eval.space();
  const SaturationInfo &Sat = Eval.saturation();
  const std::vector<unsigned> &Preference = Eval.preference();
  std::vector<UnrollVector> Frontier;
  std::set<UnrollVector> Seen;
  auto add = [&](const UnrollVector &U) {
    if (Space.isCandidate(U) && Seen.insert(U).second)
      Frontier.push_back(U);
  };

  add(Space.base());
  UnrollVector Uinit = guidedInitialVector(Eval);
  add(Uinit);

  // The Increase doubling chain from Uinit: deterministic, independent
  // of any estimate.
  std::vector<UnrollVector> Chain{Uinit};
  UnrollVector U = Uinit;
  for (unsigned Step = 0; Step != 64; ++Step) {
    UnrollVector Next = Space.increase(U, Preference);
    if (Next == U)
      break;
    add(Next);
    Chain.push_back(Next);
    U = Next;
  }

  // The SelectBetween midpoint closure: every design a bisection between
  // two frontier points can land on, in Psat multiples. Bounded depth —
  // the bisection halves the product gap each level.
  int64_t Quantum = std::max<int64_t>(1, Sat.Psat);
  std::function<void(const UnrollVector &, const UnrollVector &, unsigned)>
      Closure = [&](const UnrollVector &Lo, const UnrollVector &Hi,
                    unsigned Depth) {
        if (Depth == 0)
          return;
        UnrollVector Mid = Space.selectBetween(Lo, Hi, Quantum);
        if (Mid == Lo || Mid == Hi)
          return;
        add(Mid);
        Closure(Lo, Mid, Depth - 1);
        Closure(Mid, Hi, Depth - 1);
      };
  Closure(Space.base(), Uinit, 5);
  for (size_t I = 0; I + 1 < Chain.size(); ++I)
    Closure(Chain[I], Chain[I + 1], 5);

  // Cap speculative work: the walk evaluates what the frontier missed.
  if (Frontier.size() > 96)
    Frontier.resize(96);
  return Frontier;
}

namespace {

class GuidedStrategy : public SearchStrategy {
public:
  std::string name() const override { return "guided"; }
  ExplorationResult search(const SearchContext &SC) override;
};

} // namespace

ExplorationResult GuidedStrategy::search(const SearchContext &SC) {
  EvaluationService &Eval = SC.Eval;
  const ExplorerOptions &Opts = Eval.options();
  const UnrollSpace &Space = Eval.space();
  const SaturationInfo &Sat = Eval.saturation();

  DEFACTO_SCOPED_TIMER("explore.run");
  TraceSpan RunSpan(Eval.recorder(), Eval.trackLabel(), "phase",
                    "explore.run");
  ++NumExplorations;
  ExplorationResult Res;
  Res.Strategy = name();
  Res.Sat = Sat;
  Res.FullSpaceSize = Space.fullSize();
  Eval.beginBudget(Opts.MaxEvaluations);

  // Parallel mode: overlap the walk with speculative estimation of its
  // enumerable frontier. The walk below is unchanged — it consumes the
  // memoized results in its own order, so selection is deterministic.
  if (Eval.parallel()) {
    std::vector<UnrollVector> Frontier = guidedFrontier(Eval);
    FrontierSize.set(Frontier.size());
    Eval.prefetch(Frontier);
  }

  bool HaveBaseline = false;
  if (Expected<SynthesisEstimate> Base =
          Eval.evaluateChecked(Space.base())) {
    Res.BaselineEstimate = *Base;
    HaveBaseline = true;
    Eval.traceDecision(Space.base(), *Base, "baseline", "baseline");
  } else {
    Res.Trace += "FAIL " + unrollVectorToString(Space.base()) +
                 " [baseline] " + Base.status().toString() + "\n";
    Eval.traceFailure(Space.base(), "baseline", Base.status());
  }

  auto record = [&](const UnrollVector &U,
                    const char *Role) -> Expected<SynthesisEstimate> {
    Expected<SynthesisEstimate> Est = Eval.evaluateChecked(U);
    if (!Est) {
      Res.Trace += "FAIL " + unrollVectorToString(U) + " [" + Role + "] " +
                   Est.status().toString() + "\n";
      Eval.traceFailure(U, Role, Est.status());
      return Est;
    }
    for (const EvaluatedDesign &D : Res.Visited)
      if (D.U == U)
        return Est;
    Res.Visited.push_back({U, *Est, Role, DesignPoint(U)});
    Res.Trace += "eval " + unrollVectorToString(U) + " [" + Role +
                 "]: " + Est->toString() + "\n";
    return Est;
  };
  // Deadline or budget exhaustion: the search stops where it is and the
  // best already-evaluated design is selected.
  auto isStop = [](const Status &S) {
    return S.code() == ErrorCode::DeadlineExceeded ||
           S.code() == ErrorCode::BudgetExhausted;
  };

  double Capacity = Opts.Platform.CapacitySlices;
  int64_t Quantum = std::max<int64_t>(1, Sat.Psat);

  UnrollVector Uinit = guidedInitialVector(Eval);
  UnrollVector Ucurr = Uinit;
  UnrollVector Ucb = Space.base();
  UnrollVector Umb = Space.max();
  bool SeenComputeBound = false;
  bool SeenMemoryBound = false;
  bool Ok = false;
  Status Stop = Status::ok();
  std::set<UnrollVector> Visited;
  const char *Role = "Uinit";

  while (!Ok) {
    if (!Visited.insert(Ucurr).second) {
      Res.Trace += "revisit of " + unrollVectorToString(Ucurr) +
                   "; search converged\n";
      Ok = true;
      break;
    }
    const char *VisitRole = Role;
    Expected<SynthesisEstimate> EstOr = record(Ucurr, VisitRole);
    if (!EstOr) {
      // Without an estimate the walk cannot steer by balance; stop here
      // and fall back to the best design evaluated so far.
      Stop = EstOr.status();
      break;
    }
    const SynthesisEstimate Est = *EstOr;
    double B = Est.Balance;

    if (Est.Slices > Capacity) {
      if (Ucurr == Uinit) {
        // FindLargestFit(Ubase, Uinit): the largest design not exceeding
        // the device, regardless of balance.
        Res.Trace += "Uinit exceeds capacity; FindLargestFit\n";
        Eval.traceDecision(Ucurr, Est, VisitRole, "find-largest-fit");
        std::vector<UnrollVector> Candidates;
        for (const UnrollVector &C : Space.allCandidates())
          if (UnrollSpace::between(C, Space.base(), Uinit) && C != Uinit)
            Candidates.push_back(C);
        std::stable_sort(Candidates.begin(), Candidates.end(),
                         [](const UnrollVector &A, const UnrollVector &B2) {
                           return unrollProduct(A) > unrollProduct(B2);
                         });
        Eval.prefetch(Candidates);
        Ucurr = Space.base();
        for (const UnrollVector &C : Candidates) {
          Expected<SynthesisEstimate> Fit = record(C, "fit");
          if (!Fit) {
            if (isStop(Fit.status())) {
              Stop = Fit.status();
              break;
            }
            continue; // This candidate failed; try the next smaller one.
          }
          if (Fit->Slices <= Capacity) {
            Eval.traceDecision(C, *Fit, "fit", "fit-accept");
            Ucurr = C;
            break;
          }
          Eval.traceDecision(C, *Fit, "fit", "fit-reject");
        }
        if (!Stop.isOk())
          break;
        Ok = true;
        continue;
      }
      Res.Trace += "exceeds capacity; bisect toward " +
                   unrollVectorToString(Ucb) + "\n";
      Eval.traceDecision(Ucurr, Est, VisitRole, "capacity-select-between");
      UnrollVector Next = Space.selectBetween(Ucb, Ucurr, Quantum);
      if (Next == Ucb)
        Ok = true;
      Ucurr = Next;
      Role = "bisect";
      continue;
    }

    if (std::abs(B - 1.0) <= Opts.BalanceTolerance) {
      Res.Trace += "balanced; done\n";
      Eval.traceDecision(Ucurr, Est, VisitRole, "balanced-stop");
      Ok = true;
      continue;
    }

    if (B < 1.0) {
      SeenMemoryBound = true;
      Umb = Ucurr;
      if (Ucurr == Uinit) {
        // Memory bound at the saturation point: more unrolling cannot
        // raise the fetch rate (Observation 1); stop. Every design above
        // Uinit is pruned by that monotonicity argument.
        Res.Trace += "memory bound at Uinit; done\n";
        Eval.traceDecision(Ucurr, Est, VisitRole, "memory-bound-stop");
        Ok = true;
        continue;
      }
      Eval.traceDecision(Ucurr, Est, VisitRole, "select-between");
      UnrollVector Next = Space.selectBetween(Ucb, Umb, Quantum);
      if (Next == Ucb)
        Ok = true;
      Ucurr = Next;
      Role = "bisect";
      continue;
    }

    // Compute bound.
    SeenComputeBound = true;
    Ucb = Ucurr;
    if (!SeenMemoryBound) {
      UnrollVector Next = Space.increase(Ucurr, Eval.preference());
      if (Next == Ucurr) {
        Res.Trace += "no larger candidate; done\n";
        Eval.traceDecision(Ucurr, Est, VisitRole, "space-exhausted-stop");
        Ok = true;
        continue;
      }
      Eval.traceDecision(Ucurr, Est, VisitRole, "increase");
      Ucurr = Next;
      Role = "increase";
      continue;
    }
    Eval.traceDecision(Ucurr, Est, VisitRole, "select-between");
    UnrollVector Next = Space.selectBetween(Ucb, Umb, Quantum);
    if (Next == Ucb)
      Ok = true;
    Ucurr = Next;
    Role = "bisect";
  }

  (void)SeenComputeBound;
  if (!Stop.isOk())
    Res.Trace += "stop at " + unrollVectorToString(Ucurr) + ": " +
                 Stop.toString() + "\n";

  // Selection. A converged walk selects its final design if that design
  // was successfully evaluated, fits, and no already-evaluated design
  // strictly beats it (the balance walk can legally converge at a point
  // slower than one it passed through — never hand back a design worse
  // than one in hand). Any other outcome — cut-short search, failed or
  // oversized final design — falls back to the best successfully
  // evaluated design, deterministically: fewest cycles, then fewest
  // slices, then lexicographically smallest vector; the baseline
  // competes too.
  auto fits = [&](const SynthesisEstimate &E) {
    return E.Slices <= Capacity;
  };
  UnrollVector BestU;
  SynthesisEstimate BestE;
  bool HaveBest = false;
  auto consider = [&](const UnrollVector &U, const SynthesisEstimate &E) {
    if (!fits(E))
      return;
    bool Better =
        !HaveBest || E.Cycles < BestE.Cycles ||
        (E.Cycles == BestE.Cycles &&
         (E.Slices < BestE.Slices ||
          (E.Slices == BestE.Slices && U < BestU)));
    if (Better) {
      BestU = U;
      BestE = E;
      HaveBest = true;
    }
  };
  for (const EvaluatedDesign &D : Res.Visited)
    consider(D.U, D.Estimate);
  if (HaveBaseline)
    consider(Space.base(), Res.BaselineEstimate);

  bool Selected = false;
  if (Ok) {
    if (std::optional<SynthesisEstimate> SelEst = Eval.evaluated(Ucurr);
        SelEst && fits(*SelEst)) {
      const SynthesisEstimate &Sel = *SelEst;
      if (HaveBest && (BestE.Cycles < Sel.Cycles ||
                       (BestE.Cycles == Sel.Cycles &&
                        BestE.Slices < Sel.Slices))) {
        Res.Trace += "converged design beaten by an evaluated design; "
                     "best evaluated design selected\n";
        Res.Selected = BestU;
        Res.SelectedEstimate = BestE;
      } else {
        Res.Selected = Ucurr;
        Res.SelectedEstimate = Sel;
      }
      Selected = true;
    }
  }
  if (!Selected) {
    if (HaveBest) {
      Res.Trace += Ok ? "selected design does not fit; "
                        "best evaluated design selected\n"
                      : "search cut short; best evaluated design selected\n";
      Res.Selected = BestU;
      Res.SelectedEstimate = BestE;
    } else if (HaveBaseline) {
      Res.Selected = Space.base();
      Res.SelectedEstimate = Res.BaselineEstimate;
      Res.SelectedFits = false;
      Res.Trace += "no design fits this device (baseline alone needs " +
                   formatDouble(Res.BaselineEstimate.Slices, 0) +
                   " slices)\n";
    } else {
      // Not even the baseline could be estimated.
      Res.Selected = Space.base();
      Res.SelectedFits = false;
      Res.Trace += "no design could be evaluated\n";
    }
  }

  Res.Failures = Eval.failures();
  Res.DroppedFailures = Eval.failuresDropped();
  if (!Stop.isOk() && isStop(Stop))
    Res.Failures.push_back({Ucurr, 0, Stop, DesignPoint(Ucurr)});
  Res.Degraded = !Ok || !Res.Failures.empty();
  Res.EvaluationsUsed = Eval.evaluationsUsed();
  if (Res.Degraded) {
    Res.Trace += "degraded exploration: " +
                 std::to_string(Res.Failures.size()) +
                 " failure(s) logged\n";
    ++NumDegraded;
  }
  NumEvaluationsSpent.add(Eval.evaluationsUsed());
  Eval.traceSelection(Res);
  Eval.endBudget();
  // Leftover speculative tasks reference the service; settle them before
  // handing the result back.
  Eval.drainSpeculation();
  return Res;
}

std::unique_ptr<SearchStrategy> defacto::createGuidedStrategy() {
  return std::make_unique<GuidedStrategy>();
}
