//===- Explorer.cpp -------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"

#include "defacto/Analysis/DependenceAnalysis.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Random.h"
#include "defacto/Support/Table.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace defacto;

DesignSpaceExplorer::DesignSpaceExplorer(const Kernel &Source,
                                         ExplorerOptions Opts)
    : Source(Source), Opts(std::move(Opts)),
      Sat(computeSaturation(Source, this->Opts.Platform.NumMemories)),
      Space(Sat.Trips.empty() ? std::vector<int64_t>{1} : Sat.Trips) {
  // Build the unroll preference order (§5.3): loops carrying no
  // dependence first (their unrolled iterations are fully parallel),
  // then loops by decreasing minimum carried distance; within a class,
  // loops that add memory parallelism come first.
  Kernel Analyzed = Source.clone();
  DependenceInfo DI = DependenceInfo::compute(Analyzed);
  unsigned N = Sat.Trips.size();
  struct Rank {
    unsigned Pos;
    bool DepFree;
    bool MemVarying;
    int64_t MinDist;
  };
  std::vector<Rank> Ranks;
  for (unsigned P = 0; P != N; ++P) {
    Rank R;
    R.Pos = P;
    R.DepFree = DI.carriesNoDependence(P);
    R.MemVarying = P < Sat.MemoryVarying.size() && Sat.MemoryVarying[P];
    R.MinDist = DI.minCarriedDistance(P).value_or(0);
    Ranks.push_back(R);
  }
  std::stable_sort(Ranks.begin(), Ranks.end(), [](const Rank &A,
                                                  const Rank &B) {
    if (A.DepFree != B.DepFree)
      return A.DepFree;
    if (A.MemVarying != B.MemVarying)
      return A.MemVarying;
    return A.MinDist > B.MinDist;
  });
  for (const Rank &R : Ranks)
    Preference.push_back(R.Pos);
}

UnrollVector DesignSpaceExplorer::initialVector() const {
  unsigned N = Space.numLoops();
  UnrollVector U(N, 1);
  if (N == 0)
    return U;
  int64_t Psat = Sat.Psat;

  // Single dependence-free, memory-varying loop that admits the whole
  // saturation product: Sat_i.
  for (unsigned P : Preference) {
    bool DepFreeFirst = P == Preference.front();
    (void)DepFreeFirst;
    if (P >= Sat.MemoryVarying.size() || !Sat.MemoryVarying[P])
      continue;
    if (Space.trip(P) % Psat == 0) {
      U[P] = Psat;
      return U;
    }
  }

  // Otherwise distribute the product across loops in preference order,
  // larger shares to earlier (larger-distance) loops.
  int64_t Remaining = Psat;
  for (unsigned P : Preference) {
    if (Remaining == 1)
      break;
    int64_t BestDiv = 1;
    for (int64_t D : divisorsOf(Space.trip(P)))
      if (Remaining % D == 0)
        BestDiv = std::max(BestDiv, D);
    U[P] = BestDiv;
    Remaining /= BestDiv;
  }
  return U;
}

SynthesisEstimate
DesignSpaceExplorer::evaluateUncached(const UnrollVector &U) {
  TransformOptions TO = Opts.BaseTransforms;
  TO.Unroll = U;
  TO.Layout.NumMemories = Opts.Platform.NumMemories;

  TransformResult R = applyPipeline(Source, TO);
  SynthesisEstimate Est = estimateDesign(R.K, Opts.Platform);

  // §5.4: shrink reuse chains until the register budget is met. Less
  // reuse is exploited, slowing the fetch rate; the smaller design may
  // then afford more operator parallelism.
  if (Opts.RegisterCap) {
    unsigned ChainLimit = TO.SR.MaxChainLength;
    while (Est.Registers > *Opts.RegisterCap && ChainLimit > 1) {
      ChainLimit /= 2;
      TO.SR.MaxChainLength = ChainLimit;
      TransformResult Capped = applyPipeline(Source, TO);
      Est = estimateDesign(Capped.K, Opts.Platform);
    }
  }
  return Est;
}

std::optional<SynthesisEstimate>
DesignSpaceExplorer::evaluate(const UnrollVector &U) {
  if (!Space.isCandidate(U))
    return std::nullopt;
  auto It = Cache.find(U);
  if (It != Cache.end())
    return It->second;
  SynthesisEstimate Est = evaluateUncached(U);
  Cache.emplace(U, Est);
  return Est;
}

ExplorationResult DesignSpaceExplorer::run() {
  ExplorationResult Res;
  Res.Sat = Sat;
  Res.FullSpaceSize = Space.fullSize();
  Res.BaselineEstimate = *evaluate(Space.base());

  auto record = [&](const UnrollVector &U,
                    const char *Role) -> SynthesisEstimate {
    SynthesisEstimate Est = *evaluate(U);
    for (const EvaluatedDesign &D : Res.Visited)
      if (D.U == U)
        return Est;
    Res.Visited.push_back({U, Est, Role});
    Res.Trace += "eval " + unrollVectorToString(U) + " [" + Role +
                 "]: " + Est.toString() + "\n";
    return Est;
  };

  double Capacity = Opts.Platform.CapacitySlices;
  int64_t Quantum = std::max<int64_t>(1, Sat.Psat);

  UnrollVector Uinit = initialVector();
  UnrollVector Ucurr = Uinit;
  UnrollVector Ucb = Space.base();
  UnrollVector Umb = Space.max();
  bool SeenComputeBound = false;
  bool SeenMemoryBound = false;
  bool Ok = false;
  std::set<UnrollVector> Visited;
  const char *Role = "Uinit";

  while (!Ok && Res.Visited.size() < Opts.MaxEvaluations) {
    if (!Visited.insert(Ucurr).second) {
      Res.Trace += "revisit of " + unrollVectorToString(Ucurr) +
                   "; search converged\n";
      break;
    }
    const SynthesisEstimate Est = record(Ucurr, Role);
    double B = Est.Balance;

    if (Est.Slices > Capacity) {
      if (Ucurr == Uinit) {
        // FindLargestFit(Ubase, Uinit): the largest design not exceeding
        // the device, regardless of balance.
        Res.Trace += "Uinit exceeds capacity; FindLargestFit\n";
        std::vector<UnrollVector> Candidates;
        for (const UnrollVector &C : Space.allCandidates())
          if (UnrollSpace::between(C, Space.base(), Uinit) && C != Uinit)
            Candidates.push_back(C);
        std::stable_sort(Candidates.begin(), Candidates.end(),
                         [](const UnrollVector &A, const UnrollVector &B2) {
                           return unrollProduct(A) > unrollProduct(B2);
                         });
        Ucurr = Space.base();
        for (const UnrollVector &C : Candidates) {
          if (Res.Visited.size() >= Opts.MaxEvaluations)
            break;
          if (record(C, "fit").Slices <= Capacity) {
            Ucurr = C;
            break;
          }
        }
        Ok = true;
        continue;
      }
      Res.Trace += "exceeds capacity; bisect toward " +
                   unrollVectorToString(Ucb) + "\n";
      UnrollVector Next = Space.selectBetween(Ucb, Ucurr, Quantum);
      if (Next == Ucb)
        Ok = true;
      Ucurr = Next;
      Role = "bisect";
      continue;
    }

    if (std::abs(B - 1.0) <= Opts.BalanceTolerance) {
      Res.Trace += "balanced; done\n";
      Ok = true;
      continue;
    }

    if (B < 1.0) {
      SeenMemoryBound = true;
      Umb = Ucurr;
      if (Ucurr == Uinit) {
        // Memory bound at the saturation point: more unrolling cannot
        // raise the fetch rate (Observation 1); stop.
        Res.Trace += "memory bound at Uinit; done\n";
        Ok = true;
        continue;
      }
      UnrollVector Next = Space.selectBetween(Ucb, Umb, Quantum);
      if (Next == Ucb)
        Ok = true;
      Ucurr = Next;
      Role = "bisect";
      continue;
    }

    // Compute bound.
    SeenComputeBound = true;
    Ucb = Ucurr;
    if (!SeenMemoryBound) {
      UnrollVector Next = Space.increase(Ucurr, Preference);
      if (Next == Ucurr) {
        Res.Trace += "no larger candidate; done\n";
        Ok = true;
        continue;
      }
      Ucurr = Next;
      Role = "increase";
      continue;
    }
    UnrollVector Next = Space.selectBetween(Ucb, Umb, Quantum);
    if (Next == Ucb)
      Ok = true;
    Ucurr = Next;
    Role = "bisect";
  }

  // The selected design must fit; fall back to the baseline otherwise.
  std::optional<SynthesisEstimate> Sel = evaluate(Ucurr);
  if (!Sel || Sel->Slices > Capacity) {
    Ucurr = Space.base();
    Sel = evaluate(Ucurr);
    Res.Trace += "selected design does not fit; baseline selected\n";
    if (Sel->Slices > Capacity) {
      Res.SelectedFits = false;
      Res.Trace += "no design fits this device (baseline alone needs " +
                   formatDouble(Sel->Slices, 0) + " slices)\n";
    }
  }
  (void)SeenComputeBound;
  Res.Selected = Ucurr;
  Res.SelectedEstimate = *Sel;
  return Res;
}

namespace {

ExplorationResult pickBest(const Kernel &Source,
                           const ExplorerOptions &Opts,
                           const std::vector<UnrollVector> &Candidates,
                           const char *Role) {
  DesignSpaceExplorer Ex(Source, Opts);
  ExplorationResult Res;
  Res.Sat = Ex.saturation();
  Res.FullSpaceSize = Ex.space().fullSize();
  Res.BaselineEstimate = *Ex.evaluate(Ex.space().base());

  for (const UnrollVector &U : Candidates) {
    auto Est = Ex.evaluate(U);
    if (!Est)
      continue;
    Res.Visited.push_back({U, *Est, Role});
  }

  // Fastest fitting design; among designs within 5% of it, the smallest.
  double Capacity = Opts.Platform.CapacitySlices;
  const EvaluatedDesign *Fastest = nullptr;
  for (const EvaluatedDesign &D : Res.Visited) {
    if (D.Estimate.Slices > Capacity)
      continue;
    if (!Fastest || D.Estimate.Cycles < Fastest->Estimate.Cycles)
      Fastest = &D;
  }
  const EvaluatedDesign *Best = Fastest;
  if (Fastest) {
    for (const EvaluatedDesign &D : Res.Visited) {
      if (D.Estimate.Slices > Capacity)
        continue;
      if (D.Estimate.Cycles <=
              static_cast<uint64_t>(Fastest->Estimate.Cycles * 1.05) &&
          D.Estimate.Slices < Best->Estimate.Slices)
        Best = &D;
    }
  }
  if (Best) {
    Res.Selected = Best->U;
    Res.SelectedEstimate = Best->Estimate;
  } else {
    Res.Selected = Ex.space().base();
    Res.SelectedEstimate = Res.BaselineEstimate;
  }
  return Res;
}

} // namespace

ExplorationResult defacto::exploreExhaustive(const Kernel &Source,
                                             const ExplorerOptions &Opts) {
  DesignSpaceExplorer Ex(Source, Opts);
  return pickBest(Source, Opts, Ex.space().allCandidates(), "exhaustive");
}

ExplorationResult defacto::exploreRandom(const Kernel &Source,
                                         const ExplorerOptions &Opts,
                                         unsigned Samples, uint64_t Seed) {
  DesignSpaceExplorer Ex(Source, Opts);
  std::vector<UnrollVector> All = Ex.space().allCandidates();
  SplitMix64 Rng(Seed);
  std::vector<UnrollVector> Picked;
  std::set<uint64_t> Chosen;
  while (Picked.size() < Samples && Chosen.size() < All.size()) {
    uint64_t I = Rng.nextBelow(All.size());
    if (Chosen.insert(I).second)
      Picked.push_back(All[I]);
  }
  return pickBest(Source, Opts, Picked, "random");
}
