//===- Explorer.cpp -------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"

#include "defacto/Analysis/DependenceAnalysis.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Random.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

using namespace defacto;

DEFACTO_STATISTIC(NumExplorations, "explore", "runs",
                  "guided explorations started");
DEFACTO_STATISTIC(NumEvaluationsSpent, "explore", "evaluations",
                  "estimator attempts charged to exploration budgets");
DEFACTO_STATISTIC(NumSpeculated, "explore", "speculated",
                  "candidate designs submitted to the worker pool");
DEFACTO_STATISTIC(NumDegraded, "explore", "degraded",
                  "explorations that finished degraded");

DesignSpaceExplorer::DesignSpaceExplorer(const Kernel &Source,
                                         ExplorerOptions Opts)
    : Source(Source), Opts(std::move(Opts)),
      Sat(computeSaturation(Source, this->Opts.Platform.NumMemories)),
      Space(Sat.Trips.empty() ? std::vector<int64_t>{1} : Sat.Trips),
      Ctx(Source), SourceFp(kernelFingerprint(Source)) {
  if (!this->Opts.Estimator)
    this->Opts.Estimator = [](const Kernel &K, const TargetPlatform &P) {
      return estimateDesignChecked(K, P);
    };
  if (!this->Opts.Clock)
    this->Opts.Clock = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  if (!this->Opts.Sleep)
    this->Opts.Sleep = [](double Seconds) {
      if (Seconds > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(Seconds));
    };
  Estimates = this->Opts.Cache ? this->Opts.Cache
                               : std::make_shared<EstimateCache>();
  Track = this->Opts.TraceLabel.empty() ? Source.name()
                                        : this->Opts.TraceLabel;
  StartSeconds = this->Opts.Clock();
  // Build the unroll preference order (§5.3): loops carrying no
  // dependence first (their unrolled iterations are fully parallel),
  // then loops by decreasing minimum carried distance; within a class,
  // loops that add memory parallelism come first. The dependence
  // analysis runs once, on the shared normalized base kernel — it is
  // unroll-invariant, so no per-design path recomputes it.
  Kernel Analyzed = Ctx.normalized().clone();
  DependenceInfo DI = DependenceInfo::compute(Analyzed);
  unsigned N = Sat.Trips.size();
  struct Rank {
    unsigned Pos;
    bool DepFree;
    bool MemVarying;
    int64_t MinDist;
  };
  std::vector<Rank> Ranks;
  for (unsigned P = 0; P != N; ++P) {
    Rank R;
    R.Pos = P;
    R.DepFree = DI.carriesNoDependence(P);
    R.MemVarying = P < Sat.MemoryVarying.size() && Sat.MemoryVarying[P];
    R.MinDist = DI.minCarriedDistance(P).value_or(0);
    Ranks.push_back(R);
  }
  std::stable_sort(Ranks.begin(), Ranks.end(), [](const Rank &A,
                                                  const Rank &B) {
    if (A.DepFree != B.DepFree)
      return A.DepFree;
    if (A.MemVarying != B.MemVarying)
      return A.MemVarying;
    return A.MinDist > B.MinDist;
  });
  for (const Rank &R : Ranks)
    Preference.push_back(R.Pos);
}

DesignSpaceExplorer::~DesignSpaceExplorer() { drainSpeculation(); }

UnrollVector DesignSpaceExplorer::initialVector() const {
  unsigned N = Space.numLoops();
  UnrollVector U(N, 1);
  if (N == 0)
    return U;
  int64_t Psat = Sat.Psat;

  // Single dependence-free, memory-varying loop that admits the whole
  // saturation product: Sat_i.
  for (unsigned P : Preference) {
    bool DepFreeFirst = P == Preference.front();
    (void)DepFreeFirst;
    if (P >= Sat.MemoryVarying.size() || !Sat.MemoryVarying[P])
      continue;
    if (Space.trip(P) % Psat == 0) {
      U[P] = Psat;
      return U;
    }
  }

  // Otherwise distribute the product across loops in preference order,
  // larger shares to earlier (larger-distance) loops.
  int64_t Remaining = Psat;
  for (unsigned P : Preference) {
    if (Remaining == 1)
      break;
    int64_t BestDiv = 1;
    for (int64_t D : divisorsOf(Space.trip(P)))
      if (Remaining % D == 0)
        BestDiv = std::max(BestDiv, D);
    U[P] = BestDiv;
    Remaining /= BestDiv;
  }
  return U;
}

std::string DesignSpaceExplorer::cacheKey(const UnrollVector &U) const {
  return designCacheKey(SourceFp, Opts.Platform, Opts.BaseTransforms, U,
                        Opts.RegisterCap);
}

TraceRecorder &DesignSpaceExplorer::recorder() const {
  return Opts.Trace ? *Opts.Trace : TraceRecorder::global();
}

void DesignSpaceExplorer::traceDecision(const UnrollVector &U,
                                        const SynthesisEstimate &E,
                                        const char *Role,
                                        const char *Decision) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent Ev;
  Ev.Track = Track;
  Ev.Category = "dse.decision";
  Ev.Name = unrollVectorToString(U);
  Ev.Ordinal = DecisionOrdinal++;
  // Deterministic payload: for a deterministic backend these values are
  // bit-identical across worker-thread counts.
  Ev.Args = {{"role", Role},
             {"decision", Decision},
             {"balance", formatDouble(E.Balance, 4)},
             {"psat", std::to_string(Sat.Psat)},
             {"cycles", std::to_string(E.Cycles)},
             {"slices", formatDouble(E.Slices, 1)}};
  // Run-variant detail: a design this walk computed sequentially is a
  // speculation hit (or wait) in a parallel run.
  Ev.Runtime = {{"cache", LastCacheOutcome}};
  R.record(std::move(Ev));
}

void DesignSpaceExplorer::traceFailure(const UnrollVector &U,
                                       const char *Role,
                                       const Status &Err) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent Ev;
  Ev.Track = Track;
  Ev.Category = "dse.failure";
  Ev.Name = unrollVectorToString(U);
  Ev.Ordinal = DecisionOrdinal++;
  const char *Decision =
      Err.code() == ErrorCode::BudgetExhausted   ? "budget-exhausted"
      : Err.code() == ErrorCode::DeadlineExceeded ? "deadline-exceeded"
                                                  : "fault-degraded";
  Ev.Args = {{"role", Role}, {"decision", Decision}};
  Ev.Runtime = {{"error", Err.toString()}, {"cache", LastCacheOutcome}};
  R.record(std::move(Ev));
}

Expected<SynthesisEstimate>
DesignSpaceExplorer::computeRaw(const UnrollVector &U) const {
  TransformOptions TO = Opts.BaseTransforms;
  TO.Unroll = U;
  TO.Layout.NumMemories = Opts.Platform.NumMemories;

  // Estimation backends are arbitrary callables (a real synthesis tool
  // behind a wrapper); time every invocation at this seam.
  auto invokeEstimator =
      [this](const Kernel &K) -> Expected<SynthesisEstimate> {
    DEFACTO_SCOPED_TIMER("estimator.invoke");
    return Opts.Estimator(K, Opts.Platform);
  };

  TransformResult R = applyPipeline(Ctx, TO);
  if (!R.ok())
    return R.Error;
  Expected<SynthesisEstimate> Est = invokeEstimator(R.K);
  if (!Est)
    return Est;

  // §5.4: shrink reuse chains until the register budget is met. Less
  // reuse is exploited, slowing the fetch rate; the smaller design may
  // then afford more operator parallelism.
  if (Opts.RegisterCap) {
    unsigned ChainLimit = TO.SR.MaxChainLength;
    while (Est->Registers > *Opts.RegisterCap && ChainLimit > 1) {
      ChainLimit /= 2;
      TO.SR.MaxChainLength = ChainLimit;
      TransformResult Capped = applyPipeline(Ctx, TO);
      if (!Capped.ok())
        return Capped.Error;
      Est = invokeEstimator(Capped.K);
      if (!Est)
        return Est;
    }
  }
  return Est;
}

Status DesignSpaceExplorer::checkLimits() const {
  if (Opts.DeadlineSeconds > 0 &&
      Opts.Clock() - StartSeconds >= Opts.DeadlineSeconds)
    return Status::error(ErrorCode::DeadlineExceeded,
                         "exploration deadline of " +
                             std::to_string(Opts.DeadlineSeconds) +
                             "s exceeded");
  if (BudgetCap && Used >= *BudgetCap)
    return Status::error(ErrorCode::BudgetExhausted,
                         "evaluation budget of " +
                             std::to_string(*BudgetCap) + " exhausted");
  return Status::ok();
}

Expected<SynthesisEstimate>
DesignSpaceExplorer::evaluateChecked(const UnrollVector &U) {
  if (!Space.isCandidate(U))
    return Status::error(ErrorCode::InvalidInput,
                         unrollVectorToString(U) +
                             " is not a candidate unroll vector");
  if (auto It = Cache.find(U); It != Cache.end()) {
    LastCacheOutcome = "local-hit";
    return It->second;
  }
  if (auto It = FailCache.find(U); It != FailCache.end()) {
    LastCacheOutcome = "local-negative";
    return It->second;
  }

  for (;;) {
    EstimateCache::Outcome Served = EstimateCache::Outcome::Miss;
    auto Found = Estimates->lookupOrBegin(cacheKey(U), &Served);
    switch (Served) {
    case EstimateCache::Outcome::Hit:
      LastCacheOutcome = "hit";
      break;
    case EstimateCache::Outcome::NegativeHit:
      LastCacheOutcome = "negative-hit";
      break;
    case EstimateCache::Outcome::Wait:
      LastCacheOutcome = "wait";
      break;
    case EstimateCache::Outcome::Miss:
      LastCacheOutcome = "computed";
      break;
    }
    if (auto *Done = std::get_if<EstimateCache::Result>(&Found)) {
      if (Done->Attempts == 0)
        continue; // A computer abandoned the entry (transient); retry.
      // Replay a memoized result: charge the attempts it originally cost
      // against this run's budget, exactly as if estimated here.
      if (Status Limit = checkLimits(); !Limit.isOk())
        return Limit;
      Used += Done->Attempts;
      if (Done->ok()) {
        Cache.emplace(U, *Done->Estimate);
        return *Done->Estimate;
      }
      Status Err = Done->Estimate.status();
      FailCache.emplace(U, Err);
      FailLog.push_back({U, Done->Attempts, Err});
      return Err;
    }

    // Miss: this run owns the computation (and its retries).
    EstimateCache::Ticket Ticket =
        std::get<EstimateCache::Ticket>(std::move(Found));
    Status Last = Status::ok();
    double Backoff = Opts.RetryBackoffSeconds;
    unsigned Attempts = 0;
    for (unsigned Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
      if (Status Limit = checkLimits(); !Limit.isOk()) {
        if (Attempts > 0) // Record what the cut-short retries saw.
          FailLog.push_back({U, Attempts, Last});
        Estimates->abandon(std::move(Ticket), Limit);
        return Limit;
      }
      if (Attempt > 0 && Backoff > 0) {
        Opts.Sleep(std::min(Backoff, Opts.MaxBackoffSeconds));
        Backoff *= 2;
      }
      ++Used;
      ++Attempts;
      Expected<SynthesisEstimate> Est = computeRaw(U);
      if (Est) {
        Estimates->fulfill(std::move(Ticket),
                           EstimateCache::Result{Est, Attempts});
        Cache.emplace(U, *Est);
        return Est;
      }
      Last = Est.status();
    }
    Estimates->fulfill(
        std::move(Ticket),
        EstimateCache::Result{Expected<SynthesisEstimate>(Last), Attempts});
    FailCache.emplace(U, Last);
    FailLog.push_back({U, Attempts, Last});
    return Last;
  }
}

std::optional<SynthesisEstimate>
DesignSpaceExplorer::evaluate(const UnrollVector &U) {
  Expected<SynthesisEstimate> Est = evaluateChecked(U);
  if (!Est)
    return std::nullopt;
  return *Est;
}

std::shared_ptr<ThreadPool> DesignSpaceExplorer::workerPool() {
  if (Opts.Pool)
    return Opts.Pool;
  if (Opts.NumThreads <= 1)
    return nullptr;
  if (!Pool)
    Pool = std::make_shared<ThreadPool>(Opts.NumThreads);
  return Pool;
}

void DesignSpaceExplorer::prefetch(const std::vector<UnrollVector> &Candidates) {
  std::shared_ptr<ThreadPool> P = workerPool();
  if (!P)
    return;
  for (const UnrollVector &U : Candidates) {
    if (!Space.isCandidate(U))
      continue;
    ++NumSpeculated;
    Speculation.push_back(P->submit([this, U] {
      auto Found = Estimates->lookupOrBegin(cacheKey(U));
      if (auto *Ticket = std::get_if<EstimateCache::Ticket>(&Found)) {
        // Spans from worker threads show the estimation overlap in the
        // Perfetto timeline; they are run-variant by nature and excluded
        // from the deterministic decision digest.
        TraceSpan Span(recorder(), Track, "speculate",
                       unrollVectorToString(U));
        // Mirror the sequential retry policy (minus the backoff sleeps)
        // so the attempts recorded — and later charged on consumption —
        // match what the sequential walk would have spent.
        unsigned Attempts = 1;
        Expected<SynthesisEstimate> Est = computeRaw(U);
        while (!Est && Attempts <= Opts.MaxRetries) {
          ++Attempts;
          Est = computeRaw(U);
        }
        Span.note("attempts", std::to_string(Attempts));
        Span.note("ok", Est ? "1" : "0");
        Estimates->fulfill(std::move(*Ticket),
                           EstimateCache::Result{std::move(Est), Attempts});
      }
      // A completed or in-flight entry needs no speculative work.
    }));
  }
}

void DesignSpaceExplorer::drainSpeculation() {
  for (std::future<void> &F : Speculation)
    if (F.valid())
      F.wait();
  Speculation.clear();
}

std::vector<UnrollVector> DesignSpaceExplorer::guidedFrontier() const {
  std::vector<UnrollVector> Frontier;
  std::set<UnrollVector> Seen;
  auto add = [&](const UnrollVector &U) {
    if (Space.isCandidate(U) && Seen.insert(U).second)
      Frontier.push_back(U);
  };

  add(Space.base());
  UnrollVector Uinit = initialVector();
  add(Uinit);

  // The Increase doubling chain from Uinit: deterministic, independent
  // of any estimate.
  std::vector<UnrollVector> Chain{Uinit};
  UnrollVector U = Uinit;
  for (unsigned Step = 0; Step != 64; ++Step) {
    UnrollVector Next = Space.increase(U, Preference);
    if (Next == U)
      break;
    add(Next);
    Chain.push_back(Next);
    U = Next;
  }

  // The SelectBetween midpoint closure: every design a bisection between
  // two frontier points can land on, in Psat multiples. Bounded depth —
  // the bisection halves the product gap each level.
  int64_t Quantum = std::max<int64_t>(1, Sat.Psat);
  std::function<void(const UnrollVector &, const UnrollVector &, unsigned)>
      Closure = [&](const UnrollVector &Lo, const UnrollVector &Hi,
                    unsigned Depth) {
        if (Depth == 0)
          return;
        UnrollVector Mid = Space.selectBetween(Lo, Hi, Quantum);
        if (Mid == Lo || Mid == Hi)
          return;
        add(Mid);
        Closure(Lo, Mid, Depth - 1);
        Closure(Mid, Hi, Depth - 1);
      };
  Closure(Space.base(), Uinit, 5);
  for (size_t I = 0; I + 1 < Chain.size(); ++I)
    Closure(Chain[I], Chain[I + 1], 5);

  // Cap speculative work: the walk evaluates what the frontier missed.
  if (Frontier.size() > 96)
    Frontier.resize(96);
  return Frontier;
}

ExplorationResult DesignSpaceExplorer::run() {
  DEFACTO_SCOPED_TIMER("explore.run");
  TraceSpan RunSpan(recorder(), Track, "phase", "explore.run");
  ++NumExplorations;
  ExplorationResult Res;
  Res.Sat = Sat;
  Res.FullSpaceSize = Space.fullSize();
  BudgetCap = Opts.MaxEvaluations;

  // Parallel mode: overlap the walk with speculative estimation of its
  // enumerable frontier. The walk below is unchanged — it consumes the
  // memoized results in its own order, so selection is deterministic.
  if (parallel())
    prefetch(guidedFrontier());

  bool HaveBaseline = false;
  if (Expected<SynthesisEstimate> Base = evaluateChecked(Space.base())) {
    Res.BaselineEstimate = *Base;
    HaveBaseline = true;
    traceDecision(Space.base(), *Base, "baseline", "baseline");
  } else {
    Res.Trace += "FAIL " + unrollVectorToString(Space.base()) +
                 " [baseline] " + Base.status().toString() + "\n";
    traceFailure(Space.base(), "baseline", Base.status());
  }

  auto record = [&](const UnrollVector &U,
                    const char *Role) -> Expected<SynthesisEstimate> {
    Expected<SynthesisEstimate> Est = evaluateChecked(U);
    if (!Est) {
      Res.Trace += "FAIL " + unrollVectorToString(U) + " [" + Role + "] " +
                   Est.status().toString() + "\n";
      traceFailure(U, Role, Est.status());
      return Est;
    }
    for (const EvaluatedDesign &D : Res.Visited)
      if (D.U == U)
        return Est;
    Res.Visited.push_back({U, *Est, Role});
    Res.Trace += "eval " + unrollVectorToString(U) + " [" + Role +
                 "]: " + Est->toString() + "\n";
    return Est;
  };
  // Deadline or budget exhaustion: the search stops where it is and the
  // best already-evaluated design is selected.
  auto isStop = [](const Status &S) {
    return S.code() == ErrorCode::DeadlineExceeded ||
           S.code() == ErrorCode::BudgetExhausted;
  };

  double Capacity = Opts.Platform.CapacitySlices;
  int64_t Quantum = std::max<int64_t>(1, Sat.Psat);

  UnrollVector Uinit = initialVector();
  UnrollVector Ucurr = Uinit;
  UnrollVector Ucb = Space.base();
  UnrollVector Umb = Space.max();
  bool SeenComputeBound = false;
  bool SeenMemoryBound = false;
  bool Ok = false;
  Status Stop = Status::ok();
  std::set<UnrollVector> Visited;
  const char *Role = "Uinit";

  while (!Ok) {
    if (!Visited.insert(Ucurr).second) {
      Res.Trace += "revisit of " + unrollVectorToString(Ucurr) +
                   "; search converged\n";
      Ok = true;
      break;
    }
    const char *VisitRole = Role;
    Expected<SynthesisEstimate> EstOr = record(Ucurr, VisitRole);
    if (!EstOr) {
      // Without an estimate the walk cannot steer by balance; stop here
      // and fall back to the best design evaluated so far.
      Stop = EstOr.status();
      break;
    }
    const SynthesisEstimate Est = *EstOr;
    double B = Est.Balance;

    if (Est.Slices > Capacity) {
      if (Ucurr == Uinit) {
        // FindLargestFit(Ubase, Uinit): the largest design not exceeding
        // the device, regardless of balance.
        Res.Trace += "Uinit exceeds capacity; FindLargestFit\n";
        traceDecision(Ucurr, Est, VisitRole, "find-largest-fit");
        std::vector<UnrollVector> Candidates;
        for (const UnrollVector &C : Space.allCandidates())
          if (UnrollSpace::between(C, Space.base(), Uinit) && C != Uinit)
            Candidates.push_back(C);
        std::stable_sort(Candidates.begin(), Candidates.end(),
                         [](const UnrollVector &A, const UnrollVector &B2) {
                           return unrollProduct(A) > unrollProduct(B2);
                         });
        prefetch(Candidates);
        Ucurr = Space.base();
        for (const UnrollVector &C : Candidates) {
          Expected<SynthesisEstimate> Fit = record(C, "fit");
          if (!Fit) {
            if (isStop(Fit.status())) {
              Stop = Fit.status();
              break;
            }
            continue; // This candidate failed; try the next smaller one.
          }
          if (Fit->Slices <= Capacity) {
            traceDecision(C, *Fit, "fit", "fit-accept");
            Ucurr = C;
            break;
          }
          traceDecision(C, *Fit, "fit", "fit-reject");
        }
        if (!Stop.isOk())
          break;
        Ok = true;
        continue;
      }
      Res.Trace += "exceeds capacity; bisect toward " +
                   unrollVectorToString(Ucb) + "\n";
      traceDecision(Ucurr, Est, VisitRole, "capacity-select-between");
      UnrollVector Next = Space.selectBetween(Ucb, Ucurr, Quantum);
      if (Next == Ucb)
        Ok = true;
      Ucurr = Next;
      Role = "bisect";
      continue;
    }

    if (std::abs(B - 1.0) <= Opts.BalanceTolerance) {
      Res.Trace += "balanced; done\n";
      traceDecision(Ucurr, Est, VisitRole, "balanced-stop");
      Ok = true;
      continue;
    }

    if (B < 1.0) {
      SeenMemoryBound = true;
      Umb = Ucurr;
      if (Ucurr == Uinit) {
        // Memory bound at the saturation point: more unrolling cannot
        // raise the fetch rate (Observation 1); stop. Every design above
        // Uinit is pruned by that monotonicity argument.
        Res.Trace += "memory bound at Uinit; done\n";
        traceDecision(Ucurr, Est, VisitRole, "memory-bound-stop");
        Ok = true;
        continue;
      }
      traceDecision(Ucurr, Est, VisitRole, "select-between");
      UnrollVector Next = Space.selectBetween(Ucb, Umb, Quantum);
      if (Next == Ucb)
        Ok = true;
      Ucurr = Next;
      Role = "bisect";
      continue;
    }

    // Compute bound.
    SeenComputeBound = true;
    Ucb = Ucurr;
    if (!SeenMemoryBound) {
      UnrollVector Next = Space.increase(Ucurr, Preference);
      if (Next == Ucurr) {
        Res.Trace += "no larger candidate; done\n";
        traceDecision(Ucurr, Est, VisitRole, "space-exhausted-stop");
        Ok = true;
        continue;
      }
      traceDecision(Ucurr, Est, VisitRole, "increase");
      Ucurr = Next;
      Role = "increase";
      continue;
    }
    traceDecision(Ucurr, Est, VisitRole, "select-between");
    UnrollVector Next = Space.selectBetween(Ucb, Umb, Quantum);
    if (Next == Ucb)
      Ok = true;
    Ucurr = Next;
    Role = "bisect";
  }

  (void)SeenComputeBound;
  if (!Stop.isOk())
    Res.Trace += "stop at " + unrollVectorToString(Ucurr) + ": " +
                 Stop.toString() + "\n";

  // Selection. A converged walk selects its final design if that design
  // was successfully evaluated, fits, and no already-evaluated design
  // strictly beats it (the balance walk can legally converge at a point
  // slower than one it passed through — never hand back a design worse
  // than one in hand). Any other outcome — cut-short search, failed or
  // oversized final design — falls back to the best successfully
  // evaluated design, deterministically: fewest cycles, then fewest
  // slices, then lexicographically smallest vector; the baseline
  // competes too.
  auto fits = [&](const SynthesisEstimate &E) {
    return E.Slices <= Capacity;
  };
  UnrollVector BestU;
  SynthesisEstimate BestE;
  bool HaveBest = false;
  auto consider = [&](const UnrollVector &U, const SynthesisEstimate &E) {
    if (!fits(E))
      return;
    bool Better =
        !HaveBest || E.Cycles < BestE.Cycles ||
        (E.Cycles == BestE.Cycles &&
         (E.Slices < BestE.Slices ||
          (E.Slices == BestE.Slices && U < BestU)));
    if (Better) {
      BestU = U;
      BestE = E;
      HaveBest = true;
    }
  };
  for (const EvaluatedDesign &D : Res.Visited)
    consider(D.U, D.Estimate);
  if (HaveBaseline)
    consider(Space.base(), Res.BaselineEstimate);

  bool Selected = false;
  if (Ok) {
    if (auto It = Cache.find(Ucurr); It != Cache.end() &&
                                     fits(It->second)) {
      const SynthesisEstimate &Sel = It->second;
      if (HaveBest && (BestE.Cycles < Sel.Cycles ||
                       (BestE.Cycles == Sel.Cycles &&
                        BestE.Slices < Sel.Slices))) {
        Res.Trace += "converged design beaten by an evaluated design; "
                     "best evaluated design selected\n";
        Res.Selected = BestU;
        Res.SelectedEstimate = BestE;
      } else {
        Res.Selected = Ucurr;
        Res.SelectedEstimate = Sel;
      }
      Selected = true;
    }
  }
  if (!Selected) {
    if (HaveBest) {
      Res.Trace += Ok ? "selected design does not fit; "
                        "best evaluated design selected\n"
                      : "search cut short; best evaluated design selected\n";
      Res.Selected = BestU;
      Res.SelectedEstimate = BestE;
    } else if (HaveBaseline) {
      Res.Selected = Space.base();
      Res.SelectedEstimate = Res.BaselineEstimate;
      Res.SelectedFits = false;
      Res.Trace += "no design fits this device (baseline alone needs " +
                   formatDouble(Res.BaselineEstimate.Slices, 0) +
                   " slices)\n";
    } else {
      // Not even the baseline could be estimated.
      Res.Selected = Space.base();
      Res.SelectedFits = false;
      Res.Trace += "no design could be evaluated\n";
    }
  }

  Res.Failures = FailLog;
  if (!Stop.isOk() && isStop(Stop))
    Res.Failures.push_back({Ucurr, 0, Stop});
  Res.Degraded = !Ok || !Res.Failures.empty();
  Res.EvaluationsUsed = Used;
  if (Res.Degraded) {
    Res.Trace += "degraded exploration: " +
                 std::to_string(Res.Failures.size()) +
                 " failure(s) logged\n";
    ++NumDegraded;
  }
  NumEvaluationsSpent.add(Used);
  if (TraceRecorder &R = recorder(); R.enabled()) {
    TraceEvent Sel;
    Sel.Track = Track;
    Sel.Category = "dse.selection";
    Sel.Name = unrollVectorToString(Res.Selected);
    Sel.Ordinal = DecisionOrdinal;
    Sel.Args = {{"cycles", std::to_string(Res.SelectedEstimate.Cycles)},
                {"slices", formatDouble(Res.SelectedEstimate.Slices, 1)},
                {"fits", Res.SelectedFits ? "1" : "0"},
                {"degraded", Res.Degraded ? "1" : "0"},
                {"evaluations", std::to_string(Used)}};
    R.record(std::move(Sel));
  }
  BudgetCap.reset();
  // Leftover speculative tasks reference this explorer; settle them
  // before handing the result back.
  drainSpeculation();
  return Res;
}

namespace {

ExplorationResult pickBest(const Kernel &Source,
                           const ExplorerOptions &Opts,
                           const std::vector<UnrollVector> &Candidates,
                           const char *Role) {
  DesignSpaceExplorer Ex(Source, Opts);
  ExplorationResult Res;
  Res.Sat = Ex.saturation();
  Res.FullSpaceSize = Ex.space().fullSize();

  // Fan the whole candidate set out across the worker pool (no-op in
  // sequential mode), then reduce in candidate order: the estimates come
  // from the cache, so the visit order, accounting, and selection are
  // identical to the sequential run's.
  std::vector<UnrollVector> Prefetch{Ex.space().base()};
  Prefetch.insert(Prefetch.end(), Candidates.begin(), Candidates.end());
  Ex.prefetch(Prefetch);

  if (auto Base = Ex.evaluate(Ex.space().base())) {
    Res.BaselineEstimate = *Base;
    Ex.traceDecision(Ex.space().base(), *Base, "baseline", "baseline");
  }

  for (const UnrollVector &U : Candidates) {
    auto Est = Ex.evaluate(U);
    if (!Est)
      continue;
    Res.Visited.push_back({U, *Est, Role});
    Ex.traceDecision(U, *Est, Role, "candidate");
  }

  // Fastest fitting design; among designs within 5% of it, the smallest.
  double Capacity = Opts.Platform.CapacitySlices;
  const EvaluatedDesign *Fastest = nullptr;
  for (const EvaluatedDesign &D : Res.Visited) {
    if (D.Estimate.Slices > Capacity)
      continue;
    if (!Fastest || D.Estimate.Cycles < Fastest->Estimate.Cycles)
      Fastest = &D;
  }
  const EvaluatedDesign *Best = Fastest;
  if (Fastest) {
    for (const EvaluatedDesign &D : Res.Visited) {
      if (D.Estimate.Slices > Capacity)
        continue;
      if (D.Estimate.Cycles <=
              static_cast<uint64_t>(Fastest->Estimate.Cycles * 1.05) &&
          D.Estimate.Slices < Best->Estimate.Slices)
        Best = &D;
    }
  }
  if (Best) {
    Res.Selected = Best->U;
    Res.SelectedEstimate = Best->Estimate;
  } else {
    Res.Selected = Ex.space().base();
    Res.SelectedEstimate = Res.BaselineEstimate;
  }
  Res.Failures = Ex.failures();
  Res.Degraded = !Res.Failures.empty();
  Res.EvaluationsUsed = Ex.evaluationsUsed();
  for (const EvaluationFailure &F : Res.Failures)
    Res.Trace += "FAIL " + unrollVectorToString(F.U) + " [" + Role + "] " +
                 F.Error.toString() + "\n";
  return Res;
}

} // namespace

ExplorationResult defacto::exploreExhaustive(const Kernel &Source,
                                             const ExplorerOptions &Opts) {
  DesignSpaceExplorer Ex(Source, Opts);
  return pickBest(Source, Opts, Ex.space().allCandidates(), "exhaustive");
}

ExplorationResult defacto::exploreRandom(const Kernel &Source,
                                         const ExplorerOptions &Opts,
                                         unsigned Samples, uint64_t Seed) {
  DesignSpaceExplorer Ex(Source, Opts);
  std::vector<UnrollVector> All = Ex.space().allCandidates();
  SplitMix64 Rng(Seed);
  std::vector<UnrollVector> Picked;
  std::set<uint64_t> Chosen;
  while (Picked.size() < Samples && Chosen.size() < All.size()) {
    uint64_t I = Rng.nextBelow(All.size());
    if (Chosen.insert(I).second)
      Picked.push_back(All[I]);
  }
  return pickBest(Source, Opts, Picked, "random");
}
