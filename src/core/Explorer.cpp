//===- Explorer.cpp - Compatibility façade over the two layers ------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"

using namespace defacto;

DesignSpaceExplorer::DesignSpaceExplorer(const Kernel &Source,
                                         ExplorerOptions Opts)
    : Svc(Source, std::move(Opts)) {}

DesignSpaceExplorer::~DesignSpaceExplorer() = default;

ExplorationResult DesignSpaceExplorer::run() {
  SearchContext SC{Svc.source(), Svc.options(), Svc};
  return createGuidedStrategy()->search(SC);
}

Expected<ExplorationResult>
DesignSpaceExplorer::runWithStrategy(const std::string &Name) {
  std::unique_ptr<SearchStrategy> S = StrategyRegistry::instance().create(Name);
  if (!S)
    return Status::error(ErrorCode::InvalidInput,
                         "unknown search strategy '" + Name +
                             "'; registered strategies:\n" +
                             StrategyRegistry::instance().describe());
  SearchContext SC{Svc.source(), Svc.options(), Svc};
  return S->search(SC);
}

ExplorationResult defacto::exploreExhaustive(const Kernel &Source,
                                             const ExplorerOptions &Opts) {
  EvaluationService Eval(Source, Opts);
  SearchContext SC{Source, Eval.options(), Eval};
  return createExhaustiveStrategy()->search(SC);
}

ExplorationResult defacto::exploreRandom(const Kernel &Source,
                                         const ExplorerOptions &Opts,
                                         unsigned Samples, uint64_t Seed) {
  EvaluationService Eval(Source, Opts);
  SearchContext SC{Source, Eval.options(), Eval};
  return createRandomStrategy(Samples, Seed)->search(SC);
}
