//===- ExplorationReport.cpp ----------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/ExplorationReport.h"

#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"

#include <sstream>

using namespace defacto;

namespace {

/// The design as the user should read it: the bare unroll vector for
/// unroll-only points (the historical rendering, byte for byte), the
/// full point with perm/tile suffixes otherwise.
std::string designString(const UnrollVector &U, const DesignPoint &P) {
  return P.isUnrollOnly() ? unrollVectorToString(U) : P.toString();
}

} // namespace

std::string ExplorationResult::toString() const {
  std::ostringstream OS;
  if (!Strategy.empty())
    OS << "strategy=" << Strategy << ' ';
  OS << "selected=" << designString(Selected, SelectedPoint)
     << " cycles=" << SelectedEstimate.Cycles
     << " slices=" << formatDouble(SelectedEstimate.Slices, 0)
     << " balance=" << formatDouble(SelectedEstimate.Balance, 3)
     << " speedup=" << formatDouble(speedup(), 2) << 'x'
     << " evals=" << EvaluationsUsed;
  if (!SelectedFits)
    OS << " DOES-NOT-FIT";
  if (Degraded)
    OS << " DEGRADED(" << Failures.size() << " failure"
       << (Failures.size() == 1 ? "" : "s") << ')';
  return OS.str();
}

namespace {

bool traceHas(const ExplorationResult &R, const char *Marker) {
  return R.Trace.find(Marker) != std::string::npos;
}

const char *boundness(const SynthesisEstimate &E) {
  if (E.isComputeBound())
    return "compute-bound";
  if (E.isMemoryBound())
    return "memory-bound";
  return "balanced";
}

/// Why the walk ended, reconstructed from the engine's walk trace and the
/// failure log. Mirrors the markers Explorer.cpp emits.
std::string stopReason(const ExplorationResult &R) {
  if (traceHas(R, "memory bound at Uinit"))
    return "the saturation-point design Uinit was already memory bound; "
           "by the balance monotonicity observation no larger unroll "
           "vector can help, so the walk stopped after bisecting below "
           "Uinit";
  if (traceHas(R, "no design fits this device"))
    return "no candidate fits the device; the baseline is reported "
           "although it exceeds capacity";
  if (traceHas(R, "Uinit exceeds capacity"))
    return "the saturation-point design exceeded device capacity; the "
           "walk fell back to the largest fitting design (FindLargestFit)";
  if (traceHas(R, "balanced; done"))
    return "the walk reached a design whose balance B = F/C is within "
           "tolerance of 1 (SelectBetween converged)";
  if (traceHas(R, "no larger candidate"))
    return "the Increase chain exhausted the unroll space while still "
           "compute bound";
  for (const EvaluationFailure &F : R.Failures)
    if (F.Attempts == 0)
      return "the search was cut short (" + F.Error.message() +
             ") before natural convergence";
  if (R.Degraded)
    return "estimation failures degraded the search; the best "
           "successfully evaluated design was selected";
  return "the walk converged";
}

void appendVisited(std::ostringstream &OS, const ExplorationResult &R,
                   const ReportOptions &Opts) {
  Table T({"#", "role", "design", "balance", "cycles", "slices", "bound"});
  auto Row = [&](size_t I) {
    const EvaluatedDesign &D = R.Visited[I];
    T.addRow({std::to_string(I), D.Role, designString(D.U, D.Point),
              formatDouble(D.Estimate.Balance, 3),
              formatWithCommas(static_cast<int64_t>(D.Estimate.Cycles)),
              formatDouble(D.Estimate.Slices, 0),
              boundness(D.Estimate)});
  };
  size_t N = R.Visited.size();
  size_t Cap = Opts.MaxVisitedRows == 0 ? N : Opts.MaxVisitedRows;
  if (N <= Cap) {
    for (size_t I = 0; I != N; ++I)
      Row(I);
  } else {
    // Keep the head and tail; the middle of a long walk is repetitive.
    size_t Head = Cap / 2, Tail = Cap - Head;
    for (size_t I = 0; I != Head; ++I)
      Row(I);
    T.addRow({"...", "...", "...", "...", "...", "...", "..."});
    for (size_t I = N - Tail; I != N; ++I)
      Row(I);
  }
  OS << "Visited designs (" << N << ", search order):\n"
     << T.toString(2);
}

} // namespace

std::string defacto::renderExplorationReport(const ExplorationResult &R,
                                             const std::string &Label,
                                             const ReportOptions &Opts) {
  std::ostringstream OS;
  if (!Label.empty())
    OS << "=== Exploration report: " << Label << " ===\n";

  OS << "Selected " << designString(R.Selected, R.SelectedPoint) << " ("
     << boundness(R.SelectedEstimate) << ", B="
     << formatDouble(R.SelectedEstimate.Balance, 3) << "): "
     << formatWithCommas(static_cast<int64_t>(R.SelectedEstimate.Cycles))
     << " cycles, " << formatDouble(R.SelectedEstimate.Slices, 0)
     << " slices, " << R.SelectedEstimate.Registers << " registers";
  if (!R.SelectedFits)
    OS << " [exceeds device capacity]";
  OS << "\n";
  // The baseline is the untiled nest's all-ones vector; a tiled winner's
  // unroll is one deeper than the nest it came from.
  size_t NestDepth = R.Selected.size() - (R.SelectedPoint.Tile ? 1 : 0);
  OS << "Speedup over baseline "
     << unrollVectorToString(UnrollVector(NestDepth, 1)) << " ("
     << formatWithCommas(static_cast<int64_t>(R.BaselineEstimate.Cycles))
     << " cycles): " << formatDouble(R.speedup(), 2) << "x\n";
  if (!R.Strategy.empty())
    OS << "Strategy: " << R.Strategy << "\n";
  OS << "Why it stopped: " << stopReason(R) << ".\n";

  OS << "Search economy: Psat=" << R.Sat.Psat << " (R=" << R.Sat.R
     << ", W=" << R.Sat.W << "); " << R.EvaluationsUsed
     << " estimator attempts over " << R.Visited.size()
     << " designs; full space " << formatWithCommas(
            static_cast<int64_t>(R.FullSpaceSize))
     << " designs (" << formatDouble(R.fractionSearched() * 100.0, 2)
     << "% searched)\n";

  // A portfolio result reports per-strategy sections — one sub-report per
  // strategy it ran, each with its own visit table and failure log —
  // instead of one merged walk table.
  if (!R.SubResults.empty()) {
    for (const ExplorationResult &Sub : R.SubResults) {
      OS << "--- strategy " << Sub.Strategy;
      if (Sub.Selected == R.Selected &&
          Sub.SelectedEstimate.Cycles == R.SelectedEstimate.Cycles)
        OS << " [winner]";
      OS << " ---\n";
      OS << renderExplorationReport(Sub, "", Opts);
    }
  } else if (Opts.ShowVisited && !R.Visited.empty()) {
    appendVisited(OS, R, Opts);
  }

  if (R.Degraded || !R.Failures.empty()) {
    OS << "DEGRADED: the run did not reach healthy convergence.\n";
    if (!R.Failures.empty()) {
      Table T({"design", "attempts", "error"});
      for (const EvaluationFailure &F : R.Failures)
        T.addRow({designString(F.U, F.Point),
                  F.Attempts == 0 ? "stop" : std::to_string(F.Attempts),
                  F.Error.message()});
      OS << "Failure log (" << R.Failures.size() << "):\n" << T.toString(2);
    }
  }

  // Per-pass pipeline timing, when the run recorded any (stats enabled
  // and the pipeline.pass.* timers fired). Process-wide accumulation, so
  // in a batch the numbers cover every job rendered so far.
  if (Opts.ShowPassTimings) {
    std::vector<TimerGroup::Snapshot> Timers = TimerGroup::global().snapshot();
    Table T({"pass", "wall ms", "runs", "mean us"});
    const std::string Prefix = "pipeline.pass.";
    for (const TimerGroup::Snapshot &S : Timers) {
      if (S.Name.rfind(Prefix, 0) != 0 || S.Count == 0)
        continue;
      T.addRow({S.Name.substr(Prefix.size()), formatDouble(S.WallMs, 2),
                std::to_string(S.Count),
                formatDouble(S.WallMs * 1000.0 /
                                 static_cast<double>(S.Count),
                             1)});
    }
    if (T.numRows() != 0)
      OS << "Pass pipeline timing (process-wide):\n" << T.toString(2);
  }

  if (Opts.ShowWalkTrace && !R.Trace.empty())
    OS << "Walk trace:\n" << R.Trace;

  return OS.str();
}
