//===- EvaluationService.cpp ----------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/EvaluationService.h"

#include "defacto/Analysis/DependenceAnalysis.h"
#include "defacto/Core/CircuitBreaker.h"
#include "defacto/Core/SearchStrategy.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/Arena.h"
#include "defacto/Support/Cancellation.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

using namespace defacto;

DEFACTO_STATISTIC(NumSpeculated, "explore", "speculated",
                  "candidate designs submitted to the worker pool");
DEFACTO_STATISTIC(NumWatchdogCancels, "explore", "watchdog-cancels",
                  "estimator invocations cancelled by the hang watchdog");
DEFACTO_STATISTIC(NumDroppedFailures, "explore", "dropped-failures",
                  "failure-log entries evicted by the ring bound");
DEFACTO_STATISTIC(NumParityViolations, "fastpath", "parity_violations",
                  "verify-mode attempts where fast and slow estimates "
                  "disagreed");

EvaluationService::EvaluationService(const Kernel &Source,
                                     ExplorerOptions Opts)
    : Source(Source), Opts(std::move(Opts)),
      Sat(computeSaturation(Source, this->Opts.Platform.NumMemories)),
      Space(Sat.Trips.empty() ? std::vector<int64_t>{1} : Sat.Trips),
      DSpace(Space), Ctx(Source), SourceFp(kernelFingerprint(Source)) {
  DefaultEstimator = !this->Opts.Estimator;
  if (!this->Opts.Estimator)
    this->Opts.Estimator = [](const Kernel &K, const TargetPlatform &P) {
      return estimateDesignChecked(K, P);
    };
  if (!this->Opts.Clock)
    this->Opts.Clock = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  if (!this->Opts.Sleep)
    this->Opts.Sleep = [](double Seconds) {
      if (Seconds > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(Seconds));
    };
  Estimates = this->Opts.Cache ? this->Opts.Cache
                               : std::make_shared<EstimateCache>();
  if (this->Opts.FastPath != FastPathMode::Off) {
    Stages = this->Opts.StageCache ? this->Opts.StageCache
                                   : std::make_shared<TransformStageCache>();
    FastPipeline.emplace(Ctx, Stages);
  }
  Track = this->Opts.TraceLabel.empty() ? Source.name()
                                        : this->Opts.TraceLabel;
  StartSeconds = this->Opts.Clock();
  // Build the unroll preference order (§5.3): loops carrying no
  // dependence first (their unrolled iterations are fully parallel),
  // then loops by decreasing minimum carried distance; within a class,
  // loops that add memory parallelism come first. The dependence
  // analysis is unroll-invariant, so it is served from the context's
  // AnalysisManager, warmed once at construction — no clone, no
  // recompute.
  const DependenceInfo &DI = *Ctx.analyses().cachedDependence();
  unsigned N = Sat.Trips.size();
  struct Rank {
    unsigned Pos;
    bool DepFree;
    bool MemVarying;
    int64_t MinDist;
  };
  std::vector<Rank> Ranks;
  for (unsigned P = 0; P != N; ++P) {
    Rank R;
    R.Pos = P;
    R.DepFree = DI.carriesNoDependence(P);
    R.MemVarying = P < Sat.MemoryVarying.size() && Sat.MemoryVarying[P];
    R.MinDist = DI.minCarriedDistance(P).value_or(0);
    Ranks.push_back(R);
  }
  std::stable_sort(Ranks.begin(), Ranks.end(), [](const Rank &A,
                                                  const Rank &B) {
    if (A.DepFree != B.DepFree)
      return A.DepFree;
    if (A.MemVarying != B.MemVarying)
      return A.MemVarying;
    return A.MinDist > B.MinDist;
  });
  for (const Rank &R : Ranks)
    Preference.push_back(R.Pos);
}

EvaluationService::~EvaluationService() { drainSpeculation(); }

TransformOptions
EvaluationService::transformOptionsFor(const DesignPoint &P) const {
  TransformOptions TO = Opts.BaseTransforms;
  TO.Unroll = P.Unroll;
  TO.Layout.NumMemories = Opts.Platform.NumMemories;
  if (P.Tile)
    TO.StripMine = P.Tile;
  if (!P.Interchange.empty())
    TO.Interchange = P.Interchange;
  return TO;
}

std::string EvaluationService::cacheKey(const DesignPoint &P) const {
  // For unroll-only points the extra dimensions default and the key is
  // byte-identical to the historical designCacheKey of P.Unroll.
  TransformOptions TO = Opts.BaseTransforms;
  if (P.Tile)
    TO.StripMine = P.Tile;
  if (!P.Interchange.empty())
    TO.Interchange = P.Interchange;
  return designCacheKey(SourceFp, Opts.Platform, TO, P.Unroll,
                        Opts.RegisterCap);
}

TraceRecorder &EvaluationService::recorder() const {
  return Opts.Trace ? *Opts.Trace : TraceRecorder::global();
}

void EvaluationService::traceDecision(const DesignPoint &P,
                                      const SynthesisEstimate &E,
                                      const char *Role,
                                      const char *Decision) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent Ev;
  Ev.Track = Track;
  Ev.Category = "dse.decision";
  Ev.Name = P.toString();
  Ev.Ordinal = DecisionOrdinal++;
  // Deterministic payload: for a deterministic backend these values are
  // bit-identical across worker-thread counts. Unroll-only points emit
  // exactly the historical payload, so unroll-only digests are
  // unchanged; the extra dimensions append deterministic args.
  Ev.Args = {{"role", Role},
             {"decision", Decision},
             {"balance", formatDouble(E.Balance, 4)},
             {"psat", std::to_string(Sat.Psat)},
             {"cycles", std::to_string(E.Cycles)},
             {"slices", formatDouble(E.Slices, 1)}};
  if (!P.Interchange.empty()) {
    std::string Perm;
    for (size_t I = 0; I != P.Interchange.size(); ++I)
      Perm += (I ? "," : "") + std::to_string(P.Interchange[I]);
    Ev.Args.push_back({"perm", Perm});
  }
  if (P.Tile)
    Ev.Args.push_back({"tile", std::to_string(P.Tile->first) + "x" +
                                   std::to_string(P.Tile->second)});
  // Run-variant detail: a design this walk computed sequentially is a
  // speculation hit (or wait) in a parallel run.
  Ev.Runtime = {{"cache", LastCacheOutcome}};
  R.record(std::move(Ev));
}

void EvaluationService::traceDecision(const UnrollVector &U,
                                      const SynthesisEstimate &E,
                                      const char *Role,
                                      const char *Decision) {
  traceDecision(DesignPoint(U), E, Role, Decision);
}

void EvaluationService::traceFailure(const DesignPoint &P,
                                     const char *Role,
                                     const Status &Err) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent Ev;
  Ev.Track = Track;
  Ev.Category = "dse.failure";
  Ev.Name = P.toString();
  Ev.Ordinal = DecisionOrdinal++;
  const char *Decision =
      Err.code() == ErrorCode::BudgetExhausted   ? "budget-exhausted"
      : Err.code() == ErrorCode::DeadlineExceeded ? "deadline-exceeded"
                                                  : "fault-degraded";
  Ev.Args = {{"role", Role}, {"decision", Decision}};
  Ev.Runtime = {{"error", Err.toString()}, {"cache", LastCacheOutcome}};
  R.record(std::move(Ev));
}

void EvaluationService::traceFailure(const UnrollVector &U,
                                     const char *Role,
                                     const Status &Err) {
  traceFailure(DesignPoint(U), Role, Err);
}

void EvaluationService::traceSelection(const ExplorationResult &Res) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent Sel;
  Sel.Track = Track;
  Sel.Category = "dse.selection";
  Sel.Name = unrollVectorToString(Res.Selected);
  Sel.Ordinal = DecisionOrdinal;
  Sel.Args = {{"cycles", std::to_string(Res.SelectedEstimate.Cycles)},
              {"slices", formatDouble(Res.SelectedEstimate.Slices, 1)},
              {"fits", Res.SelectedFits ? "1" : "0"},
              {"degraded", Res.Degraded ? "1" : "0"},
              {"evaluations", std::to_string(Used)}};
  R.record(std::move(Sel));
}

Expected<SynthesisEstimate>
EvaluationService::invokeBackend(const Kernel &K, const DesignPoint &P,
                                 bool FastBackend) const {
  // Estimation backends are arbitrary callables (a real synthesis tool
  // behind a wrapper); time every invocation at this seam. The hang
  // watchdog arms a fresh deadline token per invocation: a cooperative
  // backend (the built-in estimator polls in its walk and scheduling
  // loops; a FaultInjector hang polls between simulated sleeps) observes
  // it thread-locally and returns ErrorCode::Cancelled.
  auto Call = [&]() -> Expected<SynthesisEstimate> {
    if (!FastBackend)
      return Opts.Estimator(K, Opts.Platform);
    // The fast route already verified this kernel's lineage: the stage
    // snapshot is verified once when built, and the unstaged fallback
    // runs the full pipeline including its verification pass. Estimate
    // without re-verifying per candidate.
    SynthesisEstimate Est = estimateDesignFast(K, Opts.Platform);
    if (Status Cancel = currentCancelStatus(); !Cancel.isOk())
      return Cancel;
    if (Est.Cycles == 0 || Est.Slices <= 0.0)
      return Status::error(ErrorCode::EstimationFailed,
                           "estimator returned a degenerate design (cycles=" +
                               std::to_string(Est.Cycles) + ")");
    return Est;
  };
  DEFACTO_SCOPED_TIMER("estimator.invoke");
  if (Opts.WatchdogSeconds <= 0)
    return Call();
  CancellationToken Watchdog = CancellationToken::withDeadline(
      Opts.Clock() + Opts.WatchdogSeconds, Opts.Clock,
      "estimator watchdog (" + std::to_string(Opts.WatchdogSeconds) +
          "s)");
  CancellationScope Scope(Watchdog);
  Expected<SynthesisEstimate> Est = Call();
  if (!Est && Est.status().code() == ErrorCode::Cancelled) {
    ++NumWatchdogCancels;
    TraceRecorder &R = recorder();
    if (R.enabled()) {
      // Run-variant by nature (real clocks fire at real times), so
      // everything lands in Runtime, never in the decision digest.
      TraceEvent Ev;
      Ev.Track = Track;
      Ev.Category = "dse.cancel";
      Ev.Name = P.toString();
      Ev.Runtime = {{"reason", Est.status().message()},
                    {"watchdog_s", formatDouble(Opts.WatchdogSeconds, 3)}};
      R.record(std::move(Ev));
    }
  }
  return Est;
}

Expected<SynthesisEstimate>
EvaluationService::computeSlow(const DesignPoint &P) const {
  TransformOptions TO = transformOptionsFor(P);

  TransformResult R = applyPipeline(Ctx, TO);
  if (!R.ok())
    return R.Error;
  Expected<SynthesisEstimate> Est = invokeBackend(R.K, P, false);
  if (!Est)
    return Est;

  // §5.4: shrink reuse chains until the register budget is met. Less
  // reuse is exploited, slowing the fetch rate; the smaller design may
  // then afford more operator parallelism.
  if (Opts.RegisterCap) {
    unsigned ChainLimit = TO.SR.MaxChainLength;
    while (Est->Registers > *Opts.RegisterCap && ChainLimit > 1) {
      ChainLimit /= 2;
      TO.SR.MaxChainLength = ChainLimit;
      TransformResult Capped = applyPipeline(Ctx, TO);
      if (!Capped.ok())
        return Capped.Error;
      Est = invokeBackend(Capped.K, P, false);
      if (!Est)
        return Est;
    }
  }
  return Est;
}

Expected<SynthesisEstimate>
EvaluationService::computeFast(const DesignPoint &P) const {
  TransformOptions TO = transformOptionsFor(P);
  // The site index accelerates scalar replacement without changing what
  // it emits; gated here so Off stays the untouched historical path.
  TO.SR.UseSiteIndex = true;

  // Every IR node this attempt builds — the stage clone, the finished
  // pipeline, register-capped re-runs — lands in this worker's arena and
  // is released in one bump-pointer reset instead of node-by-node
  // deletes. The guard is declared before the scope so the reset runs
  // only after the TransformResults below are destroyed and the arena
  // is deactivated.
  thread_local IRArena Arena;
  struct ResetGuard {
    IRArena &A;
    ~ResetGuard() { A.reset(); }
  } Guard{Arena};
  IRArenaScope Scope(&Arena);

  // With the built-in estimator, verification happens once per stage
  // snapshot (see TransformStageCache::buildStage) rather than once per
  // candidate, so the pipeline's own verification pass is skipped here;
  // injected backends keep it.
  bool SkipVerify = DefaultEstimator;

  StageRunInfo Info;
  TransformResult R = FastPipeline->run(TO, SkipVerify, &Info);
  traceStageCache(P, Info);
  if (!R.ok())
    return R.Error;
  Expected<SynthesisEstimate> Est = invokeBackend(R.K, P, DefaultEstimator);
  if (!Est)
    return Est;

  if (Opts.RegisterCap) {
    unsigned ChainLimit = TO.SR.MaxChainLength;
    while (Est->Registers > *Opts.RegisterCap && ChainLimit > 1) {
      ChainLimit /= 2;
      TO.SR.MaxChainLength = ChainLimit;
      // Re-runs only vary the post-stage passes, so they clone the same
      // memoized stage.
      TransformResult Capped = FastPipeline->run(TO, SkipVerify);
      if (!Capped.ok())
        return Capped.Error;
      Est = invokeBackend(Capped.K, P, DefaultEstimator);
      if (!Est)
        return Est;
    }
  }
  return Est;
}

/// Field-by-field bit equality (== on doubles is exact and handles the
/// HUGE_VAL balance of memory-free designs; NaN never occurs here).
static bool estimatesBitEqual(const SynthesisEstimate &A,
                              const SynthesisEstimate &B) {
  return A.Cycles == B.Cycles && A.Slices == B.Slices &&
         A.Registers == B.Registers && A.Units == B.Units &&
         A.FetchRate == B.FetchRate && A.ConsumeRate == B.ConsumeRate &&
         A.Balance == B.Balance && A.MemOnlyCycles == B.MemOnlyCycles &&
         A.CompOnlyCycles == B.CompOnlyCycles &&
         A.BitsTransferred == B.BitsTransferred && A.FsmStates == B.FsmStates;
}

static std::atomic<uint64_t> InFlightEvals{0};

uint64_t EvaluationService::inFlightEvaluations() {
  return InFlightEvals.load(std::memory_order_relaxed);
}

Expected<SynthesisEstimate>
EvaluationService::computeRaw(const DesignPoint &P) const {
  // The single instrumentation chokepoint for evaluation cost: the
  // sequential walk, speculation workers, and verify mode all come
  // through here. Zero-cost discipline: disabled, this is one relaxed
  // load and a branch on top of the dispatch.
  if (!statsEnabled())
    return computeDispatch(P);

  InFlightEvals.fetch_add(1, std::memory_order_relaxed);
  Expected<SynthesisEstimate> Est = [&] {
    DEFACTO_SCOPED_HISTOGRAM_US("eval.latency_us");
    return computeDispatch(P);
  }();
  InFlightEvals.fetch_sub(1, std::memory_order_relaxed);

  if (Est) {
    static Histogram &BalanceHist =
        HistogramRegistry::global().histogram("estimate.balance_milli");
    static Histogram &CyclesHist =
        HistogramRegistry::global().histogram("estimate.cycles");
    static Histogram &SlicesHist =
        HistogramRegistry::global().histogram("estimate.slices");
    // Balance is a ratio (1.0 == balanced, HUGE_VAL for memory-free
    // designs); record it in milli-units, clamped into bucket range.
    double B = Est->Balance * 1000.0;
    if (!std::isfinite(B) || B > 1e15)
      B = 1e15;
    BalanceHist.record(static_cast<uint64_t>(std::max(B, 0.0)));
    CyclesHist.record(Est->Cycles);
    SlicesHist.record(static_cast<uint64_t>(std::max(Est->Slices, 0.0)));
  }
  return Est;
}

Expected<SynthesisEstimate>
EvaluationService::computeDispatch(const DesignPoint &P) const {
  // The stage-cache factorization (strip-mine/unroll/normalize prefix +
  // finishPipeline) is only proven for the default pipeline shape:
  // interchange/tile points and custom pass pipelines take the
  // historical route unconditionally.
  bool Stageable = P.isUnrollOnly() && Opts.BaseTransforms.Pipeline.empty() &&
                   Opts.BaseTransforms.Interchange.empty();
  if (Opts.FastPath == FastPathMode::Off || !FastPipeline || !Stageable)
    return computeSlow(P);
  if (Opts.FastPath == FastPathMode::On)
    return computeFast(P);

  // Verify: run both routes for this attempt and return the slow result,
  // so a verify run is behaviorally the historical engine plus
  // assertions. Watchdog cancellations are timing, not parity; skip the
  // comparison when either route was cancelled.
  Expected<SynthesisEstimate> Fast = computeFast(P);
  Expected<SynthesisEstimate> Slow = computeSlow(P);
  bool Cancelled = (!Fast && Fast.status().code() == ErrorCode::Cancelled) ||
                   (!Slow && Slow.status().code() == ErrorCode::Cancelled);
  bool Violation = false;
  if (!Cancelled) {
    if (!Fast != !Slow)
      Violation = true; // One route succeeded, the other failed.
    else if (Fast && Slow)
      Violation = !estimatesBitEqual(*Fast, *Slow);
    // Both failed: same verdict; messages may legitimately differ
    // (pipeline verification vs. the checked estimator's re-verify).
  }
  if (Violation) {
    ++NumParityViolations;
    TraceRecorder &R = recorder();
    if (R.enabled()) {
      TraceEvent Ev;
      Ev.Track = Track;
      Ev.Category = "dse.fastpath";
      Ev.Name = P.toString();
      Ev.Runtime = {{"event", "parity-violation"},
                    {"fast", Fast ? Fast->toString() : Fast.status().toString()},
                    {"slow", Slow ? Slow->toString() : Slow.status().toString()}};
      R.record(std::move(Ev));
    }
  }
  return Slow;
}

void EvaluationService::traceStageCache(const DesignPoint &P,
                                        const StageRunInfo &Info) const {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  TraceEvent Ev;
  Ev.Track = Track;
  Ev.Category = "dse.stagecache";
  Ev.Name = P.toString();
  const char *Outcome =
      Info.Outcome == TransformStageCache::Outcome::Hit    ? "hit"
      : Info.Outcome == TransformStageCache::Outcome::Wait ? "wait"
                                                           : "miss";
  // Which worker builds a stage depends on scheduling, so the whole
  // payload is run-variant Runtime detail — never in the decision
  // digest.
  Ev.Runtime = {{"staged", Info.Staged ? "1" : "0"},
                {"outcome", Outcome},
                {"final", Info.FinalHit ? "1" : "0"},
                {"key", Info.Key}};
  R.record(std::move(Ev));
}

void EvaluationService::beginBudget(unsigned MaxEvaluations) {
  BudgetCap = MaxEvaluations;
}

void EvaluationService::endBudget() { BudgetCap.reset(); }

Status EvaluationService::checkLimits() const {
  if (Opts.DeadlineSeconds > 0 &&
      Opts.Clock() - StartSeconds >= Opts.DeadlineSeconds)
    return Status::error(ErrorCode::DeadlineExceeded,
                         "exploration deadline of " +
                             std::to_string(Opts.DeadlineSeconds) +
                             "s exceeded");
  if (BudgetCap && Used >= *BudgetCap)
    return Status::error(ErrorCode::BudgetExhausted,
                         "evaluation budget of " +
                             std::to_string(*BudgetCap) + " exhausted");
  return Status::ok();
}

Expected<SynthesisEstimate>
EvaluationService::evaluateChecked(const UnrollVector &U) {
  return evaluateChecked(DesignPoint(U));
}

Expected<SynthesisEstimate>
EvaluationService::evaluateChecked(const DesignPoint &P) {
  // Unroll-only points keep the historical candidate check and error
  // message (strategy traces compare them); multi-dimensional points go
  // through the generalized shape check.
  if (P.isUnrollOnly()) {
    if (!Space.isCandidate(P.Unroll))
      return Status::error(ErrorCode::InvalidInput,
                           unrollVectorToString(P.Unroll) +
                               " is not a candidate unroll vector");
  } else if (!DSpace.isCandidate(P)) {
    return Status::error(ErrorCode::InvalidInput,
                         P.toString() + " is not a candidate design point");
  }
  if (auto It = Cache.find(P); It != Cache.end()) {
    LastCacheOutcome = "local-hit";
    return It->second;
  }
  if (auto It = FailCache.find(P); It != FailCache.end()) {
    LastCacheOutcome = "local-negative";
    return It->second;
  }

  for (;;) {
    EstimateCache::Outcome Served = EstimateCache::Outcome::Miss;
    auto Found = Estimates->lookupOrBegin(cacheKey(P), &Served);
    switch (Served) {
    case EstimateCache::Outcome::Hit:
      LastCacheOutcome = "hit";
      break;
    case EstimateCache::Outcome::NegativeHit:
      LastCacheOutcome = "negative-hit";
      break;
    case EstimateCache::Outcome::Wait:
      LastCacheOutcome = "wait";
      break;
    case EstimateCache::Outcome::Miss:
      LastCacheOutcome = "computed";
      break;
    }
    if (auto *Done = std::get_if<EstimateCache::Result>(&Found)) {
      if (Done->Attempts == 0)
        continue; // A computer abandoned the entry (transient); retry.
      // Replay a memoized result: charge the attempts it originally cost
      // against this run's budget, exactly as if estimated here.
      if (Status Limit = checkLimits(); !Limit.isOk())
        return Limit;
      Used += Done->Attempts;
      if (Done->ok()) {
        Cache.emplace(P, *Done->Estimate);
        return *Done->Estimate;
      }
      Status Err = Done->Estimate.status();
      FailCache.emplace(P, Err);
      logFailure({P.Unroll, Done->Attempts, Err, P});
      return Err;
    }

    // Miss: this run owns the computation (and its retries).
    EstimateCache::Ticket Ticket =
        std::get<EstimateCache::Ticket>(std::move(Found));

    // Circuit-breaker gate. Placed after the ticket so completed cache
    // entries keep being served while a backend is down; only work that
    // would actually reach the backend is failed fast. Fast failures are
    // global conditions, never the design's fault: the ticket is
    // abandoned (no negative caching) and no budget is charged.
    if (Opts.Breakers) {
      CircuitBreakerRegistry::Decision Admit =
          Opts.Breakers->admit(Opts.Platform.Name, Opts.Clock());
      if (Admit == CircuitBreakerRegistry::Decision::FailFast) {
        traceBreaker("fail-fast");
        Status Fast = Status::error(
            ErrorCode::BackendUnavailable,
            "circuit open for backend '" + Opts.Platform.Name + "'");
        Estimates->abandon(std::move(Ticket), Fast);
        logFailure({P.Unroll, 0, Fast, P});
        return Fast;
      }
      if (Admit == CircuitBreakerRegistry::Decision::Probe)
        traceBreaker("probe");
    }

    Status Last = Status::ok();
    double Backoff = Opts.RetryBackoffSeconds;
    unsigned Attempts = 0;
    for (unsigned Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
      if (Status Limit = checkLimits(); !Limit.isOk()) {
        if (Attempts > 0) // Record what the cut-short retries saw.
          logFailure({P.Unroll, Attempts, Last, P});
        Estimates->abandon(std::move(Ticket), Limit);
        return Limit;
      }
      if (Attempt > 0 && Backoff > 0) {
        Opts.Sleep(std::min(Backoff, Opts.MaxBackoffSeconds));
        Backoff *= 2;
      }
      ++Used;
      ++Attempts;
      Expected<SynthesisEstimate> Est = computeRaw(P);
      if (Est) {
        if (Opts.Breakers)
          if (const char *Transition = Opts.Breakers->recordSuccess(
                  Opts.Platform.Name, Opts.Clock()))
            traceBreaker(Transition);
        Estimates->fulfill(std::move(Ticket),
                           EstimateCache::Result{Est, Attempts});
        Cache.emplace(P, *Est);
        return Est;
      }
      Last = Est.status();
    }
    // Permanent failure: every retry exhausted. This is the granularity
    // the breaker counts — attempt failures a retry recovered never
    // reach it.
    if (Opts.Breakers)
      if (const char *Transition = Opts.Breakers->recordFailure(
              Opts.Platform.Name, Opts.Clock()))
        traceBreaker(Transition);
    Estimates->fulfill(
        std::move(Ticket),
        EstimateCache::Result{Expected<SynthesisEstimate>(Last), Attempts});
    FailCache.emplace(P, Last);
    logFailure({P.Unroll, Attempts, Last, P});
    return Last;
  }
}

void EvaluationService::logFailure(EvaluationFailure F) {
  size_t Cap = std::max(1u, Opts.MaxFailureLogEntries);
  if (FailLog.size() < Cap) {
    FailLog.push_back(std::move(F));
    return;
  }
  FailLog[FailLogStart] = std::move(F);
  FailLogStart = (FailLogStart + 1) % Cap;
  ++DroppedFailures;
  ++NumDroppedFailures;
}

std::vector<EvaluationFailure> EvaluationService::failures() const {
  std::vector<EvaluationFailure> Out;
  Out.reserve(FailLog.size());
  for (size_t I = 0; I != FailLog.size(); ++I)
    Out.push_back(FailLog[(FailLogStart + I) % FailLog.size()]);
  return Out;
}

void EvaluationService::traceBreaker(const char *What) {
  TraceRecorder &R = recorder();
  if (!R.enabled())
    return;
  CircuitBreakerRegistry::Snapshot Snap =
      Opts.Breakers->snapshot(Opts.Platform.Name);
  TraceEvent Ev;
  Ev.Track = Track;
  Ev.Category = "dse.breaker";
  Ev.Name = Opts.Platform.Name;
  // Breaker activity is timing-dependent (cooldowns on a real clock),
  // so the whole payload is run-variant Runtime detail.
  Ev.Runtime = {{"event", What},
                {"state", Snap.Current == CircuitBreakerRegistry::State::Open
                              ? "open"
                          : Snap.Current ==
                                  CircuitBreakerRegistry::State::HalfOpen
                              ? "half-open"
                              : "closed"},
                {"consecutive_failures",
                 std::to_string(Snap.ConsecutiveFailures)},
                {"times_opened", std::to_string(Snap.TimesOpened)},
                {"fast_failures", std::to_string(Snap.FastFailures)}};
  R.record(std::move(Ev));
}

std::optional<SynthesisEstimate>
EvaluationService::evaluate(const UnrollVector &U) {
  return evaluate(DesignPoint(U));
}

std::optional<SynthesisEstimate>
EvaluationService::evaluate(const DesignPoint &P) {
  Expected<SynthesisEstimate> Est = evaluateChecked(P);
  if (!Est)
    return std::nullopt;
  return *Est;
}

std::optional<SynthesisEstimate>
EvaluationService::evaluated(const UnrollVector &U) const {
  return evaluated(DesignPoint(U));
}

std::optional<SynthesisEstimate>
EvaluationService::evaluated(const DesignPoint &P) const {
  if (auto It = Cache.find(P); It != Cache.end())
    return It->second;
  return std::nullopt;
}

std::shared_ptr<ThreadPool> EvaluationService::workerPool() {
  if (Opts.Pool)
    return Opts.Pool;
  if (Opts.NumThreads <= 1)
    return nullptr;
  if (!Pool)
    Pool = std::make_shared<ThreadPool>(Opts.NumThreads);
  return Pool;
}

void EvaluationService::prefetch(const std::vector<UnrollVector> &Candidates) {
  std::vector<DesignPoint> Points;
  Points.reserve(Candidates.size());
  for (const UnrollVector &U : Candidates)
    Points.push_back(DesignPoint(U));
  prefetchPoints(Points);
}

void EvaluationService::prefetchPoints(
    const std::vector<DesignPoint> &Candidates) {
  std::shared_ptr<ThreadPool> Workers = workerPool();
  if (!Workers)
    return;
  for (const DesignPoint &P : Candidates) {
    if (P.isUnrollOnly() ? !Space.isCandidate(P.Unroll)
                         : !DSpace.isCandidate(P))
      continue;
    ++NumSpeculated;
    Speculation.push_back(Workers->submit([this, P] {
      auto Found = Estimates->lookupOrBegin(cacheKey(P));
      if (auto *Ticket = std::get_if<EstimateCache::Ticket>(&Found)) {
        // Spans from worker threads show the estimation overlap in the
        // Perfetto timeline; they are run-variant by nature and excluded
        // from the deterministic decision digest.
        TraceSpan Span(recorder(), Track, "speculate", P.toString());
        // Mirror the sequential retry policy (minus the backoff sleeps)
        // so the attempts recorded — and later charged on consumption —
        // match what the sequential walk would have spent.
        unsigned Attempts = 1;
        Expected<SynthesisEstimate> Est = computeRaw(P);
        while (!Est && Attempts <= Opts.MaxRetries) {
          ++Attempts;
          Est = computeRaw(P);
        }
        Span.note("attempts", std::to_string(Attempts));
        Span.note("ok", Est ? "1" : "0");
        Estimates->fulfill(std::move(*Ticket),
                           EstimateCache::Result{std::move(Est), Attempts});
      }
      // A completed or in-flight entry needs no speculative work.
    }));
  }
}

void EvaluationService::drainSpeculation() {
  for (std::future<void> &F : Speculation)
    if (F.valid())
      F.wait();
  Speculation.clear();
}
