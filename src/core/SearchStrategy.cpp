//===- SearchStrategy.cpp - Registry and the sampling baselines -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"

#include "defacto/Support/Random.h"

#include <algorithm>
#include <set>

using namespace defacto;

SearchStrategy::~SearchStrategy() = default;

//===--------------------------------------------------------------------===//
// StrategyRegistry
//===--------------------------------------------------------------------===//

StrategyRegistry::StrategyRegistry() {
  Strategies.emplace(
      "guided",
      RegisteredStrategy{"the paper's Figure-2 balance-guided walk",
                         [] { return createGuidedStrategy(); }});
  Strategies.emplace(
      "exhaustive",
      RegisteredStrategy{"every divisor vector; fastest fitting design",
                         [] { return createExhaustiveStrategy(); }});
  Strategies.emplace(
      "random",
      RegisteredStrategy{"deterministic random sampling (24 designs)",
                         [] { return createRandomStrategy(); }});
  Strategies.emplace(
      "hillclimb",
      RegisteredStrategy{"steepest-descent neighborhood search from Uinit",
                         [] { return createHillClimbStrategy(); }});
  Strategies.emplace(
      "portfolio",
      RegisteredStrategy{
          "guided + hillclimb + random under split budgets; best wins",
          [] { return createPortfolioStrategy(); }});
  Strategies.emplace(
      "guided+tile",
      RegisteredStrategy{
          "guided walk, then interchange/tile refinement around the optimum",
          [] { return createGuidedTileStrategy(); }});
}

StrategyRegistry &StrategyRegistry::instance() {
  static StrategyRegistry R;
  return R;
}

bool StrategyRegistry::add(const std::string &Name,
                           const std::string &Description,
                           Factory MakeStrategy) {
  std::lock_guard<std::mutex> Lock(M);
  return Strategies
      .emplace(Name, RegisteredStrategy{Description, std::move(MakeStrategy)})
      .second;
}

std::unique_ptr<SearchStrategy>
StrategyRegistry::create(const std::string &Name) const {
  Factory Make;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Strategies.find(Name);
    if (It == Strategies.end())
      return nullptr;
    Make = It->second.Make;
  }
  return Make();
}

bool StrategyRegistry::contains(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  return Strategies.count(Name) != 0;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Names;
  for (const auto &[Name, Entry] : Strategies)
    Names.push_back(Name);
  return Names; // std::map iterates sorted
}

std::string StrategyRegistry::describe() const {
  std::lock_guard<std::mutex> Lock(M);
  size_t Widest = 0;
  for (const auto &[Name, Entry] : Strategies)
    Widest = std::max(Widest, Name.size());
  std::string Out;
  for (const auto &[Name, Entry] : Strategies) {
    Out += "  " + Name + std::string(Widest - Name.size() + 2, ' ') +
           Entry.Description + "\n";
  }
  return Out;
}

//===--------------------------------------------------------------------===//
// Candidate-list baselines: exhaustive and random share one reducer.
//===--------------------------------------------------------------------===//

namespace {

/// Evaluates \p Candidates through the service (worker pool fan-out when
/// configured, reduction in candidate order so the result matches the
/// sequential run) and selects the fastest fitting design; among designs
/// within 5% of its cycles, the smallest.
ExplorationResult pickBest(const SearchContext &SC,
                           const std::vector<UnrollVector> &Candidates,
                           const char *Role) {
  EvaluationService &Ex = SC.Eval;
  ExplorationResult Res;
  Res.Strategy = Role;
  Res.Sat = Ex.saturation();
  Res.FullSpaceSize = Ex.space().fullSize();

  std::vector<UnrollVector> Prefetch{Ex.space().base()};
  Prefetch.insert(Prefetch.end(), Candidates.begin(), Candidates.end());
  Ex.prefetch(Prefetch);

  if (auto Base = Ex.evaluate(Ex.space().base())) {
    Res.BaselineEstimate = *Base;
    Ex.traceDecision(Ex.space().base(), *Base, "baseline", "baseline");
  }

  for (const UnrollVector &U : Candidates) {
    auto Est = Ex.evaluate(U);
    if (!Est)
      continue;
    Res.Visited.push_back({U, *Est, Role, DesignPoint(U)});
    Ex.traceDecision(U, *Est, Role, "candidate");
  }

  double Capacity = Ex.options().Platform.CapacitySlices;
  const EvaluatedDesign *Fastest = nullptr;
  for (const EvaluatedDesign &D : Res.Visited) {
    if (D.Estimate.Slices > Capacity)
      continue;
    if (!Fastest || D.Estimate.Cycles < Fastest->Estimate.Cycles)
      Fastest = &D;
  }
  const EvaluatedDesign *Best = Fastest;
  if (Fastest) {
    for (const EvaluatedDesign &D : Res.Visited) {
      if (D.Estimate.Slices > Capacity)
        continue;
      if (D.Estimate.Cycles <=
              static_cast<uint64_t>(Fastest->Estimate.Cycles * 1.05) &&
          D.Estimate.Slices < Best->Estimate.Slices)
        Best = &D;
    }
  }
  if (Best) {
    Res.Selected = Best->U;
    Res.SelectedEstimate = Best->Estimate;
  } else {
    Res.Selected = Ex.space().base();
    Res.SelectedEstimate = Res.BaselineEstimate;
  }
  Res.Failures = Ex.failures();
  Res.DroppedFailures = Ex.failuresDropped();
  Res.Degraded = !Res.Failures.empty();
  Res.EvaluationsUsed = Ex.evaluationsUsed();
  for (const EvaluationFailure &F : Res.Failures)
    Res.Trace += "FAIL " + unrollVectorToString(F.U) + " [" + Role + "] " +
                 F.Error.toString() + "\n";
  return Res;
}

class ExhaustiveStrategy : public SearchStrategy {
public:
  std::string name() const override { return "exhaustive"; }
  ExplorationResult search(const SearchContext &SC) override {
    return pickBest(SC, SC.Eval.space().allCandidates(), "exhaustive");
  }
};

class RandomStrategy : public SearchStrategy {
public:
  RandomStrategy(unsigned Samples, uint64_t Seed)
      : Samples(Samples), Seed(Seed) {}
  std::string name() const override { return "random"; }
  ExplorationResult search(const SearchContext &SC) override {
    std::vector<UnrollVector> All = SC.Eval.space().allCandidates();
    SplitMix64 Rng(Seed);
    std::vector<UnrollVector> Picked;
    std::set<uint64_t> Chosen;
    while (Picked.size() < Samples && Chosen.size() < All.size()) {
      uint64_t I = Rng.nextBelow(All.size());
      if (Chosen.insert(I).second)
        Picked.push_back(All[I]);
    }
    return pickBest(SC, Picked, "random");
  }

private:
  unsigned Samples;
  uint64_t Seed;
};

} // namespace

std::unique_ptr<SearchStrategy> defacto::createExhaustiveStrategy() {
  return std::make_unique<ExhaustiveStrategy>();
}

std::unique_ptr<SearchStrategy> defacto::createRandomStrategy(unsigned Samples,
                                                              uint64_t Seed) {
  return std::make_unique<RandomStrategy>(Samples, Seed);
}

Expected<ExplorationResult>
defacto::exploreWithStrategy(const Kernel &Source, const ExplorerOptions &Opts,
                             const std::string &Name) {
  std::unique_ptr<SearchStrategy> S = StrategyRegistry::instance().create(Name);
  if (!S)
    return Status::error(ErrorCode::InvalidInput,
                         "unknown search strategy '" + Name +
                             "'; registered strategies:\n" +
                             StrategyRegistry::instance().describe());
  EvaluationService Eval(Source, Opts);
  SearchContext SC{Source, Eval.options(), Eval};
  return S->search(SC);
}
