//===- SystemMapper.cpp ---------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SystemMapper.h"

#include <algorithm>

using namespace defacto;

SystemMapping
defacto::mapKernelsToDevice(const std::vector<const Kernel *> &Kernels,
                            const ExplorerOptions &Opts) {
  SystemMapping Mapping;
  double Capacity = Opts.Platform.CapacitySlices;

  // Round 0: every kernel explores with the full device available.
  for (const Kernel *K : Kernels) {
    MappedKernel MK;
    MK.Name = K->name();
    MK.BudgetSlices = Capacity;
    MK.Result = DesignSpaceExplorer(*K, Opts).run();
    Mapping.Kernels.push_back(std::move(MK));
  }

  auto totalSlices = [&]() {
    double Sum = 0;
    for (const MappedKernel &MK : Mapping.Kernels)
      Sum += MK.Result.SelectedEstimate.Slices;
    return Sum;
  };

  // Budget negotiation: shrink the largest consumer's budget to what the
  // others leave over, and re-explore it. Each round strictly reduces
  // one kernel's budget, so the loop terminates quickly.
  for (unsigned Round = 0; Round != 4 * Kernels.size() + 4; ++Round) {
    double Sum = totalSlices();
    if (Sum <= Capacity)
      break;
    ++Mapping.Rounds;

    auto Largest = std::max_element(
        Mapping.Kernels.begin(), Mapping.Kernels.end(),
        [](const MappedKernel &A, const MappedKernel &B) {
          return A.Result.SelectedEstimate.Slices <
                 B.Result.SelectedEstimate.Slices;
        });
    double Others = Sum - Largest->Result.SelectedEstimate.Slices;
    double NewBudget = Capacity - Others;
    // Tighten below the current size so progress is guaranteed; never
    // below a sliver that even a baseline design could miss.
    NewBudget = std::min(NewBudget,
                         Largest->Result.SelectedEstimate.Slices * 0.9);
    if (NewBudget < 1.0)
      NewBudget = 1.0;
    if (NewBudget >= Largest->BudgetSlices)
      break; // No room to negotiate further.

    const Kernel *Source = nullptr;
    for (const Kernel *K : Kernels)
      if (K->name() == Largest->Name)
        Source = K;
    if (!Source)
      break;

    ExplorerOptions Tight = Opts;
    Tight.Platform.CapacitySlices = NewBudget;
    Largest->BudgetSlices = NewBudget;
    Largest->Result = DesignSpaceExplorer(*Source, Tight).run();
  }

  Mapping.TotalSlices = totalSlices();
  Mapping.Fits = Mapping.TotalSlices <= Capacity;
  Mapping.TotalCycles = 0;
  for (const MappedKernel &MK : Mapping.Kernels)
    Mapping.TotalCycles += MK.Result.SelectedEstimate.Cycles;
  return Mapping;
}
