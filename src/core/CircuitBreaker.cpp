//===- CircuitBreaker.cpp -------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/CircuitBreaker.h"

#include "defacto/Support/Stats.h"

using namespace defacto;

DEFACTO_STATISTIC(NumBreakerOpens, "breaker", "opens",
                  "circuit-breaker transitions into the open state");
DEFACTO_STATISTIC(NumBreakerCloses, "breaker", "closes",
                  "half-open probes that restored a backend to closed");
DEFACTO_STATISTIC(NumBreakerFastFailures, "breaker", "fast-failures",
                  "evaluations failed fast by an open circuit");
DEFACTO_STATISTIC(NumBreakerProbes, "breaker", "probes",
                  "half-open probe evaluations admitted");

CircuitBreakerRegistry::CircuitBreakerRegistry(CircuitBreakerOptions Opts)
    : Opts(Opts) {}

CircuitBreakerRegistry::Decision
CircuitBreakerRegistry::admit(const std::string &Key, double Now) {
  std::lock_guard<std::mutex> Lock(M);
  Breaker &B = Breakers[Key];
  switch (B.Current) {
  case State::Closed:
    return Decision::Allow;
  case State::Open:
    if (Now - B.OpenedAt >= Opts.CooldownSeconds) {
      B.Current = State::HalfOpen;
      B.ProbeInFlight = true;
      ++B.Probes;
      ++NumBreakerProbes;
      return Decision::Probe;
    }
    ++B.FastFailures;
    ++NumBreakerFastFailures;
    return Decision::FailFast;
  case State::HalfOpen:
    if (!B.ProbeInFlight) {
      B.ProbeInFlight = true;
      ++B.Probes;
      ++NumBreakerProbes;
      return Decision::Probe;
    }
    ++B.FastFailures;
    ++NumBreakerFastFailures;
    return Decision::FailFast;
  }
  return Decision::Allow;
}

const char *CircuitBreakerRegistry::recordSuccess(const std::string &Key,
                                                  double /*Now*/) {
  std::lock_guard<std::mutex> Lock(M);
  Breaker &B = Breakers[Key];
  B.ConsecutiveFailures = 0;
  if (B.Current == State::HalfOpen) {
    B.Current = State::Closed;
    B.ProbeInFlight = false;
    ++NumBreakerCloses;
    return "closed";
  }
  return nullptr;
}

const char *CircuitBreakerRegistry::recordFailure(const std::string &Key,
                                                  double Now) {
  std::lock_guard<std::mutex> Lock(M);
  Breaker &B = Breakers[Key];
  switch (B.Current) {
  case State::Closed:
    if (++B.ConsecutiveFailures >= Opts.FailureThreshold) {
      B.Current = State::Open;
      B.OpenedAt = Now;
      ++B.TimesOpened;
      ++NumBreakerOpens;
      return "opened";
    }
    return nullptr;
  case State::HalfOpen:
    // The probe failed: the backend is still down. Restart the cooldown.
    B.Current = State::Open;
    B.OpenedAt = Now;
    B.ProbeInFlight = false;
    ++B.TimesOpened;
    ++NumBreakerOpens;
    return "reopened";
  case State::Open:
    // A call admitted before the trip finishing late; nothing changes.
    return nullptr;
  }
  return nullptr;
}

CircuitBreakerRegistry::Snapshot
CircuitBreakerRegistry::snapshot(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  Snapshot S;
  auto It = Breakers.find(Key);
  if (It == Breakers.end())
    return S;
  const Breaker &B = It->second;
  S.Current = B.Current;
  S.ConsecutiveFailures = B.ConsecutiveFailures;
  S.TimesOpened = B.TimesOpened;
  S.FastFailures = B.FastFailures;
  S.Probes = B.Probes;
  return S;
}

std::vector<std::pair<std::string, CircuitBreakerRegistry::Snapshot>>
CircuitBreakerRegistry::snapshotAll() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::pair<std::string, Snapshot>> Out;
  Out.reserve(Breakers.size());
  for (const auto &[Key, B] : Breakers) {
    Snapshot S;
    S.Current = B.Current;
    S.ConsecutiveFailures = B.ConsecutiveFailures;
    S.TimesOpened = B.TimesOpened;
    S.FastFailures = B.FastFailures;
    S.Probes = B.Probes;
    Out.emplace_back(Key, S);
  }
  return Out; // std::map iterates sorted by key
}
