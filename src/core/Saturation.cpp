//===- Saturation.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/Saturation.h"

#include "defacto/Analysis/UniformlyGenerated.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Pipeline.h"

using namespace defacto;

namespace {

/// Collects the steady-state residual array accesses: everything outside
/// first-iteration guards (guard bodies hold chain/window warm-up loads
/// that peeling will move out of the main loop).
void collectSteadyAccesses(StmtList &Stmts, bool InGuard,
                           std::vector<ArrayAccessExpr *> &Out) {
  for (StmtPtr &SP : Stmts) {
    if (auto *F = dyn_cast<ForStmt>(SP.get())) {
      collectSteadyAccesses(F->body(), InGuard, Out);
    } else if (auto *I = dyn_cast<IfStmt>(SP.get())) {
      collectSteadyAccesses(I->thenBody(), /*InGuard=*/true, Out);
      collectSteadyAccesses(I->elseBody(), /*InGuard=*/true, Out);
    } else if (auto *A = dyn_cast<AssignStmt>(SP.get())) {
      if (InGuard)
        continue;
      auto visit = [&Out](Expr *E) {
        walkExpr(E, [&Out](Expr *X) {
          if (auto *Acc = dyn_cast<ArrayAccessExpr>(X))
            Out.push_back(Acc);
        });
      };
      visit(A->dest());
      visit(A->value());
    }
  }
}

} // namespace

SaturationInfo defacto::computeSaturation(const Kernel &Source,
                                          unsigned NumMemories) {
  SaturationInfo Info;

  // The nest shape comes from the normalized source (scalar replacement
  // hoists loads between nest levels, which would otherwise hide outer
  // loops behind imperfect bodies). Loop ids are stable across the
  // pipeline's clone, so positions can be matched by id.
  Kernel Norm = Source.clone();
  normalizeLoops(Norm);
  ForStmt *SrcTop = Norm.topLoop();
  if (!SrcTop)
    return Info;
  std::vector<int> NestIds;
  for (ForStmt *F : perfectNest(SrcTop)) {
    NestIds.push_back(F->loopId());
    Info.Trips.push_back(F->tripCount());
  }
  Info.MemoryVarying.assign(NestIds.size(), false);

  // Residual accesses after scalar replacement (no unrolling, no peeling
  // or layout: the guards mark the non-steady accesses).
  TransformOptions Opts;
  Opts.EnablePeeling = false;
  Opts.EnableDataLayout = false;
  TransformResult R = applyPipeline(Source, Opts);

  std::vector<ArrayAccessExpr *> Steady;
  collectSteadyAccesses(R.K.body(), /*InGuard=*/false, Steady);

  // Partition residual accesses into uniformly generated sets; the
  // statements they came from determine read/write, so re-walk with the
  // same exclusion to classify.
  UGPartition Part;
  {
    // Reconstruct read/write classification by matching collected
    // pointers against a full access walk.
    std::vector<AccessInfo> All = collectArrayAccesses(R.K);
    for (ArrayAccessExpr *Acc : Steady) {
      bool IsWrite = false;
      for (const AccessInfo &Info2 : All)
        if (Info2.Access == Acc)
          IsWrite = Info2.IsWrite;
      // Insert into the partition by hand.
      auto &Sets = IsWrite ? Part.WriteSets : Part.ReadSets;
      bool Placed = false;
      for (UGSet &Set : Sets) {
        if (Set.Array == Acc->array() &&
            areUniformlyGenerated(Set.Accesses.front(), Acc)) {
          Set.Accesses.push_back(Acc);
          Placed = true;
          break;
        }
      }
      if (!Placed) {
        UGSet NewSet;
        NewSet.Array = Acc->array();
        NewSet.IsWrite = IsWrite;
        NewSet.Accesses.push_back(Acc);
        Sets.push_back(std::move(NewSet));
      }
    }
  }
  Info.R = Part.numReadSets();
  Info.W = Part.numWriteSets();

  int64_t G = gcd64(Info.R, Info.W);
  if (G == 0)
    G = 1;
  Info.Psat = lcm64(G, NumMemories == 0 ? 1 : NumMemories);

  for (ArrayAccessExpr *Acc : Steady)
    for (const AffineExpr &Sub : Acc->subscripts())
      for (int Id : Sub.loopIds())
        for (unsigned P = 0; P != NestIds.size(); ++P)
          if (NestIds[P] == Id)
            Info.MemoryVarying[P] = true;

  return Info;
}
