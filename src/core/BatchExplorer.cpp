//===- BatchExplorer.cpp --------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"

#include "defacto/Core/EvaluationJournal.h"

using namespace defacto;

BatchExplorer::BatchExplorer(BatchOptions Opts) : Opts(std::move(Opts)) {
  Cache = this->Opts.Cache ? this->Opts.Cache
                           : std::make_shared<EstimateCache>();
}

void BatchExplorer::addJob(BatchJob Job) { Jobs.push_back(std::move(Job)); }

void BatchExplorer::addJob(const Kernel &K, ExplorerOptions JobOpts,
                           BatchJob::Mode Mode) {
  Jobs.emplace_back(K.name(), K.clone(), std::move(JobOpts), Mode);
}

void BatchExplorer::addJob(const Kernel &K, ExplorerOptions JobOpts,
                           std::string Strategy) {
  Jobs.emplace_back(K.name(), K.clone(), std::move(JobOpts),
                    std::move(Strategy));
}

namespace {

ExplorationResult runJob(const BatchJob &Job,
                         const std::shared_ptr<EstimateCache> &Cache,
                         const std::shared_ptr<TraceRecorder> &Trace,
                         const std::shared_ptr<CircuitBreakerRegistry>
                             &Breakers) {
  // Each job runs sequentially inside its worker: its parallelism budget
  // is the batch's, and nested speculation into the batch pool could
  // deadlock it (every worker waiting on tasks no worker is free to
  // run). The shared cache still lets concurrent jobs feed each other.
  ExplorerOptions Opts = Job.Opts;
  Opts.NumThreads = 1;
  Opts.Pool = nullptr;
  Opts.Cache = Cache;
  if (!Opts.Trace)
    Opts.Trace = Trace;
  if (!Opts.Breakers)
    Opts.Breakers = Breakers;
  if (Opts.TraceLabel.empty())
    Opts.TraceLabel = Job.Name.empty() ? Job.K.name() : Job.Name;
  if (!Job.Strategy.empty()) {
    if (Expected<ExplorationResult> Res =
            exploreWithStrategy(Job.K, Opts, Job.Strategy))
      return *Res;
    // Unknown strategy: degrade to guided rather than abort the batch.
    ExplorationResult Fallback = DesignSpaceExplorer(Job.K, Opts).run();
    Fallback.Trace = "unknown strategy '" + Job.Strategy +
                     "'; fell back to guided\n" + Fallback.Trace;
    return Fallback;
  }
  if (Job.SearchMode == BatchJob::Mode::Exhaustive)
    return exploreExhaustive(Job.K, Opts);
  DesignSpaceExplorer Ex(Job.K, std::move(Opts));
  return Ex.run();
}

/// Journals \p Result's winner summary; when the journal already held a
/// record for \p Name (an interrupted run finished this job), first
/// verifies the re-derived winner against it and notes the outcome in
/// the result's trace.
void journalJob(EvaluationJournal &Journal, const std::string &Name,
                ExplorationResult &Result) {
  JournalJobRecord Rec;
  Rec.Name = Name;
  Rec.Strategy = Result.Strategy;
  Rec.Selected = unrollVectorToString(Result.Selected);
  Rec.Cycles = Result.SelectedEstimate.Cycles;
  Rec.Slices = Result.SelectedEstimate.Slices;
  Rec.Evaluations = Result.EvaluationsUsed;
  Rec.Degraded = Result.Degraded;
  Rec.Fits = Result.SelectedFits;
  if (std::optional<JournalJobRecord> Prev = Journal.jobRecord(Name)) {
    bool Match = Prev->Selected == Rec.Selected &&
                 Prev->Cycles == Rec.Cycles && Prev->Slices == Rec.Slices &&
                 Prev->Fits == Rec.Fits;
    Result.Trace += Match ? "resume: reproduced journaled winner " +
                                Rec.Selected + "\n"
                          : "resume: journaled winner " + Prev->Selected +
                                " NOT reproduced (got " + Rec.Selected +
                                ")\n";
  }
  Journal.recordJob(Rec);
}

} // namespace

std::vector<BatchResult> BatchExplorer::runAll() {
  std::vector<BatchJob> Pending;
  Pending.swap(Jobs);
  JobsQueued.store(Pending.size(), std::memory_order_relaxed);
  JobsDone.store(0, std::memory_order_relaxed);

  std::vector<BatchResult> Results(Pending.size());
  for (size_t I = 0; I != Pending.size(); ++I)
    Results[I].Name = Pending[I].Name.empty() ? Pending[I].K.name()
                                              : Pending[I].Name;

  // Journal hookup: every estimation fulfilled into the shared cache is
  // recorded (and flushed) the moment it completes, from whichever
  // thread computed it. Replayed (seeded) entries never re-fulfill, so a
  // resumed run re-records nothing.
  if (Opts.Journal)
    Cache->setObserver(
        [Journal = Opts.Journal](const std::string &Key,
                                 const EstimateCache::Result &R) {
          Journal->recordEvaluation(Key, R);
        });

  bool Parallel = Opts.Pool != nullptr || Opts.NumThreads > 1;
  if (!Parallel) {
    for (size_t I = 0; I != Pending.size(); ++I) {
      Results[I].Result =
          runJob(Pending[I], Cache, Opts.Trace, Opts.Breakers);
      if (Opts.Journal)
        journalJob(*Opts.Journal, Results[I].Name, Results[I].Result);
      JobsDone.fetch_add(1, std::memory_order_relaxed);
    }
    if (Opts.Journal)
      Cache->setObserver({});
    return Results;
  }

  std::shared_ptr<ThreadPool> Pool =
      Opts.Pool ? Opts.Pool : std::make_shared<ThreadPool>(Opts.NumThreads);
  std::vector<std::future<void>> Done;
  Done.reserve(Pending.size());
  for (size_t I = 0; I != Pending.size(); ++I)
    Done.push_back(Pool->submit([this, &Pending, &Results, I] {
      Results[I].Result =
          runJob(Pending[I], Cache, Opts.Trace, Opts.Breakers);
      if (Opts.Journal)
        journalJob(*Opts.Journal, Results[I].Name, Results[I].Result);
      JobsDone.fetch_add(1, std::memory_order_relaxed);
    }));
  for (std::future<void> &F : Done)
    F.wait();
  if (Opts.Journal)
    Cache->setObserver({});
  return Results;
}

std::vector<BatchResult> defacto::exploreBatch(std::vector<BatchJob> Jobs,
                                               const BatchOptions &Opts) {
  BatchExplorer Batch(Opts);
  for (BatchJob &Job : Jobs)
    Batch.addJob(std::move(Job));
  return Batch.runAll();
}
