//===- TransformStageCache.cpp --------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/TransformStageCache.h"

#include "defacto/Core/EstimateCache.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Support/Arena.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Tiling.h"

#include <algorithm>
#include <sstream>

using namespace defacto;

// Registry mirror of the stage-cache counters, distinguishing pipeline-
// prefix reuse from the estimate cache's whole-design hits ("cache"
// group alongside lookups/hits/misses).
DEFACTO_STATISTIC(NumStageHits, "cache", "stage_hits",
                  "transform-stage lookups served a memoized prefix");
DEFACTO_STATISTIC(NumStageMisses, "cache", "stage_misses",
                  "transform-stage lookups that built the prefix");
DEFACTO_STATISTIC(NumStageWaits, "cache", "stage_waits",
                  "transform-stage lookups that blocked on another builder");
DEFACTO_STATISTIC(NumStageEvictions, "cache", "stage_evictions",
                  "memoized prefixes dropped by the per-shard FIFO bound");
DEFACTO_STATISTIC(NumFinalHits, "cache", "final_hits",
                  "candidate lookups served a memoized finished kernel");
DEFACTO_STATISTIC(NumFinalMisses, "cache", "final_misses",
                  "candidate lookups that ran the post-stage passes");

std::string defacto::stageCacheKey(
    uint64_t KernelFingerprint,
    const std::optional<std::pair<unsigned, int64_t>> &StripMine,
    const UnrollVector &Prefix) {
  std::ostringstream OS;
  OS << std::hex << KernelFingerprint << std::dec << '|';
  if (StripMine)
    OS << "sm" << StripMine->first << 'x' << StripMine->second;
  OS << '|' << unrollVectorToString(Prefix);
  return OS.str();
}

TransformStageCache::TransformStageCache(unsigned NumShards,
                                         size_t MaxEntriesPerShard)
    : MaxEntriesPerShard(std::max<size_t>(1, MaxEntriesPerShard)) {
  NumShards = std::max(1u, NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

TransformStageCache::Shard &
TransformStageCache::shardFor(const std::string &Key, unsigned &Index) const {
  Index = std::hash<std::string>{}(Key) % Shards.size();
  return *Shards[Index];
}

std::variant<TransformStageCache::EntryPtr, TransformStageCache::Ticket>
TransformStageCache::lookupOrBegin(const std::string &Key, Outcome *Served,
                                   bool Final) {
  unsigned Index = 0;
  Shard &S = shardFor(Key, Index);

  std::shared_future<EntryPtr> Pending;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    ++S.Counters.Lookups;
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      Ticket T;
      T.Shard = Index;
      T.Key = Key;
      T.Promise = std::make_shared<std::promise<EntryPtr>>();
      S.Map.emplace(Key, Slot{T.Promise->get_future().share(), false});
      ++S.Counters.Misses;
      ++(Final ? NumFinalMisses : NumStageMisses);
      if (Served)
        *Served = Outcome::Miss;
      return T;
    }
    if (It->second.Completed) {
      EntryPtr E = It->second.Future.get(); // Ready: does not block.
      ++S.Counters.Hits;
      ++(Final ? NumFinalHits : NumStageHits);
      if (Served)
        *Served = Outcome::Hit;
      return E;
    }
    ++S.Counters.Waits;
    ++NumStageWaits;
    Pending = It->second.Future;
  }
  // In flight elsewhere: block outside the shard lock.
  if (Served)
    *Served = Outcome::Wait;
  DEFACTO_SCOPED_TIMER("cache.stage_wait");
  DEFACTO_SCOPED_HISTOGRAM_US("cache.stage_wait_us");
  return Pending.get();
}

void TransformStageCache::fulfill(Ticket T, EntryPtr E) {
  Shard &S = *Shards[T.Shard];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(T.Key);
    if (It != S.Map.end()) {
      It->second.Completed = true;
      S.InsertOrder.push_back(T.Key);
      ++S.Counters.Inserts;
      while (S.InsertOrder.size() > MaxEntriesPerShard) {
        S.Map.erase(S.InsertOrder.front());
        S.InsertOrder.pop_front();
        ++S.Counters.Evictions;
        ++NumStageEvictions;
      }
    }
  }
  T.Promise->set_value(std::move(E));
}

void TransformStageCache::abandon(Ticket T) {
  Shard &S = *Shards[T.Shard];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.erase(T.Key);
  }
  T.Promise->set_value(nullptr);
}

size_t TransformStageCache::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    for (const auto &KV : S->Map)
      N += KV.second.Completed ? 1 : 0;
  }
  return N;
}

TransformStageCache::Stats TransformStageCache::stats() const {
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(Shards.size());
  for (const auto &S : Shards)
    Locks.emplace_back(S->M);
  Stats St;
  for (const auto &S : Shards) {
    St.Lookups += S->Counters.Lookups;
    St.Hits += S->Counters.Hits;
    St.Misses += S->Counters.Misses;
    St.Waits += S->Counters.Waits;
    St.Inserts += S->Counters.Inserts;
    St.Evictions += S->Counters.Evictions;
  }
  return St;
}

//===----------------------------------------------------------------------===//
// FastPathPipeline
//===----------------------------------------------------------------------===//

FastPathPipeline::FastPathPipeline(const PipelineContext &Ctx,
                                   std::shared_ptr<TransformStageCache> Cache)
    : Ctx(Ctx), Cache(std::move(Cache)),
      SourceFp(kernelFingerprint(Ctx.normalized())) {}

TransformStageCache::EntryPtr
FastPathPipeline::buildStage(const TransformOptions &Opts,
                             const UnrollVector &Prefix) const {
  DEFACTO_SCOPED_TIMER("pipeline.stage");
  DEFACTO_SCOPED_HISTOGRAM_US("pipeline.stage_us");
  // The snapshot is shared read-only across worker threads and must
  // survive every worker's arena resets: build it on the heap.
  IRArenaScope Suspend(nullptr);

  Kernel K = Ctx.normalized().clone();
  if (Opts.StripMine) {
    if (ForStmt *Top = K.topLoop()) {
      std::vector<ForStmt *> Nest = perfectNest(Top);
      unsigned Pos = Opts.StripMine->first;
      if (Pos < Nest.size())
        stripMine(K, Nest[Pos]->loopId(), Opts.StripMine->second);
    }
  }

  std::vector<int64_t> Trips;
  if (ForStmt *Top = K.topLoop())
    for (ForStmt *F : perfectNest(Top))
      Trips.push_back(F->tripCount());

  bool PrefixApplied = unrollAndJam(K, Prefix);
  normalizeLoops(K);

  bool HasLoopIndexUses = false;
  walkExprsInStmts(K.body(), [&HasLoopIndexUses](Expr *E) {
    HasLoopIndexUses |= isa<LoopIndexExpr>(E);
  });

  // Verify once here; every candidate cloned from this stage skips its
  // own verification pass. The post-stage transforms preserve
  // well-formedness by construction (continuously enforced by the
  // fast-path parity suite and FastPathMode::Verify).
  bool StageVerified = verifyKernel(K).empty();

  auto E = std::make_shared<TransformStageCache::Entry>(std::move(K));
  E->Trips = std::move(Trips);
  E->PrefixApplied = PrefixApplied;
  E->HasLoopIndexUses = HasLoopIndexUses;
  E->StageVerified = StageVerified;
  return E;
}

TransformResult FastPathPipeline::run(const TransformOptions &Opts,
                                      bool SkipVerify,
                                      StageRunInfo *Info) const {
  // The stage factorization below (strip-mine/unroll/normalize prefix +
  // finishPipeline suffix) is only valid for the default pipeline shape;
  // custom pass pipelines and interchange run the full pipeline.
  if (!Opts.Pipeline.empty() || !Opts.Interchange.empty())
    return applyPipeline(Ctx, Opts);

  const UnrollVector &U = Opts.Unroll;

  // Split U = Prefix (+) W: W carries only the outermost factor > 1.
  // Keying the stage on Prefix means W-only neighbors — the guided
  // Increase chain and exhaustive sweeps over the outer factor — share
  // one memoized unroll-and-jam.
  size_t Outer = U.size();
  for (size_t P = 0; P != U.size(); ++P)
    if (U[P] > 1) {
      Outer = P;
      break;
    }
  UnrollVector Prefix = U;
  if (Outer != U.size())
    Prefix[Outer] = 1;

  std::string Key = stageCacheKey(SourceFp, Opts.StripMine, Prefix);
  if (Info)
    Info->Key = Key;

  TransformStageCache::Outcome Served = TransformStageCache::Outcome::Miss;
  auto Found = Cache->lookupOrBegin(Key, &Served);
  TransformStageCache::EntryPtr E;
  if (std::holds_alternative<TransformStageCache::Ticket>(Found)) {
    E = buildStage(Opts, Prefix);
    Cache->fulfill(std::get<TransformStageCache::Ticket>(std::move(Found)),
                   E);
  } else {
    E = std::get<TransformStageCache::EntryPtr>(std::move(Found));
  }
  if (Info)
    Info->Outcome = Served;

  // Staging is used only when the full vector provably takes the same
  // route as the joint path: a perfect nest exists, the prefix applied,
  // every factor divides its (post-strip-mine) trip count, and strip-
  // mined renormalization cannot reshape loop-index expression trees.
  bool Eligible = E != nullptr && !E->Trips.empty() && E->PrefixApplied &&
                  E->StageVerified && U.size() <= E->Trips.size() &&
                  !(Opts.StripMine && E->HasLoopIndexUses);
  if (Eligible)
    for (size_t P = 0; P != U.size(); ++P)
      if (U[P] < 1 || E->Trips[P] % U[P] != 0) {
        Eligible = false;
        break;
      }
  if (!Eligible) {
    if (Info)
      Info->Staged = false;
    return applyPipeline(Ctx, Opts);
  }
  if (Info)
    Info->Staged = true;

  // Second level: the finished candidate itself. Distinct candidates in
  // one sweep never collide here, but repeated sweeps — batch jobs over
  // multiple platforms, --repeat runs, portfolio strategies revisiting a
  // kernel — re-derive identical candidates, and a hit replaces every
  // post-stage pass with one arena clone of the memoized kernel.
  std::string FinalKey = Key + '|' + transformCacheKey(Opts) + '|' +
                         unrollVectorToString(U) + "|final";
  std::optional<TransformStageCache::Ticket> FinalTicket;
  {
    TransformStageCache::Outcome FinalServed = TransformStageCache::Outcome::Miss;
    auto FinalFound = Cache->lookupOrBegin(FinalKey, &FinalServed,
                                           /*Final=*/true);
    if (std::holds_alternative<TransformStageCache::Ticket>(FinalFound)) {
      FinalTicket =
          std::get<TransformStageCache::Ticket>(std::move(FinalFound));
    } else if (TransformStageCache::EntryPtr FE =
                   std::get<TransformStageCache::EntryPtr>(
                       std::move(FinalFound))) {
      if (Info)
        Info->FinalHit = true;
      DEFACTO_SCOPED_TIMER("pipeline.clone");
      return TransformResult(FE->Staged.clone());
    }
    // A null entry means the in-flight builder abandoned; build locally
    // without publishing.
  }

  TransformResult Result = [&] {
    DEFACTO_SCOPED_TIMER("pipeline.run");
    DEFACTO_SCOPED_HISTOGRAM_US("pipeline.run_us");
    std::optional<Kernel> K;
    {
      DEFACTO_SCOPED_TIMER("pipeline.clone");
      K.emplace(E->Staged.clone());
    }
    UnrollVector W(U.size(), 1);
    if (Outer != U.size())
      W[Outer] = U[Outer];
    bool UnrollApplied;
    {
      DEFACTO_SCOPED_TIMER("pipeline.unroll");
      UnrollApplied = unrollAndJam(*K, W);
    }
    {
      // The stage snapshot is already normalized, so this pass only
      // rewrites the one loop W touched.
      DEFACTO_SCOPED_TIMER("pipeline.normalize");
      normalizeLoops(*K);
    }
    return finishPipeline(std::move(*K), Opts, Ctx.normalized(),
                          UnrollApplied, SkipVerify);
  }();

  if (FinalTicket) {
    if (Result.ok()) {
      // The published copy must survive worker arena resets: clone it
      // onto the heap with the arena suspended.
      IRArenaScope Suspend(nullptr);
      auto FE =
          std::make_shared<TransformStageCache::Entry>(Result.K.clone());
      FE->StageVerified = true;
      Cache->fulfill(std::move(*FinalTicket), std::move(FE));
    } else {
      Cache->abandon(std::move(*FinalTicket));
    }
  }
  return Result;
}
