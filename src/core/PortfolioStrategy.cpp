//===- PortfolioStrategy.cpp - Per-kernel algorithm selection -------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// No single DSE algorithm dominates across kernels (SoberDSE, arXiv
// 2603.00986): the balance walk is near-optimal when the balance model
// holds, the hill climb wins when it misleads, and random sampling is a
// robust floor. The portfolio runs several strategies over the same
// kernel under an evenly split evaluation budget and keeps the per-kernel
// winner. Each sub-strategy gets a fresh EvaluationService sharing the
// parent's EstimateCache, so a design two strategies both visit is
// estimated once and replayed (charged per consumer, the engine's normal
// charge-on-consumption semantics).
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"

#include "defacto/Support/Timer.h"

#include <algorithm>

using namespace defacto;

namespace {

class PortfolioStrategy : public SearchStrategy {
public:
  explicit PortfolioStrategy(std::vector<std::string> Names)
      : Names(Names.empty()
                  ? std::vector<std::string>{"guided", "hillclimb", "random"}
                  : std::move(Names)) {}

  std::string name() const override { return "portfolio"; }
  ExplorationResult search(const SearchContext &SC) override;

private:
  std::vector<std::string> Names;
};

} // namespace

ExplorationResult PortfolioStrategy::search(const SearchContext &SC) {
  EvaluationService &Eval = SC.Eval;
  DEFACTO_SCOPED_TIMER("explore.portfolio");
  ExplorationResult Res;
  Res.Strategy = name();
  Res.Sat = Eval.saturation();
  Res.FullSpaceSize = Eval.space().fullSize();

  const unsigned Share = std::max<unsigned>(
      1, Eval.options().MaxEvaluations /
             static_cast<unsigned>(std::max<size_t>(1, Names.size())));

  for (const std::string &Name : Names) {
    std::unique_ptr<SearchStrategy> S =
        StrategyRegistry::instance().create(Name);
    if (!S) {
      Res.Trace += "unknown strategy '" + Name + "' skipped\n";
      continue;
    }
    ExplorerOptions SubOpts = Eval.options();
    SubOpts.MaxEvaluations = Share;
    // Share memoization across the portfolio: a design two strategies
    // both reach costs one estimation.
    SubOpts.Cache = Eval.estimateCache();
    SubOpts.TraceLabel = Eval.trackLabel() + "/" + Name;
    EvaluationService SubEval(SC.Source, SubOpts);
    // Arm the split budget even for strategies (exhaustive, random) that
    // do not arm one themselves; strategies that do overwrite it with the
    // same cap.
    SubEval.beginBudget(Share);
    SearchContext SubSC{SC.Source, SubEval.options(), SubEval};
    ExplorationResult Sub = S->search(SubSC);
    Res.EvaluationsUsed += Sub.EvaluationsUsed;
    Res.Trace += Name + ": " + Sub.toString() + "\n";
    Res.SubResults.push_back(std::move(Sub));
  }

  // Per-kernel winner: a fitting selection beats a non-fitting one; then
  // fewest cycles, fewest slices, lexicographically smallest vector, and
  // finally earliest strategy in the portfolio order — all deterministic.
  // A sub-result that evaluated nothing cannot claim a fitting design,
  // whatever its flag says (the legacy pickBest fallback leaves
  // SelectedFits at its default when not even the baseline estimated).
  auto reallyFits = [](const ExplorationResult &Sub) {
    return Sub.SelectedFits && !Sub.Visited.empty();
  };
  const ExplorationResult *Winner = nullptr;
  for (const ExplorationResult &Sub : Res.SubResults) {
    if (!Winner) {
      Winner = &Sub;
      continue;
    }
    const SynthesisEstimate &A = Sub.SelectedEstimate;
    const SynthesisEstimate &B = Winner->SelectedEstimate;
    bool Better = false;
    if (reallyFits(Sub) != reallyFits(*Winner))
      Better = reallyFits(Sub);
    else if (A.Cycles != B.Cycles)
      Better = A.Cycles < B.Cycles;
    else if (A.Slices != B.Slices)
      Better = A.Slices < B.Slices;
    else
      Better = Sub.Selected < Winner->Selected;
    if (Better)
      Winner = &Sub;
  }

  if (Winner) {
    Res.Selected = Winner->Selected;
    Res.SelectedEstimate = Winner->SelectedEstimate;
    Res.BaselineEstimate = Winner->BaselineEstimate;
    Res.SelectedFits = reallyFits(*Winner);
    Res.Visited = Winner->Visited;
    Res.Failures = Winner->Failures;
    Res.DroppedFailures = Winner->DroppedFailures;
    Res.Degraded = Winner->Degraded;
    Res.Trace += "portfolio winner: " + Winner->Strategy + "\n";
  } else {
    Res.Selected = Eval.space().base();
    Res.SelectedFits = false;
    Res.Degraded = true;
    Res.Trace += "portfolio ran no strategies\n";
  }

  Eval.traceSelection(Res);
  return Res;
}

std::unique_ptr<SearchStrategy>
defacto::createPortfolioStrategy(std::vector<std::string> Strategies) {
  return std::make_unique<PortfolioStrategy>(std::move(Strategies));
}
