//===- EstimateCache.cpp --------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/EstimateCache.h"

#include "defacto/Support/Histogram.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"

#include <algorithm>
#include <sstream>

using namespace defacto;

// Registry mirror of the cache counters (all EstimateCache instances
// combined); gated by the registry enable bit, one relaxed increment per
// event. The per-instance consistent snapshot is EstimateCache::stats().
DEFACTO_STATISTIC(NumLookups, "cache", "lookups",
                  "estimate-cache lookups (lookupOrBegin calls)");
DEFACTO_STATISTIC(NumHits, "cache", "hits",
                  "lookups served from a completed entry");
DEFACTO_STATISTIC(NumNegativeHits, "cache", "negative_hits",
                  "lookups served a cached permanent failure");
DEFACTO_STATISTIC(NumMisses, "cache", "misses",
                  "lookups that took the computation ticket");
DEFACTO_STATISTIC(NumWaits, "cache", "waits",
                  "lookups that blocked on another thread's computation");
DEFACTO_STATISTIC(NumInserts, "cache", "inserts",
                  "entries completed by fulfill()");

std::string defacto::platformCacheKey(const TargetPlatform &Platform) {
  std::ostringstream OS;
  OS << Platform.Name << ';' << Platform.NumMemories << ';'
     << Platform.MemoryWidthBits << ';' << Platform.Timing.ReadLatencyCycles
     << ';' << Platform.Timing.WriteLatencyCycles << ';'
     << Platform.Timing.Pipelined << ';' << Platform.ClockPeriodNs << ';'
     << Platform.CapacitySlices << ';' << Platform.LoopOverheadCycles << ';'
     << static_cast<int>(Platform.Widths) << ';'
     << Platform.OperatorChaining;
  return OS.str();
}

std::string defacto::transformCacheKey(const TransformOptions &Opts) {
  std::ostringstream OS;
  if (Opts.StripMine)
    OS << "sm" << Opts.StripMine->first << 'x' << Opts.StripMine->second;
  OS << ';' << Opts.EnableScalarReplacement << Opts.EnablePeeling
     << Opts.EnableDataLayout << ';' << Opts.SR.MaxChainLength << ';'
     << Opts.SR.EnableOuterCarriedChains << Opts.SR.EnableWindows << ';'
     << Opts.Layout.NumMemories;
  // The multi-dimensional extensions serialize to nothing when unset so
  // default-shape keys — and with them the journal replay of records
  // written before these dimensions existed — stay byte-identical.
  if (!Opts.Interchange.empty()) {
    OS << ";ic";
    for (size_t I = 0; I != Opts.Interchange.size(); ++I)
      OS << (I ? "_" : "") << Opts.Interchange[I];
  }
  if (!Opts.Pipeline.empty())
    OS << ";pl" << Opts.Pipeline;
  return OS.str();
}

std::string defacto::designCacheKey(uint64_t KernelFingerprint,
                                    const TargetPlatform &Platform,
                                    const TransformOptions &BaseTransforms,
                                    const UnrollVector &U,
                                    std::optional<unsigned> RegisterCap) {
  std::ostringstream OS;
  OS << std::hex << KernelFingerprint << std::dec << '|'
     << platformCacheKey(Platform) << '|'
     << transformCacheKey(BaseTransforms) << '|';
  if (RegisterCap)
    OS << "rc" << *RegisterCap;
  OS << '|' << unrollVectorToString(U);
  return OS.str();
}

EstimateCache::EstimateCache(unsigned NumShards) {
  NumShards = std::max(1u, NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

EstimateCache::Shard &EstimateCache::shardFor(const std::string &Key,
                                              unsigned &Index) const {
  Index = std::hash<std::string>{}(Key) % Shards.size();
  return *Shards[Index];
}

std::variant<EstimateCache::Result, EstimateCache::Ticket>
EstimateCache::lookupOrBegin(const std::string &Key, Outcome *Served) {
  ++NumLookups;
  unsigned Index = 0;
  Shard &S = shardFor(Key, Index);

  std::shared_future<Result> Pending;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    ++S.Counters.Lookups;
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      Ticket T;
      T.Shard = Index;
      T.Key = Key;
      T.Promise = std::make_shared<std::promise<Result>>();
      S.Map.emplace(Key,
                    Entry{T.Promise->get_future().share(), false});
      ++S.Counters.Misses;
      ++NumMisses;
      if (Served)
        *Served = Outcome::Miss;
      return T;
    }
    if (It->second.Completed) {
      Result R = It->second.Future.get(); // Ready: does not block.
      ++S.Counters.Hits;
      ++NumHits;
      if (!R.ok()) {
        ++S.Counters.NegativeHits;
        ++NumNegativeHits;
      }
      if (Served)
        *Served = R.ok() ? Outcome::Hit : Outcome::NegativeHit;
      return R;
    }
    ++S.Counters.Waits;
    ++NumWaits;
    Pending = It->second.Future;
  }
  // In flight elsewhere: block outside the shard lock.
  if (Served)
    *Served = Outcome::Wait;
  Result R = [&] {
    DEFACTO_SCOPED_TIMER("cache.shard_wait");
    DEFACTO_SCOPED_HISTOGRAM_US("cache.wait_us");
    return Pending.get();
  }();
  if (!R.ok()) {
    std::lock_guard<std::mutex> Lock(S.M);
    ++S.Counters.NegativeHits;
    ++NumNegativeHits;
  }
  return R;
}

void EstimateCache::fulfill(Ticket T, Result R) {
  Shard &S = *Shards[T.Shard];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(T.Key);
    if (It != S.Map.end())
      It->second.Completed = true;
    ++S.Counters.Inserts;
    ++NumInserts;
  }
  std::shared_ptr<const Observer> Notify;
  {
    std::lock_guard<std::mutex> Lock(ObserverM);
    Notify = CompletionObserver;
  }
  if (Notify && *Notify)
    (*Notify)(T.Key, R);
  T.Promise->set_value(std::move(R));
}

bool EstimateCache::seed(const std::string &Key, Result R) {
  unsigned Index = 0;
  Shard &S = shardFor(Key, Index);
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Map.count(Key))
    return false;
  std::promise<Result> P;
  std::shared_future<Result> F = P.get_future().share();
  P.set_value(std::move(R));
  S.Map.emplace(Key, Entry{std::move(F), true});
  ++S.Counters.Inserts;
  ++NumInserts;
  return true;
}

void EstimateCache::setObserver(Observer O) {
  std::lock_guard<std::mutex> Lock(ObserverM);
  CompletionObserver =
      O ? std::make_shared<const Observer>(std::move(O)) : nullptr;
}

void EstimateCache::abandon(Ticket T, Status Transient) {
  Shard &S = *Shards[T.Shard];
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.erase(T.Key);
  }
  // Waiters see the transient condition; nothing is cached against the
  // design, so the next lookupOrBegin() recomputes it.
  T.Promise->set_value(
      Result{Expected<SynthesisEstimate>(std::move(Transient)), 0});
}

EstimateCache::Result
EstimateCache::getOrCompute(const std::string &Key,
                            const std::function<Result()> &Compute) {
  auto Found = lookupOrBegin(Key);
  if (std::holds_alternative<Result>(Found))
    return std::get<Result>(Found);
  Result R = Compute();
  fulfill(std::get<Ticket>(std::move(Found)), R);
  return R;
}

std::optional<EstimateCache::Result>
EstimateCache::peek(const std::string &Key) const {
  unsigned Index = 0;
  const Shard &S = shardFor(Key, Index);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end() || !It->second.Completed)
    return std::nullopt;
  return It->second.Future.get();
}

size_t EstimateCache::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    for (const auto &KV : S->Map)
      N += KV.second.Completed ? 1 : 0;
  }
  return N;
}

EstimateCache::Stats EstimateCache::stats() const {
  // Hold every shard lock at once: the summed counters form one globally
  // consistent snapshot (no lookup can be half-counted across it).
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(Shards.size());
  for (const auto &S : Shards)
    Locks.emplace_back(S->M);
  Stats St;
  for (const auto &S : Shards) {
    St.Lookups += S->Counters.Lookups;
    St.Hits += S->Counters.Hits;
    St.NegativeHits += S->Counters.NegativeHits;
    St.Misses += S->Counters.Misses;
    St.Waits += S->Counters.Waits;
    St.Inserts += S->Counters.Inserts;
  }
  return St;
}
