//===- Socket.cpp ---------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Socket.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace defacto;

namespace {

Status errnoStatus(const std::string &What) {
  return Status::error(ErrorCode::Internal,
                       What + ": " + std::strerror(errno));
}

} // namespace

//===----------------------------------------------------------------------===//
// UnixConnection
//===----------------------------------------------------------------------===//

UnixConnection::~UnixConnection() { close(); }

UnixConnection::UnixConnection(UnixConnection &&Other) noexcept
    : Fd(Other.Fd), Buffer(std::move(Other.Buffer)) {
  Other.Fd = -1;
}

UnixConnection &UnixConnection::operator=(UnixConnection &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Buffer = std::move(Other.Buffer);
    Other.Fd = -1;
  }
  return *this;
}

Expected<UnixConnection> UnixConnection::connectTo(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error(ErrorCode::InvalidInput,
                         "socket path too long: '" + Path + "'");
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoStatus("socket()");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status E = errnoStatus("connect('" + Path + "')");
    ::close(Fd);
    return E;
  }
  return UnixConnection(Fd);
}

UnixConnection UnixConnection::fromFd(int Fd) { return UnixConnection(Fd); }

Status UnixConnection::sendLine(const std::string &Line) {
  if (Fd < 0)
    return Status::error(ErrorCode::InvalidInput, "send on closed connection");
  if (Line.find('\n') != std::string::npos)
    return Status::error(ErrorCode::InvalidInput,
                         "line framing forbids embedded newlines");
  std::string Framed = Line;
  Framed.push_back('\n');
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    // MSG_NOSIGNAL: a peer that hung up turns into EPIPE, not a
    // process-killing SIGPIPE from a daemon worker thread.
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoStatus("send()");
    }
    Sent += static_cast<size_t>(N);
  }
  return Status::ok();
}

Expected<std::optional<std::string>> UnixConnection::recvLine(size_t MaxBytes) {
  if (Fd < 0)
    return Status::error(ErrorCode::InvalidInput, "recv on closed connection");
  for (;;) {
    size_t Newline = Buffer.find('\n');
    if (Newline != std::string::npos) {
      std::string Line = Buffer.substr(0, Newline);
      Buffer.erase(0, Newline + 1);
      return std::optional<std::string>(std::move(Line));
    }
    if (Buffer.size() > MaxBytes)
      return Status::error(ErrorCode::InvalidInput,
                           "line exceeds " + std::to_string(MaxBytes) +
                               " bytes without a newline");
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoStatus("recv()");
    }
    if (N == 0) {
      if (Buffer.empty())
        return std::optional<std::string>(); // clean EOF
      return Status::error(ErrorCode::InvalidInput,
                           "connection closed mid-line");
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

void UnixConnection::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

//===----------------------------------------------------------------------===//
// UnixListener
//===----------------------------------------------------------------------===//

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener &&Other) noexcept
    : Fd(Other.Fd), Path(std::move(Other.Path)) {
  Other.Fd = -1;
  Other.Path.clear();
}

UnixListener &UnixListener::operator=(UnixListener &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Path = std::move(Other.Path);
    Other.Fd = -1;
    Other.Path.clear();
  }
  return *this;
}

Expected<UnixListener> UnixListener::listenOn(const std::string &Path,
                                              int Backlog) {
  sockaddr_un Addr{};
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return Status::error(ErrorCode::InvalidInput,
                         "socket path empty or too long: '" + Path + "'");
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoStatus("socket()");
  ::unlink(Path.c_str());
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status E = errnoStatus("bind('" + Path + "')");
    ::close(Fd);
    return E;
  }
  if (::listen(Fd, Backlog) != 0) {
    Status E = errnoStatus("listen('" + Path + "')");
    ::close(Fd);
    ::unlink(Path.c_str());
    return E;
  }
  return UnixListener(Fd, Path);
}

Expected<std::optional<UnixConnection>> UnixListener::acceptFor(int TimeoutMs) {
  if (Fd < 0)
    return Status::error(ErrorCode::InvalidInput, "accept on closed listener");
  pollfd P{Fd, POLLIN, 0};
  int Ready = ::poll(&P, 1, TimeoutMs);
  if (Ready < 0) {
    if (errno == EINTR)
      return std::optional<UnixConnection>(); // caller re-polls its stop flag
    return errnoStatus("poll()");
  }
  if (Ready == 0)
    return std::optional<UnixConnection>();
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED)
      return std::optional<UnixConnection>();
    return errnoStatus("accept()");
  }
  return std::optional<UnixConnection>(UnixConnection::fromFd(Conn));
}

void UnixListener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    ::unlink(Path.c_str());
    Fd = -1;
  }
}
