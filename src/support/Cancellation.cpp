//===- Cancellation.cpp ---------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Cancellation.h"

#include <mutex>

using namespace defacto;

struct CancellationToken::State {
  std::atomic<bool> Flag{false};
  /// Deadline on the injected clock; unused when Clock is empty. Both
  /// fields, like SeedReason, are written only before the token is
  /// shared.
  double DeadlineSeconds = 0;
  std::function<double()> Clock;
  /// Label folded into the deadline cancel reason; set at construction.
  std::string SeedReason;
  /// Why the token was cancelled; written once, before Flag is set with
  /// release order, and read only after an acquire load observes Flag.
  std::string Reason;
  std::once_flag ReasonOnce;

  void cancel(std::string Why) {
    std::call_once(ReasonOnce, [&] {
      Reason = std::move(Why);
      Flag.store(true, std::memory_order_release);
    });
  }

  bool cancelled() {
    if (Flag.load(std::memory_order_acquire))
      return true;
    if (Clock && Clock() >= DeadlineSeconds) {
      cancel("watchdog deadline" +
             (SeedReason.empty() ? std::string() : ": " + SeedReason));
      return true;
    }
    return false;
  }
};

CancellationToken CancellationToken::create() {
  CancellationToken T;
  T.S = std::make_shared<State>();
  return T;
}

CancellationToken
CancellationToken::withDeadline(double DeadlineSeconds,
                                std::function<double()> Clock,
                                std::string Reason) {
  CancellationToken T = create();
  T.S->DeadlineSeconds = DeadlineSeconds;
  T.S->SeedReason = std::move(Reason);
  T.S->Clock = std::move(Clock);
  return T;
}

void CancellationToken::requestCancel(std::string Reason) {
  if (S)
    S->cancel(std::move(Reason));
}

bool CancellationToken::cancelled() const { return S && S->cancelled(); }

Status CancellationToken::check() const {
  if (!cancelled())
    return Status::ok();
  return Status::error(ErrorCode::Cancelled,
                       S->Reason.empty() ? "cancelled" : S->Reason);
}

namespace {
thread_local CancellationToken CurrentToken;
} // namespace

CancellationScope::CancellationScope(CancellationToken Token)
    : Previous(CurrentToken) {
  CurrentToken = std::move(Token);
}

CancellationScope::~CancellationScope() { CurrentToken = Previous; }

const CancellationToken &defacto::currentCancellation() {
  return CurrentToken;
}

bool defacto::currentCancelled() { return CurrentToken.cancelled(); }

Status defacto::currentCancelStatus() { return CurrentToken.check(); }
