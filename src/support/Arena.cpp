//===- Arena.cpp - Bump-pointer arena for IR nodes ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Arena.h"

#include <algorithm>
#include <new>

namespace defacto {

namespace {

/// First block size; doubles (up to a cap) as the arena grows so a large
/// kernel settles into a handful of blocks.
constexpr std::size_t FirstBlockBytes = 1u << 16; // 64 KiB
constexpr std::size_t MaxBlockBytes = 1u << 22;   // 4 MiB

/// Every node allocation is rounded up to this alignment, which is
/// sufficient for any Expr/Stmt subclass.
constexpr std::size_t NodeAlign = alignof(std::max_align_t);

constexpr std::size_t alignUp(std::size_t N) {
  return (N + NodeAlign - 1) & ~(NodeAlign - 1);
}

/// The arena new Expr/Stmt nodes are carved from, or nullptr for heap
/// allocation. Installed by IRArenaScope.
thread_local IRArena *ActiveArena = nullptr;

/// Arenas whose memory this thread may be asked to "free". Node deletes
/// probe these and skip the heap free on a hit. Arenas register on first
/// scope installation and unregister in their destructor; the list stays
/// tiny (one worker arena plus the occasional test arena).
///
/// Deliberately a trivially-destructible plain array, not a vector:
/// worker arenas are themselves thread_local, and TLS destructors run in
/// reverse construction order, so a registry with a destructor can be
/// torn down before the arenas that must unregister from it. POD TLS has
/// no destructor and stays valid for the entire thread lifetime.
constexpr unsigned MaxRegisteredArenas = 16;
thread_local IRArena *RegisteredArenas[MaxRegisteredArenas] = {};
thread_local unsigned NumRegisteredArenas = 0;

/// True when \p Arena is (now) in the registry; false when the registry
/// is full, in which case the caller must not activate the arena (its
/// nodes' deletes would be heap-freed).
bool registerArena(IRArena *Arena) {
  for (unsigned I = 0; I != NumRegisteredArenas; ++I)
    if (RegisteredArenas[I] == Arena)
      return true;
  if (NumRegisteredArenas == MaxRegisteredArenas)
    return false;
  RegisteredArenas[NumRegisteredArenas++] = Arena;
  return true;
}

} // namespace

IRArena::IRArena() = default;

IRArena::~IRArena() {
  for (unsigned I = 0; I != NumRegisteredArenas; ++I)
    if (RegisteredArenas[I] == this) {
      RegisteredArenas[I] = RegisteredArenas[--NumRegisteredArenas];
      break;
    }
}

void *IRArena::allocate(std::size_t Size) {
  Size = alignUp(std::max<std::size_t>(Size, 1));
  if (CurBlock < Blocks.size() &&
      CurOffset + Size <= Blocks[CurBlock].Size) {
    void *P = Blocks[CurBlock].Memory.get() + CurOffset;
    CurOffset += Size;
    LiveBytes += Size;
    return P;
  }
  return allocateSlow(Size);
}

void *IRArena::allocateSlow(std::size_t Size) {
  // Advance through retained blocks (a reset leaves them behind us).
  while (CurBlock + 1 < Blocks.size()) {
    ++CurBlock;
    CurOffset = 0;
    if (Size <= Blocks[CurBlock].Size) {
      CurOffset = Size;
      LiveBytes += Size;
      return Blocks[CurBlock].Memory.get();
    }
  }
  std::size_t NewSize = Blocks.empty()
                            ? FirstBlockBytes
                            : std::min(Blocks.back().Size * 2, MaxBlockBytes);
  NewSize = std::max(NewSize, Size);
  Block B;
  // operator new[] guarantees max_align_t alignment for char buffers of
  // this size, matching alignUp's rounding.
  B.Memory.reset(new char[NewSize]);
  B.Size = NewSize;
  Blocks.push_back(std::move(B));
  CurBlock = Blocks.size() - 1;
  CurOffset = Size;
  LiveBytes += Size;
  return Blocks[CurBlock].Memory.get();
}

void IRArena::reset() {
  CurBlock = 0;
  CurOffset = 0;
  LiveBytes = 0;
}

bool IRArena::owns(const void *P) const {
  const char *C = static_cast<const char *>(P);
  for (const Block &B : Blocks)
    if (C >= B.Memory.get() && C < B.Memory.get() + B.Size)
      return true;
  return false;
}

IRArenaScope::IRArenaScope(IRArena *Arena) : Previous(ActiveArena) {
  // A full registry (16+ live arenas on one thread — never in practice)
  // degrades to heap allocation rather than risking a heap free of
  // arena-owned nodes.
  if (Arena && !registerArena(Arena))
    Arena = nullptr;
  ActiveArena = Arena;
}

IRArenaScope::~IRArenaScope() { ActiveArena = Previous; }

IRArena *activeIRArena() { return ActiveArena; }

namespace detail {

void *irNodeAllocate(std::size_t Size) {
  if (IRArena *A = ActiveArena)
    return A->allocate(Size);
  return ::operator new(Size);
}

void irNodeDeallocate(void *P) noexcept {
  if (!P)
    return;
  for (unsigned I = 0; I != NumRegisteredArenas; ++I)
    if (RegisteredArenas[I]->owns(P))
      return;
  ::operator delete(P);
}

} // namespace detail

} // namespace defacto
