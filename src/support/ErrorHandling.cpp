//===- ErrorHandling.cpp --------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace defacto;

void defacto::reportFatalError(const char *Reason) {
  std::fprintf(stderr, "defacto fatal error: %s\n", Reason);
  std::abort();
}

void defacto::unreachableInternal(const char *Msg, const char *File,
                                  unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
