//===- Timer.cpp ----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Timer.h"

#include <chrono>
#include <ctime>
#include <sstream>

using namespace defacto;

namespace {

uint64_t wallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t cpuNowNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) == 0)
    return static_cast<uint64_t>(TS.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(TS.tv_nsec);
#endif
  return static_cast<uint64_t>(std::clock()) *
         (1000000000ull / CLOCKS_PER_SEC);
}

} // namespace

TimerGroup &TimerGroup::global() {
  static TimerGroup G;
  return G;
}

PhaseTimer &TimerGroup::timer(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<PhaseTimer> &Slot = Timers[Name];
  if (!Slot)
    Slot = std::make_unique<PhaseTimer>(Name);
  return *Slot;
}

std::vector<TimerGroup::Snapshot> TimerGroup::snapshot() const {
  std::vector<Snapshot> Out;
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Name, T] : Timers) {
    if (T->count() == 0)
      continue;
    Out.push_back({Name, T->wallMs(), T->cpuMs(), T->count()});
  }
  return Out; // std::map iterates sorted by name
}

void TimerGroup::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, T] : Timers) {
    T->WallNanos.store(0, std::memory_order_relaxed);
    T->CpuNanos.store(0, std::memory_order_relaxed);
    T->Count.store(0, std::memory_order_relaxed);
  }
}

std::string TimerGroup::toText() const {
  std::ostringstream OS;
  for (const Snapshot &S : snapshot()) {
    OS.precision(3);
    OS << std::fixed << S.Name << ": " << S.WallMs << " ms wall (" << S.CpuMs
       << " ms cpu, " << S.Count << " scope(s))\n";
  }
  return OS.str();
}

std::string TimerGroup::toJson() const {
  std::ostringstream OS;
  OS.precision(6);
  OS << std::fixed << '{';
  bool First = true;
  for (const Snapshot &S : snapshot()) {
    if (!First)
      OS << ", ";
    First = false;
    OS << '"' << S.Name << "\": {\"wall_ms\": " << S.WallMs
       << ", \"cpu_ms\": " << S.CpuMs << ", \"count\": " << S.Count << '}';
  }
  OS << '}';
  return OS.str();
}

ScopedTimer::ScopedTimer(PhaseTimer &Timer) {
  if (!statsEnabled())
    return;
  T = &Timer;
  WallStartNs = wallNowNs();
  CpuStartNs = cpuNowNs();
}

ScopedTimer::~ScopedTimer() {
  if (!T)
    return;
  uint64_t WallNs = wallNowNs() - WallStartNs;
  uint64_t CpuEnd = cpuNowNs();
  uint64_t CpuNs = CpuEnd > CpuStartNs ? CpuEnd - CpuStartNs : 0;
  T->record(WallNs, CpuNs);
}
