//===- MathExtras.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/MathExtras.h"

#include <algorithm>

using namespace defacto;

int64_t defacto::gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t defacto::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  int64_t Res = (A / G) * B;
  return Res < 0 ? -Res : Res;
}

std::vector<int64_t> defacto::divisorsOf(int64_t N) {
  assert(N >= 1 && "divisorsOf requires a positive argument");
  std::vector<int64_t> Small, Large;
  for (int64_t D = 1; D * D <= N; ++D) {
    if (N % D != 0)
      continue;
    Small.push_back(D);
    if (D != N / D)
      Large.push_back(N / D);
  }
  std::reverse(Large.begin(), Large.end());
  Small.insert(Small.end(), Large.begin(), Large.end());
  return Small;
}
