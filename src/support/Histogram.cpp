//===- Histogram.cpp ------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Histogram.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>

using namespace defacto;

unsigned Histogram::bucketIndex(uint64_t V) {
  if (V < (1u << (SubBits + 1)))
    return static_cast<unsigned>(V); // exact buckets
  unsigned Top = 63 - std::countl_zero(V); // floor(log2 V), >= SubBits+1
  unsigned Shift = Top - SubBits;
  unsigned Sub = static_cast<unsigned>((V >> Shift) & ((1u << SubBits) - 1));
  return ((Top - SubBits) << SubBits) + (1u << SubBits) + Sub;
}

uint64_t Histogram::bucketBound(unsigned I) {
  if (I < (1u << (SubBits + 1)))
    return I;
  unsigned Octave = I >> SubBits;            // >= 2
  unsigned Top = Octave + SubBits - 1;       // floor(log2) of the bucket
  uint64_t Sub = I & ((1u << SubBits) - 1);
  uint64_t Lower = (uint64_t{1} << Top) + (Sub << (Top - SubBits));
  return Lower + (uint64_t{1} << (Top - SubBits)) - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Name = Name;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Max = MaxValue.load(std::memory_order_relaxed);
  S.Buckets.resize(NumBuckets);
  for (unsigned I = 0; I != NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  MaxValue.store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  // The ceil(Q*Count)-th smallest recorded value, nearest-rank style.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (static_cast<double>(Rank) < Q * static_cast<double>(Count))
    ++Rank;
  Rank = std::max<uint64_t>(Rank, 1);
  uint64_t Cumulative = 0;
  for (unsigned I = 0; I != Buckets.size(); ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Rank)
      return std::min(Histogram::bucketBound(I), Max);
  }
  return Max;
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  Count += Other.Count;
  Sum += Other.Sum;
  Max = std::max(Max, Other.Max);
  if (Buckets.size() < Other.Buckets.size())
    Buckets.resize(Other.Buckets.size());
  for (size_t I = 0; I != Other.Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
}

HistogramRegistry &HistogramRegistry::global() {
  static HistogramRegistry R;
  return R;
}

Histogram &HistogramRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(Name);
  return *Slot;
}

std::vector<HistogramSnapshot> HistogramRegistry::snapshot() const {
  std::vector<HistogramSnapshot> Out;
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Name, H] : Histograms) {
    if (H->count() == 0)
      continue;
    Out.push_back(H->snapshot());
  }
  return Out; // std::map iterates sorted by name
}

void HistogramRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::string HistogramRegistry::toJson() const {
  std::ostringstream OS;
  OS.precision(3);
  OS << std::fixed << '{';
  bool First = true;
  for (const HistogramSnapshot &S : snapshot()) {
    if (!First)
      OS << ", ";
    First = false;
    OS << '"' << S.Name << "\": {\"count\": " << S.Count
       << ", \"sum\": " << S.Sum << ", \"max\": " << S.Max
       << ", \"mean\": " << S.mean() << ", \"p50\": " << S.quantile(0.5)
       << ", \"p90\": " << S.quantile(0.9) << ", \"p99\": " << S.quantile(0.99)
       << '}';
  }
  OS << '}';
  return OS.str();
}

ScopedHistogramTimer::ScopedHistogramTimer(Histogram &Hist) {
  if (!statsEnabled())
    return;
  H = &Hist;
  StartNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (!H)
    return;
  uint64_t EndNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  H->record((EndNs - StartNs) / 1000);
}
