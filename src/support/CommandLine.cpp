//===- CommandLine.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/CommandLine.h"

#include "defacto/Support/Histogram.h"
#include "defacto/Support/Json.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <cstdio>
#include <fstream>

using namespace defacto;
using namespace defacto::cl;

ArgList::ArgList(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    Args.emplace_back(Argv[I]);
    Raw.push_back(Argv[I]);
  }
}

bool ArgList::consumeFlag(const std::string &Name) {
  bool Found = false;
  for (size_t I = 0; I != Args.size();) {
    if (Args[I] == Name) {
      Found = true;
      Args.erase(Args.begin() + I);
      Raw.erase(Raw.begin() + I);
      continue;
    }
    ++I;
  }
  return Found;
}

std::optional<std::string> ArgList::consumeValue(const std::string &Name) {
  std::optional<std::string> Value;
  const std::string Prefix = Name + "=";
  for (size_t I = 0; I != Args.size();) {
    if (Args[I].rfind(Prefix, 0) == 0) {
      Value = Args[I].substr(Prefix.size());
      Args.erase(Args.begin() + I);
      Raw.erase(Raw.begin() + I);
      continue;
    }
    if (Args[I] == Name && I + 1 < Args.size()) {
      Value = Args[I + 1];
      Args.erase(Args.begin() + I, Args.begin() + I + 2);
      Raw.erase(Raw.begin() + I, Raw.begin() + I + 2);
      continue;
    }
    ++I;
  }
  return Value;
}

std::optional<unsigned> ArgList::consumeUnsigned(const std::string &Name) {
  std::optional<std::string> Value = consumeValue(Name);
  if (!Value)
    return std::nullopt;
  try {
    size_t End = 0;
    unsigned long Parsed = std::stoul(*Value, &End);
    if (End != Value->size())
      return std::nullopt;
    return static_cast<unsigned>(Parsed);
  } catch (...) {
    return std::nullopt;
  }
}

std::vector<std::string> ArgList::consumeList(const std::string &Name) {
  std::vector<std::string> Items;
  std::optional<std::string> Value = consumeValue(Name);
  if (!Value)
    return Items;
  size_t Start = 0;
  while (Start <= Value->size()) {
    size_t Comma = Value->find(',', Start);
    if (Comma == std::string::npos)
      Comma = Value->size();
    if (Comma > Start)
      Items.push_back(Value->substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Items;
}

void ArgList::compactInto(int &Argc, char **Argv) const {
  int Out = 1;
  for (char *Arg : Raw)
    Argv[Out++] = Arg;
  Argc = Out;
}

ObservabilityConfig defacto::cl::consumeObservabilityFlags(ArgList &Args) {
  ObservabilityConfig Config;
  Config.TraceOutPath = Args.consumeValue("--trace-out").value_or("");
  Config.Stats = Args.consumeFlag("--stats");
  Config.StatsOutPath = Args.consumeValue("--stats-out").value_or("");
  if (!Config.TraceOutPath.empty())
    TraceRecorder::global().setEnabled(true);
  if (Config.any())
    StatRegistry::instance().setEnabled(true);
  return Config;
}

bool defacto::cl::writeStatsFile(const std::string &Path) {
  std::string Doc = "{\"counters\": " + StatRegistry::instance().toJson() +
                    ", \"timers\": " + TimerGroup::global().toJson() +
                    ", \"histograms\": " +
                    HistogramRegistry::global().toJson() + "}\n";
  std::string Error;
  if (!isValidJson(Doc, &Error)) {
    std::fprintf(stderr, "stats export is not valid JSON (%s); not writing %s\n",
                 Error.c_str(), Path.c_str());
    return false;
  }
  // Write-then-rename, same as the journal: a concurrent reader never
  // sees a torn document.
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp);
    if (!Out) {
      std::fprintf(stderr, "failed to open stats output '%s'\n", Tmp.c_str());
      return false;
    }
    Out << Doc;
    if (!Out.good()) {
      std::fprintf(stderr, "failed to write stats output '%s'\n", Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::fprintf(stderr, "failed to rename '%s' to '%s'\n", Tmp.c_str(),
                 Path.c_str());
    return false;
  }
  return true;
}

bool defacto::cl::finishObservability(const ObservabilityConfig &Config) {
  bool Ok = true;
  if (!Config.TraceOutPath.empty()) {
    std::ofstream Out(Config.TraceOutPath);
    if (Out) {
      Out << TraceRecorder::global().toChromeTrace();
      std::printf("wrote %zu trace events to %s (load in chrome://tracing "
                  "or ui.perfetto.dev)\n",
                  TraceRecorder::global().eventCount(),
                  Config.TraceOutPath.c_str());
    } else {
      std::fprintf(stderr, "failed to open trace output '%s'\n",
                   Config.TraceOutPath.c_str());
      Ok = false;
    }
  }
  if (Config.Stats) {
    std::printf("%s", StatRegistry::instance().toText().c_str());
    std::printf("%s", TimerGroup::global().toText().c_str());
  }
  if (!Config.StatsOutPath.empty()) {
    if (writeStatsFile(Config.StatsOutPath))
      std::printf("wrote stats to %s\n", Config.StatsOutPath.c_str());
    else
      Ok = false;
  }
  return Ok;
}
