//===- Error.cpp ----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Error.h"

#include "defacto/Support/ErrorHandling.h"

using namespace defacto;

const char *defacto::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidInput:
    return "invalid_input";
  case ErrorCode::OutOfBounds:
    return "out_of_bounds";
  case ErrorCode::StepLimitExceeded:
    return "step_limit_exceeded";
  case ErrorCode::MalformedIR:
    return "malformed_ir";
  case ErrorCode::EstimationFailed:
    return "estimation_failed";
  case ErrorCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrorCode::BudgetExhausted:
    return "budget_exhausted";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::BackendUnavailable:
    return "backend_unavailable";
  case ErrorCode::Internal:
    return "internal";
  }
  defacto_unreachable("unknown error code");
}

ErrorCode defacto::errorCodeFromName(const std::string &Name) {
  for (ErrorCode Code :
       {ErrorCode::Ok, ErrorCode::InvalidInput, ErrorCode::OutOfBounds,
        ErrorCode::StepLimitExceeded, ErrorCode::MalformedIR,
        ErrorCode::EstimationFailed, ErrorCode::DeadlineExceeded,
        ErrorCode::BudgetExhausted, ErrorCode::Cancelled,
        ErrorCode::BackendUnavailable, ErrorCode::Internal})
    if (Name == errorCodeName(Code))
      return Code;
  return ErrorCode::Internal;
}

std::string Status::toString() const {
  if (isOk())
    return "ok";
  std::string Out = errorCodeName(Code);
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  return Out;
}
