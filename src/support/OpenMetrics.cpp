//===- OpenMetrics.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/OpenMetrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

using namespace defacto;

std::string defacto::openMetricsName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    bool Legal = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                 (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Legal ? C : '_';
  }
  if (!Out.empty() && Out.front() >= '0' && Out.front() <= '9')
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string defacto::openMetricsLabelEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

static std::string formatValue(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

void OpenMetricsWriter::family(const std::string &Family,
                               const std::string &Type,
                               const std::string &Help) {
  if (!Help.empty())
    Out += "# HELP " + Family + " " + Help + "\n";
  Out += "# TYPE " + Family + " " + Type + "\n";
}

void OpenMetricsWriter::sample(
    const std::string &Name, double Value,
    const std::vector<std::pair<std::string, std::string>> &Labels) {
  Out += Name;
  if (!Labels.empty()) {
    Out += '{';
    bool First = true;
    for (const auto &[K, V] : Labels) {
      if (!First)
        Out += ',';
      First = false;
      Out += K + "=\"" + openMetricsLabelEscape(V) + '"';
    }
    Out += '}';
  }
  Out += ' ';
  Out += formatValue(Value);
  Out += '\n';
}

std::string OpenMetricsWriter::finish() const { return Out + "# EOF\n"; }

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

namespace {

bool isNameStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
         C == ':';
}

bool isNameChar(char C) {
  return isNameStart(C) || (C >= '0' && C <= '9');
}

/// Parses a metric name at \p I; advances \p I past it. Empty on error.
std::string parseName(const std::string &Line, size_t &I) {
  size_t Start = I;
  if (I >= Line.size() || !isNameStart(Line[I]))
    return "";
  while (I < Line.size() && isNameChar(Line[I]))
    ++I;
  return Line.substr(Start, I - Start);
}

/// Strips a recognized sample suffix so "family_total"/"_sum"/"_count"/
/// "_bucket"/"_created" map back to the declared family name.
std::string familyOf(const std::string &SampleName,
                     const std::set<std::string> &Declared) {
  if (Declared.count(SampleName))
    return SampleName;
  for (const char *Suffix :
       {"_total", "_sum", "_count", "_bucket", "_created"}) {
    std::string S = Suffix;
    if (SampleName.size() > S.size() &&
        SampleName.compare(SampleName.size() - S.size(), S.size(), S) == 0) {
      std::string Base = SampleName.substr(0, SampleName.size() - S.size());
      if (Declared.count(Base))
        return Base;
    }
  }
  return "";
}

bool parseLabels(const std::string &Line, size_t &I, std::string *Why) {
  ++I; // consume '{'
  bool First = true;
  for (;;) {
    if (I >= Line.size()) {
      *Why = "unterminated label set";
      return false;
    }
    if (Line[I] == '}') {
      ++I;
      return true;
    }
    if (!First) {
      if (Line[I] != ',') {
        *Why = "expected ',' between labels";
        return false;
      }
      ++I;
    }
    First = false;
    std::string LabelName = parseName(Line, I);
    if (LabelName.empty()) {
      *Why = "bad label name";
      return false;
    }
    if (I >= Line.size() || Line[I] != '=') {
      *Why = "expected '=' after label name";
      return false;
    }
    ++I;
    if (I >= Line.size() || Line[I] != '"') {
      *Why = "label value must be quoted";
      return false;
    }
    ++I;
    while (I < Line.size() && Line[I] != '"') {
      if (Line[I] == '\\')
        ++I; // escape: skip the escaped character
      ++I;
    }
    if (I >= Line.size()) {
      *Why = "unterminated label value";
      return false;
    }
    ++I; // closing quote
  }
}

bool parseFloatToken(const std::string &Token) {
  if (Token == "+Inf" || Token == "-Inf" || Token == "Inf" || Token == "NaN")
    return true;
  if (Token.empty())
    return false;
  char *End = nullptr;
  std::strtod(Token.c_str(), &End);
  return End && *End == '\0' && End != Token.c_str();
}

} // namespace

bool defacto::validateOpenMetrics(const std::string &Text,
                                  std::string *Error) {
  auto Fail = [&](unsigned LineNo, const std::string &Why) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Why;
    return false;
  };

  std::set<std::string> Declared;
  bool SawEof = false;
  unsigned LineNo = 0;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (SawEof)
      return Fail(LineNo, "content after '# EOF'");
    if (Line.empty())
      return Fail(LineNo, "empty line");

    if (Line[0] == '#') {
      if (Line == "# EOF") {
        SawEof = true;
        continue;
      }
      std::istringstream Meta(Line);
      std::string Hash, Keyword, Family;
      Meta >> Hash >> Keyword >> Family;
      if (Keyword != "HELP" && Keyword != "TYPE" && Keyword != "UNIT")
        return Fail(LineNo, "unknown comment keyword '" + Keyword + "'");
      if (Family.empty() || openMetricsName(Family) != Family)
        return Fail(LineNo, "bad metric family name '" + Family + "'");
      if (Keyword == "TYPE") {
        std::string Type;
        Meta >> Type;
        static const std::set<std::string> Types{
            "counter", "gauge",    "summary", "histogram",
            "info",    "stateset", "unknown"};
        if (!Types.count(Type))
          return Fail(LineNo, "unknown metric type '" + Type + "'");
        Declared.insert(Family);
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    size_t I = 0;
    std::string Name = parseName(Line, I);
    if (Name.empty())
      return Fail(LineNo, "bad metric name");
    if (familyOf(Name, Declared).empty())
      return Fail(LineNo,
                  "sample '" + Name + "' has no preceding '# TYPE' family");
    if (I < Line.size() && Line[I] == '{') {
      std::string Why;
      if (!parseLabels(Line, I, &Why))
        return Fail(LineNo, Why);
    }
    if (I >= Line.size() || Line[I] != ' ')
      return Fail(LineNo, "expected space before sample value");
    std::istringstream Rest(Line.substr(I + 1));
    std::string Value, Timestamp, Extra;
    Rest >> Value >> Timestamp >> Extra;
    if (!parseFloatToken(Value))
      return Fail(LineNo, "sample value '" + Value + "' is not a float");
    if (!Timestamp.empty() && !parseFloatToken(Timestamp))
      return Fail(LineNo, "sample timestamp '" + Timestamp +
                              "' is not a number");
    if (!Extra.empty())
      return Fail(LineNo, "trailing content after sample");
  }
  if (!SawEof)
    return Fail(LineNo, "document does not end with '# EOF'");
  return true;
}
