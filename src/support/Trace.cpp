//===- Trace.cpp ----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace defacto;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void appendArgs(
    std::ostringstream &OS,
    const std::vector<std::pair<std::string, std::string>> &Args,
    bool &First) {
  for (const auto &[K, V] : Args) {
    if (!First)
      OS << ", ";
    First = false;
    OS << '"' << jsonEscape(K) << "\": \"" << jsonEscape(V) << '"';
  }
}

/// One event as a Chrome trace_event / JSONL object.
std::string eventToJson(const TraceEvent &E) {
  std::ostringstream OS;
  OS.precision(3);
  OS << std::fixed;
  bool Complete = E.EventKind == TraceEvent::Kind::Complete;
  double Start = Complete ? E.TimestampUs - E.DurationUs : E.TimestampUs;
  if (Start < 0)
    Start = 0;
  OS << "{\"name\": \"" << jsonEscape(E.Name) << "\", \"cat\": \""
     << jsonEscape(E.Category) << "\", \"ph\": \""
     << (Complete ? "X" : "i") << "\", \"ts\": " << Start;
  if (Complete)
    OS << ", \"dur\": " << E.DurationUs;
  else
    OS << ", \"s\": \"t\"";
  OS << ", \"pid\": 1, \"tid\": " << E.ThreadId << ", \"args\": {";
  bool First = true;
  {
    std::ostringstream Meta;
    Meta << E.Ordinal;
    OS << "\"track\": \"" << jsonEscape(E.Track)
       << "\", \"ordinal\": \"" << Meta.str() << '"';
    First = false;
  }
  appendArgs(OS, E.Args, First);
  appendArgs(OS, E.Runtime, First);
  OS << "}}";
  return OS.str();
}

} // namespace

TraceRecorder::TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder R;
  return R;
}

double TraceRecorder::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void TraceRecorder::record(TraceEvent E) {
  if (!enabled())
    return;
  if (E.TimestampUs == 0)
    E.TimestampUs = nowUs();
  std::lock_guard<std::mutex> Lock(M);
  auto [It, Inserted] = ThreadIds.emplace(
      std::this_thread::get_id(), static_cast<uint32_t>(ThreadIds.size() + 1));
  E.ThreadId = It->second;
  (void)Inserted;
  Events.push_back(std::move(E));
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Events.clear();
  ThreadIds.clear();
}

std::vector<TraceEvent> TraceRecorder::sortedEvents() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(M);
    Out = Events;
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Track != B.Track)
                       return A.Track < B.Track;
                     if (A.Category != B.Category)
                       return A.Category < B.Category;
                     if (A.Ordinal != B.Ordinal)
                       return A.Ordinal < B.Ordinal;
                     if (A.Name != B.Name)
                       return A.Name < B.Name;
                     return A.TimestampUs < B.TimestampUs;
                   });
  return Out;
}

std::string TraceRecorder::toChromeTrace() const {
  std::ostringstream OS;
  OS << "{\"traceEvents\": [\n";
  bool First = true;
  for (const TraceEvent &E : sortedEvents()) {
    if (!First)
      OS << ",\n";
    First = false;
    OS << "  " << eventToJson(E);
  }
  OS << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return OS.str();
}

std::string TraceRecorder::toJsonLines() const {
  std::ostringstream OS;
  for (const TraceEvent &E : sortedEvents())
    OS << eventToJson(E) << '\n';
  return OS.str();
}

std::vector<std::string> TraceRecorder::decisionDigest() const {
  std::vector<std::string> Out;
  for (const TraceEvent &E : sortedEvents()) {
    if (E.Category != "dse.decision")
      continue;
    std::ostringstream OS;
    OS << E.Track << '|' << E.Ordinal << '|' << E.Name;
    for (const auto &[K, V] : E.Args)
      OS << '|' << K << '=' << V;
    Out.push_back(OS.str());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

TraceSpan::TraceSpan(TraceRecorder &Recorder, std::string Track,
                     std::string Category, std::string Name) {
  if (!Recorder.enabled())
    return;
  R = &Recorder;
  E.Track = std::move(Track);
  E.Category = std::move(Category);
  E.Name = std::move(Name);
  E.EventKind = TraceEvent::Kind::Complete;
  StartUs = Recorder.nowUs();
}

TraceSpan::~TraceSpan() {
  if (!R)
    return;
  E.TimestampUs = R->nowUs();
  E.DurationUs = E.TimestampUs - StartUs;
  R->record(std::move(E));
}

void TraceSpan::note(std::string Key, std::string Value) {
  if (!R)
    return;
  E.Runtime.emplace_back(std::move(Key), std::move(Value));
}
