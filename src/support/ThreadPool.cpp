//===- ThreadPool.cpp -----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/ThreadPool.h"

#include <algorithm>

using namespace defacto;

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumThreads = std::max(1u, NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Fut = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.emplace_back(
        [P = std::make_shared<std::packaged_task<void()>>(
             std::move(Packaged))]() mutable { (*P)(); });
  }
  WorkReady.notify_one();
  return Fut;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(M);
  AllIdle.wait(Lock, [this] { return Queue.empty() && Active == 0; });
}

uint64_t ThreadPool::tasksRun() const {
  std::lock_guard<std::mutex> Lock(M);
  return Executed;
}

uint64_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> Lock(M);
  return Queue.size() + Active;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) // Stopping with a drained queue: shut down.
      return;
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    ++Active;
    Lock.unlock();
    Task();
    Lock.lock();
    --Active;
    ++Executed;
    if (Queue.empty() && Active == 0)
      AllIdle.notify_all();
  }
}
