//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Diagnostics.h"

using namespace defacto;

std::string SourceLocation::toString() const {
  if (!isValid())
    return "<no-loc>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diagnostic::toString() const {
  std::string Out;
  if (Loc.isValid())
    Out += Loc.toString() + ": ";
  switch (Severity) {
  case DiagSeverity::Error:
    Out += "error: ";
    break;
  case DiagSeverity::Warning:
    Out += "warning: ";
    break;
  case DiagSeverity::Note:
    Out += "note: ";
    break;
  }
  Out += Message;
  return Out;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::toString() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
