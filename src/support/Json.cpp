//===- Json.cpp -----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Json.h"

#include <cctype>

using namespace defacto;

namespace {

/// Recursive-descent JSON syntax checker over a raw byte buffer.
class Validator {
public:
  Validator(const std::string &Text) : S(Text) {}

  bool run(std::string *Error) {
    bool Ok = value() && (skipWs(), Pos == S.size());
    if (!Ok && Error)
      *Error = "invalid JSON at byte " + std::to_string(Pos) + ": " + Reason;
    return Ok;
  }

private:
  bool fail(const char *Why) {
    if (Reason.empty())
      Reason = Why;
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t Start = Pos;
    for (const char *P = Lit; *P; ++P, ++Pos)
      if (Pos >= S.size() || S[Pos] != *P) {
        Pos = Start;
        return fail("bad literal");
      }
    return true;
  }

  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < S.size()) {
      unsigned char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return fail("truncated escape");
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (Pos >= S.size() || !std::isxdigit(
                                       static_cast<unsigned char>(S[Pos])))
              return fail("bad \\u escape");
          }
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          return fail("bad escape");
        }
        ++Pos;
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool number() {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    if (Pos >= S.size() || !std::isdigit(static_cast<unsigned char>(S[Pos])))
      return fail("expected digit");
    if (S[Pos] == '0')
      ++Pos;
    else
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      if (Pos >= S.size() ||
          !std::isdigit(static_cast<unsigned char>(S[Pos])))
        return fail("expected fraction digit");
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      if (Pos >= S.size() ||
          !std::isdigit(static_cast<unsigned char>(S[Pos])))
        return fail("expected exponent digit");
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value() {
    if (++Depth > 256)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= S.size())
      return fail("expected value");
    bool Ok = false;
    switch (S[Pos]) {
    case '{':
      Ok = object();
      break;
    case '[':
      Ok = array();
      break;
    case '"':
      Ok = string();
      break;
    case 't':
      Ok = literal("true");
      break;
    case 'f':
      Ok = literal("false");
      break;
    case 'n':
      Ok = literal("null");
      break;
    default:
      Ok = number();
    }
    --Depth;
    return Ok;
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string &S;
  size_t Pos = 0;
  int Depth = 0;
  std::string Reason;
};

} // namespace

bool defacto::isValidJson(const std::string &Text, std::string *Error) {
  return Validator(Text).run(Error);
}
