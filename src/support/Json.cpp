//===- Json.cpp -----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace defacto;

namespace {

/// Recursive-descent JSON syntax checker over a raw byte buffer.
class Validator {
public:
  Validator(const std::string &Text) : S(Text) {}

  bool run(std::string *Error) {
    bool Ok = value() && (skipWs(), Pos == S.size());
    if (!Ok && Error)
      *Error = "invalid JSON at byte " + std::to_string(Pos) + ": " + Reason;
    return Ok;
  }

private:
  bool fail(const char *Why) {
    if (Reason.empty())
      Reason = Why;
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t Start = Pos;
    for (const char *P = Lit; *P; ++P, ++Pos)
      if (Pos >= S.size() || S[Pos] != *P) {
        Pos = Start;
        return fail("bad literal");
      }
    return true;
  }

  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < S.size()) {
      unsigned char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return fail("truncated escape");
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (Pos >= S.size() || !std::isxdigit(
                                       static_cast<unsigned char>(S[Pos])))
              return fail("bad \\u escape");
          }
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          return fail("bad escape");
        }
        ++Pos;
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool number() {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    if (Pos >= S.size() || !std::isdigit(static_cast<unsigned char>(S[Pos])))
      return fail("expected digit");
    if (S[Pos] == '0')
      ++Pos;
    else
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      if (Pos >= S.size() ||
          !std::isdigit(static_cast<unsigned char>(S[Pos])))
        return fail("expected fraction digit");
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      if (Pos >= S.size() ||
          !std::isdigit(static_cast<unsigned char>(S[Pos])))
        return fail("expected exponent digit");
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value() {
    if (++Depth > 256)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= S.size())
      return fail("expected value");
    bool Ok = false;
    switch (S[Pos]) {
    case '{':
      Ok = object();
      break;
    case '[':
      Ok = array();
      break;
    case '"':
      Ok = string();
      break;
    case 't':
      Ok = literal("true");
      break;
    case 'f':
      Ok = literal("false");
      break;
    case 'n':
      Ok = literal("null");
      break;
    default:
      Ok = number();
    }
    --Depth;
    return Ok;
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string &S;
  size_t Pos = 0;
  int Depth = 0;
  std::string Reason;
};

} // namespace

bool defacto::isValidJson(const std::string &Text, std::string *Error) {
  return Validator(Text).run(Error);
}

//===----------------------------------------------------------------------===//
// Document-tree parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser building JsonValue trees. Syntax errors are
/// reported as Status with a byte offset; structure mirrors Validator.
class Parser {
public:
  Parser(const std::string &Text) : S(Text) {}

  Expected<JsonValue> run() {
    JsonValue V;
    if (Status E = value(V); !E.isOk())
      return E;
    skipWs();
    if (Pos != S.size())
      return fail("trailing content after value");
    return V;
  }

private:
  Status fail(const std::string &Why) const {
    return Status::error(ErrorCode::InvalidInput,
                         "invalid JSON at byte " + std::to_string(Pos) +
                             ": " + Why);
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  Status literal(const char *Lit) {
    for (const char *P = Lit; *P; ++P, ++Pos)
      if (Pos >= S.size() || S[Pos] != *P)
        return fail(std::string("bad literal (expected ") + Lit + ")");
    return Status::ok();
  }

  Status string(std::string &Out) {
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < S.size()) {
      unsigned char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return Status::ok();
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return fail("truncated escape");
        char E = S[Pos];
        switch (E) {
        case '"':  Out += '"';  break;
        case '\\': Out += '\\'; break;
        case '/':  Out += '/';  break;
        case 'b':  Out += '\b'; break;
        case 'f':  Out += '\f'; break;
        case 'n':  Out += '\n'; break;
        case 'r':  Out += '\r'; break;
        case 't':  Out += '\t'; break;
        case 'u': {
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (Pos >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[Pos])))
              return fail("bad \\u escape");
            char H = S[Pos];
            Code = Code * 16 +
                   (std::isdigit(static_cast<unsigned char>(H))
                        ? static_cast<unsigned>(H - '0')
                        : static_cast<unsigned>(std::tolower(H) - 'a') + 10);
          }
          // UTF-8 encode the code point (surrogate pairs are left as two
          // independently-encoded units; our writers never emit them).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
        }
        ++Pos;
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      Out += static_cast<char>(C);
      ++Pos;
    }
    return fail("unterminated string");
  }

  Status number(std::string &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    if (Pos >= S.size() || !std::isdigit(static_cast<unsigned char>(S[Pos])))
      return fail("expected digit");
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    Out = S.substr(Start, Pos - Start);
    std::string Err;
    if (!isValidJson(Out, &Err))
      return fail("malformed number '" + Out + "'");
    return Status::ok();
  }

  Status value(JsonValue &V) {
    if (++Depth > 256)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= S.size())
      return fail("expected value");
    Status E = Status::ok();
    switch (S[Pos]) {
    case '{':
      V.ValueKind = JsonValue::Kind::Object;
      E = object(V);
      break;
    case '[':
      V.ValueKind = JsonValue::Kind::Array;
      E = array(V);
      break;
    case '"':
      V.ValueKind = JsonValue::Kind::String;
      E = string(V.Text);
      break;
    case 't':
      V.ValueKind = JsonValue::Kind::Bool;
      V.Boolean = true;
      E = literal("true");
      break;
    case 'f':
      V.ValueKind = JsonValue::Kind::Bool;
      V.Boolean = false;
      E = literal("false");
      break;
    case 'n':
      V.ValueKind = JsonValue::Kind::Null;
      E = literal("null");
      break;
    default:
      V.ValueKind = JsonValue::Kind::Number;
      E = number(V.Text);
    }
    --Depth;
    return E;
  }

  Status object(JsonValue &V) {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return Status::ok();
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (Status E = string(Key); !E.isOk())
        return E;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      JsonValue Member;
      if (Status E = value(Member); !E.isOk())
        return E;
      V.Members.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return Status::ok();
      }
      return fail("expected ',' or '}'");
    }
  }

  Status array(JsonValue &V) {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return Status::ok();
    }
    for (;;) {
      JsonValue Element;
      if (Status E = value(Element); !E.isOk())
        return E;
      V.Elements.push_back(std::move(Element));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return Status::ok();
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string &S;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::string JsonValue::str(const std::string &Key,
                           const std::string &Default) const {
  const JsonValue *V = find(Key);
  return V && V->isString() ? V->Text : Default;
}

double JsonValue::num(const std::string &Key, double Default) const {
  const JsonValue *V = find(Key);
  if (!V || (!V->isNumber() && !V->isString()))
    return Default;
  const char *Begin = V->Text.c_str();
  char *End = nullptr;
  double Parsed = std::strtod(Begin, &End);
  return End == Begin ? Default : Parsed;
}

uint64_t JsonValue::uint(const std::string &Key, uint64_t Default) const {
  const JsonValue *V = find(Key);
  if (!V || (!V->isNumber() && !V->isString()))
    return Default;
  const char *Begin = V->Text.c_str();
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Begin, &End, 10);
  return End == Begin ? Default : Parsed;
}

bool JsonValue::boolean(const std::string &Key, bool Default) const {
  const JsonValue *V = find(Key);
  return V && V->ValueKind == Kind::Bool ? V->Boolean : Default;
}

Expected<JsonValue> defacto::parseJson(const std::string &Text) {
  return Parser(Text).run();
}

std::string defacto::jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b";  break;
    case '\f': Out += "\\f";  break;
    case '\n': Out += "\\n";  break;
    case '\r': Out += "\\r";  break;
    case '\t': Out += "\\t";  break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
  return Out;
}
