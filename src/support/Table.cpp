//===- Table.cpp ----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Table.h"

#include <cassert>
#include <cstdio>

using namespace defacto;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Row));
}

std::string Table::toString(unsigned Indent) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  std::string Pad(Indent, ' ');
  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line = Pad;
    for (size_t C = 0; C != Row.size(); ++C) {
      Line += Row[C];
      if (C + 1 != Row.size())
        Line += std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    Line += '\n';
    return Line;
  };

  std::string Out = renderRow(Header);
  std::string Rule = Pad;
  for (size_t C = 0; C != Widths.size(); ++C) {
    Rule += std::string(Widths[C], '-');
    if (C + 1 != Widths.size())
      Rule += "  ";
  }
  Out += Rule + '\n';
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Out += '"';
    Out += Ch;
  }
  Out += '"';
  return Out;
}

std::string Table::toCsv() const {
  auto renderRow = [](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C != Row.size(); ++C) {
      Line += csvEscape(Row[C]);
      if (C + 1 != Row.size())
        Line += ',';
    }
    Line += '\n';
    return Line;
  };
  std::string Out = renderRow(Header);
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

std::string defacto::formatDouble(double Value, unsigned Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string defacto::formatWithCommas(int64_t Value) {
  std::string Digits = std::to_string(Value < 0 ? -Value : Value);
  std::string Out;
  unsigned Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out += ',';
    Out += *It;
    ++Count;
  }
  if (Value < 0)
    Out += '-';
  return std::string(Out.rbegin(), Out.rend());
}
