//===- MetricsSampler.cpp -------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/MetricsSampler.h"

#include "defacto/Support/Histogram.h"
#include "defacto/Support/Json.h"
#include "defacto/Support/OpenMetrics.h"
#include "defacto/Support/Timer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace defacto;

static double realSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A JSON-safe number: finite values through %.10g, non-finite clamped
/// to 0 (JSON has no Inf/NaN literals).
static std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    V = 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

MetricsSampler::MetricsSampler(MetricsSamplerOptions O) : Opts(std::move(O)) {
  if (!Opts.Clock)
    Opts.Clock = realSeconds;
  if (Opts.IntervalSeconds <= 0)
    Opts.IntervalSeconds = 1.0;
  StartTime = Opts.Clock();
}

MetricsSampler::~MetricsSampler() {
  // Stop the thread without emitting a surprise final sample: drivers
  // that want the final snapshot call stop() themselves.
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Running)
      return;
    StopRequested = true;
  }
  CV.notify_all();
  Worker.join();
}

void MetricsSampler::setGauge(const std::string &Name,
                              std::function<double()> Fn) {
  std::lock_guard<std::mutex> Lock(M);
  Gauges[Name] = std::move(Fn);
}

uint64_t MetricsSampler::samples() const {
  std::lock_guard<std::mutex> Lock(M);
  return Seq;
}

Status MetricsSampler::ioStatus() const {
  std::lock_guard<std::mutex> Lock(M);
  return IoStatus;
}

void MetricsSampler::start() {
  std::lock_guard<std::mutex> Lock(M);
  if (Running)
    return;
  Running = true;
  StopRequested = false;
  Worker = std::thread([this] { threadMain(); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    StopRequested = true;
  }
  CV.notify_all();
  if (Worker.joinable())
    Worker.join();
  {
    std::lock_guard<std::mutex> Lock(M);
    Running = false;
  }
  sampleOnce(/*Final=*/true);
}

void MetricsSampler::threadMain() {
  std::unique_lock<std::mutex> Lock(M);
  while (!StopRequested) {
    CV.wait_for(Lock,
                std::chrono::duration<double>(Opts.IntervalSeconds),
                [this] { return StopRequested; });
    if (StopRequested)
      break;
    if (Opts.Cancel.valid() && Opts.Cancel.cancelled())
      break;
    sampleLocked(/*Final=*/false);
  }
}

MetricsSample MetricsSampler::sampleOnce(bool Final) {
  std::lock_guard<std::mutex> Lock(M);
  return sampleLocked(Final);
}

MetricsSample MetricsSampler::sampleLocked(bool Final) {
  MetricsSample S;
  S.Seq = ++Seq;
  S.Time = Opts.Clock();
  S.Final = Final;

  // Snapshot every surface once; the JSONL embeds the registries' own
  // toJson() documents, so the final line agrees byte-for-byte with the
  // end-of-run --stats output.
  std::string CountersJson = StatRegistry::instance().toJson();
  std::string TimersJson = TimerGroup::global().toJson();
  std::string HistsJson = HistogramRegistry::global().toJson();
  std::vector<StatSnapshot> Counters = StatRegistry::instance().snapshot();
  std::vector<TimerGroup::Snapshot> Timers = TimerGroup::global().snapshot();
  std::vector<HistogramSnapshot> Hists = HistogramRegistry::global().snapshot();

  auto counterValue = [&](const std::string &Group, const std::string &Name) {
    for (const StatSnapshot &C : Counters)
      if (C.Group == Group && C.Name == Name)
        return C.Value;
    return uint64_t{0};
  };

  std::map<std::string, double> GaugeValues;
  for (const auto &[Name, Fn] : Gauges) {
    double V = Fn ? Fn() : 0;
    GaugeValues[Name] = std::isfinite(V) ? V : 0;
  }

  // Derived window rates.
  double Dt = S.Time - (HavePrev ? PrevTime : StartTime);
  uint64_t EvalCount = 0;
  for (const HistogramSnapshot &H : Hists)
    if (H.Name == "eval.latency_us")
      EvalCount = H.Count;
  uint64_t Lookups = counterValue("cache", "lookups");
  uint64_t Served = counterValue("cache", "hits") +
                    counterValue("cache", "negative_hits") +
                    counterValue("cache", "waits");
  if (Dt > 0)
    S.EvalsPerSec =
        static_cast<double>(EvalCount - PrevEvalCount) / Dt;
  if (Lookups > PrevCacheLookups)
    S.CacheHitRate = static_cast<double>(Served - PrevCacheServed) /
                     static_cast<double>(Lookups - PrevCacheLookups);
  auto TotalIt = GaugeValues.find("jobs_total");
  auto DoneIt = GaugeValues.find("jobs_done");
  if (TotalIt != GaugeValues.end() && DoneIt != GaugeValues.end()) {
    double Elapsed = S.Time - StartTime;
    double Total = TotalIt->second, Done = DoneIt->second;
    if (Done > 0 && Elapsed > 0 && Total >= Done) {
      double Rate = Done / Elapsed;
      S.EtaSeconds = Rate > 0 ? (Total - Done) / Rate : -1;
    }
  }
  HavePrev = true;
  PrevTime = S.Time;
  PrevEvalCount = EvalCount;
  PrevCacheLookups = Lookups;
  PrevCacheServed = Served;

  // JSONL line.
  {
    std::ostringstream OS;
    OS << "{\"seq\": " << S.Seq << ", \"t\": " << jsonNumber(S.Time)
       << ", \"final\": " << (Final ? "true" : "false")
       << ", \"counters\": " << CountersJson << ", \"timers\": " << TimersJson
       << ", \"histograms\": " << HistsJson << ", \"gauges\": {";
    bool First = true;
    for (const auto &[Name, V] : GaugeValues) {
      if (!First)
        OS << ", ";
      First = false;
      OS << jsonQuote(Name) << ": " << jsonNumber(V);
    }
    OS << "}, \"derived\": {\"evals_per_sec\": " << jsonNumber(S.EvalsPerSec);
    if (S.CacheHitRate >= 0)
      OS << ", \"cache_hit_rate\": " << jsonNumber(S.CacheHitRate);
    if (S.EtaSeconds >= 0)
      OS << ", \"eta_seconds\": " << jsonNumber(S.EtaSeconds);
    OS << "}}";
    S.JsonLine = OS.str();
  }

  // OpenMetrics exposition of this snapshot.
  {
    OpenMetricsWriter W;
    for (const StatSnapshot &C : Counters) {
      std::string Family = openMetricsName("defacto_" + C.Group + "_" + C.Name);
      W.family(Family, "counter", C.Description);
      W.sample(Family + "_total", static_cast<double>(C.Value));
    }
    if (!Timers.empty()) {
      W.family("defacto_phase_wall_ms", "gauge",
               "accumulated wall time per phase timer");
      for (const TimerGroup::Snapshot &T : Timers)
        W.sample("defacto_phase_wall_ms", T.WallMs, {{"phase", T.Name}});
      W.family("defacto_phase_count", "gauge",
               "scope count per phase timer");
      for (const TimerGroup::Snapshot &T : Timers)
        W.sample("defacto_phase_count", static_cast<double>(T.Count),
                 {{"phase", T.Name}});
    }
    for (const HistogramSnapshot &H : Hists) {
      std::string Family = openMetricsName("defacto_" + H.Name);
      W.family(Family, "summary");
      for (double Q : {0.5, 0.9, 0.99})
        W.sample(Family, static_cast<double>(H.quantile(Q)),
                 {{"quantile", jsonNumber(Q)}});
      W.sample(Family + "_sum", static_cast<double>(H.Sum));
      W.sample(Family + "_count", static_cast<double>(H.Count));
      W.family(Family + "_max", "gauge");
      W.sample(Family + "_max", static_cast<double>(H.Max));
    }
    for (const auto &[Name, V] : GaugeValues) {
      std::string Family = openMetricsName("defacto_" + Name);
      W.family(Family, "gauge");
      W.sample(Family, V);
    }
    W.family("defacto_evals_per_sec", "gauge",
             "window evaluation throughput");
    W.sample("defacto_evals_per_sec", S.EvalsPerSec);
    if (S.CacheHitRate >= 0) {
      W.family("defacto_cache_hit_rate", "gauge",
               "window estimate-cache hit rate");
      W.sample("defacto_cache_hit_rate", S.CacheHitRate);
    }
    if (S.EtaSeconds >= 0) {
      W.family("defacto_eta_seconds", "gauge",
               "projected seconds to completion");
      W.sample("defacto_eta_seconds", S.EtaSeconds);
    }
    S.Prom = W.finish();
  }

  Lines.push_back(S.JsonLine);
  LatestProm = S.Prom;
  flushLocked();
  return S;
}

void MetricsSampler::flushLocked() {
  auto writeAtomically = [&](const std::string &Path,
                             const std::string &Contents) {
    if (Path.empty())
      return;
    std::string Tmp = Path + ".tmp";
    std::FILE *F = std::fopen(Tmp.c_str(), "w");
    if (!F) {
      if (IoStatus.isOk())
        IoStatus = Status::error(ErrorCode::Internal,
                                 "metrics: cannot open " + Tmp);
      return;
    }
    bool Ok = std::fwrite(Contents.data(), 1, Contents.size(), F) ==
              Contents.size();
    Ok = std::fclose(F) == 0 && Ok;
    if (Ok && std::rename(Tmp.c_str(), Path.c_str()) != 0)
      Ok = false;
    if (!Ok && IoStatus.isOk())
      IoStatus =
          Status::error(ErrorCode::Internal, "metrics: cannot write " + Path);
  };

  if (!Opts.JsonlPath.empty()) {
    std::string All;
    for (const std::string &L : Lines) {
      All += L;
      All += '\n';
    }
    writeAtomically(Opts.JsonlPath, All);
  }
  writeAtomically(Opts.PromPath, LatestProm);
}
