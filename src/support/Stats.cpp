//===- Stats.cpp ----------------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Stats.h"

#include <algorithm>
#include <sstream>

using namespace defacto;

std::atomic<bool> defacto::detail::StatsEnabledFlag{false};

Statistic::Statistic(const char *Group, const char *Name,
                     const char *Description)
    : Group(Group), Name(Name), Description(Description) {
  StatRegistry::instance().registerStat(this);
}

StatRegistry &StatRegistry::instance() {
  static StatRegistry R;
  return R;
}

void StatRegistry::registerStat(Statistic *S) {
  std::lock_guard<std::mutex> Lock(M);
  Stats.push_back(S);
}

std::vector<StatSnapshot> StatRegistry::snapshot() const {
  std::vector<StatSnapshot> Out;
  {
    std::lock_guard<std::mutex> Lock(M);
    Out.reserve(Stats.size());
    for (const Statistic *S : Stats)
      Out.push_back({S->group(), S->name(), S->description(), S->value()});
  }
  std::sort(Out.begin(), Out.end(),
            [](const StatSnapshot &A, const StatSnapshot &B) {
              return A.Group != B.Group ? A.Group < B.Group : A.Name < B.Name;
            });
  return Out;
}

void StatRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (Statistic *S : Stats)
    S->Value.store(0, std::memory_order_relaxed);
}

std::string StatRegistry::toText() const {
  std::ostringstream OS;
  for (const StatSnapshot &S : snapshot())
    OS << S.Group << '.' << S.Name << " = " << S.Value << "  (" << S.Description
       << ")\n";
  return OS.str();
}

std::string StatRegistry::toJson() const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (const StatSnapshot &S : snapshot()) {
    if (!First)
      OS << ", ";
    First = false;
    OS << '"' << S.Group << '.' << S.Name << "\": " << S.Value;
  }
  OS << '}';
  return OS.str();
}
