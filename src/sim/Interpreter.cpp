//===- Interpreter.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Sim/Interpreter.h"

#include "defacto/Support/ErrorHandling.h"
#include "defacto/Support/Random.h"

#include <cassert>
#include <functional>

using namespace defacto;

MemoryImage::MemoryImage(const Kernel &K, uint64_t Seed) {
  for (const auto &A : K.arrays()) {
    if (A->renamedFrom())
      continue; // Aliases share the origin's storage.
    std::vector<int64_t> Data(A->numElements());
    // Mix the name into the seed so every array gets its own stream while
    // clones of the kernel see identical images.
    uint64_t NameHash = 1469598103934665603ULL;
    for (char Ch : A->name())
      NameHash = (NameHash ^ static_cast<unsigned char>(Ch)) *
                 1099511628211ULL;
    SplitMix64 Rng(Seed ^ NameHash);
    for (int64_t &V : Data)
      V = Rng.nextInRange(-100, 100);
    ArrayTypes[A->name()] = A->elementType();
    Arrays[A->name()] = std::move(Data);
  }
  for (const auto &S : K.scalars())
    Scalars[S.get()] = 0;
}

Expected<const ArrayDecl *>
MemoryImage::resolve(const ArrayDecl *A,
                     std::vector<int64_t> &Indices) const {
  while (const ArrayDecl *Origin = A->renamedFrom()) {
    unsigned D = A->bankDim();
    if (D >= Indices.size())
      return Status::error(ErrorCode::OutOfBounds,
                           "bank dimension of '" + A->name() +
                               "' out of range");
    Indices[D] = Indices[D] * A->bankStride() + A->bankOffset();
    A = Origin;
  }
  return A;
}

Expected<size_t>
MemoryImage::flatten(const ArrayDecl *A,
                     const std::vector<int64_t> &Indices) const {
  if (Indices.size() != A->numDims())
    return Status::error(ErrorCode::OutOfBounds,
                         "access to '" + A->name() + "' has " +
                             std::to_string(Indices.size()) +
                             " subscripts for rank " +
                             std::to_string(A->numDims()));
  size_t Flat = 0;
  for (unsigned D = 0; D != A->numDims(); ++D) {
    if (Indices[D] < 0 || Indices[D] >= A->dim(D))
      return Status::error(ErrorCode::OutOfBounds,
                           "index " + std::to_string(Indices[D]) +
                               " outside dimension " + std::to_string(D) +
                               " of '" + A->name() + "' (extent " +
                               std::to_string(A->dim(D)) + ")");
    Flat = Flat * static_cast<size_t>(A->dim(D)) +
           static_cast<size_t>(Indices[D]);
  }
  return Flat;
}

Expected<int64_t>
MemoryImage::load(const ArrayDecl *A,
                  const std::vector<int64_t> &Indices) const {
  std::vector<int64_t> Idx = Indices;
  Expected<const ArrayDecl *> Origin = resolve(A, Idx);
  if (!Origin)
    return Origin.status();
  auto It = Arrays.find((*Origin)->name());
  if (It == Arrays.end())
    return Status::error(ErrorCode::Internal,
                         "array '" + (*Origin)->name() + "' has no storage");
  Expected<size_t> Flat = flatten(*Origin, Idx);
  if (!Flat)
    return Flat.status();
  return It->second[*Flat];
}

Status MemoryImage::store(const ArrayDecl *A,
                          const std::vector<int64_t> &Indices,
                          int64_t Value) {
  std::vector<int64_t> Idx = Indices;
  Expected<const ArrayDecl *> Origin = resolve(A, Idx);
  if (!Origin)
    return Origin.status();
  auto It = Arrays.find((*Origin)->name());
  if (It == Arrays.end())
    return Status::error(ErrorCode::Internal,
                         "array '" + (*Origin)->name() + "' has no storage");
  Expected<size_t> Flat = flatten(*Origin, Idx);
  if (!Flat)
    return Flat.status();
  It->second[*Flat] = truncateToType(Value, (*Origin)->elementType());
  return Status::ok();
}

int64_t MemoryImage::scalar(const ScalarDecl *S) const {
  auto It = Scalars.find(S);
  assert(It != Scalars.end() && "scalar has no storage");
  return It->second;
}

void MemoryImage::setScalar(const ScalarDecl *S, int64_t Value) {
  auto It = Scalars.find(S);
  assert(It != Scalars.end() && "scalar has no storage");
  It->second = truncateToType(Value, S->type());
}

const std::vector<int64_t> &
MemoryImage::arrayData(const std::string &Name) const {
  auto It = Arrays.find(Name);
  if (It == Arrays.end())
    reportFatalError("arrayData: no such origin array");
  return It->second;
}

std::vector<std::string> MemoryImage::arrayNames() const {
  std::vector<std::string> Names;
  for (const auto &[Name, Data] : Arrays) {
    (void)Data;
    Names.push_back(Name);
  }
  return Names;
}

namespace {

/// Tree-walking evaluator. Errors (out-of-bounds accesses, step-limit
/// overruns) propagate outward as Status; evaluation stops at the first.
class Evaluator {
public:
  Evaluator(MemoryImage &Mem, SimStats &Stats,
            const InterpreterLimits &Limits)
      : Mem(Mem), Stats(Stats), Limits(Limits) {}

  Status runStmts(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts) {
      Status St = runStmt(S.get());
      if (!St.isOk())
        return St;
    }
    return Status::ok();
  }

private:
  Expected<int64_t> loopValue(int LoopId) const {
    auto It = LoopValues.find(LoopId);
    if (It == LoopValues.end())
      return Status::error(ErrorCode::MalformedIR,
                           "loop index " + std::to_string(LoopId) +
                               " evaluated outside its loop");
    return It->second;
  }

  Expected<std::vector<int64_t>> evalSubscripts(const ArrayAccessExpr *A) {
    std::vector<int64_t> Idx;
    Idx.reserve(A->numSubscripts());
    for (const AffineExpr &Sub : A->subscripts()) {
      Status St = Status::ok();
      int64_t V = Sub.evaluate([&](int Id) {
        Expected<int64_t> L = loopValue(Id);
        if (!L) {
          St = L.status();
          return static_cast<int64_t>(0);
        }
        return *L;
      });
      if (!St.isOk())
        return St;
      Idx.push_back(V);
    }
    return Idx;
  }

  Expected<int64_t> evalExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case Expr::Kind::LoopIndex:
      return loopValue(cast<LoopIndexExpr>(E)->loopId());
    case Expr::Kind::ScalarRef:
      return Mem.scalar(cast<ScalarRefExpr>(E)->decl());
    case Expr::Kind::ArrayAccess: {
      const auto *A = cast<ArrayAccessExpr>(E);
      ++Stats.MemoryReads;
      Expected<std::vector<int64_t>> Idx = evalSubscripts(A);
      if (!Idx)
        return Idx.status();
      return Mem.load(A->array(), *Idx);
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Expected<int64_t> VOr = evalExpr(U->operand());
      if (!VOr)
        return VOr;
      int64_t V = *VOr;
      switch (U->op()) {
      case UnaryOp::Neg:
        return -V;
      case UnaryOp::Abs:
        return V < 0 ? -V : V;
      case UnaryOp::Not:
        return V == 0 ? 1 : 0;
      }
      defacto_unreachable("unknown unary op");
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      Expected<int64_t> LOr = evalExpr(B->lhs());
      if (!LOr)
        return LOr;
      Expected<int64_t> ROr = evalExpr(B->rhs());
      if (!ROr)
        return ROr;
      int64_t L = *LOr, R = *ROr;
      switch (B->op()) {
      case BinaryOp::Add:
        return L + R;
      case BinaryOp::Sub:
        return L - R;
      case BinaryOp::Mul:
        return L * R;
      case BinaryOp::Div:
        return R == 0 ? 0 : L / R;
      case BinaryOp::Mod:
        return R == 0 ? 0 : L % R;
      case BinaryOp::Min:
        return L < R ? L : R;
      case BinaryOp::Max:
        return L > R ? L : R;
      case BinaryOp::And:
        return L & R;
      case BinaryOp::Or:
        return L | R;
      case BinaryOp::Xor:
        return L ^ R;
      case BinaryOp::Shl:
        return (R < 0 || R > 62) ? 0 : static_cast<int64_t>(
                                           static_cast<uint64_t>(L) << R);
      case BinaryOp::Shr:
        return (R < 0 || R > 62) ? 0 : (L >> R);
      case BinaryOp::CmpEq:
        return L == R;
      case BinaryOp::CmpNe:
        return L != R;
      case BinaryOp::CmpLt:
        return L < R;
      case BinaryOp::CmpLe:
        return L <= R;
      case BinaryOp::CmpGt:
        return L > R;
      case BinaryOp::CmpGe:
        return L >= R;
      }
      defacto_unreachable("unknown binary op");
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      Expected<int64_t> Cond = evalExpr(S->cond());
      if (!Cond)
        return Cond;
      return evalExpr(*Cond != 0 ? S->trueValue() : S->falseValue());
    }
    }
    defacto_unreachable("unknown expression kind");
  }

  Status countStep() {
    if (++Steps > Limits.MaxSteps)
      return Status::error(ErrorCode::StepLimitExceeded,
                           "statement budget of " +
                               std::to_string(Limits.MaxSteps) +
                               " exhausted");
    return Status::ok();
  }

  Status runStmt(const Stmt *S) {
    Status Step = countStep();
    if (!Step.isOk())
      return Step;
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Expected<int64_t> V = evalExpr(A->value());
      if (!V)
        return V.status();
      ++Stats.AssignsExecuted;
      if (const auto *SR = dyn_cast<ScalarRefExpr>(A->dest())) {
        Mem.setScalar(SR->decl(), *V);
        return Status::ok();
      }
      const auto *AA = cast<ArrayAccessExpr>(A->dest());
      ++Stats.MemoryWrites;
      Expected<std::vector<int64_t>> Idx = evalSubscripts(AA);
      if (!Idx)
        return Idx.status();
      return Mem.store(AA->array(), *Idx, *V);
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      for (int64_t I = F->lower(); I < F->upper(); I += F->step()) {
        Status St = countStep();
        if (!St.isOk())
          return St;
        LoopValues[F->loopId()] = I;
        St = runStmts(F->body());
        if (!St.isOk())
          return St;
      }
      LoopValues.erase(F->loopId());
      return Status::ok();
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      Expected<int64_t> Cond = evalExpr(I->cond());
      if (!Cond)
        return Cond.status();
      return runStmts(*Cond != 0 ? I->thenBody() : I->elseBody());
    }
    case Stmt::Kind::Rotate: {
      const auto *R = cast<RotateStmt>(S);
      ++Stats.RotatesExecuted;
      const auto &Chain = R->chain();
      if (Chain.size() < 2)
        return Status::ok();
      int64_t First = Mem.scalar(Chain.front());
      for (size_t I = 0; I + 1 < Chain.size(); ++I)
        Mem.setScalar(Chain[I], Mem.scalar(Chain[I + 1]));
      Mem.setScalar(Chain.back(), First);
      return Status::ok();
    }
    }
    defacto_unreachable("unknown statement kind");
  }

  MemoryImage &Mem;
  SimStats &Stats;
  const InterpreterLimits &Limits;
  uint64_t Steps = 0;
  std::map<int, int64_t> LoopValues;
};

} // namespace

Expected<SimStats> defacto::runKernel(const Kernel &K, MemoryImage &Mem,
                                      const InterpreterLimits &Limits) {
  SimStats Stats;
  Status St = Evaluator(Mem, Stats, Limits).runStmts(K.body());
  if (!St.isOk())
    return St;
  return Stats;
}

Expected<std::map<std::string, std::vector<int64_t>>>
defacto::simulate(const Kernel &K, uint64_t Seed,
                  const InterpreterLimits &Limits) {
  MemoryImage Mem(K, Seed);
  Expected<SimStats> Stats = runKernel(K, Mem, Limits);
  if (!Stats)
    return Stats.status();
  std::map<std::string, std::vector<int64_t>> Out;
  for (const std::string &Name : Mem.arrayNames())
    Out[Name] = Mem.arrayData(Name);
  return Out;
}
