//===- Interpreter.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Sim/Interpreter.h"

#include "defacto/Support/ErrorHandling.h"
#include "defacto/Support/Random.h"

#include <cassert>
#include <functional>

using namespace defacto;

MemoryImage::MemoryImage(const Kernel &K, uint64_t Seed) {
  for (const auto &A : K.arrays()) {
    if (A->renamedFrom())
      continue; // Aliases share the origin's storage.
    std::vector<int64_t> Data(A->numElements());
    // Mix the name into the seed so every array gets its own stream while
    // clones of the kernel see identical images.
    uint64_t NameHash = 1469598103934665603ULL;
    for (char Ch : A->name())
      NameHash = (NameHash ^ static_cast<unsigned char>(Ch)) *
                 1099511628211ULL;
    SplitMix64 Rng(Seed ^ NameHash);
    for (int64_t &V : Data)
      V = Rng.nextInRange(-100, 100);
    ArrayTypes[A->name()] = A->elementType();
    Arrays[A->name()] = std::move(Data);
  }
  for (const auto &S : K.scalars())
    Scalars[S.get()] = 0;
}

const ArrayDecl *MemoryImage::resolve(const ArrayDecl *A,
                                      std::vector<int64_t> &Indices) const {
  while (const ArrayDecl *Origin = A->renamedFrom()) {
    unsigned D = A->bankDim();
    assert(D < Indices.size() && "bank dimension out of range");
    Indices[D] = Indices[D] * A->bankStride() + A->bankOffset();
    A = Origin;
  }
  return A;
}

size_t MemoryImage::flatten(const ArrayDecl *A,
                            const std::vector<int64_t> &Indices) const {
  assert(Indices.size() == A->numDims() && "rank mismatch");
  size_t Flat = 0;
  for (unsigned D = 0; D != A->numDims(); ++D) {
    assert(Indices[D] >= 0 && Indices[D] < A->dim(D) &&
           "array index out of bounds");
    Flat = Flat * static_cast<size_t>(A->dim(D)) +
           static_cast<size_t>(Indices[D]);
  }
  return Flat;
}

int64_t MemoryImage::load(const ArrayDecl *A,
                          const std::vector<int64_t> &Indices) const {
  std::vector<int64_t> Idx = Indices;
  const ArrayDecl *Origin = resolve(A, Idx);
  auto It = Arrays.find(Origin->name());
  assert(It != Arrays.end() && "array has no storage");
  return It->second[flatten(Origin, Idx)];
}

void MemoryImage::store(const ArrayDecl *A,
                        const std::vector<int64_t> &Indices, int64_t Value) {
  std::vector<int64_t> Idx = Indices;
  const ArrayDecl *Origin = resolve(A, Idx);
  auto It = Arrays.find(Origin->name());
  assert(It != Arrays.end() && "array has no storage");
  It->second[flatten(Origin, Idx)] =
      truncateToType(Value, Origin->elementType());
}

int64_t MemoryImage::scalar(const ScalarDecl *S) const {
  auto It = Scalars.find(S);
  assert(It != Scalars.end() && "scalar has no storage");
  return It->second;
}

void MemoryImage::setScalar(const ScalarDecl *S, int64_t Value) {
  auto It = Scalars.find(S);
  assert(It != Scalars.end() && "scalar has no storage");
  It->second = truncateToType(Value, S->type());
}

const std::vector<int64_t> &
MemoryImage::arrayData(const std::string &Name) const {
  auto It = Arrays.find(Name);
  if (It == Arrays.end())
    reportFatalError("arrayData: no such origin array");
  return It->second;
}

std::vector<std::string> MemoryImage::arrayNames() const {
  std::vector<std::string> Names;
  for (const auto &[Name, Data] : Arrays) {
    (void)Data;
    Names.push_back(Name);
  }
  return Names;
}

namespace {

/// Tree-walking evaluator.
class Evaluator {
public:
  Evaluator(MemoryImage &Mem, SimStats &Stats) : Mem(Mem), Stats(Stats) {}

  void runStmts(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts)
      runStmt(S.get());
  }

private:
  int64_t loopValue(int LoopId) const {
    auto It = LoopValues.find(LoopId);
    assert(It != LoopValues.end() && "loop index evaluated outside its loop");
    return It->second;
  }

  std::vector<int64_t> evalSubscripts(const ArrayAccessExpr *A) {
    std::vector<int64_t> Idx;
    Idx.reserve(A->numSubscripts());
    for (const AffineExpr &Sub : A->subscripts())
      Idx.push_back(
          Sub.evaluate([this](int Id) { return loopValue(Id); }));
    return Idx;
  }

  int64_t evalExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case Expr::Kind::LoopIndex:
      return loopValue(cast<LoopIndexExpr>(E)->loopId());
    case Expr::Kind::ScalarRef:
      return Mem.scalar(cast<ScalarRefExpr>(E)->decl());
    case Expr::Kind::ArrayAccess: {
      const auto *A = cast<ArrayAccessExpr>(E);
      ++Stats.MemoryReads;
      return Mem.load(A->array(), evalSubscripts(A));
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      int64_t V = evalExpr(U->operand());
      switch (U->op()) {
      case UnaryOp::Neg:
        return -V;
      case UnaryOp::Abs:
        return V < 0 ? -V : V;
      case UnaryOp::Not:
        return V == 0 ? 1 : 0;
      }
      defacto_unreachable("unknown unary op");
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int64_t L = evalExpr(B->lhs());
      int64_t R = evalExpr(B->rhs());
      switch (B->op()) {
      case BinaryOp::Add:
        return L + R;
      case BinaryOp::Sub:
        return L - R;
      case BinaryOp::Mul:
        return L * R;
      case BinaryOp::Div:
        return R == 0 ? 0 : L / R;
      case BinaryOp::Mod:
        return R == 0 ? 0 : L % R;
      case BinaryOp::Min:
        return L < R ? L : R;
      case BinaryOp::Max:
        return L > R ? L : R;
      case BinaryOp::And:
        return L & R;
      case BinaryOp::Or:
        return L | R;
      case BinaryOp::Xor:
        return L ^ R;
      case BinaryOp::Shl:
        return (R < 0 || R > 62) ? 0 : static_cast<int64_t>(
                                           static_cast<uint64_t>(L) << R);
      case BinaryOp::Shr:
        return (R < 0 || R > 62) ? 0 : (L >> R);
      case BinaryOp::CmpEq:
        return L == R;
      case BinaryOp::CmpNe:
        return L != R;
      case BinaryOp::CmpLt:
        return L < R;
      case BinaryOp::CmpLe:
        return L <= R;
      case BinaryOp::CmpGt:
        return L > R;
      case BinaryOp::CmpGe:
        return L >= R;
      }
      defacto_unreachable("unknown binary op");
    }
    case Expr::Kind::Select: {
      const auto *S = cast<SelectExpr>(E);
      return evalExpr(S->cond()) != 0 ? evalExpr(S->trueValue())
                                      : evalExpr(S->falseValue());
    }
    }
    defacto_unreachable("unknown expression kind");
  }

  void runStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      int64_t V = evalExpr(A->value());
      ++Stats.AssignsExecuted;
      if (const auto *SR = dyn_cast<ScalarRefExpr>(A->dest())) {
        Mem.setScalar(SR->decl(), V);
      } else {
        const auto *AA = cast<ArrayAccessExpr>(A->dest());
        ++Stats.MemoryWrites;
        Mem.store(AA->array(), evalSubscripts(AA), V);
      }
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      for (int64_t I = F->lower(); I < F->upper(); I += F->step()) {
        LoopValues[F->loopId()] = I;
        runStmts(F->body());
      }
      LoopValues.erase(F->loopId());
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      if (evalExpr(I->cond()) != 0)
        runStmts(I->thenBody());
      else
        runStmts(I->elseBody());
      return;
    }
    case Stmt::Kind::Rotate: {
      const auto *R = cast<RotateStmt>(S);
      ++Stats.RotatesExecuted;
      const auto &Chain = R->chain();
      if (Chain.size() < 2)
        return;
      int64_t First = Mem.scalar(Chain.front());
      for (size_t I = 0; I + 1 < Chain.size(); ++I)
        Mem.setScalar(Chain[I], Mem.scalar(Chain[I + 1]));
      Mem.setScalar(Chain.back(), First);
      return;
    }
    }
    defacto_unreachable("unknown statement kind");
  }

  MemoryImage &Mem;
  SimStats &Stats;
  std::map<int, int64_t> LoopValues;
};

} // namespace

SimStats defacto::runKernel(const Kernel &K, MemoryImage &Mem) {
  SimStats Stats;
  Evaluator(Mem, Stats).runStmts(K.body());
  return Stats;
}

std::map<std::string, std::vector<int64_t>>
defacto::simulate(const Kernel &K, uint64_t Seed) {
  MemoryImage Mem(K, Seed);
  runKernel(K, Mem);
  std::map<std::string, std::vector<int64_t>> Out;
  for (const std::string &Name : Mem.arrayNames())
    Out[Name] = Mem.arrayData(Name);
  return Out;
}
