//===- defacto_served.cpp - The DSE daemon --------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exploration-as-a-service: binds a Unix-domain socket, serves
/// newline-delimited JSON explore/ping/shutdown requests (see
/// docs/SERVING.md), and keeps the estimate and transform-stage caches
/// warm for the process lifetime. With --journal the daemon is
/// crash-safe: every completed estimation is durable, and a restart
/// replays the journal into the cache before accepting connections.
///
/// Usage:
///   defacto_served --socket=/tmp/dse.sock [--threads=N]
///       [--queue-depth=N] [--max-batch=N] [--journal=PATH]
///       [--watchdog=SEC] [--breaker-threshold=N] [--breaker-cooldown=SEC]
///       [--fastpath=off|on|verify] [--metrics-jsonl=PATH]
///       [--metrics-prom=PATH] [--metrics-interval=SEC]
///       [--trace-out=PATH] [--stats] [--stats-out=PATH]
///
/// Runs until a client sends {"cmd":"shutdown"} or the process receives
/// SIGINT/SIGTERM. Exit 0 on a clean shutdown, 1 when the daemon could
/// not start, 2 on a bad command line.
///
//===----------------------------------------------------------------------===//

#include "defacto/Serve/Server.h"
#include "defacto/Support/CommandLine.h"
#include "defacto/Support/MetricsSampler.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>

using namespace defacto;

namespace {

DseServer *TheServer = nullptr;

void onSignal(int) {
  if (TheServer)
    TheServer->requestStop();
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--threads=N] [--queue-depth=N]\n"
               "  [--max-batch=N] [--journal=PATH] [--watchdog=SEC]\n"
               "  [--breaker-threshold=N] [--breaker-cooldown=SEC]\n"
               "  [--fastpath=off|on|verify] [--metrics-jsonl=PATH]\n"
               "  [--metrics-prom=PATH] [--metrics-interval=SEC]\n"
               "  [--trace-out=PATH] [--stats] [--stats-out=PATH]\n",
               Argv0);
  return 2;
}

double parseSeconds(const std::optional<std::string> &V, double Default) {
  if (!V)
    return Default;
  return std::strtod(V->c_str(), nullptr);
}

} // namespace

int main(int argc, char **argv) {
  cl::ArgList Args(argc, argv);
  cl::ObservabilityConfig Obs = cl::consumeObservabilityFlags(Args);

  ServeOptions Opts;
  Opts.SocketPath = Args.consumeValue("--socket").value_or("");
  Opts.NumThreads = Args.consumeUnsigned("--threads").value_or(2);
  Opts.MaxQueueDepth = Args.consumeUnsigned("--queue-depth").value_or(64);
  Opts.MaxBatch = Args.consumeUnsigned("--max-batch").value_or(8);
  Opts.JournalPath = Args.consumeValue("--journal").value_or("");
  Opts.WatchdogSeconds = parseSeconds(Args.consumeValue("--watchdog"), 0);
  Opts.BreakerThreshold =
      Args.consumeUnsigned("--breaker-threshold").value_or(0);
  Opts.BreakerCooldownSeconds =
      parseSeconds(Args.consumeValue("--breaker-cooldown"), 30);
  std::string FastPath = Args.consumeValue("--fastpath").value_or("on");
  if (FastPath == "off")
    Opts.FastPath = FastPathMode::Off;
  else if (FastPath == "on")
    Opts.FastPath = FastPathMode::On;
  else if (FastPath == "verify")
    Opts.FastPath = FastPathMode::Verify;
  else
    return usage(argv[0]);

  std::string MetricsJsonl = Args.consumeValue("--metrics-jsonl").value_or("");
  std::string MetricsProm = Args.consumeValue("--metrics-prom").value_or("");
  double MetricsInterval =
      parseSeconds(Args.consumeValue("--metrics-interval"), 1.0);

  if (Opts.SocketPath.empty() || !Args.empty())
    return usage(argv[0]);

  DseServer Server(std::move(Opts));
  Status Started = Server.start();
  if (!Started.isOk()) {
    std::fprintf(stderr, "defacto_served: cannot start: %s\n",
                 Started.message().c_str());
    return 1;
  }

  MetricsSampler *Sampler = nullptr;
  MetricsSampler OwnedSampler{[&] {
    MetricsSamplerOptions M;
    M.IntervalSeconds = MetricsInterval;
    M.JsonlPath = MetricsJsonl;
    M.PromPath = MetricsProm;
    return M;
  }()};
  if (!MetricsJsonl.empty() || !MetricsProm.empty()) {
    Sampler = &OwnedSampler;
    Server.registerGauges(*Sampler);
    Sampler->start();
  }

  TheServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::fprintf(stderr,
               "defacto_served: listening on %s (resumed %u journaled "
               "evaluations)\n",
               Server.socketPath().c_str(), Server.resumedEvaluations());

  Server.waitForShutdownRequest();

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  TheServer = nullptr;
  Server.stop();
  if (Sampler)
    Sampler->stop();

  std::fprintf(stderr,
               "defacto_served: served %llu requests (%llu warm, %llu "
               "overloaded, %llu deadline-missed, %llu errors) in %llu "
               "batches\n",
               static_cast<unsigned long long>(Server.requestsReceived()),
               static_cast<unsigned long long>(Server.warmHits()),
               static_cast<unsigned long long>(Server.overloads()),
               static_cast<unsigned long long>(Server.deadlineMisses()),
               static_cast<unsigned long long>(Server.errorReplies()),
               static_cast<unsigned long long>(Server.batchesRun()));
  if (!cl::finishObservability(Obs))
    return 1;
  return 0;
}
