#!/usr/bin/env bash
# chaos_kill_resume.sh — crash-safety soak for the evaluation journal.
#
# For each seed: start explore_batch with a journal, SIGKILL it at a
# seed-derived random moment mid-run, then resume from whatever journal
# the corpse left behind and demand the resumed run's result table be
# bit-identical to an uninterrupted reference run. A kill that lands
# mid-flush exercises the write-then-rename path; one that lands before
# the first flush exercises the empty-journal resume path.
#
# usage: chaos_kill_resume.sh <explore_batch-binary> [num-seeds]
set -u

BIN=${1:?usage: chaos_kill_resume.sh <explore_batch-binary> [num-seeds]}
SEEDS=${2:-32}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Exploration flags: exhaustive over the extended kernel set runs a few
# seconds, so the random kill usually lands mid-run with a partial
# journal on disk. Single-threaded keeps the kill window wide; the
# resume contract itself is thread-count independent
# (journal_resume_test covers 8 threads).
FLAGS=(--threads 1 --strategy exhaustive --extended)

# The uninterrupted reference: winners every resumed run must reproduce.
# Strip run-variant output (cache stats, journal line) down to the
# per-job result rows.
result_rows() {
  sed -n '/^job  /,/^$/p' "$1"
}

"$BIN" "${FLAGS[@]}" --journal="$WORK/ref.jsonl" >"$WORK/ref.out"
REF_STATUS=$?
if [ $REF_STATUS -ne 0 ] && [ $REF_STATUS -ne 3 ]; then
  echo "FAIL: reference run exited $REF_STATUS" >&2
  cat "$WORK/ref.out" >&2
  exit 1
fi
result_rows "$WORK/ref.out" >"$WORK/ref.rows"
if ! [ -s "$WORK/ref.rows" ]; then
  echo "FAIL: reference run produced no result rows" >&2
  cat "$WORK/ref.out" >&2
  exit 1
fi

FAILURES=0
for SEED in $(seq 1 "$SEEDS"); do
  J="$WORK/run$SEED.jsonl"
  rm -f "$J" "$J.tmp"

  # Seed-derived kill delay spread across the run's ~2.5s lifetime:
  # deterministic per seed, from "before the first flush" to "almost
  # done".
  DELAY=$(awk -v s="$SEED" 'BEGIN { srand(s); printf "%.3f", 0.01 + rand() * 2.0 }')

  "$BIN" "${FLAGS[@]}" --journal="$J" >"$WORK/run$SEED.out" 2>&1 &
  PID=$!
  sleep "$DELAY"
  kill -KILL "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null

  # Resume. The journal may be absent (killed before the first flush) —
  # --resume treats that as an empty journal and redoes everything.
  "$BIN" "${FLAGS[@]}" --journal="$J" --resume >"$WORK/resume$SEED.out" 2>"$WORK/resume$SEED.err"
  STATUS=$?
  if [ $STATUS -ne 0 ] && [ $STATUS -ne 3 ]; then
    echo "seed $SEED: FAIL resume exited $STATUS (killed after ${DELAY}s)" >&2
    cat "$WORK/resume$SEED.err" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  result_rows "$WORK/resume$SEED.out" >"$WORK/resume$SEED.rows"
  if ! diff -u "$WORK/ref.rows" "$WORK/resume$SEED.rows" >"$WORK/diff$SEED"; then
    echo "seed $SEED: FAIL resumed winners differ from reference (killed after ${DELAY}s)" >&2
    cat "$WORK/diff$SEED" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  REPLAYED=$(sed -n 's/^resumed from journal .*: \([0-9]*\) evaluation(s) replayed.*/\1/p' "$WORK/resume$SEED.out")
  echo "seed $SEED: ok (killed after ${DELAY}s, ${REPLAYED:-0} evaluation(s) replayed)"
done

if [ $FAILURES -ne 0 ]; then
  echo "chaos kill-resume: $FAILURES/$SEEDS seed(s) FAILED" >&2
  exit 1
fi
echo "chaos kill-resume: all $SEEDS seed(s) reproduced the reference bit-identically"
