//===- defacto_monitor.cpp - Live exploration dashboard -------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Tails the metrics JSONL stream a MetricsSampler writes (explore_batch
/// --metrics-out=PATH) and renders a live terminal dashboard: batch
/// progress with an ETA, evaluation throughput, cache behaviour, breaker
/// state, and the latency percentile table. The sampler rewrites the
/// file atomically (write-then-rename), so re-reading the whole file on
/// every poll never observes a torn line.
///
///   defacto_monitor METRICS.jsonl [--interval-ms=N] [--max-wait-ms=N]
///                   [--once] [--no-clear]
///
///   --interval-ms=N   poll period (default 500)
///   --max-wait-ms=N   give up when no sample appears for N ms (default
///                     0: wait forever)
///   --once            render the latest sample and exit
///   --no-clear        append frames instead of clearing the terminal
///                     (for logs / non-TTY output)
///
/// Exits 0 after rendering a sample marked "final": true (or any sample
/// with --once), 1 when the wait budget expires without one, 2 on usage
/// errors.
///
//===----------------------------------------------------------------------===//

#include "defacto/Support/CommandLine.h"
#include "defacto/Support/Json.h"
#include "defacto/Support/Table.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace defacto;

namespace {

/// The last non-blank line of \p Path, or nullopt when the file is
/// missing or has no content yet.
std::optional<std::string> lastNonEmptyLine(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::string Line, Last;
  while (std::getline(In, Line))
    if (Line.find_first_not_of(" \t\r") != std::string::npos)
      Last = Line;
  if (Last.empty())
    return std::nullopt;
  return Last;
}

std::string progressBar(double Fraction, unsigned Width) {
  Fraction = std::clamp(Fraction, 0.0, 1.0);
  unsigned Filled = static_cast<unsigned>(std::lround(Fraction * Width));
  std::string Bar(Filled, '#');
  Bar.append(Width - Filled, '.');
  return "[" + Bar + "]";
}

std::string formatSeconds(double S) {
  if (S < 0)
    return "-";
  if (S < 60)
    return formatDouble(S, 1) + "s";
  unsigned Minutes = static_cast<unsigned>(S) / 60;
  unsigned Rest = static_cast<unsigned>(S) % 60;
  return std::to_string(Minutes) + "m " + std::to_string(Rest) + "s";
}

/// Renders one dashboard frame from a parsed sampler line.
std::string renderFrame(const JsonValue &Sample, const std::string &Path) {
  std::ostringstream OS;
  bool Final = Sample.boolean("final");
  OS << "defacto monitor — " << Path << "  (sample #" << Sample.uint("seq")
     << (Final ? ", FINAL)" : ")") << "\n\n";

  const JsonValue *Gauges = Sample.find("gauges");
  const JsonValue *Derived = Sample.find("derived");
  const JsonValue *Counters = Sample.find("counters");

  // Batch progress.
  if (Gauges && Gauges->find("jobs_total")) {
    double Total = Gauges->num("jobs_total");
    double Done = Gauges->num("jobs_done");
    double Fraction = Total > 0 ? Done / Total : 0;
    OS << "  jobs      " << progressBar(Fraction, 32) << "  "
       << formatDouble(Done, 0) << "/" << formatDouble(Total, 0);
    if (Derived && Derived->find("eta_seconds"))
      OS << "  eta " << formatSeconds(Derived->num("eta_seconds", -1));
    OS << "\n";
  }

  // Throughput and engine load.
  if (Derived) {
    OS << "  evals/sec " << formatDouble(Derived->num("evals_per_sec"), 1);
    if (Derived->find("cache_hit_rate"))
      OS << "   cache hit rate "
         << formatDouble(100 * Derived->num("cache_hit_rate"), 1) << "%";
    OS << "\n";
  }
  if (Gauges) {
    OS << "  in-flight " << formatDouble(Gauges->num("in_flight_evals"), 0)
       << "   queue depth " << formatDouble(Gauges->num("queue_depth"), 0)
       << "   cached designs "
       << formatWithCommas(
              static_cast<int64_t>(Gauges->num("cache_designs")))
       << "   breakers open "
       << formatDouble(Gauges->num("breakers_open"), 0) << "\n";
  }
  if (Counters && Counters->find("explore.frontier_size"))
    OS << "  frontier  "
       << formatWithCommas(
              static_cast<int64_t>(Counters->num("explore.frontier_size")))
       << " speculative candidates\n";
  OS << "\n";

  // Latency percentile table from the histogram registry export.
  if (const JsonValue *Hists = Sample.find("histograms");
      Hists && Hists->isObject() && !Hists->Members.empty()) {
    Table Latency({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto &[Name, H] : Hists->Members)
      Latency.addRow({Name,
                      formatWithCommas(static_cast<int64_t>(H.num("count"))),
                      formatDouble(H.num("mean"), 1),
                      formatWithCommas(static_cast<int64_t>(H.num("p50"))),
                      formatWithCommas(static_cast<int64_t>(H.num("p90"))),
                      formatWithCommas(static_cast<int64_t>(H.num("p99"))),
                      formatWithCommas(static_cast<int64_t>(H.num("max")))});
    OS << Latency.toString(2) << "\n";
  }

  // The heaviest phases, by cumulative wall time.
  if (const JsonValue *Timers = Sample.find("timers");
      Timers && Timers->isObject() && !Timers->Members.empty()) {
    std::vector<std::pair<std::string, const JsonValue *>> Phases;
    for (const auto &[Name, T] : Timers->Members)
      Phases.emplace_back(Name, &T);
    std::sort(Phases.begin(), Phases.end(), [](const auto &A, const auto &B) {
      return A.second->num("wall_ms") > B.second->num("wall_ms");
    });
    if (Phases.size() > 8)
      Phases.resize(8);
    Table Top({"phase", "wall_ms", "count"});
    for (const auto &[Name, T] : Phases)
      Top.addRow({Name, formatDouble(T->num("wall_ms"), 2),
                  formatWithCommas(static_cast<int64_t>(T->num("count")))});
    OS << Top.toString(2) << "\n";
  }
  return OS.str();
}

} // namespace

int main(int argc, char **argv) {
  cl::ArgList Args(argc, argv);
  bool Once = Args.consumeFlag("--once");
  bool NoClear = Args.consumeFlag("--no-clear");
  unsigned IntervalMs = Args.consumeUnsigned("--interval-ms").value_or(500);
  unsigned MaxWaitMs = Args.consumeUnsigned("--max-wait-ms").value_or(0);
  if (Args.rest().size() != 1) {
    std::fprintf(stderr,
                 "usage: defacto_monitor METRICS.jsonl [--interval-ms=N] "
                 "[--max-wait-ms=N] [--once] [--no-clear]\n");
    return 2;
  }
  const std::string Path = Args.rest().front();
  if (IntervalMs == 0)
    IntervalMs = 1;

  uint64_t LastSeq = 0;
  bool RenderedAny = false;
  auto WaitStart = std::chrono::steady_clock::now();
  for (;;) {
    std::optional<std::string> Line = lastNonEmptyLine(Path);
    if (Line) {
      Expected<JsonValue> Sample = parseJson(*Line);
      if (Sample) {
        uint64_t Seq = Sample->uint("seq");
        if (!RenderedAny || Seq != LastSeq) {
          std::string Frame = renderFrame(*Sample, Path);
          if (!NoClear)
            std::fputs("\x1b[2J\x1b[H", stdout);
          std::fputs(Frame.c_str(), stdout);
          std::fflush(stdout);
          RenderedAny = true;
          LastSeq = Seq;
          WaitStart = std::chrono::steady_clock::now();
        }
        if (Once || Sample->boolean("final"))
          return 0;
      }
      // A parse failure here means we caught a foreign or truncated
      // file; keep polling — the next atomic rewrite supersedes it.
    }
    if (MaxWaitMs > 0) {
      auto Waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - WaitStart)
                        .count();
      if (Waited >= static_cast<long long>(MaxWaitMs)) {
        std::fprintf(stderr,
                     "defacto_monitor: no %s sample in %s within %u ms\n",
                     RenderedAny ? "new" : "parsable", Path.c_str(),
                     MaxWaitMs);
        return RenderedAny ? 0 : 1;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
}
