//===- openmetrics_check.cpp - OpenMetrics exposition linter --------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Validates OpenMetrics text expositions (the --metrics-prom output of
/// explore_batch) against the subset of the OpenMetrics 1.0 grammar that
/// Support/OpenMetrics.h enforces: metric name syntax, TYPE declarations
/// before samples, parsable float values, and the mandatory trailing
/// `# EOF`. CI runs it as a gate so a malformed exposition fails the
/// build instead of a scrape.
///
///   openmetrics_check FILE...
///
/// Exits 0 when every file validates, 1 on the first hard failure
/// (unreadable file or invalid exposition), 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "defacto/Support/OpenMetrics.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace defacto;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: openmetrics_check FILE...\n");
    return 2;
  }
  bool Ok = true;
  for (int I = 1; I < argc; ++I) {
    std::ifstream In(argv[I]);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open\n", argv[I]);
      Ok = false;
      continue;
    }
    std::ostringstream OS;
    OS << In.rdbuf();
    const std::string Text = OS.str();
    std::string Error;
    if (validateOpenMetrics(Text, &Error)) {
      std::printf("%s: OK (%zu bytes)\n", argv[I], Text.size());
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[I], Error.c_str());
      Ok = false;
    }
  }
  return Ok ? 0 : 1;
}
