#!/usr/bin/env bash
# chaos_serve_resume.sh — crash-safety soak for the DSE daemon.
#
# For each seed: start defacto_served with a journal, fire a burst of
# explore requests at it, SIGKILL the daemon at a seed-derived random
# moment mid-batch, restart it with the same --journal, and demand that
# the interrupted request — reissued against the restarted daemon — is
# answered from replayed state with the bit-identical winner and
# decision digest of an uninterrupted reference daemon. A kill that
# lands mid-flush exercises the journal's write-then-rename path; one
# that lands before the first flush exercises the empty-journal restart.
#
# usage: chaos_serve_resume.sh <defacto_served> <defacto_client> [num-seeds]
set -u

SERVED=${1:?usage: chaos_serve_resume.sh <defacto_served> <defacto_client> [num-seeds]}
CLIENT=${2:?usage: chaos_serve_resume.sh <defacto_served> <defacto_client> [num-seeds]}
SEEDS=${3:-8}
WORK=$(mktemp -d)
SOCK="$WORK/dse.sock"
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

# The request the chaos targets: a paper kernel with a mid-sized budget,
# digest on so replies carry the bit-identity proof.
REQ=(--kernel=MM --budget=60 --digest)

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  return 1
}

# "selected":"...","cycles":N,...,"decision_digest":"..." — the fields a
# resumed answer must reproduce bit for bit.
identity() {
  tr ',' '\n' <"$1" | grep -E '"(selected|cycles|slices|decision_digest)"' |
    paste -sd, -
}

# The uninterrupted reference answer.
"$SERVED" --socket="$SOCK" 2>"$WORK/ref.log" &
REF_PID=$!
wait_for_socket || { echo "FAIL: reference daemon never bound" >&2; exit 1; }
"$CLIENT" --socket="$SOCK" "${REQ[@]}" --expect=ok >"$WORK/ref.json" ||
  { echo "FAIL: reference request failed" >&2; cat "$WORK/ref.log" >&2; exit 1; }
"$CLIENT" --socket="$SOCK" --shutdown >/dev/null
wait "$REF_PID" 2>/dev/null
identity "$WORK/ref.json" >"$WORK/ref.id"
if ! [ -s "$WORK/ref.id" ]; then
  echo "FAIL: reference reply carried no identity fields" >&2
  cat "$WORK/ref.json" >&2
  exit 1
fi

FAILURES=0
for SEED in $(seq 1 "$SEEDS"); do
  J="$WORK/journal$SEED.jsonl"
  rm -f "$SOCK" "$J" "$J.tmp"

  "$SERVED" --socket="$SOCK" --journal="$J" 2>"$WORK/run$SEED.log" &
  PID=$!
  wait_for_socket || { echo "seed $SEED: FAIL daemon never bound" >&2; FAILURES=$((FAILURES + 1)); continue; }

  # A burst of requests to keep a batch in flight, then a seed-derived
  # kill delay from "before anything completed" to "mid-burst".
  "$CLIENT" --socket="$SOCK" "${REQ[@]}" --repeat=50 >/dev/null 2>&1 &
  BURST=$!
  DELAY=$(awk -v s="$SEED" 'BEGIN { srand(s); printf "%.3f", 0.005 + rand() * 0.15 }')
  sleep "$DELAY"
  kill -KILL "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
  kill "$BURST" 2>/dev/null
  wait "$BURST" 2>/dev/null

  # Restart on the corpse's journal and reissue the interrupted request.
  rm -f "$SOCK"
  "$SERVED" --socket="$SOCK" --journal="$J" 2>"$WORK/restart$SEED.log" &
  PID=$!
  if ! wait_for_socket; then
    echo "seed $SEED: FAIL restarted daemon never bound (killed after ${DELAY}s)" >&2
    cat "$WORK/restart$SEED.log" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  RESUMED=$(sed -n 's/.*resumed \([0-9]*\) journaled.*/\1/p' "$WORK/restart$SEED.log")
  "$CLIENT" --socket="$SOCK" "${REQ[@]}" --expect=ok >"$WORK/resume$SEED.json"
  STATUS=$?
  "$CLIENT" --socket="$SOCK" --shutdown >/dev/null 2>&1
  wait "$PID" 2>/dev/null
  if [ $STATUS -ne 0 ]; then
    echo "seed $SEED: FAIL resumed request exited $STATUS (killed after ${DELAY}s)" >&2
    cat "$WORK/resume$SEED.json" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  identity "$WORK/resume$SEED.json" >"$WORK/resume$SEED.id"
  if ! diff -u "$WORK/ref.id" "$WORK/resume$SEED.id" >"$WORK/diff$SEED"; then
    echo "seed $SEED: FAIL resumed answer differs from reference (killed after ${DELAY}s)" >&2
    cat "$WORK/diff$SEED" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  echo "seed $SEED: ok (killed after ${DELAY}s, ${RESUMED:-0} evaluation(s) replayed)"
done

if [ $FAILURES -ne 0 ]; then
  echo "chaos serve-resume: $FAILURES/$SEEDS seed(s) FAILED" >&2
  exit 1
fi
echo "chaos serve-resume: all $SEEDS seed(s) reproduced the reference bit-identically"
