//===- defacto_client.cpp - Command-line client for the DSE daemon --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Talks the docs/SERVING.md protocol to a running defacto_served over
/// its Unix-domain socket. One reply JSON line is printed to stdout per
/// request, so scripts can assert statuses with jq/grep.
///
/// Usage:
///   defacto_client --socket=PATH --kernel=NAME [--platform=NAME]
///       [--strategy=NAME] [--pipeline=TEXT] [--budget=N]
///       [--deadline=SEC] [--digest] [--id=STR] [--repeat=N]
///   defacto_client --socket=PATH --source-file=PATH [--kernel=NAME] ...
///   defacto_client --socket=PATH --ping
///   defacto_client --socket=PATH --shutdown
///   defacto_client --socket=PATH --stdin     # raw JSONL request lines
///
/// With --expect=STATUS every reply's "status" must equal STATUS or the
/// client exits 1 (test ergonomics). Exit 0 otherwise, 1 on transport
/// failure, 2 on a bad command line.
///
//===----------------------------------------------------------------------===//

#include "defacto/Serve/Protocol.h"
#include "defacto/Support/CommandLine.h"
#include "defacto/Support/Socket.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace defacto;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH (--kernel=NAME | --source-file=PATH |\n"
      "  --ping | --shutdown | --stdin)\n"
      "  [--platform=NAME] [--strategy=NAME] [--pipeline=TEXT]\n"
      "  [--budget=N] [--deadline=SEC] [--digest] [--id=STR]\n"
      "  [--repeat=N] [--expect=STATUS]\n",
      Argv0);
  return 2;
}

/// Sends \p Line, prints the reply, and enforces --expect. Returns 0,
/// or the process exit code on failure.
int roundTrip(UnixConnection &Conn, const std::string &Line,
              const std::string &Expect) {
  Status Sent = Conn.sendLine(Line);
  if (!Sent.isOk()) {
    std::fprintf(stderr, "defacto_client: send failed: %s\n",
                 Sent.message().c_str());
    return 1;
  }
  Expected<std::optional<std::string>> Reply = Conn.recvLine();
  if (!Reply || !Reply.value()) {
    std::fprintf(stderr, "defacto_client: connection closed mid-request\n");
    return 1;
  }
  std::printf("%s\n", Reply.value()->c_str());
  if (!Expect.empty()) {
    Expected<ServeResponse> R = parseServeResponse(*Reply.value());
    if (!R) {
      std::fprintf(stderr, "defacto_client: unparsable reply: %s\n",
                   R.status().message().c_str());
      return 1;
    }
    if (serveStatusName(R->RStatus) != Expect) {
      std::fprintf(stderr, "defacto_client: expected status '%s', got '%s'\n",
                   Expect.c_str(), serveStatusName(R->RStatus));
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  cl::ArgList Args(argc, argv);
  std::string SocketPath = Args.consumeValue("--socket").value_or("");
  bool Ping = Args.consumeFlag("--ping");
  bool Shutdown = Args.consumeFlag("--shutdown");
  bool Stdin = Args.consumeFlag("--stdin");
  std::string Expect = Args.consumeValue("--expect").value_or("");

  ServeRequest Req;
  Req.Kernel = Args.consumeValue("--kernel").value_or("");
  std::string SourceFile = Args.consumeValue("--source-file").value_or("");
  Req.Platform = Args.consumeValue("--platform").value_or(Req.Platform);
  Req.Strategy = Args.consumeValue("--strategy").value_or(Req.Strategy);
  Req.Pipeline = Args.consumeValue("--pipeline").value_or("");
  Req.Budget = Args.consumeUnsigned("--budget").value_or(Req.Budget);
  if (std::optional<std::string> D = Args.consumeValue("--deadline"))
    Req.DeadlineSeconds = std::strtod(D->c_str(), nullptr);
  Req.WantDigest = Args.consumeFlag("--digest");
  Req.Id = Args.consumeValue("--id").value_or("");
  unsigned Repeat = Args.consumeUnsigned("--repeat").value_or(1);

  const int Modes = (Ping ? 1 : 0) + (Shutdown ? 1 : 0) + (Stdin ? 1 : 0) +
                    (!Req.Kernel.empty() || !SourceFile.empty() ? 1 : 0);
  if (SocketPath.empty() || Modes != 1 || !Args.empty())
    return usage(argv[0]);

  if (!SourceFile.empty()) {
    std::ifstream In(SourceFile);
    if (!In) {
      std::fprintf(stderr, "defacto_client: cannot read %s\n",
                   SourceFile.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Req.Source = SS.str();
  }

  Expected<UnixConnection> Conn = UnixConnection::connectTo(SocketPath);
  if (!Conn) {
    std::fprintf(stderr, "defacto_client: cannot connect to %s: %s\n",
                 SocketPath.c_str(), Conn.status().message().c_str());
    return 1;
  }

  if (Ping || Shutdown) {
    ServeRequest R;
    R.Cmd = Ping ? "ping" : "shutdown";
    R.Id = Req.Id;
    return roundTrip(*Conn, R.toJson(), Expect);
  }

  if (Stdin) {
    std::string Line;
    while (std::getline(std::cin, Line)) {
      if (Line.empty())
        continue;
      if (int RC = roundTrip(*Conn, Line, Expect))
        return RC;
    }
    return 0;
  }

  for (unsigned I = 0; I != Repeat; ++I)
    if (int RC = roundTrip(*Conn, Req.toJson(), Expect))
      return RC;
  return 0;
}
