#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the DSE daemon, as CI runs it.
#
# Starts defacto_served with live metrics, fires 50 mixed requests from
# defacto_client over one connection — plain explores across kernels,
# strategies, and platforms, warm repeats, one ping, one request with an
# already-lapsed deadline, one with an unknown platform — then asserts
# the reply-status ledger balances, the OpenMetrics exposition scrapes
# clean (openmetrics_check), and the daemon shuts down with exit 0.
#
# usage: serve_smoke.sh <defacto_served> <defacto_client> <openmetrics_check>
set -u

SERVED=${1:?usage: serve_smoke.sh <defacto_served> <defacto_client> <openmetrics_check>}
CLIENT=${2:?usage: serve_smoke.sh <defacto_served> <defacto_client> <openmetrics_check>}
OMCHECK=${3:?usage: serve_smoke.sh <defacto_served> <defacto_client> <openmetrics_check>}
WORK=$(mktemp -d)
SOCK="$WORK/dse.sock"
PROM="$WORK/metrics.prom"
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

"$SERVED" --socket="$SOCK" --threads=2 --metrics-prom="$PROM" \
  --metrics-interval=0.1 2>"$WORK/served.log" &
DAEMON=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK" >&2; cat "$WORK/served.log" >&2; exit 1; }

# The 50-request mix: 47 explores cycling kernel x strategy x platform
# (with warm repeats by construction), 1 ping, 1 past-deadline, 1
# unknown-platform.
{
  KERNELS=(FIR MM PAT JAC SOBEL)
  STRATEGIES=(guided random hillclimb)
  PLATFORMS=(wildstar-pipelined wildstar-nonpipelined)
  for I in $(seq 0 46); do
    K=${KERNELS[$((I % 5))]}
    S=${STRATEGIES[$((I % 3))]}
    P=${PLATFORMS[$((I % 2))]}
    echo "{\"id\":\"r$I\",\"kernel\":\"$K\",\"strategy\":\"$S\",\"platform\":\"$P\",\"budget\":25}"
  done
  echo '{"id":"ping","cmd":"ping"}'
  # One nanosecond of deadline: lapsed before the batch worker can wake.
  echo '{"id":"doomed","kernel":"FIR","deadline_s":0.000000001}'
  echo '{"id":"lost","kernel":"FIR","platform":"atlantis"}'
} >"$WORK/requests.jsonl"

"$CLIENT" --socket="$SOCK" --stdin <"$WORK/requests.jsonl" >"$WORK/replies.jsonl"
if [ $? -ne 0 ]; then
  echo "FAIL: client transport error" >&2
  cat "$WORK/served.log" >&2
  exit 1
fi

count_status() { grep -c "\"status\":\"$1\"" "$WORK/replies.jsonl"; }

FAIL=0
TOTAL=$(wc -l <"$WORK/replies.jsonl")
OK=$(count_status ok)
DEGRADED=$(count_status degraded)
PONG=$(count_status pong)
DEADLINE=$(count_status deadline)
ERROR=$(count_status error)
[ "$TOTAL" -eq 50 ] || { echo "FAIL: expected 50 replies, got $TOTAL" >&2; FAIL=1; }
[ $((OK + DEGRADED)) -eq 47 ] || { echo "FAIL: expected 47 ok/degraded, got $((OK + DEGRADED))" >&2; FAIL=1; }
[ "$PONG" -eq 1 ] || { echo "FAIL: expected 1 pong, got $PONG" >&2; FAIL=1; }
[ "$DEADLINE" -eq 1 ] || { echo "FAIL: expected 1 deadline, got $DEADLINE" >&2; FAIL=1; }
[ "$ERROR" -eq 1 ] || { echo "FAIL: expected 1 error, got $ERROR" >&2; FAIL=1; }
grep -q '"id":"doomed","status":"deadline"\|"status":"deadline","id":"doomed"' "$WORK/replies.jsonl" ||
  { echo "FAIL: the past-deadline request did not answer deadline" >&2; FAIL=1; }
grep -q "unknown platform 'atlantis'" "$WORK/replies.jsonl" ||
  { echo "FAIL: the unknown-platform request did not name its platform" >&2; FAIL=1; }
if [ $FAIL -ne 0 ]; then
  echo "--- replies ---" >&2
  cat "$WORK/replies.jsonl" >&2
  exit 1
fi

# The live exposition must exist and scrape clean.
sleep 0.3 # one sampling interval, so serve gauges reflect the burst
if ! [ -s "$PROM" ]; then
  echo "FAIL: no OpenMetrics exposition at $PROM" >&2
  exit 1
fi
if ! "$OMCHECK" "$PROM" >"$WORK/omcheck.out" 2>&1; then
  echo "FAIL: openmetrics_check rejected the exposition" >&2
  cat "$WORK/omcheck.out" >&2
  exit 1
fi
grep -q 'serve_queue_depth' "$PROM" ||
  { echo "FAIL: exposition lacks the serve gauges" >&2; exit 1; }

"$CLIENT" --socket="$SOCK" --shutdown --expect=bye >/dev/null ||
  { echo "FAIL: shutdown request failed" >&2; exit 1; }
wait "$DAEMON"
STATUS=$?
if [ $STATUS -ne 0 ]; then
  echo "FAIL: daemon exited $STATUS" >&2
  cat "$WORK/served.log" >&2
  exit 1
fi

echo "serve smoke: 50 requests ($OK ok, $DEGRADED degraded, 1 pong, 1 deadline, 1 error), clean scrape, clean shutdown"
