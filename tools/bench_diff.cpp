//===- bench_diff.cpp - Compare two BENCH_eval.json reports ---------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Compares two perf_eval_fastpath reports (BENCH_eval.json) sweep by
/// sweep: the baseline (usually the committed file) against a fresh run.
/// Sweeps are matched on (mode, threads); the table shows evaluations
/// per second and best wall time side by side with the percentage
/// change. Fast-path speedups and the latency percentile section are
/// compared when both reports carry them — either side may predate a
/// schema addition, so missing sections are skipped, not errors.
///
///   bench_diff BASELINE.json CURRENT.json [--threshold-pct=N]
///              [--fail-on-regression]
///
///   --threshold-pct=N       flag evals/sec drops beyond N% (default 10)
///   --fail-on-regression    exit 1 when any sweep regresses beyond the
///                           threshold (default: warn on stderr, exit 0,
///                           so CI can run the diff as a warn-only step
///                           on noisy shared runners)
///
/// Exits 0 on a clean comparison (or warn-only regressions), 1 on
/// unreadable/unparsable input or gated regressions, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "defacto/Support/CommandLine.h"
#include "defacto/Support/Json.h"
#include "defacto/Support/Table.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace defacto;

namespace {

bool readJsonFile(const std::string &Path, JsonValue &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", Path.c_str());
    return false;
  }
  std::ostringstream OS;
  OS << In.rdbuf();
  Expected<JsonValue> Parsed = parseJson(OS.str());
  if (!Parsed) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", Path.c_str(),
                 Parsed.status().message().c_str());
    return false;
  }
  Out = std::move(*Parsed);
  return true;
}

const JsonValue *findSweep(const JsonValue &Report, const std::string &Mode,
                           uint64_t Threads) {
  const JsonValue *Sweeps = Report.find("sweeps");
  if (!Sweeps || !Sweeps->isArray())
    return nullptr;
  for (const JsonValue &S : Sweeps->Elements)
    if (S.str("mode") == Mode && S.uint("threads") == Threads)
      return &S;
  return nullptr;
}

std::string pct(double Base, double Cur) {
  if (Base <= 0)
    return "-";
  double Delta = 100.0 * (Cur - Base) / Base;
  return (Delta >= 0 ? "+" : "") + formatDouble(Delta, 1) + "%";
}

} // namespace

int main(int argc, char **argv) {
  cl::ArgList Args(argc, argv);
  bool FailOnRegression = Args.consumeFlag("--fail-on-regression");
  unsigned ThresholdPct = Args.consumeUnsigned("--threshold-pct").value_or(10);
  if (Args.rest().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--threshold-pct=N] [--fail-on-regression]\n");
    return 2;
  }
  const std::string BasePath = Args.rest()[0], CurPath = Args.rest()[1];
  JsonValue Base, Cur;
  if (!readJsonFile(BasePath, Base) || !readJsonFile(CurPath, Cur))
    return 1;

  std::printf("bench_diff: %s (baseline, quick=%s) vs %s (current, "
              "quick=%s), kernel %s\n\n",
              BasePath.c_str(), Base.boolean("quick") ? "true" : "false",
              CurPath.c_str(), Cur.boolean("quick") ? "true" : "false",
              Cur.str("kernel", "?").c_str());

  //===------------------------------------------------------------===//
  // Per-sweep throughput, matched on (mode, threads) from the current
  // report so a baseline with extra sweeps still compares cleanly.
  //===------------------------------------------------------------===//
  unsigned Regressions = 0;
  std::vector<std::string> RegressionNotes;
  Table Sweeps({"mode", "threads", "base evals/s", "cur evals/s", "delta",
                "base wall_ms", "cur wall_ms"});
  const JsonValue *CurSweeps = Cur.find("sweeps");
  if (CurSweeps && CurSweeps->isArray()) {
    for (const JsonValue &S : CurSweeps->Elements) {
      const std::string Mode = S.str("mode");
      const uint64_t Threads = S.uint("threads");
      const JsonValue *B = findSweep(Base, Mode, Threads);
      double CurEps = S.num("evals_per_sec");
      double BaseEps = B ? B->num("evals_per_sec") : 0;
      Sweeps.addRow({Mode, std::to_string(Threads),
                     B ? formatDouble(BaseEps, 1) : "-",
                     formatDouble(CurEps, 1), B ? pct(BaseEps, CurEps) : "-",
                     B ? formatDouble(1e3 * B->num("best_wall_seconds"), 2)
                       : "-",
                     formatDouble(1e3 * S.num("best_wall_seconds"), 2)});
      if (B && BaseEps > 0 &&
          CurEps < BaseEps * (1.0 - ThresholdPct / 100.0)) {
        ++Regressions;
        RegressionNotes.push_back(
            Mode + " @" + std::to_string(Threads) + " threads: " +
            formatDouble(BaseEps, 1) + " -> " + formatDouble(CurEps, 1) +
            " evals/s (" + pct(BaseEps, CurEps) + ")");
      }
    }
  }
  std::printf("%s\n", Sweeps.toString(2).c_str());

  //===------------------------------------------------------------===//
  // Fast-path speedups (informational; single-thread ratios).
  //===------------------------------------------------------------===//
  const JsonValue *BaseFp = Base.find("fastpath");
  const JsonValue *CurFp = Cur.find("fastpath");
  if (BaseFp && CurFp) {
    Table Fp({"speedup vs off", "baseline", "current"});
    Fp.addRow({"on-cold", formatDouble(BaseFp->num("speedup_cold"), 2) + "x",
               formatDouble(CurFp->num("speedup_cold"), 2) + "x"});
    Fp.addRow({"on (steady)",
               formatDouble(BaseFp->num("speedup_steady"), 2) + "x",
               formatDouble(CurFp->num("speedup_steady"), 2) + "x"});
    std::printf("%s\n", Fp.toString(2).c_str());
  }

  //===------------------------------------------------------------===//
  // Evaluation latency percentiles, when both reports carry the
  // section (added after the first committed baselines).
  //===------------------------------------------------------------===//
  const JsonValue *BaseLat = Base.find("latency_percentiles");
  const JsonValue *CurLat = Cur.find("latency_percentiles");
  if (BaseLat && CurLat) {
    Table Lat({"mode", "p50_us (base/cur)", "p95_us (base/cur)",
               "p99_us (base/cur)"});
    for (const char *Mode : {"off", "on"}) {
      const JsonValue *B = BaseLat->find(Mode);
      const JsonValue *C = CurLat->find(Mode);
      if (!B || !C)
        continue;
      auto Cell = [&](const char *Key) {
        return formatDouble(B->num(Key), 0) + " / " +
               formatDouble(C->num(Key), 0);
      };
      Lat.addRow({Mode, Cell("p50_us"), Cell("p95_us"), Cell("p99_us")});
    }
    if (Lat.numRows() > 0)
      std::printf("%s\n", Lat.toString(2).c_str());
  } else if (CurLat && !BaseLat) {
    std::printf("  (baseline has no latency_percentiles section; "
                "skipping that comparison)\n\n");
  }

  if (Regressions > 0) {
    for (const std::string &Note : RegressionNotes)
      std::fprintf(stderr, "bench_diff: %s: regression beyond %u%%: %s\n",
                   FailOnRegression ? "error" : "warning", ThresholdPct,
                   Note.c_str());
    if (FailOnRegression)
      return 1;
  } else {
    std::printf("no evals/sec regression beyond %u%%\n", ThresholdPct);
  }
  return 0;
}
