//===- interchange_test.cpp - Loop interchange tests ----------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/Interchange.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/Tiling.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

Kernel parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto K = parseKernel(Src, "t", Diags);
  EXPECT_TRUE(K.has_value()) << Diags.toString();
  return std::move(*K);
}

} // namespace

TEST(Interchange, SwapsHeaders) {
  Kernel FIR = buildKernel("FIR");
  std::vector<ForStmt *> Nest = perfectNest(FIR.topLoop());
  std::string OuterName = Nest[0]->indexName();
  std::string InnerName = Nest[1]->indexName();
  ASSERT_TRUE(interchangeLoops(FIR, 0, 1));
  Nest = perfectNest(FIR.topLoop());
  EXPECT_EQ(Nest[0]->indexName(), InnerName);
  EXPECT_EQ(Nest[1]->indexName(), OuterName);
  EXPECT_TRUE(isKernelValid(FIR));
}

TEST(Interchange, PreservesSemanticsOnAllKernels) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    auto Reference = simulate(K, 17);
    if (!canInterchange(K, 0, 1))
      continue;
    ASSERT_TRUE(interchangeLoops(K, 0, 1)) << Spec.Name;
    EXPECT_TRUE(isKernelValid(K)) << Spec.Name;
    EXPECT_EQ(simulate(K, 17), Reference) << Spec.Name;
  }
}

TEST(Interchange, RejectsIllegalSwap) {
  // A[i][j] = A[i-1][j+1]: distance (1, -1). Interchanged it becomes
  // (-1, 1): lexicographically negative, so the swap must be rejected.
  Kernel K = parseOrDie("int A[18][18];\n"
                        "for (i = 1; i < 17; i++)\n"
                        "  for (j = 1; j < 17; j++)\n"
                        "    A[i][j] = A[i - 1][j + 1] + 1;\n");
  EXPECT_FALSE(canInterchange(K, 0, 1));
  auto Reference = simulate(K, 2);
  EXPECT_FALSE(interchangeLoops(K, 0, 1));
  EXPECT_EQ(simulate(K, 2), Reference); // Untouched.
}

TEST(Interchange, AllowsLegalSkewedDependence) {
  // Distance (1, 1) stays lexicographically positive either way.
  Kernel K = parseOrDie("int A[18][18];\n"
                        "for (i = 1; i < 17; i++)\n"
                        "  for (j = 1; j < 17; j++)\n"
                        "    A[i][j] = A[i - 1][j - 1] + 1;\n");
  EXPECT_TRUE(canInterchange(K, 0, 1));
  auto Reference = simulate(K, 2);
  ASSERT_TRUE(interchangeLoops(K, 0, 1));
  EXPECT_EQ(simulate(K, 2), Reference);
}

TEST(Interchange, RejectsBadPositions) {
  Kernel FIR = buildKernel("FIR");
  EXPECT_FALSE(interchangeLoops(FIR, 0, 0));
  EXPECT_FALSE(interchangeLoops(FIR, 0, 5));
  EXPECT_FALSE(interchangeLoops(FIR, 7, 8));
}

TEST(Interchange, ThreeDeepMiddleSwap) {
  Kernel MM = buildKernel("MM");
  auto Reference = simulate(MM, 44);
  ASSERT_TRUE(interchangeLoops(MM, 1, 2)); // j <-> k.
  EXPECT_TRUE(isKernelValid(MM));
  EXPECT_EQ(simulate(MM, 44), Reference);
}

TEST(Interchange, TilingPlusInterchangeShrinksChains) {
  // The §5.4 recipe in full: strip-mine FIR's i loop to a tile of 8 and
  // hoist the tile loop above j. The C chain then spans one tile (8
  // registers) instead of the whole sweep (32).
  Kernel FullReuse = buildKernel("FIR");
  normalizeLoops(FullReuse);
  ScalarReplacementStats FullStats = scalarReplace(FullReuse);

  Kernel Tiled = buildKernel("FIR");
  auto Reference = simulate(Tiled, 64);
  normalizeLoops(Tiled);
  int InnerId = perfectNest(Tiled.topLoop())[1]->loopId();
  ASSERT_TRUE(stripMine(Tiled, InnerId, 8));
  // Nest is now (j, i_tile, i_strip); hoist the tile loop outward.
  ASSERT_TRUE(interchangeLoops(Tiled, 0, 1));
  ScalarReplacementStats TiledStats = scalarReplace(Tiled);

  EXPECT_LT(TiledStats.RegistersAllocated, FullStats.RegistersAllocated);
  EXPECT_LE(TiledStats.RegistersAllocated, 8u + 4u);
  EXPECT_TRUE(isKernelValid(Tiled));
  EXPECT_EQ(simulate(Tiled, 64), Reference);
}

TEST(Interchange, GoldenPrintedIR) {
  // The exact IR an interchange must produce: the two headers swap
  // wholesale (bounds, index names, loop ids travel with their loops)
  // while the body is untouched.
  Kernel K = parseOrDie("int A[8][12];\n"
                        "for (i = 0; i < 8; i++)\n"
                        "  for (j = 0; j < 12; j++)\n"
                        "    A[i][j] = A[i][j] + 2;\n");
  normalizeLoops(K);
  ASSERT_TRUE(canInterchange(K, 0, 1));
  ASSERT_TRUE(interchangeLoops(K, 0, 1));
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(printKernel(K), "// kernel t\n"
                            "int A[8][12];\n"
                            "for (j = 0; j < 12; j += 1) {\n"
                            "  for (i = 0; i < 8; i += 1) {\n"
                            "    A[i][j] = (A[i][j] + 2);\n"
                            "  }\n"
                            "}\n");
}
