//===- sim_test.cpp - Functional interpreter tests ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

Kernel parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto K = parseKernel(Src, "t", Diags);
  EXPECT_TRUE(K.has_value()) << Diags.toString();
  return std::move(*K);
}

} // namespace

TEST(Sim, DeterministicImages) {
  Kernel K = buildKernel("FIR");
  MemoryImage A(K, 1), B(K, 1), C(K, 2);
  EXPECT_EQ(A.arrayData("S"), B.arrayData("S"));
  EXPECT_NE(A.arrayData("S"), C.arrayData("S"));
  // Different arrays get different streams under one seed.
  EXPECT_NE(A.arrayData("S")[0], A.arrayData("C")[0]);
}

TEST(Sim, ClonesSeeSameImage) {
  Kernel K = buildKernel("JAC");
  Kernel C = K.clone();
  EXPECT_EQ(simulate(K, 7), simulate(C, 7));
}

TEST(Sim, ArithmeticSemantics) {
  Kernel K = parseOrDie(
      "int A[12]; int x;\n"
      "for (i = 0; i < 1; i++) {\n"
      "  x = 7;\n"
      "  A[0] = x + 3;\n"      // 10
      "  A[1] = x - 10;\n"     // -3
      "  A[2] = x * -2;\n"     // -14
      "  A[3] = x / 2;\n"      // 3
      "  A[4] = x % 3;\n"      // 1
      "  A[5] = min(x, 3);\n"  // 3
      "  A[6] = max(x, 9);\n"  // 9
      "  A[7] = abs(0 - x);\n" // 7
      "  A[8] = x == 7;\n"     // 1
      "  A[9] = x < 7;\n"      // 0
      "  A[10] = x >> 1;\n"    // 3
      "  A[11] = (x > 0 ? 5 : 6);\n" // 5
      "}\n");
  auto Out = simulate(K, 0);
  ASSERT_TRUE(Out.hasValue()) << Out.status().toString();
  const std::vector<int64_t> &A = Out->at("A");
  EXPECT_EQ(A[0], 10);
  EXPECT_EQ(A[1], -3);
  EXPECT_EQ(A[2], -14);
  EXPECT_EQ(A[3], 3);
  EXPECT_EQ(A[4], 1);
  EXPECT_EQ(A[5], 3);
  EXPECT_EQ(A[6], 9);
  EXPECT_EQ(A[7], 7);
  EXPECT_EQ(A[8], 1);
  EXPECT_EQ(A[9], 0);
  EXPECT_EQ(A[10], 3);
  EXPECT_EQ(A[11], 5);
}

TEST(Sim, DivisionByZeroYieldsZero) {
  Kernel K = parseOrDie("int A[2]; int z;\n"
                        "for (i = 0; i < 1; i++) {\n"
                        "  z = 0;\n"
                        "  A[0] = 5 / z;\n"
                        "  A[1] = 5 % z;\n"
                        "}\n");
  auto Out = simulate(K, 0);
  ASSERT_TRUE(Out.hasValue());
  EXPECT_EQ(Out->at("A")[0], 0);
  EXPECT_EQ(Out->at("A")[1], 0);
}

TEST(Sim, StoreTruncatesToElementType) {
  Kernel K = parseOrDie("char A[1];\n"
                        "for (i = 0; i < 1; i++) A[0] = 200;\n");
  auto Out = simulate(K, 0);
  ASSERT_TRUE(Out.hasValue());
  EXPECT_EQ(Out->at("A")[0], 200 - 256); // Wraps to -56.
}

TEST(Sim, RotateSemantics) {
  Kernel K("rot");
  ScalarDecl *R0 = K.makeScalar("r0", ScalarType::Int32);
  ScalarDecl *R1 = K.makeScalar("r1", ScalarType::Int32);
  ScalarDecl *R2 = K.makeScalar("r2", ScalarType::Int32);
  MemoryImage Mem(K, 0);
  Mem.setScalar(R0, 10);
  Mem.setScalar(R1, 20);
  Mem.setScalar(R2, 30);
  K.body().push_back(std::make_unique<RotateStmt>(
      std::vector<const ScalarDecl *>{R0, R1, R2}));
  SimStats Stats = *runKernel(K, Mem);
  // Rotate left: (r0, r1, r2) <- (r1, r2, r0).
  EXPECT_EQ(Mem.scalar(R0), 20);
  EXPECT_EQ(Mem.scalar(R1), 30);
  EXPECT_EQ(Mem.scalar(R2), 10);
  EXPECT_EQ(Stats.RotatesExecuted, 1u);
}

TEST(Sim, RenamedArraysAliasOrigin) {
  Kernel K("alias");
  ArrayDecl *A = K.makeArray("A", ScalarType::Int32, {8});
  ArrayDecl *Even = K.makeArray("A0", ScalarType::Int32, {4});
  Even->setRenaming(A, 0, 0, 2);
  ArrayDecl *Odd = K.makeArray("A1", ScalarType::Int32, {4});
  Odd->setRenaming(A, 0, 1, 2);

  MemoryImage Mem(K, 0);
  // Write through the banks, read back through the origin.
  EXPECT_TRUE(Mem.store(Even, {1}, 42).isOk()); // A[2]
  EXPECT_TRUE(Mem.store(Odd, {3}, 43).isOk());  // A[7]
  EXPECT_EQ(Mem.load(A, {2}), 42);
  EXPECT_EQ(Mem.load(A, {7}), 43);
  EXPECT_EQ(Mem.load(Even, {1}), 42);
  // Renamed arrays own no storage: only the origin appears by name.
  EXPECT_EQ(Mem.arrayNames(), (std::vector<std::string>{"A"}));
}

TEST(Sim, StatsCountAccesses) {
  Kernel K = parseOrDie("int A[4]; int s;\n"
                        "for (i = 0; i < 4; i++) s = s + A[i];\n");
  MemoryImage Mem(K, 0);
  SimStats Stats = *runKernel(K, Mem);
  EXPECT_EQ(Stats.MemoryReads, 4u);
  EXPECT_EQ(Stats.MemoryWrites, 0u);
  EXPECT_EQ(Stats.AssignsExecuted, 4u);
}

TEST(Sim, ConditionalExecution) {
  Kernel K = parseOrDie("int A[8];\n"
                        "for (i = 0; i < 8; i++) {\n"
                        "  if (i < 4) A[i] = 1; else A[i] = 2;\n"
                        "}\n");
  auto Out = simulate(K, 0);
  ASSERT_TRUE(Out.hasValue());
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(Out->at("A")[I], I < 4 ? 1 : 2);
}

TEST(Sim, FirMatchesReferenceConvolution) {
  Kernel K = buildKernel("FIR");
  MemoryImage Mem(K, 99);
  std::vector<int64_t> S = Mem.arrayData("S");
  std::vector<int64_t> C = Mem.arrayData("C");
  std::vector<int64_t> D = Mem.arrayData("D");
  ASSERT_TRUE(runKernel(K, Mem).hasValue());
  for (int J = 0; J != 64; ++J) {
    int64_t Acc = D[J];
    for (int I = 0; I != 32; ++I)
      Acc = truncateToType(Acc + S[I + J] * C[I], ScalarType::Int32);
    EXPECT_EQ(Mem.arrayData("D")[J], Acc) << "at j=" << J;
  }
}

TEST(Sim, OutOfBoundsReadIsReportedNotFatal) {
  // Bounds violations on user-supplied kernels are recoverable errors.
  Kernel K = parseOrDie("int A[4]; int s;\n"
                        "for (i = 0; i < 8; i++) s = s + A[i];\n");
  auto Out = simulate(K, 0);
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.status().code(), ErrorCode::OutOfBounds);
  EXPECT_NE(Out.status().message().find("A"), std::string::npos);
}

TEST(Sim, OutOfBoundsWriteIsReportedNotFatal) {
  Kernel K = parseOrDie("int A[4];\n"
                        "for (i = 0; i < 8; i++) A[2 * i] = 1;\n");
  auto Out = simulate(K, 0);
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.status().code(), ErrorCode::OutOfBounds);
}

TEST(Sim, DirectLoadStoreReportOutOfBounds) {
  Kernel K("oob");
  ArrayDecl *A = K.makeArray("A", ScalarType::Int32, {4});
  MemoryImage Mem(K, 0);
  EXPECT_FALSE(Mem.load(A, {4}).hasValue());
  EXPECT_EQ(Mem.load(A, {-1}).status().code(), ErrorCode::OutOfBounds);
  EXPECT_EQ(Mem.store(A, {4}, 0).code(), ErrorCode::OutOfBounds);
  // Rank mismatch is out of the supported domain, too.
  EXPECT_FALSE(Mem.load(A, {0, 0}).hasValue());
  EXPECT_TRUE(Mem.store(A, {3}, 9).isOk());
  EXPECT_EQ(Mem.load(A, {3}), 9);
}

TEST(Sim, StepLimitStopsRunawayKernels) {
  Kernel K = parseOrDie("int A[64]; int s;\n"
                        "for (i = 0; i < 64; i++)\n"
                        "  for (j = 0; j < 64; j++) s = s + A[j];\n");
  InterpreterLimits Tight;
  Tight.MaxSteps = 100; // Far below the ~12k statements executed.
  MemoryImage Mem(K, 0);
  auto Stats = runKernel(K, Mem, Tight);
  ASSERT_FALSE(Stats.hasValue());
  EXPECT_EQ(Stats.status().code(), ErrorCode::StepLimitExceeded);

  // The default budget is ample: the same kernel completes.
  MemoryImage Fresh(K, 0);
  EXPECT_TRUE(runKernel(K, Fresh).hasValue());
}

TEST(Sim, MatrixMultiplyMatchesReference) {
  Kernel K = buildKernel("MM");
  MemoryImage Mem(K, 5);
  std::vector<int64_t> A = Mem.arrayData("A");
  std::vector<int64_t> B = Mem.arrayData("B");
  std::vector<int64_t> Z = Mem.arrayData("Z");
  ASSERT_TRUE(runKernel(K, Mem).hasValue());
  for (int I = 0; I != 32; ++I)
    for (int J = 0; J != 4; ++J) {
      int64_t Acc = Z[I * 4 + J];
      for (int L = 0; L != 16; ++L)
        Acc = truncateToType(Acc + A[I * 16 + L] * B[L * 4 + J],
                             ScalarType::Int32);
      EXPECT_EQ(Mem.arrayData("Z")[I * 4 + J], Acc);
    }
}
