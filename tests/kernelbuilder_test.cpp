//===- kernelbuilder_test.cpp - Fluent builder tests ----------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/IR/KernelBuilder.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

/// FIR built through the builder, element for element the same program
/// as the parsed kernel.
Kernel builtFir() {
  KernelBuilder B("FIR");
  ArrayDecl *S = B.array("S", ScalarType::Int32, {96});
  ArrayDecl *C = B.array("C", ScalarType::Int32, {32});
  ArrayDecl *D = B.array("D", ScalarType::Int32, {64});
  auto J = B.beginLoop("j", 0, 64);
  auto I = B.beginLoop("i", 0, 32);
  B.assign(B.access(D, {B.idx(J)}),
           B.add(B.access(D, {B.idx(J)}),
                 B.mul(B.access(S, {B.idx(I).add(B.idx(J))}),
                       B.access(C, {B.idx(I)}))));
  B.endLoop();
  B.endLoop();
  return std::move(B).finish().takeValue();
}

} // namespace

TEST(KernelBuilder, MatchesParsedFir) {
  Kernel Built = builtFir();
  Kernel Parsed = buildKernel("FIR");
  EXPECT_TRUE(isKernelValid(Built));
  // Identical text rendering (same names, structure, subscripts).
  EXPECT_EQ(printKernel(Built), printKernel(Parsed));
  // Identical semantics.
  EXPECT_EQ(simulate(Built, 9), simulate(Parsed, 9));
}

TEST(KernelBuilder, ConditionalsAndElse) {
  KernelBuilder B("cond");
  ArrayDecl *A = B.array("A", ScalarType::Int32, {8});
  ScalarDecl *S = B.scalar("s", ScalarType::Int32);
  auto I = B.beginLoop("i", 0, 8);
  B.beginIf(B.binary(BinaryOp::CmpLt, B.indexExpr(I), B.lit(4)));
  B.assign(B.access(A, {B.idx(I)}), B.lit(1));
  B.beginElse();
  B.assign(B.access(A, {B.idx(I)}), B.read(S));
  B.endIf();
  B.endLoop();
  Kernel K = std::move(B).finish().takeValue();

  EXPECT_TRUE(isKernelValid(K));
  auto Out = *simulate(K, 0);
  for (int Idx = 0; Idx != 8; ++Idx)
    EXPECT_EQ(Out.at("A")[Idx], Idx < 4 ? 1 : 0);
}

TEST(KernelBuilder, RotateAndSelect) {
  KernelBuilder B("rotsel");
  ScalarDecl *R0 = B.scalar("r0", ScalarType::Int32);
  ScalarDecl *R1 = B.scalar("r1", ScalarType::Int32);
  ArrayDecl *A = B.array("A", ScalarType::Int32, {4});
  auto I = B.beginLoop("i", 0, 4);
  B.assign(B.read(R0),
           B.select(B.binary(BinaryOp::CmpEq, B.indexExpr(I), B.lit(0)),
                    B.lit(7), B.read(R1)));
  B.assign(B.access(A, {B.idx(I)}), B.read(R0));
  B.rotate({R0, R1});
  B.endLoop();
  Kernel K = std::move(B).finish().takeValue();
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(countStmts(K.body()).Rotate, 1u);
  auto Out = *simulate(K, 0);
  EXPECT_EQ(Out.at("A")[0], 7);
}

TEST(KernelBuilder, StridedLoops) {
  KernelBuilder B("stride");
  ArrayDecl *A = B.array("A", ScalarType::Int32, {16});
  auto I = B.beginLoop("i", 2, 16, 3); // i = 2, 5, 8, 11, 14
  B.assign(B.access(A, {B.idx(I)}), B.lit(5));
  B.endLoop();
  Kernel K = std::move(B).finish().takeValue();
  EXPECT_EQ(K.topLoop()->tripCount(), 5);
  auto Out = *simulate(K, 1);
  EXPECT_EQ(Out.at("A")[2], 5);
  EXPECT_EQ(Out.at("A")[14], 5);
}
