//===- valuerange_test.cpp - Range/width inference tests ------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/ValueRange.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/HLS/Estimator.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Transforms/Pipeline.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

Kernel parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto K = parseKernel(Src, "t", Diags);
  EXPECT_TRUE(K.has_value()) << Diags.toString();
  return std::move(*K);
}

} // namespace

TEST(ValueRange, BitsNeeded) {
  EXPECT_EQ((ValueRange{0, 0}).bitsNeeded(), 1u);
  EXPECT_EQ((ValueRange{0, 1}).bitsNeeded(), 2u);
  EXPECT_EQ((ValueRange{-1, 0}).bitsNeeded(), 1u);
  EXPECT_EQ((ValueRange{-128, 127}).bitsNeeded(), 8u);
  EXPECT_EQ((ValueRange{-129, 127}).bitsNeeded(), 9u);
  EXPECT_EQ((ValueRange{0, 255}).bitsNeeded(), 9u); // Signed carrier.
  EXPECT_EQ((ValueRange{-512, 510}).bitsNeeded(), 10u);
  EXPECT_EQ(ValueRange::ofType(ScalarType::Int32).bitsNeeded(), 32u);
}

TEST(ValueRange, IntervalArithmetic) {
  ValueRange A{-2, 3}, B{4, 5};
  EXPECT_EQ(A.add(B), (ValueRange{2, 8}));
  EXPECT_EQ(A.sub(B), (ValueRange{-7, -1}));
  EXPECT_EQ(A.mul(B), (ValueRange{-10, 15}));
  EXPECT_EQ(A.negate(), (ValueRange{-3, 2}));
  EXPECT_EQ(A.abs(), (ValueRange{0, 3}));
  EXPECT_EQ((ValueRange{-5, -2}).abs(), (ValueRange{2, 5}));
  EXPECT_EQ(A.unionWith(B), (ValueRange{-2, 5}));
}

TEST(ValueRange, PixelSumNeedsTenBits) {
  // Four int8 pixels summed: range [-512, 508] -> 10 bits, not 32.
  Kernel K = parseOrDie(
      "char A[34][34]; short B[34][34];\n"
      "for (i = 1; i < 33; i++)\n"
      "  for (j = 1; j < 33; j++)\n"
      "    B[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];\n");
  ValueRangeAnalysis VRA(K);

  // Find the outermost addition (the assignment's value).
  const Expr *Sum = nullptr;
  walkStmts(K.body(), [&](const Stmt *S) {
    if (const auto *Assign = dyn_cast<AssignStmt>(S))
      Sum = Assign->value();
  });
  ASSERT_NE(Sum, nullptr);
  EXPECT_EQ(VRA.widthOf(Sum), 10u);
}

TEST(ValueRange, LoopIndicesUseBounds) {
  Kernel K = parseOrDie("int A[64];\n"
                        "for (i = 0; i < 50; i++) A[i] = i;\n");
  ValueRangeAnalysis VRA(K);
  const Expr *Idx = nullptr;
  walkStmts(K.body(), [&](const Stmt *S) {
    if (const auto *Assign = dyn_cast<AssignStmt>(S))
      Idx = Assign->value();
  });
  ASSERT_NE(Idx, nullptr);
  EXPECT_EQ(VRA.rangeOf(Idx), (ValueRange{0, 49}));
  EXPECT_EQ(VRA.widthOf(Idx), 7u);
}

TEST(ValueRange, ComparisonsAreBoolean) {
  Kernel K = parseOrDie("int A[8]; int s;\n"
                        "for (i = 0; i < 8; i++) s = A[i] > 3;\n");
  ValueRangeAnalysis VRA(K);
  const Expr *Cmp = nullptr;
  walkStmts(K.body(), [&](const Stmt *S) {
    if (const auto *Assign = dyn_cast<AssignStmt>(S))
      Cmp = Assign->value();
  });
  EXPECT_EQ(VRA.rangeOf(Cmp), (ValueRange{0, 1}));
}

TEST(ValueRange, UnknownExpressionsFallBackConservatively) {
  ValueRangeAnalysis VRA(Kernel("empty"));
  IntLitExpr Foreign(5);
  EXPECT_EQ(VRA.widthOf(&Foreign), 32u);
}

TEST(WidthInference, BeatsTheStandardDatapath) {
  // §2.4's argument: narrow-data kernels beat a standard 32-bit
  // datapath. Inferred widths must never exceed the uniform-32 model's
  // area, and for 8/16-bit kernels must shrink it substantially.
  for (const char *Name : {"SOBEL", "JAC", "DILATE", "PAT"}) {
    Kernel K = buildKernel(Name);
    TransformOptions TO;
    TO.Unroll = {2, 2};
    TransformResult R = applyPipeline(K, TO);

    TargetPlatform Uniform = TargetPlatform::wildstarPipelined();
    Uniform.Widths = TargetPlatform::WidthModel::Uniform32;
    TargetPlatform Inferred = TargetPlatform::wildstarPipelined();
    Inferred.Widths = TargetPlatform::WidthModel::Inferred;

    SynthesisEstimate EU = estimateDesign(R.K, Uniform);
    SynthesisEstimate EI = estimateDesign(R.K, Inferred);
    EXPECT_LT(EI.Slices, EU.Slices) << Name;
    EXPECT_LE(EI.Cycles, EU.Cycles) << Name;
  }
}

TEST(WidthInference, ModelsCarryGrowthBeyondDeclaredTypes) {
  // Against the declared-type default, inference can legitimately grow
  // the estimate: SOBEL's 8-bit pixel tree really carries 11 bits.
  Kernel K = buildKernel("SOBEL");
  TransformOptions TO;
  TO.Unroll = {2, 2};
  TransformResult R = applyPipeline(K, TO);
  TargetPlatform Declared = TargetPlatform::wildstarPipelined();
  TargetPlatform Inferred = Declared;
  Inferred.Widths = TargetPlatform::WidthModel::Inferred;
  SynthesisEstimate ED = estimateDesign(R.K, Declared);
  SynthesisEstimate EI = estimateDesign(R.K, Inferred);
  EXPECT_GT(EI.Slices, ED.Slices);
}

TEST(WidthInference, CarryGrowthIsModeled) {
  // Width inference can also *widen* an operator the declared-type
  // model undersizes: an int8 + int8 add produces 9 bits.
  Kernel K = parseOrDie("char A[8]; char B[8]; short S[8];\n"
                        "for (i = 0; i < 8; i++) S[i] = A[i] + B[i];\n");
  ValueRangeAnalysis VRA(K);
  const Expr *Sum = nullptr;
  walkStmts(K.body(), [&](const Stmt *S) {
    if (const auto *Assign = dyn_cast<AssignStmt>(S))
      Sum = Assign->value();
  });
  EXPECT_EQ(VRA.widthOf(Sum), 9u);
}
