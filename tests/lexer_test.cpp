//===- lexer_test.cpp - Unit tests for the lexer ---------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

std::vector<Token> lex(const std::string &Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Src) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Src))
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(Lexer, EmptyInput) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  std::vector<Token> Tokens = lex("for if else int char short foo _bar x1");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwFor);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwElse);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwChar);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::KwShort);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[6].Text, "foo");
  EXPECT_EQ(Tokens[7].Text, "_bar");
  EXPECT_EQ(Tokens[8].Text, "x1");
}

TEST(Lexer, IntegerLiterals) {
  std::vector<Token> Tokens = lex("0 42 123456");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456);
}

TEST(Lexer, OperatorsMaximalMunch) {
  EXPECT_EQ(kinds("+ ++ +="),
            (std::vector<TokenKind>{TokenKind::Plus, TokenKind::PlusPlus,
                                    TokenKind::PlusAssign, TokenKind::Eof}));
  EXPECT_EQ(kinds("< << <= > >> >="),
            (std::vector<TokenKind>{TokenKind::Lt, TokenKind::Shl,
                                    TokenKind::Le, TokenKind::Gt,
                                    TokenKind::Shr, TokenKind::Ge,
                                    TokenKind::Eof}));
  EXPECT_EQ(kinds("= == ! != & && | ||"),
            (std::vector<TokenKind>{
                TokenKind::Assign, TokenKind::EqEq, TokenKind::Bang,
                TokenKind::Ne, TokenKind::Amp, TokenKind::AmpAmp,
                TokenKind::Pipe, TokenKind::PipePipe, TokenKind::Eof}));
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kinds("( ) { } [ ] ; , ? : ^ % * / -"),
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,
                TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
                TokenKind::Semi, TokenKind::Comma, TokenKind::Question,
                TokenKind::Colon, TokenKind::Caret, TokenKind::Percent,
                TokenKind::Star, TokenKind::Slash, TokenKind::Minus,
                TokenKind::Eof}));
}

TEST(Lexer, LineComments) {
  std::vector<Token> Tokens = lex("a // comment to end\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
}

TEST(Lexer, BlockComments) {
  std::vector<Token> Tokens = lex("a /* multi\nline */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  Lexer L("a /* never closed", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.toString().find("unterminated"), std::string::npos);
}

TEST(Lexer, Locations) {
  std::vector<Token> Tokens = lex("ab\n  cd");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Lexer, UnknownCharacter) {
  DiagnosticEngine Diags;
  Lexer L("a @ b", Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  bool SawError = false;
  for (const Token &T : Tokens)
    SawError |= T.Kind == TokenKind::Error;
  EXPECT_TRUE(SawError);
}

TEST(Lexer, TokenKindNames) {
  EXPECT_STREQ(tokenKindName(TokenKind::PlusAssign), "'+='");
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(tokenKindName(TokenKind::Eof), "end of input");
}
