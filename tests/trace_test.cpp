//===- trace_test.cpp - Observability primitives and trace invariants -----===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The observability stack's contracts: counters and timers record only
/// while the registry is enabled; the trace recorder's Chrome export is
/// valid JSON; every evaluated design of an exploration appears exactly
/// once as a decision event; and the decision digest — the deterministic
/// payload of the trace — is bit-identical across worker-thread counts.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/ExplorationReport.h"
#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Json.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace defacto;

namespace {

/// Restores the registry enable bit (tests toggle it).
struct StatsEnabledGuard {
  bool Saved = StatRegistry::instance().enabled();
  ~StatsEnabledGuard() { StatRegistry::instance().setEnabled(Saved); }
};

DEFACTO_STATISTIC(TestCounter, "test", "counter", "trace_test scratch");

/// Runs one guided exploration with an enabled private recorder.
std::pair<ExplorationResult, std::shared_ptr<TraceRecorder>>
tracedRun(const std::string &Name, unsigned Threads,
          const TargetPlatform &Platform) {
  ExplorerOptions Opts;
  Opts.Platform = Platform;
  Opts.NumThreads = Threads;
  Opts.Trace = std::make_shared<TraceRecorder>();
  Opts.Trace->setEnabled(true);
  DesignSpaceExplorer Ex(buildKernel(Name), Opts);
  return {Ex.run(), Opts.Trace};
}

} // namespace

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(Stats, CountersAreGatedByTheRegistryEnableBit) {
  StatsEnabledGuard Guard;
  StatRegistry::instance().setEnabled(false);
  uint64_t Before = TestCounter.value();
  ++TestCounter;
  TestCounter.add(41);
  EXPECT_EQ(TestCounter.value(), Before) << "disabled counter moved";

  StatRegistry::instance().setEnabled(true);
  ++TestCounter;
  TestCounter.add(41);
  EXPECT_EQ(TestCounter.value(), Before + 42);
}

TEST(Stats, SnapshotIsSortedAndExportsParse) {
  StatsEnabledGuard Guard;
  StatRegistry::instance().setEnabled(true);
  ++TestCounter;
  std::vector<StatSnapshot> Snap = StatRegistry::instance().snapshot();
  ASSERT_FALSE(Snap.empty());
  EXPECT_TRUE(std::is_sorted(Snap.begin(), Snap.end(),
                             [](const StatSnapshot &A, const StatSnapshot &B) {
                               return std::tie(A.Group, A.Name) <
                                      std::tie(B.Group, B.Name);
                             }));
  std::string Err;
  EXPECT_TRUE(isValidJson(StatRegistry::instance().toJson(), &Err)) << Err;
  EXPECT_NE(StatRegistry::instance().toText().find("test.counter"),
            std::string::npos);
}

TEST(Timer, ScopedTimerRecordsOnlyWhileEnabled) {
  StatsEnabledGuard Guard;
  PhaseTimer &T = TimerGroup::global().timer("test.scope");
  uint64_t Before = T.count();

  StatRegistry::instance().setEnabled(false);
  { DEFACTO_SCOPED_TIMER("test.scope"); }
  EXPECT_EQ(T.count(), Before);

  StatRegistry::instance().setEnabled(true);
  { DEFACTO_SCOPED_TIMER("test.scope"); }
  EXPECT_EQ(T.count(), Before + 1);

  std::string Err;
  EXPECT_TRUE(isValidJson(TimerGroup::global().toJson(), &Err)) << Err;
}

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledRecorderDropsEvents) {
  TraceRecorder R;
  TraceEvent E;
  E.Track = "t";
  E.Category = "c";
  E.Name = "n";
  R.record(E);
  EXPECT_EQ(R.eventCount(), 0u);
  R.setEnabled(true);
  R.record(E);
  EXPECT_EQ(R.eventCount(), 1u);
}

TEST(Trace, ChromeExportIsValidJsonWithTraceEvents) {
  TraceRecorder R;
  R.setEnabled(true);
  for (uint64_t I = 0; I != 3; ++I) {
    TraceEvent E;
    E.Track = "k";
    E.Category = "dse.decision";
    E.Name = "(1, " + std::to_string(I) + ")";
    E.Ordinal = I;
    E.Args.emplace_back("role", "increase");
    E.Args.emplace_back("quote", "needs \"escaping\"\\");
    R.record(E);
  }
  std::string Chrome = R.toChromeTrace();
  std::string Err;
  EXPECT_TRUE(isValidJson(Chrome, &Err)) << Err << "\n" << Chrome;
  EXPECT_NE(Chrome.find("\"traceEvents\""), std::string::npos);

  // JSONL: one object per event, each line parses on its own.
  std::string Lines = R.toJsonLines();
  size_t Count = 0, Pos = 0;
  while (Pos < Lines.size()) {
    size_t End = Lines.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    EXPECT_TRUE(isValidJson(Lines.substr(Pos, End - Pos), &Err)) << Err;
    ++Count;
    Pos = End + 1;
  }
  EXPECT_EQ(Count, R.eventCount());
}

//===----------------------------------------------------------------------===//
// Exploration trace invariants
//===----------------------------------------------------------------------===//

TEST(Trace, EveryEvaluatedDesignAppearsExactlyOnce) {
  for (const KernelSpec &Spec : paperKernels()) {
    SCOPED_TRACE(Spec.Name);
    auto [Result, Recorder] =
        tracedRun(Spec.Name, 1, TargetPlatform::wildstarPipelined());

    // Decision events with a non-baseline role map 1:1 onto Visited.
    std::map<std::string, unsigned> Seen;
    for (const TraceEvent &E : Recorder->sortedEvents()) {
      if (E.Category != "dse.decision")
        continue;
      auto Role = std::find_if(E.Args.begin(), E.Args.end(),
                               [](const auto &KV) {
                                 return KV.first == "role";
                               });
      ASSERT_NE(Role, E.Args.end());
      if (Role->second == "baseline")
        continue;
      ++Seen[E.Name];
    }
    ASSERT_EQ(Seen.size(), Result.Visited.size());
    for (const EvaluatedDesign &D : Result.Visited) {
      auto It = Seen.find(unrollVectorToString(D.U));
      ASSERT_NE(It, Seen.end()) << unrollVectorToString(D.U);
      EXPECT_EQ(It->second, 1u) << unrollVectorToString(D.U)
                                << " appeared more than once";
    }

    std::string Err;
    EXPECT_TRUE(isValidJson(Recorder->toChromeTrace(), &Err)) << Err;
  }
}

TEST(Trace, DecisionDigestIsIdenticalAcrossThreadCounts) {
  for (const KernelSpec &Spec : paperKernels())
    for (bool Pipelined : {true, false}) {
      SCOPED_TRACE(Spec.Name + (Pipelined ? "/pipelined" : "/nonpipelined"));
      TargetPlatform P = Pipelined ? TargetPlatform::wildstarPipelined()
                                   : TargetPlatform::wildstarNonPipelined();
      auto [SeqR, SeqT] = tracedRun(Spec.Name, 1, P);
      auto [Par4R, Par4T] = tracedRun(Spec.Name, 4, P);
      auto [Par8R, Par8T] = tracedRun(Spec.Name, 8, P);
      EXPECT_EQ(SeqT->decisionDigest(), Par4T->decisionDigest());
      EXPECT_EQ(SeqT->decisionDigest(), Par8T->decisionDigest());
      EXPECT_EQ(SeqR.Selected, Par8R.Selected);
    }
}

TEST(Trace, BatchJobsLandOnTheirOwnTracks) {
  BatchOptions Batch;
  Batch.NumThreads = 2;
  Batch.Trace = std::make_shared<TraceRecorder>();
  Batch.Trace->setEnabled(true);
  BatchExplorer Engine(Batch);
  Engine.addJob(BatchJob("alpha", buildKernel("FIR"), ExplorerOptions{}));
  Engine.addJob(BatchJob("beta", buildKernel("MM"), ExplorerOptions{}));
  Engine.runAll();

  bool SawAlpha = false, SawBeta = false;
  for (const TraceEvent &E : Batch.Trace->sortedEvents()) {
    SawAlpha |= E.Track == "alpha";
    SawBeta |= E.Track == "beta";
  }
  EXPECT_TRUE(SawAlpha);
  EXPECT_TRUE(SawBeta);
}

//===----------------------------------------------------------------------===//
// Cache stats snapshot
//===----------------------------------------------------------------------===//

TEST(Trace, CacheStatsSnapshotIsInternallyConsistent) {
  auto Cache = std::make_shared<EstimateCache>();
  BatchOptions Batch;
  Batch.NumThreads = 4;
  Batch.Cache = Cache;
  BatchExplorer Engine(Batch);
  for (int I = 0; I != 3; ++I)
    for (const KernelSpec &Spec : paperKernels())
      Engine.addJob(buildKernel(Spec.Name), ExplorerOptions{});
  Engine.runAll();

  EstimateCache::Stats S = Cache->stats();
  EXPECT_EQ(S.Lookups, S.Hits + S.Misses + S.Waits);
  EXPECT_LE(S.NegativeHits, S.Hits);
  EXPECT_LE(S.Inserts, S.Misses);
  EXPECT_GT(S.Hits + S.Waits, 0u) << "repeated jobs shared nothing";
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

TEST(Report, ToStringAndExplainSurfaceDegradation) {
  Kernel K = buildKernel("FIR");
  ExplorerOptions Opts;
  unsigned Calls = 0;
  // A backend that permanently fails one mid-walk design degrades the
  // run and leaves a failure-log entry.
  Opts.Estimator = [&Calls](const Kernel &Design,
                            const TargetPlatform &Platform) {
    if (++Calls == 3)
      return Expected<SynthesisEstimate>(
          Status::error(ErrorCode::EstimationFailed, "synthetic crash"));
    return estimateDesignChecked(Design, Platform);
  };
  Opts.MaxRetries = 0;
  ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
  ASSERT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Failures.empty());

  std::string OneLine = R.toString();
  EXPECT_NE(OneLine.find("DEGRADED"), std::string::npos) << OneLine;
  EXPECT_NE(OneLine.find("selected="), std::string::npos);

  std::string Report = renderExplorationReport(R, "fir-degraded");
  EXPECT_NE(Report.find("DEGRADED"), std::string::npos) << Report;
  EXPECT_NE(Report.find("synthetic crash"), std::string::npos) << Report;
  EXPECT_NE(Report.find("Failure log"), std::string::npos) << Report;
}

TEST(Report, HealthyRunExplainsTheStop) {
  ExplorerOptions Opts;
  ExplorationResult R =
      DesignSpaceExplorer(buildKernel("MM"), Opts).run();
  std::string Report = renderExplorationReport(R, "MM");
  EXPECT_NE(Report.find("Selected "), std::string::npos);
  EXPECT_NE(Report.find("Why it stopped:"), std::string::npos);
  EXPECT_NE(Report.find("Psat="), std::string::npos);
  EXPECT_EQ(Report.find("DEGRADED"), std::string::npos) << Report;
  EXPECT_EQ(R.toString().find("DEGRADED"), std::string::npos);
}
