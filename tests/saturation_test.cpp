//===- saturation_test.cpp - Saturation point analysis tests --------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/Saturation.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(Saturation, Fir) {
  Kernel FIR = buildKernel("FIR");
  SaturationInfo Sat = computeSaturation(FIR, 4);
  // Residual steady accesses after scalar replacement: S read, D read,
  // D write (C is chained away).
  EXPECT_EQ(Sat.R, 2u);
  EXPECT_EQ(Sat.W, 1u);
  // Psat = lcm(gcd(2,1), 4) = 4.
  EXPECT_EQ(Sat.Psat, 4);
  ASSERT_EQ(Sat.Trips.size(), 2u);
  EXPECT_EQ(Sat.Trips[0], 64);
  EXPECT_EQ(Sat.Trips[1], 32);
  // Both loops vary residual subscripts (S[i+j], D[j]).
  EXPECT_TRUE(Sat.MemoryVarying[0]);
  EXPECT_TRUE(Sat.MemoryVarying[1]);
}

TEST(Saturation, MmInnerLoopAddsNoMemoryParallelism) {
  Kernel MM = buildKernel("MM");
  SaturationInfo Sat = computeSaturation(MM, 4);
  ASSERT_EQ(Sat.Trips.size(), 3u);
  // Steady accesses are Z[i][j] load/store at the j level; k-varying
  // accesses are all in registers. The paper: "we only consider unroll
  // factors for the two outermost loops".
  EXPECT_TRUE(Sat.MemoryVarying[0]);
  EXPECT_TRUE(Sat.MemoryVarying[1]);
  EXPECT_FALSE(Sat.MemoryVarying[2]);
  EXPECT_EQ(Sat.R, 1u);
  EXPECT_EQ(Sat.W, 1u);
  EXPECT_EQ(Sat.Psat, 4);
}

TEST(Saturation, JacAndSobel) {
  for (const char *Name : {"JAC", "SOBEL"}) {
    Kernel K = buildKernel(Name);
    SaturationInfo Sat = computeSaturation(K, 4);
    EXPECT_GE(Sat.R, 1u) << Name;
    EXPECT_EQ(Sat.W, 1u) << Name;
    EXPECT_EQ(Sat.Psat % 4, 0) << Name;
    EXPECT_TRUE(Sat.MemoryVarying[0]) << Name;
    EXPECT_TRUE(Sat.MemoryVarying[1]) << Name;
  }
}

TEST(Saturation, ScalesWithMemoryCount) {
  Kernel FIR = buildKernel("FIR");
  EXPECT_EQ(computeSaturation(FIR, 2).Psat, 2);
  EXPECT_EQ(computeSaturation(FIR, 8).Psat, 8);
  EXPECT_EQ(computeSaturation(FIR, 1).Psat, 1);
  // Zero memories degenerate to one.
  EXPECT_EQ(computeSaturation(FIR, 0).Psat, 1);
}

TEST(Saturation, PatChainsRemoveInnerReads) {
  Kernel PAT = buildKernel("PAT");
  SaturationInfo Sat = computeSaturation(PAT, 4);
  // Residual: T read (varies i and j), M load/store (varies i).
  EXPECT_EQ(Sat.R, 2u);
  EXPECT_EQ(Sat.W, 1u);
  EXPECT_TRUE(Sat.MemoryVarying[0]);
  EXPECT_TRUE(Sat.MemoryVarying[1]);
}
