//===- designspace_test.cpp - Unroll space lattice tests ------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/DesignSpace.h"
#include "defacto/Core/EstimateCache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>

using namespace defacto;

TEST(UnrollSpace, FullSizeIsProductOfTrips) {
  UnrollSpace S({64, 32});
  EXPECT_EQ(S.fullSize(), 2048u); // The paper's FIR space.
  EXPECT_EQ(S.numLoops(), 2u);
  EXPECT_EQ(S.trip(0), 64);
}

TEST(UnrollSpace, BaseAndMax) {
  UnrollSpace S({8, 4});
  EXPECT_EQ(S.base(), (UnrollVector{1, 1}));
  EXPECT_EQ(S.max(), (UnrollVector{8, 4}));
}

TEST(UnrollSpace, CandidatesAreDivisorVectors) {
  UnrollSpace S({4, 6});
  std::vector<UnrollVector> All = S.allCandidates();
  // Divisors of 4: {1,2,4}; of 6: {1,2,3,6} -> 12 candidates.
  EXPECT_EQ(All.size(), 12u);
  for (const UnrollVector &U : All)
    EXPECT_TRUE(S.isCandidate(U));
  EXPECT_FALSE(S.isCandidate({3, 1}));
  EXPECT_FALSE(S.isCandidate({1, 4}));
  EXPECT_FALSE(S.isCandidate({1}));
}

TEST(UnrollSpace, Between) {
  EXPECT_TRUE(UnrollSpace::between({2, 2}, {1, 1}, {4, 4}));
  EXPECT_TRUE(UnrollSpace::between({1, 4}, {1, 1}, {1, 4}));
  EXPECT_FALSE(UnrollSpace::between({2, 8}, {1, 1}, {4, 4}));
}

TEST(UnrollSpace, CandidatesWithProduct) {
  UnrollSpace S({8, 8});
  std::vector<UnrollVector> C =
      S.candidatesWithProduct({1, 1}, {8, 8}, 8);
  // (1,8), (2,4), (4,2), (8,1).
  EXPECT_EQ(C.size(), 4u);
  for (const UnrollVector &U : C)
    EXPECT_EQ(unrollProduct(U), 8);
  EXPECT_TRUE(S.candidatesWithProduct({1, 1}, {8, 8}, 7).empty());
  // Bounds restrict the set: (2,4), (4,2), (8,1).
  EXPECT_EQ(S.candidatesWithProduct({2, 1}, {8, 4}, 8).size(), 3u);
  // Tighter bounds cut further.
  EXPECT_EQ(S.candidatesWithProduct({2, 2}, {4, 4}, 8).size(), 2u);
}

TEST(UnrollSpace, IncreaseDoublesBalancedly) {
  UnrollSpace S({64, 32});
  // Doubling prefers the position with the smaller current factor.
  EXPECT_EQ(S.increase({4, 1}, {0, 1}), (UnrollVector{4, 2}));
  EXPECT_EQ(S.increase({4, 4}, {0, 1}), (UnrollVector{8, 4}));
  EXPECT_EQ(S.increase({2, 4}, {0, 1}), (UnrollVector{4, 4}));
}

TEST(UnrollSpace, IncreaseRespectsTripBounds) {
  UnrollSpace S({4, 2});
  EXPECT_EQ(S.increase({4, 2}, {0, 1}), (UnrollVector{4, 2})); // Maxed.
  EXPECT_EQ(S.increase({4, 1}, {0, 1}), (UnrollVector{4, 2}));
  EXPECT_EQ(S.increase({2, 2}, {0, 1}), (UnrollVector{4, 2}));
}

TEST(UnrollSpace, IncreasePreferenceOrder) {
  UnrollSpace S({16, 16});
  // Equal factors: the preferred position doubles.
  EXPECT_EQ(S.increase({2, 2}, {1, 0}), (UnrollVector{2, 4}));
  EXPECT_EQ(S.increase({2, 2}, {0, 1}), (UnrollVector{4, 2}));
}

TEST(UnrollSpace, SelectBetweenBisectsOnQuantum) {
  UnrollSpace S({64, 32});
  // Between products 4 and 32 with quantum 4: midpoint 18 -> nearest
  // multiple-of-4 product with a candidate: 16.
  UnrollVector Mid = S.selectBetween({4, 1}, {8, 4}, 4);
  EXPECT_EQ(unrollProduct(Mid), 16);
  EXPECT_TRUE(UnrollSpace::between(Mid, {4, 1}, {8, 4}));
}

TEST(UnrollSpace, SelectBetweenReturnsSmallWhenNoRoom) {
  UnrollSpace S({64, 32});
  // Products 4 and 8 with quantum 4: nothing strictly between.
  EXPECT_EQ(S.selectBetween({4, 1}, {8, 1}, 4), (UnrollVector{4, 1}));
  // Degenerate order.
  EXPECT_EQ(S.selectBetween({8, 1}, {4, 1}, 4), (UnrollVector{8, 1}));
}

//===----------------------------------------------------------------------===//
// Deterministic enumeration of the generalized space
//===----------------------------------------------------------------------===//

TEST(DesignSpace, EnumerateLeadsWithTheHistoricalUnrollOnlyBlock) {
  DesignSpace DS(UnrollSpace({8, 4}));
  std::vector<DesignPoint> All = DS.enumerate();
  ASSERT_FALSE(All.empty());
  // The leading block is exactly allCandidates() in lexicographic order,
  // as unroll-only points — stable cache keys and digests rely on it.
  std::vector<UnrollVector> Lex = DS.unroll().allCandidates();
  ASSERT_GE(All.size(), Lex.size());
  for (size_t I = 0; I != Lex.size(); ++I) {
    EXPECT_TRUE(All[I].isUnrollOnly()) << "position " << I;
    EXPECT_EQ(All[I], DesignPoint(Lex[I])) << "position " << I;
  }
  // Everything after the block carries an interchange or a tile.
  for (size_t I = Lex.size(); I != All.size(); ++I)
    EXPECT_FALSE(All[I].isUnrollOnly()) << "position " << I;
}

TEST(DesignSpace, EnumerateYieldsOnlyUniqueCandidates) {
  DesignSpace DS(UnrollSpace({8, 4}));
  std::vector<DesignPoint> All = DS.enumerate();
  for (const DesignPoint &P : All)
    EXPECT_TRUE(DS.isCandidate(P)) << P.toString();
  std::set<DesignPoint> Unique(All.begin(), All.end());
  EXPECT_EQ(Unique.size(), All.size()) << "enumerate() emitted duplicates";
}

TEST(DesignSpace, EnumerateLimitTruncatesThePrefix) {
  DesignSpace DS(UnrollSpace({8, 4}));
  std::vector<DesignPoint> All = DS.enumerate();
  ASSERT_GT(All.size(), 10u);
  std::vector<DesignPoint> Ten = DS.enumerate(10);
  ASSERT_EQ(Ten.size(), 10u);
  EXPECT_TRUE(std::equal(Ten.begin(), Ten.end(), All.begin()));
  // A limit past the end is a no-op.
  EXPECT_EQ(DS.enumerate(All.size() + 1000).size(), All.size());
}

TEST(DesignSpace, EnumerateIsIdenticalAcrossRepeatedRuns) {
  DesignSpace DS(UnrollSpace({8, 4, 2}));
  std::vector<DesignPoint> Ref = DS.enumerate();
  ASSERT_FALSE(Ref.empty());
  for (int Run = 0; Run != 32; ++Run)
    ASSERT_EQ(DS.enumerate(), Ref) << "run " << Run << " diverged";
}

TEST(DesignSpace, EnumerateIsIdenticalAcrossConcurrentThreads) {
  DesignSpace DS(UnrollSpace({8, 4, 2}));
  std::vector<DesignPoint> Ref = DS.enumerate();
  for (unsigned Threads : {2u, 8u}) {
    std::vector<std::vector<DesignPoint>> Got(Threads);
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] { Got[T] = DS.enumerate(); });
    for (std::thread &T : Pool)
      T.join();
    for (unsigned T = 0; T != Threads; ++T)
      EXPECT_EQ(Got[T], Ref) << Threads << " threads, thread " << T;
  }
}

//===----------------------------------------------------------------------===//
// Cache-key stability
//===----------------------------------------------------------------------===//

// Unroll-only cache keys are the compatibility contract between past
// journals/caches and every future engine: the golden file pins their
// byte-exact form. A mismatch means previously journaled runs silently
// stop resuming — regenerate only on a deliberate, documented schema
// break (DEFACTO_REGOLDEN=1 rewrites the file).
TEST(DesignSpace, UnrollOnlyCacheKeysMatchGolden) {
  // A fixed synthetic fingerprint: the golden file guards the key
  // format, not IR hashing (kernel fingerprints have their own tests).
  const uint64_t Fp = 0x0123456789abcdefull;
  const TargetPlatform Platform = TargetPlatform::wildstarPipelined();
  const TransformOptions Base; // defaults: no interchange, no pipeline
  std::vector<std::string> Keys;
  for (const UnrollVector &U : UnrollSpace({32, 16, 4}).allCandidates()) {
    Keys.push_back(designCacheKey(Fp, Platform, Base, U));
    // The unroll-only key must stay free of the optional-dimension
    // suffixes — they are appended only when interchange/pipeline are
    // set, which is what keeps old keys valid.
    EXPECT_EQ(Keys.back().find(";ic"), std::string::npos) << Keys.back();
    EXPECT_EQ(Keys.back().find(";pl"), std::string::npos) << Keys.back();
  }
  ASSERT_EQ(Keys.size(), 90u); // divisors: 6 * 5 * 3

  std::string GoldenPath =
      std::string(DEFACTO_TEST_DIR) + "/golden/unroll_cache_keys.golden";
  if (::getenv("DEFACTO_REGOLDEN")) {
    std::ofstream Out(GoldenPath);
    for (const std::string &K : Keys)
      Out << K << '\n';
    GTEST_SKIP() << "regenerated " << GoldenPath;
  }
  std::ifstream In(GoldenPath);
  ASSERT_TRUE(In.good()) << "missing golden file " << GoldenPath
                         << " (run with DEFACTO_REGOLDEN=1 to create)";
  std::vector<std::string> Golden;
  for (std::string Line; std::getline(In, Line);)
    Golden.push_back(Line);
  ASSERT_EQ(Golden.size(), Keys.size());
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(Keys[I], Golden[I]) << "key " << I << " drifted";
}
