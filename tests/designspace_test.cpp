//===- designspace_test.cpp - Unroll space lattice tests ------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/DesignSpace.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(UnrollSpace, FullSizeIsProductOfTrips) {
  UnrollSpace S({64, 32});
  EXPECT_EQ(S.fullSize(), 2048u); // The paper's FIR space.
  EXPECT_EQ(S.numLoops(), 2u);
  EXPECT_EQ(S.trip(0), 64);
}

TEST(UnrollSpace, BaseAndMax) {
  UnrollSpace S({8, 4});
  EXPECT_EQ(S.base(), (UnrollVector{1, 1}));
  EXPECT_EQ(S.max(), (UnrollVector{8, 4}));
}

TEST(UnrollSpace, CandidatesAreDivisorVectors) {
  UnrollSpace S({4, 6});
  std::vector<UnrollVector> All = S.allCandidates();
  // Divisors of 4: {1,2,4}; of 6: {1,2,3,6} -> 12 candidates.
  EXPECT_EQ(All.size(), 12u);
  for (const UnrollVector &U : All)
    EXPECT_TRUE(S.isCandidate(U));
  EXPECT_FALSE(S.isCandidate({3, 1}));
  EXPECT_FALSE(S.isCandidate({1, 4}));
  EXPECT_FALSE(S.isCandidate({1}));
}

TEST(UnrollSpace, Between) {
  EXPECT_TRUE(UnrollSpace::between({2, 2}, {1, 1}, {4, 4}));
  EXPECT_TRUE(UnrollSpace::between({1, 4}, {1, 1}, {1, 4}));
  EXPECT_FALSE(UnrollSpace::between({2, 8}, {1, 1}, {4, 4}));
}

TEST(UnrollSpace, CandidatesWithProduct) {
  UnrollSpace S({8, 8});
  std::vector<UnrollVector> C =
      S.candidatesWithProduct({1, 1}, {8, 8}, 8);
  // (1,8), (2,4), (4,2), (8,1).
  EXPECT_EQ(C.size(), 4u);
  for (const UnrollVector &U : C)
    EXPECT_EQ(unrollProduct(U), 8);
  EXPECT_TRUE(S.candidatesWithProduct({1, 1}, {8, 8}, 7).empty());
  // Bounds restrict the set: (2,4), (4,2), (8,1).
  EXPECT_EQ(S.candidatesWithProduct({2, 1}, {8, 4}, 8).size(), 3u);
  // Tighter bounds cut further.
  EXPECT_EQ(S.candidatesWithProduct({2, 2}, {4, 4}, 8).size(), 2u);
}

TEST(UnrollSpace, IncreaseDoublesBalancedly) {
  UnrollSpace S({64, 32});
  // Doubling prefers the position with the smaller current factor.
  EXPECT_EQ(S.increase({4, 1}, {0, 1}), (UnrollVector{4, 2}));
  EXPECT_EQ(S.increase({4, 4}, {0, 1}), (UnrollVector{8, 4}));
  EXPECT_EQ(S.increase({2, 4}, {0, 1}), (UnrollVector{4, 4}));
}

TEST(UnrollSpace, IncreaseRespectsTripBounds) {
  UnrollSpace S({4, 2});
  EXPECT_EQ(S.increase({4, 2}, {0, 1}), (UnrollVector{4, 2})); // Maxed.
  EXPECT_EQ(S.increase({4, 1}, {0, 1}), (UnrollVector{4, 2}));
  EXPECT_EQ(S.increase({2, 2}, {0, 1}), (UnrollVector{4, 2}));
}

TEST(UnrollSpace, IncreasePreferenceOrder) {
  UnrollSpace S({16, 16});
  // Equal factors: the preferred position doubles.
  EXPECT_EQ(S.increase({2, 2}, {1, 0}), (UnrollVector{2, 4}));
  EXPECT_EQ(S.increase({2, 2}, {0, 1}), (UnrollVector{4, 2}));
}

TEST(UnrollSpace, SelectBetweenBisectsOnQuantum) {
  UnrollSpace S({64, 32});
  // Between products 4 and 32 with quantum 4: midpoint 18 -> nearest
  // multiple-of-4 product with a candidate: 16.
  UnrollVector Mid = S.selectBetween({4, 1}, {8, 4}, 4);
  EXPECT_EQ(unrollProduct(Mid), 16);
  EXPECT_TRUE(UnrollSpace::between(Mid, {4, 1}, {8, 4}));
}

TEST(UnrollSpace, SelectBetweenReturnsSmallWhenNoRoom) {
  UnrollSpace S({64, 32});
  // Products 4 and 8 with quantum 4: nothing strictly between.
  EXPECT_EQ(S.selectBetween({4, 1}, {8, 1}, 4), (UnrollVector{4, 1}));
  // Degenerate order.
  EXPECT_EQ(S.selectBetween({8, 1}, {4, 1}, 4), (UnrollVector{8, 1}));
}
