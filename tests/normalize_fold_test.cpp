//===- normalize_fold_test.cpp - Normalization and folding tests ----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/ConstantFolding.h"
#include "defacto/Transforms/Normalize.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

Kernel parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto K = parseKernel(Src, "t", Diags);
  EXPECT_TRUE(K.has_value()) << Diags.toString();
  return std::move(*K);
}

} // namespace

TEST(Normalize, RewritesBoundsAndSubscripts) {
  Kernel K = parseOrDie("int A[40];\n"
                        "for (i = 4; i < 20; i += 2) A[2*i + 1] = i;\n");
  normalizeLoops(K);
  ForStmt *Loop = K.topLoop();
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->lower(), 0);
  EXPECT_EQ(Loop->upper(), 8);
  EXPECT_EQ(Loop->step(), 1);
  std::vector<AccessInfo> Accs = collectArrayAccesses(K);
  // 2*(2i' + 4) + 1 = 4i' + 9.
  EXPECT_EQ(Accs[0].Access->subscript(0).coeff(Loop->loopId()), 4);
  EXPECT_EQ(Accs[0].Access->subscript(0).constant(), 9);
  EXPECT_TRUE(isKernelValid(K));
}

TEST(Normalize, PreservesSemantics) {
  Kernel K = parseOrDie("int A[40]; int s;\n"
                        "for (i = 4; i < 20; i += 2)\n"
                        "  for (j = 1; j < 7; j += 3)\n"
                        "    A[i + j] = A[i + j] + i - j;\n");
  auto Before = simulate(K, 11);
  normalizeLoops(K);
  EXPECT_EQ(simulate(K, 11), Before);
}

TEST(Normalize, IdempotentOnKernels) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    normalizeLoops(K);
    std::string Once = printKernel(K);
    normalizeLoops(K);
    EXPECT_EQ(printKernel(K), Once) << Spec.Name;
  }
}

TEST(Normalize, RewritesLoopIndexUses) {
  Kernel K = parseOrDie("int A[10];\n"
                        "for (i = 2; i < 10; i += 2) A[i] = i;\n");
  auto Before = simulate(K, 0);
  normalizeLoops(K);
  EXPECT_EQ(simulate(K, 0), Before);
}

TEST(ConstantFolding, FoldsArithmetic) {
  Kernel K = parseOrDie("int s;\n"
                        "for (i = 0; i < 1; i++) s = 2 + 3 * 4 - 1;\n");
  foldConstants(K.body());
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find("s = 13;"), std::string::npos);
}

TEST(ConstantFolding, TakesThenBranch) {
  Kernel K = parseOrDie("int s;\n"
                        "for (i = 0; i < 1; i++) {\n"
                        "  if (1 < 2) s = 10; else s = 20;\n"
                        "}\n");
  foldConstants(K.body());
  StmtCounts Counts = countStmts(K.body());
  EXPECT_EQ(Counts.If, 0u);
  EXPECT_EQ(Counts.Assign, 1u);
  EXPECT_NE(printKernel(K).find("s = 10;"), std::string::npos);
}

TEST(ConstantFolding, TakesElseBranch) {
  Kernel K = parseOrDie("int s;\n"
                        "for (i = 0; i < 1; i++) {\n"
                        "  if (5 == 6) s = 10; else s = 20;\n"
                        "}\n");
  foldConstants(K.body());
  EXPECT_NE(printKernel(K).find("s = 20;"), std::string::npos);
  EXPECT_EQ(countStmts(K.body()).If, 0u);
}

TEST(ConstantFolding, DropsDeadGuardWithoutElse) {
  Kernel K = parseOrDie("int s;\n"
                        "for (i = 0; i < 2; i++) {\n"
                        "  if (0) s = 10;\n"
                        "  s = s + 1;\n"
                        "}\n");
  foldConstants(K.body());
  StmtCounts Counts = countStmts(K.body());
  EXPECT_EQ(Counts.If, 0u);
  EXPECT_EQ(Counts.Assign, 1u);
}

TEST(ConstantFolding, FoldsSelect) {
  Kernel K = parseOrDie("int s;\n"
                        "for (i = 0; i < 1; i++) s = (3 > 1 ? 7 : 9);\n");
  foldConstants(K.body());
  EXPECT_NE(printKernel(K).find("s = 7;"), std::string::npos);
}

TEST(ConstantFolding, IdentitySimplifications) {
  Kernel K = parseOrDie("int s; int t;\n"
                        "for (i = 0; i < 1; i++) {\n"
                        "  s = t + 0;\n"
                        "  s = 1 * s;\n"
                        "  s = s - 0;\n"
                        "}\n");
  foldConstants(K.body());
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find("s = t;"), std::string::npos);
  EXPECT_NE(Text.find("s = s;"), std::string::npos);
}

TEST(ConstantFolding, FoldsAbsAndMinMax) {
  Kernel K = parseOrDie("int s;\n"
                        "for (i = 0; i < 1; i++)\n"
                        "  s = abs(0 - 4) + min(2, 5) + max(2, 5);\n");
  foldConstants(K.body());
  EXPECT_NE(printKernel(K).find("s = 11;"), std::string::npos);
}

TEST(ConstantFolding, LeavesDynamicConditionsAlone) {
  Kernel K = parseOrDie("int A[4]; int s;\n"
                        "for (i = 0; i < 4; i++) {\n"
                        "  if (A[i] > 0) s = s + 1;\n"
                        "}\n");
  auto Before = simulate(K, 3);
  foldConstants(K.body());
  EXPECT_EQ(countStmts(K.body()).If, 1u);
  EXPECT_EQ(simulate(K, 3), Before);
}
