//===- affine_test.cpp - Unit tests for AffineExpr ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/AffineExpr.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(AffineExpr, ConstantBasics) {
  AffineExpr Zero;
  EXPECT_TRUE(Zero.isConstant());
  EXPECT_EQ(Zero.constant(), 0);
  EXPECT_EQ(Zero.numTerms(), 0u);

  AffineExpr Five(5);
  EXPECT_TRUE(Five.isConstant());
  EXPECT_EQ(Five.constant(), 5);
}

TEST(AffineExpr, TermConstruction) {
  AffineExpr E = AffineExpr::term(3, 2, 7); // 2*L3 + 7
  EXPECT_FALSE(E.isConstant());
  EXPECT_EQ(E.coeff(3), 2);
  EXPECT_EQ(E.coeff(0), 0);
  EXPECT_EQ(E.constant(), 7);
  EXPECT_TRUE(E.usesLoop(3));
  EXPECT_FALSE(E.usesLoop(2));
  EXPECT_EQ(E.loopIds(), (std::vector<int>{3}));
}

TEST(AffineExpr, ZeroCoefficientIsDropped) {
  AffineExpr E = AffineExpr::term(1, 0, 3);
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.numTerms(), 0u);
}

TEST(AffineExpr, AddSub) {
  AffineExpr A = AffineExpr::term(0, 1, 2);  // i + 2
  AffineExpr B = AffineExpr::term(1, 3, -1); // 3j - 1
  AffineExpr Sum = A.add(B);
  EXPECT_EQ(Sum.coeff(0), 1);
  EXPECT_EQ(Sum.coeff(1), 3);
  EXPECT_EQ(Sum.constant(), 1);

  AffineExpr Diff = Sum.sub(B);
  EXPECT_EQ(Diff, A);

  // Cancellation removes the term entirely.
  AffineExpr Zeroed = A.sub(AffineExpr::term(0, 1));
  EXPECT_TRUE(Zeroed.isConstant());
  EXPECT_EQ(Zeroed.constant(), 2);
}

TEST(AffineExpr, Scale) {
  AffineExpr A = AffineExpr::term(0, 2, 3);
  AffineExpr S = A.scale(-2);
  EXPECT_EQ(S.coeff(0), -4);
  EXPECT_EQ(S.constant(), -6);
  EXPECT_TRUE(A.scale(0).isConstant());
  EXPECT_EQ(A.scale(0).constant(), 0);
}

TEST(AffineExpr, SubstituteSimple) {
  // i + 1 with i := i + 4  =>  i + 5 (unrolling shift).
  AffineExpr E = AffineExpr::term(0, 1, 1);
  AffineExpr R = E.substitute(0, AffineExpr::term(0, 1, 4));
  EXPECT_EQ(R.coeff(0), 1);
  EXPECT_EQ(R.constant(), 5);
}

TEST(AffineExpr, SubstituteScaled) {
  // 2i with i := 3i' + 1  =>  6i' + 2 (normalization).
  AffineExpr E = AffineExpr::term(0, 2);
  AffineExpr R = E.substitute(0, AffineExpr::term(0, 3, 1));
  EXPECT_EQ(R.coeff(0), 6);
  EXPECT_EQ(R.constant(), 2);
}

TEST(AffineExpr, SubstituteIntroducesLoop) {
  // i with i := T*t + s (strip-mining).
  AffineExpr E = AffineExpr::term(0, 1, 5);
  AffineExpr R = E.substitute(
      0, AffineExpr::term(0, 4).add(AffineExpr::term(9, 1)));
  EXPECT_EQ(R.coeff(0), 4);
  EXPECT_EQ(R.coeff(9), 1);
  EXPECT_EQ(R.constant(), 5);
}

TEST(AffineExpr, SubstituteAbsentLoopIsNoop) {
  AffineExpr E = AffineExpr::term(0, 1, 1);
  EXPECT_EQ(E.substitute(7, AffineExpr(100)), E);
}

TEST(AffineExpr, Evaluate) {
  // 2i + 3j - 4 at i=5, j=1 -> 9.
  AffineExpr E =
      AffineExpr::term(0, 2).add(AffineExpr::term(1, 3)).addConstant(-4);
  int64_t V = E.evaluate([](int Id) { return Id == 0 ? 5 : 1; });
  EXPECT_EQ(V, 9);
}

TEST(AffineExpr, Equality) {
  AffineExpr A = AffineExpr::term(0, 1, 2);
  AffineExpr B = AffineExpr::term(0, 1, 2);
  AffineExpr C = AffineExpr::term(0, 1, 3);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, AffineExpr(2));
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ(AffineExpr(7).toString(), "7");
  EXPECT_EQ(AffineExpr(-3).toString(), "-3");
  EXPECT_EQ(AffineExpr::term(2, 1).toString(), "L2");
  EXPECT_EQ(AffineExpr::term(2, -1).toString(), "-L2");
  EXPECT_EQ(AffineExpr::term(2, 3, -5).toString(), "3*L2 - 5");
  AffineExpr Mixed =
      AffineExpr::term(0, 1).add(AffineExpr::term(1, -2)).addConstant(4);
  EXPECT_EQ(Mixed.toString(), "L0 - 2*L1 + 4");
  EXPECT_EQ(Mixed.toString([](int Id) {
    return Id == 0 ? std::string("i") : std::string("j");
  }),
            "i - 2*j + 4");
}

TEST(AffineExpr, TermsStaySorted) {
  AffineExpr E = AffineExpr::term(5, 1)
                     .add(AffineExpr::term(1, 2))
                     .add(AffineExpr::term(3, 4));
  EXPECT_EQ(E.loopIds(), (std::vector<int>{1, 3, 5}));
}
