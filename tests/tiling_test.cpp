//===- tiling_test.cpp - Strip-mining tests -------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/Tiling.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(StripMine, SplitsLoop) {
  Kernel FIR = buildKernel("FIR");
  normalizeLoops(FIR);
  std::vector<ForStmt *> Nest = perfectNest(FIR.topLoop());
  int InnerId = Nest[1]->loopId();
  ASSERT_TRUE(stripMine(FIR, InnerId, 8));
  EXPECT_TRUE(isKernelValid(FIR));

  Nest = perfectNest(FIR.topLoop());
  ASSERT_EQ(Nest.size(), 3u);
  EXPECT_EQ(Nest[1]->tripCount(), 4); // 32 / 8 tiles.
  EXPECT_EQ(Nest[2]->tripCount(), 8); // Strip of 8.
  EXPECT_EQ(Nest[1]->loopId(), InnerId);
}

TEST(StripMine, PreservesSemantics) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    auto Reference = simulate(K, 9);
    normalizeLoops(K);
    std::vector<ForStmt *> Nest = perfectNest(K.topLoop());
    ForStmt *Inner = Nest.back();
    int64_t Trip = Inner->tripCount();
    // Pick a proper divisor tile if one exists.
    int64_t Tile = 0;
    for (int64_t T = 2; T < Trip; ++T)
      if (Trip % T == 0) {
        Tile = T;
        break;
      }
    if (Tile == 0)
      continue;
    ASSERT_TRUE(stripMine(K, Inner->loopId(), Tile)) << Spec.Name;
    EXPECT_TRUE(isKernelValid(K)) << Spec.Name;
    EXPECT_EQ(simulate(K, 9), Reference) << Spec.Name;
  }
}

TEST(StripMine, RejectsBadParameters) {
  Kernel FIR = buildKernel("FIR");
  normalizeLoops(FIR);
  int Id = perfectNest(FIR.topLoop())[1]->loopId();
  EXPECT_FALSE(stripMine(FIR, Id, 1));   // Tile 1: pointless.
  EXPECT_FALSE(stripMine(FIR, Id, 32));  // Tile == trip.
  EXPECT_FALSE(stripMine(FIR, Id, 5));   // Non-divisor.
  EXPECT_FALSE(stripMine(FIR, 999, 4));  // Unknown loop.
}

TEST(StripMine, RejectsUnnormalizedLoop) {
  Kernel JAC = buildKernel("JAC"); // Lower bound 1 before normalization.
  int Id = perfectNest(JAC.topLoop())[0]->loopId();
  EXPECT_FALSE(stripMine(JAC, Id, 4));
}

TEST(StripMine, ReducesChainLengthForRegisterControl) {
  // §5.4: tiling shrinks the localized iteration space so scalar
  // replacement's chains match a register budget. Strip-mining the inner
  // loop of FIR shortens nothing by itself (the chain still spans the
  // full sweep), but strip-mining and unrolling only the tile keeps the
  // chain bounded by MaxChainLength fallback. Here we verify the
  // combined effect: a chain-capped scalar replacement plus strip-mined
  // nest still computes correctly.
  Kernel K = buildKernel("FIR");
  auto Reference = simulate(K, 21);
  normalizeLoops(K);
  int InnerId = perfectNest(K.topLoop())[1]->loopId();
  ASSERT_TRUE(stripMine(K, InnerId, 4));
  ScalarReplacementOptions Opts;
  Opts.MaxChainLength = 16;
  scalarReplace(K, Opts);
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(simulate(K, 21), Reference);
}

TEST(StripMine, GoldenPrintedIR) {
  // The exact IR a 16-iteration loop tiled by 4 must produce: the tile
  // loop keeps the original loop id and iterates the tile count; the
  // strip loop is fresh and the body index is rebuilt as
  // tile * size + strip.
  DiagnosticEngine Diags;
  auto K = parseKernel("int A[16];\n"
                       "for (i = 0; i < 16; i++)\n"
                       "  A[i] = A[i] + 1;\n",
                       "tile_golden", Diags);
  ASSERT_TRUE(K.has_value()) << Diags.toString();
  normalizeLoops(*K);
  int LoopId = perfectNest(K->topLoop())[0]->loopId();
  ASSERT_TRUE(stripMine(*K, LoopId, 4));
  EXPECT_TRUE(isKernelValid(*K));
  EXPECT_EQ(printKernel(*K), "// kernel tile_golden\n"
                             "int A[16];\n"
                             "for (i = 0; i < 4; i += 1) {\n"
                             "  for (is = 0; is < 4; is += 1) {\n"
                             "    A[4*i + is] = (A[4*i + is] + 1);\n"
                             "  }\n"
                             "}\n");
}
