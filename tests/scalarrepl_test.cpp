//===- scalarrepl_test.cpp - Scalar replacement tests ---------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

Kernel parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto K = parseKernel(Src, "t", Diags);
  EXPECT_TRUE(K.has_value()) << Diags.toString();
  return std::move(*K);
}

/// Memory accesses remaining in the steady-state innermost body
/// (excluding first-iteration guards). Scalar replacement hoists loads
/// between levels, so the innermost loop is the one containing no nested
/// loop.
unsigned steadyBodyAccesses(Kernel &K) {
  ForStmt *Inner = nullptr;
  for (ForStmt *F : collectLoops(K.body()))
    if (collectLoops(F->body()).empty())
      Inner = F;
  if (!Inner)
    return 0;
  unsigned N = 0;
  for (const StmtPtr &S : Inner->body()) {
    if (isa<IfStmt>(S.get()))
      continue; // Guarded warm-up loads.
    if (const auto *A = dyn_cast<AssignStmt>(S.get())) {
      if (isa<ArrayAccessExpr>(A->dest()))
        ++N;
      walkExpr(A->value(), [&N](const Expr *E) {
        if (isa<ArrayAccessExpr>(E))
          ++N;
      });
    }
  }
  return N;
}

} // namespace

TEST(ScalarReplacement, FirBaselineStructure) {
  Kernel FIR = buildKernel("FIR");
  normalizeLoops(FIR);
  ScalarReplacementStats Stats = scalarReplace(FIR);
  EXPECT_TRUE(isKernelValid(FIR));

  // C[i] becomes a 32-register rotating chain; D[j] one register.
  EXPECT_EQ(Stats.ChainsCreated, 1u);
  EXPECT_GE(Stats.RegistersAllocated, 33u);
  // Steady state: only the S load remains in the inner body.
  EXPECT_EQ(steadyBodyAccesses(FIR), 1u);

  // The guard of Figure 1(c): "if (j == 0) { c_0 = C[i]; }".
  std::string Text = printKernel(FIR);
  EXPECT_NE(Text.find("if ((j == 0))"), std::string::npos);
  EXPECT_NE(Text.find("rotate_registers("), std::string::npos);
}

TEST(ScalarReplacement, FirUnrolledMatchesFigure1c) {
  Kernel FIR = buildKernel("FIR");
  normalizeLoops(FIR);
  ASSERT_TRUE(unrollAndJam(FIR, {2, 2}));
  normalizeLoops(FIR);
  ScalarReplacementStats Stats = scalarReplace(FIR);

  // Two C chains (even/odd), one CSE temp for the shared S element,
  // two D registers.
  EXPECT_EQ(Stats.ChainsCreated, 2u);
  // Steady state loads: S appears with 3 distinct subscripts; one is
  // shared (CSE) so 3 loads remain, plus no D/C traffic.
  EXPECT_EQ(steadyBodyAccesses(FIR), 3u);
  EXPECT_GE(Stats.LoadsRemoved, 1u);
  EXPECT_GE(Stats.StoresRemoved, 1u);
}

TEST(ScalarReplacement, MmEliminatesAllInnerAccesses) {
  Kernel MM = buildKernel("MM");
  normalizeLoops(MM);
  ScalarReplacementStats Stats = scalarReplace(MM);
  EXPECT_TRUE(isKernelValid(MM));
  // The paper: after the transformations the innermost (k) body has no
  // memory accesses at all (A and B live in chains, Z in a register).
  EXPECT_EQ(steadyBodyAccesses(MM), 0u);
  EXPECT_EQ(Stats.ChainsCreated, 2u);
}

TEST(ScalarReplacement, JacobiWindows) {
  Kernel JAC = buildKernel("JAC");
  normalizeLoops(JAC);
  ScalarReplacementStats Stats = scalarReplace(JAC);
  EXPECT_TRUE(isKernelValid(JAC));
  // The row accesses A[i][j-1..j+1] collapse into one sliding window
  // with a single leading load; the column accesses stay (2 loads) and
  // the B write stays.
  EXPECT_EQ(Stats.WindowsCreated, 1u);
  EXPECT_EQ(steadyBodyAccesses(JAC), 4u); // 2 col loads + 1 lead + 1 store
}

TEST(ScalarReplacement, WindowsCanBeDisabled) {
  Kernel JAC = buildKernel("JAC");
  normalizeLoops(JAC);
  ScalarReplacementOptions Opts;
  Opts.EnableWindows = false;
  ScalarReplacementStats Stats = scalarReplace(JAC, Opts);
  EXPECT_EQ(Stats.WindowsCreated, 0u);
  EXPECT_EQ(steadyBodyAccesses(JAC), 5u); // All 4 loads + 1 store.
}

TEST(ScalarReplacement, ChainsCanBeDisabled) {
  Kernel FIR = buildKernel("FIR");
  normalizeLoops(FIR);
  ScalarReplacementOptions Opts;
  Opts.EnableOuterCarriedChains = false;
  ScalarReplacementStats Stats = scalarReplace(FIR, Opts);
  EXPECT_EQ(Stats.ChainsCreated, 0u);
  // C load stays in the body.
  EXPECT_EQ(steadyBodyAccesses(FIR), 2u);
}

TEST(ScalarReplacement, ChainLengthCapFallsBack) {
  Kernel FIR = buildKernel("FIR");
  normalizeLoops(FIR);
  ScalarReplacementOptions Opts;
  Opts.MaxChainLength = 8; // C needs 32.
  ScalarReplacementStats Stats = scalarReplace(FIR, Opts);
  EXPECT_EQ(Stats.ChainsCreated, 0u);
}

TEST(ScalarReplacement, ConditionalAccessesAreConservative) {
  Kernel K = parseOrDie("int A[8]; int B[8]; int s;\n"
                        "for (i = 0; i < 8; i++)\n"
                        "  for (j = 0; j < 8; j++) {\n"
                        "    if (B[j] > 0) A[i] = A[i] + 1;\n"
                        "    s = s + B[j];\n"
                        "  }\n");
  normalizeLoops(K);
  auto Reference = simulate(K, 77);
  scalarReplace(K);
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(simulate(K, 77), Reference);
  // A and B are accessed under control flow: left in memory.
  std::string Text = printKernel(K);
  EXPECT_EQ(Text.find("A_r"), std::string::npos);
}

TEST(ScalarReplacement, WriteOnlyInvariantGetsNoLoad) {
  Kernel K = parseOrDie("int A[8];\n"
                        "for (i = 0; i < 8; i++)\n"
                        "  for (j = 0; j < 4; j++)\n"
                        "    A[i] = j;\n");
  normalizeLoops(K);
  auto Reference = simulate(K, 3);
  ScalarReplacementStats Stats = scalarReplace(K);
  EXPECT_EQ(simulate(K, 3), Reference);
  EXPECT_EQ(Stats.StoresRemoved, 1u);
  EXPECT_EQ(steadyBodyAccesses(K), 0u);
  // No initial load for a write-only register.
  EXPECT_EQ(Stats.LoadsRemoved, 0u);
}

namespace {

class ScalarReplacementSemantics
    : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ScalarReplacementSemantics, PreservesResults) {
  Kernel K = buildKernel(GetParam());
  auto Reference = simulate(K, 4242);
  normalizeLoops(K);
  scalarReplace(K);
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(simulate(K, 4242), Reference);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ScalarReplacementSemantics,
                         ::testing::Values("FIR", "MM", "PAT", "JAC",
                                           "SOBEL"));

TEST(ScalarReplacement, SobelWindowsShareColumns) {
  // SOBEL's 3x3 window has three row streams; each becomes a window
  // with one leading load, so the steady state needs 3 loads + 1 store
  // instead of 8 loads + 1 store.
  Kernel SOBEL = buildKernel("SOBEL");
  normalizeLoops(SOBEL);
  ScalarReplacementStats Stats = scalarReplace(SOBEL);
  EXPECT_EQ(Stats.WindowsCreated, 3u);
  EXPECT_EQ(steadyBodyAccesses(SOBEL), 4u);
}

TEST(ScalarReplacement, WindowWarmupGuardsTheInnerLoop) {
  Kernel JAC = buildKernel("JAC");
  normalizeLoops(JAC);
  scalarReplace(JAC);
  // The warm-up guard tests the *innermost* loop's first iteration.
  ForStmt *Inner = perfectNest(JAC.topLoop()).back();
  bool FoundGuard = false;
  for (const StmtPtr &S : Inner->body()) {
    const auto *If = dyn_cast<IfStmt>(S.get());
    if (!If)
      continue;
    const auto *Cmp = dyn_cast<BinaryExpr>(If->cond());
    ASSERT_NE(Cmp, nullptr);
    const auto *Idx = dyn_cast<LoopIndexExpr>(Cmp->lhs());
    ASSERT_NE(Idx, nullptr);
    EXPECT_EQ(Idx->loopId(), Inner->loopId());
    FoundGuard = true;
  }
  EXPECT_TRUE(FoundGuard);
}

TEST(ScalarReplacement, CorrFourDeepChains) {
  // CORR's template T[u][v] is invariant in the two image loops: a
  // chain carried at nest position 1 caches the whole 4x4 template.
  Kernel CORR = buildKernel("CORR");
  normalizeLoops(CORR);
  ScalarReplacementStats Stats = scalarReplace(CORR);
  EXPECT_GE(Stats.ChainsCreated, 1u);
  // Steady state: only the image load and the R accumulator traffic.
  EXPECT_LE(steadyBodyAccesses(CORR), 1u);
}
